//! Scale-out: fleets of servers, each running its own controller (the
//! paper's Section 7 future-work direction), declared as scenarios —
//! first a dispatcher shoot-out on a homogeneous fleet, then the
//! heterogeneous shapes the Scenario API exists for (mixed machine
//! generations, per-group QoS, race-vs-SleepScale A/B).
//!
//! ```sh
//! cargo run --release --example cluster_scale_out
//! ```

use sleepscale_repro::prelude::*;
use sleepscale_repro::sleepscale_scenario::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Dispatcher shoot-out: one declarative fleet, four dispatchers.
    //    A low-utilization fleet (the 20–30% regime the paper's intro
    //    describes), DNS-like service, three hours.
    let n = 8;
    let base = {
        let mut scenario = Scenario {
            eval_jobs: 800,
            seed: 17,
            ..Scenario::new(
                "scale-out",
                WorkloadSource::Dns,
                LoadSchedule::Constant { rho: 0.2, minutes: 180 },
            )
        };
        scenario.fleet = vec![ServerGroup::new("fleet", n, StrategySpec::sleepscale())];
        scenario
    };
    println!("fleet of {n}, cluster load 20% of capacity\n");
    println!(
        "{:>24} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "dispatcher", "mu*E[R]", "p95 (ms)", "fleet W", "balance", "cache", "warm"
    );
    for (label, dispatcher) in [
        ("round-robin", DispatcherSpec::RoundRobin),
        ("random", DispatcherSpec::RandomUniform { seed: 3 }),
        ("join-shortest-backlog", DispatcherSpec::JoinShortestBacklog),
        ("pack-first-fit(1s)", DispatcherSpec::PackFirstFit { backlog_seconds: 1.0 }),
    ] {
        let mut scenario = base.clone();
        scenario.dispatcher = dispatcher;
        let report = ScenarioRunner::new(scenario)?.run()?;
        // How much characterization the fleet engine eliminated: cache
        // hits are whole per-server sweeps absorbed by the shared
        // cache; warm-started searches are the cross-epoch bowl-bottom
        // reuse on the sweeps that did run.
        let cache = report.cache_stats();
        let warm = report.warm_start_stats();
        let cluster = report.cluster_report().expect("fleet scenarios run the cluster backend");
        println!(
            "{:>24} {:>12.2} {:>12.1} {:>12.0} {:>10.2} {:>9.0}% {:>9.0}%",
            label,
            report.normalized_mean_response(),
            report.p95_response_seconds() * 1e3,
            report.avg_power_watts(),
            cluster.load_balance_index(),
            cache.hit_rate() * 100.0,
            warm.warm_rate() * 100.0
        );
    }
    println!(
        "\nReading: packing concentrates work so spare servers reach deep sleep;\n\
         at this utilization it buys a large fleet-power reduction for a modest\n\
         response-time cost. Spreading disciplines keep responses lowest but\n\
         every server idles shallow. Dispatch routes off an O(log N) index, so\n\
         a 64-server day streams through in seconds (see `cargo run --release\n\
         -p sleepscale-bench --bin cluster_scale`)."
    );

    // 2. Heterogeneous fleets from the catalog: the shapes one
    //    homogeneous ClusterConfig could not express before PR 4.
    println!("\nheterogeneous catalog scenarios (per-group slices):");
    for scenario in
        [catalog::mixed_generations(), catalog::qos_split(), catalog::race_vs_sleepscale()]
    {
        let report = ScenarioRunner::new(scenario)?.run()?;
        println!(
            "\n  {} — {} servers, {} jobs, {:.0} W fleet-wide",
            report.scenario(),
            report.groups().iter().map(|g| g.servers).sum::<usize>(),
            report.total_jobs(),
            report.avg_power_watts()
        );
        println!(
            "  {:>16} {:>8} {:>9} {:>9} {:>9} {:>9} {:>6}",
            "group", "servers", "jobs", "mu*E[R]", "budget", "W", "QoS"
        );
        for group in report.groups() {
            println!(
                "  {:>16} {:>8} {:>9} {:>9.2} {:>9.2} {:>9.0} {:>6}",
                group.name,
                group.servers,
                group.jobs,
                group.normalized_mean_response,
                group.qos_budget,
                group.avg_power_watts,
                if group.qos_ok { "ok" } else { "FAIL" }
            );
        }
    }
    println!(
        "\nEach group keeps its own shared characterization cache, so mixed\n\
         generations and QoS tiers amortize sweeps exactly like homogeneous\n\
         fleets — one real characterization per group per epoch."
    );
    Ok(())
}
