//! Scale-out: a fleet of servers, each running its own SleepScale
//! controller (the paper's Section 7 future-work direction), under
//! different load-balancing disciplines.
//!
//! ```sh
//! cargo run --release --example cluster_scale_out
//! ```

use rand::SeedableRng;
use sleepscale_cluster::{
    Cluster, ClusterConfig, Dispatcher, JoinShortestBacklog, PackFirstFit, RandomUniform,
    RoundRobin,
};
use sleepscale_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8;
    let spec = WorkloadSpec::dns();
    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8)?)
        .epoch_minutes(5)
        .eval_jobs(800)
        .over_provisioning(0.0)
        .build()?;
    let config = ClusterConfig::new(n, runtime);

    // A low-utilization fleet (the 20–30% regime the paper's intro
    // describes), DNS-like service, three hours.
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let dists = WorkloadDistributions::empirical(&spec, 8_000, &mut rng)?;
    let trace = UtilizationTrace::constant(0.2, 180)?;
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng)?;
    println!("fleet of {n}, cluster load {:.0}% of capacity, {} jobs\n", 20.0, jobs.len());

    let mut dispatchers: Vec<Box<dyn Dispatcher>> = vec![
        Box::new(RoundRobin::new()),
        Box::new(RandomUniform::new(3)),
        Box::new(JoinShortestBacklog::new()),
        Box::new(PackFirstFit::new(1.0)),
    ];
    println!(
        "{:>24} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "dispatcher", "mu*E[R]", "p95 (ms)", "fleet W", "balance", "cache", "warm"
    );
    for d in dispatchers.iter_mut() {
        let mut cluster = Cluster::new(&config, CandidateSet::standard(), SimEnv::xeon_cpu_bound());
        let r = cluster.run(&trace, &jobs, d.as_mut())?;
        // How much characterization the fleet engine eliminated: cache
        // hits are whole per-server sweeps absorbed by the shared
        // cache; warm-started searches are the cross-epoch bowl-bottom
        // reuse on the sweeps that did run.
        let cache = cluster.characterization_stats();
        let warm = cluster.warm_start_stats();
        println!(
            "{:>24} {:>12.2} {:>12.1} {:>12.0} {:>10.2} {:>9.0}% {:>9.0}%",
            r.dispatcher(),
            r.normalized_mean_response(),
            r.p95_response_seconds() * 1e3,
            r.total_power_watts(),
            r.load_balance_index(),
            cache.hit_rate() * 100.0,
            warm.warm_rate() * 100.0
        );
    }
    println!(
        "\nReading: packing concentrates work so spare servers reach deep sleep;\n\
         at this utilization it buys a large fleet-power reduction for a modest\n\
         response-time cost. Spreading disciplines keep responses lowest but\n\
         every server idles shallow. The cache column is the fraction of\n\
         per-server characterizations served by the fleet-shared cache (one\n\
         real sweep per epoch instead of N); the warm column is how many of\n\
         the remaining sweeps warm-started from the previous epoch's bowl\n\
         bottoms. Dispatch itself routes off an O(log N) index — no per-job\n\
         fleet snapshot — so a 64-server day streams through in seconds\n\
         (see `cargo run --release -p sleepscale-bench --bin cluster_scale`)."
    );
    Ok(())
}
