//! Quickstart: characterize a few policies for one workload and let the
//! policy manager pick the best one.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The machine: Table 2's Xeon-class server, CPU-bound service.
    let env = SimEnv::xeon_cpu_bound();

    // 2. The workload: DNS-like jobs (Table 5), utilization 0.2.
    let spec = WorkloadSpec::dns();
    let rho = 0.2;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let jobs = generator::generate_poisson_exp(10_000, rho, spec.service_mean(), &mut rng)?;

    // 3. Characterize a handful of joint (frequency, sleep-state)
    //    policies by simulation — the paper's Algorithm 1.
    println!("policy characterization (DNS-like, rho = {rho}):");
    println!("{:>28} {:>12} {:>12}", "policy", "mu*E[R]", "E[P] (W)");
    for state in SystemState::LOW_POWER_LADDER {
        for f in [0.4, 0.7, 1.0] {
            let policy = Policy::new(
                Frequency::new(f)?,
                SleepProgram::immediate(presets::immediate_stage(state)),
            );
            let out = simulate(&jobs, &policy, &env);
            println!(
                "{:>28} {:>12.2} {:>12.1}",
                policy.label(),
                out.normalized_mean_response(spec.service_mean()),
                out.avg_power().as_watts()
            );
        }
    }

    // 4. Let the policy manager search the full candidate grid under the
    //    paper's QoS constraint (peak design utilization 0.8 →
    //    µE[R] ≤ 5).
    let manager = PolicyManager::new(
        env,
        QosConstraint::mean_response(0.8)?,
        CandidateSet::standard(),
        spec.service_mean(),
        5_000,
    )?;
    let selection = manager.select_from_stream(&jobs, rho);
    println!(
        "\nSleepScale selects: {}\n  predicted power {:.1} W, predicted mu*E[R] {:.2} \
         (budget 5.0), {} candidates evaluated",
        selection.policy.label(),
        selection.predicted_power,
        selection.predicted_norm_response,
        selection.evaluated
    );

    // 5. Compare against the naive baseline: run flat out, never sleep.
    let baseline = simulate(&jobs, &Policy::full_speed_no_sleep(), &manager_env());
    println!(
        "  flat-out baseline: {:.1} W  ->  SleepScale saves {:.0}%",
        baseline.avg_power().as_watts(),
        100.0 * (1.0 - selection.predicted_power / baseline.avg_power().as_watts())
    );
    Ok(())
}

fn manager_env() -> SimEnv {
    SimEnv::xeon_cpu_bound()
}
