//! Quickstart: characterize a few policies for one workload by hand,
//! then declare the same experiment as a `Scenario` and let the unified
//! runner drive it end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The machine: Table 2's Xeon-class server, CPU-bound service.
    let env = SimEnv::xeon_cpu_bound();

    // 2. The workload: DNS-like jobs (Table 5), utilization 0.2.
    let spec = WorkloadSpec::dns();
    let rho = 0.2;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let jobs = generator::generate_poisson_exp(10_000, rho, spec.service_mean(), &mut rng)?;

    // 3. Characterize a handful of joint (frequency, sleep-state)
    //    policies by simulation — the paper's Algorithm 1.
    println!("policy characterization (DNS-like, rho = {rho}):");
    println!("{:>28} {:>12} {:>12}", "policy", "mu*E[R]", "E[P] (W)");
    for state in SystemState::LOW_POWER_LADDER {
        for f in [0.4, 0.7, 1.0] {
            let policy = Policy::new(
                Frequency::new(f)?,
                SleepProgram::immediate(presets::immediate_stage(state)),
            );
            let out = simulate(&jobs, &policy, &env);
            println!(
                "{:>28} {:>12.2} {:>12.1}",
                policy.label(),
                out.normalized_mean_response(spec.service_mean()),
                out.avg_power().as_watts()
            );
        }
    }

    // 4. The same exploration as one declarative scenario: SleepScale's
    //    full runtime over an hour of steady rho = 0.2 load, driven by
    //    the unified runner (predictor + log replay + pruned search +
    //    cache — everything the paper's Sections 5–6 wire by hand).
    let scenario = Scenario {
        eval_jobs: 2_000,
        seed: 42,
        ..Scenario::new(
            "quickstart",
            WorkloadSource::Dns,
            LoadSchedule::Constant { rho, minutes: 60 },
        )
    };
    let report = ScenarioRunner::new(scenario)?.run()?;
    let run = report.run_report().expect("single-server scenarios report the runtime backend");
    let (top_program, top_fraction) = run.program_fractions().remove(0);
    println!(
        "\nSleepScale over an hour at rho = {rho}: {:.1} W average \
         (mu*E[R] {:.2}, budget {:.1}), {} jobs",
        report.avg_power_watts(),
        report.normalized_mean_response(),
        report.groups()[0].qos_budget,
        report.total_jobs(),
    );
    println!("  dominant sleep program: {top_program} ({:.0}% of epochs)", top_fraction * 100.0);

    // 5. Compare against the naive baseline: run flat out, never sleep.
    let baseline = simulate(&jobs, &Policy::full_speed_no_sleep(), &env);
    println!(
        "  flat-out baseline: {:.1} W  ->  SleepScale saves {:.0}%",
        baseline.avg_power().as_watts(),
        100.0 * (1.0 - report.avg_power_watts() / baseline.avg_power().as_watts())
    );
    Ok(())
}
