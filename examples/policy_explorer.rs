//! Policy explorer: sweep every (frequency, sleep-state) pair for a
//! workload you describe on the command line and print the bowl curves
//! plus the QoS-constrained optimum — both simulated and via the
//! paper's closed forms — then hand the same workload to the unified
//! scenario runner and show what the full SleepScale runtime deploys.
//!
//! ```sh
//! cargo run --release --example policy_explorer -- [mean_service_ms] [rho] [rho_b]
//! cargo run --release --example policy_explorer -- 92 0.15 0.7
//! ```

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let mean_service_ms: f64 = args.get(1).map_or(Ok(194.0), |s| s.parse())?;
    let rho: f64 = args.get(2).map_or(Ok(0.1), |s| s.parse())?;
    let rho_b: f64 = args.get(3).map_or(Ok(0.8), |s| s.parse())?;
    let mean_service = mean_service_ms / 1e3;
    let budget = 1.0 / (1.0 - rho_b);
    println!(
        "workload: 1/mu = {mean_service_ms} ms, rho = {rho}, QoS mu*E[R] <= {budget:.2} \
         (rho_b = {rho_b})\n"
    );

    let env = SimEnv::xeon_cpu_bound();
    let power = presets::xeon();
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let jobs = generator::generate_poisson_exp(20_000, rho, mean_service, &mut rng)?;
    let analyzer = PolicyAnalyzer::from_utilization(
        &power,
        FrequencyScaling::CpuBound,
        1.0 / mean_service,
        rho,
    )?;

    println!(
        "{:<14} {:>6} | {:>10} {:>10} | {:>10} {:>10}",
        "state", "f", "sim muE[R]", "sim E[P]", "ana muE[R]", "ana E[P]"
    );
    let grid = FrequencyGrid::new((rho + 0.05).min(1.0), 1.0, 0.1)?;
    let mut best: Option<(Policy, f64)> = None;
    for state in SystemState::LOW_POWER_LADDER {
        for f in grid.iter() {
            let policy = Policy::new(f, SleepProgram::immediate(presets::immediate_stage(state)));
            let out = simulate(&jobs, &policy, &env);
            let sim_r = out.normalized_mean_response(mean_service);
            let sim_p = out.avg_power().as_watts();
            let ana = analyzer.analyze(&policy);
            let (ana_r, ana_p) = ana
                .map(|a| (a.normalized_mean_response, a.avg_power))
                .unwrap_or((f64::NAN, f64::NAN));
            println!(
                "{:<14} {:>6.2} | {:>10.2} {:>10.1} | {:>10.2} {:>10.1}",
                state.label(),
                f.get(),
                sim_r,
                sim_p,
                ana_r,
                ana_p
            );
            if sim_r <= budget && best.as_ref().is_none_or(|(_, p)| sim_p < *p) {
                best = Some((policy, sim_p));
            }
        }
        println!();
    }

    match best {
        Some((policy, watts)) => println!(
            "QoS-constrained optimum: {} at {watts:.1} W (budget mu*E[R] <= {budget:.2})",
            policy.label()
        ),
        None => println!("no policy meets the budget at this utilization"),
    }

    // The same workload as a declarative scenario: the full runtime
    // (prediction, log replay, pruned search, cache) over an hour of
    // this load — what SleepScale would actually deploy epoch by epoch.
    let spec = WorkloadSpec::new("custom", mean_service / rho.max(1e-6), 1.0, mean_service, 1.0)?;
    let mut scenario = Scenario {
        eval_jobs: 1_000,
        seed: 11,
        ..Scenario::new(
            "policy-explorer",
            WorkloadSource::Custom(spec),
            LoadSchedule::Constant { rho, minutes: 60 },
        )
    };
    scenario.fleet[0].qos = QosConstraint::mean_response(rho_b)?;
    let report = ScenarioRunner::new(scenario)?.run()?;
    let run = report.run_report().expect("single-server backend");
    println!(
        "\nscenario runner (full runtime, 60 min): {:.1} W average, mu*E[R] {:.2}, \
         deployed programs:",
        report.avg_power_watts(),
        report.normalized_mean_response()
    );
    for (label, frac) in run.program_fractions() {
        println!("  {label:<14} {:>5.1}%", frac * 100.0);
    }
    Ok(())
}
