//! A day in the data center: drive SleepScale and the paper's baseline
//! strategies over the synthetic email-store utilization trace with a
//! DNS-like service, 2 AM – 8 PM (the paper's Section 6 evaluation) —
//! each strategy declared as the same catalog `Scenario` with a
//! different `StrategySpec`.
//!
//! ```sh
//! cargo run --release --example datacenter_day
//! ```

use sleepscale_repro::prelude::*;
use sleepscale_repro::sleepscale_scenario::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The catalog's DNS evaluation day: one Xeon server, email-store
    // trace windowed 2 AM – 8 PM, alpha = 0.35. The baselines are the
    // same scenario with the strategy swapped — that is the whole point
    // of the declarative API.
    let sleepscale = catalog::dns_day();
    let mut race = sleepscale.clone();
    race.name = "dns-day-r2h".into();
    race.fleet[0].strategy = StrategySpec::race_to_halt_c6();
    let mut dvfs = sleepscale.clone();
    dvfs.name = "dns-day-dvfs".into();
    dvfs.fleet[0].strategy = StrategySpec::dvfs_only();

    let trace = sleepscale.load.build(sleepscale.arrival_scale)?;
    println!(
        "trace: {} minutes, utilization {:.2}–{:.2} (mean {:.2})",
        trace.len(),
        trace.min(),
        trace.max(),
        trace.mean(),
    );

    println!("\n{:>16} {:>12} {:>12} {:>12}", "strategy", "mu*E[R]", "p95 (ms)", "E[P] (W)");
    let mut reports = Vec::new();
    for scenario in [sleepscale, race, dvfs] {
        let label = scenario.fleet[0].strategy.label();
        let report = ScenarioRunner::new(scenario)?.run()?;
        println!(
            "{:>16} {:>12.2} {:>12.1} {:>12.1}",
            label,
            report.normalized_mean_response(),
            report.p95_response_seconds() * 1e3,
            report.avg_power_watts()
        );
        reports.push(report);
    }
    println!(
        "\nSleepScale saves {:.0}% power vs race-to-halt and {:.0}% vs DVFS-only",
        100.0 * (1.0 - reports[0].avg_power_watts() / reports[1].avg_power_watts()),
        100.0 * (1.0 - reports[0].avg_power_watts() / reports[2].avg_power_watts()),
    );

    // Hourly policy timeline: what SleepScale chose as the day unfolded
    // (the unified report still carries the backend's native epochs).
    let ss_run = reports[0].run_report().expect("single-server backend");
    println!("\nSleepScale policy timeline (hourly samples):");
    println!(
        "{:>6} {:>8} {:>8} {:>14} {:>10} {:>12}",
        "hour", "rho^", "rho", "state", "f", "P (W)"
    );
    for e in ss_run.epochs().iter().step_by(12) {
        println!(
            "{:>6.1} {:>8.2} {:>8.2} {:>14} {:>10.2} {:>12.1}",
            2.0 + e.start_minute as f64 / 60.0,
            e.predicted_rho,
            e.realized_rho,
            e.program_label,
            e.frequency,
            e.power_watts
        );
    }

    println!("\nselected-state distribution (Figure 10 style):");
    for (label, frac) in ss_run.program_fractions() {
        println!("  {label:<14} {:>5.1}%", frac * 100.0);
    }
    Ok(())
}
