//! A day in the data center: drive SleepScale and the paper's baseline
//! strategies over the synthetic email-store utilization trace with a
//! DNS-like service, 2 AM – 8 PM (the paper's Section 6 evaluation).
//!
//! ```sh
//! cargo run --release --example datacenter_day
//! ```

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    // BigHouse-substitute distributions and the day's ground-truth jobs.
    let dists = WorkloadDistributions::empirical(&spec, 10_000, &mut rng)?;
    let trace = traces::email_store(1, 7).window(120, 1200); // 2 AM – 8 PM
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng)?;
    println!(
        "trace: {} minutes, utilization {:.2}–{:.2} (mean {:.2}); {} jobs",
        trace.len(),
        trace.min(),
        trace.max(),
        trace.mean(),
        jobs.len()
    );

    let env = SimEnv::xeon_cpu_bound();
    let config = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8)?)
        .epoch_minutes(5)
        .eval_jobs(2_000)
        .over_provisioning(0.35)
        .build()?;

    // SleepScale with the paper's LMS+CUSUM predictor.
    let mut ss = SleepScaleStrategy::new(&config, CandidateSet::standard())
        .with_predictor(Box::new(LmsCusum::new(10)));
    let ss_report = run(&trace, &jobs, &mut ss, &env, &config)?;

    // Race-to-halt and DVFS-only baselines.
    let mut r2h = RaceToHaltStrategy::new(presets::C6_S0I);
    let r2h_report = run(&trace, &jobs, &mut r2h, &env, &config)?;
    let mut dvfs = SleepScaleStrategy::new(&config, CandidateSet::dvfs_only())
        .with_predictor(Box::new(LmsCusum::new(10)));
    let dvfs_report = run(&trace, &jobs, &mut dvfs, &env, &config)?;

    println!("\n{:>16} {:>12} {:>12} {:>12}", "strategy", "mu*E[R]", "p95 (ms)", "E[P] (W)");
    for r in [&ss_report, &r2h_report, &dvfs_report] {
        println!(
            "{:>16} {:>12.2} {:>12.1} {:>12.1}",
            r.strategy(),
            r.normalized_mean_response(),
            r.p95_response_seconds() * 1e3,
            r.avg_power_watts()
        );
    }
    println!(
        "\nSleepScale saves {:.0}% power vs race-to-halt and {:.0}% vs DVFS-only",
        100.0 * (1.0 - ss_report.avg_power_watts() / r2h_report.avg_power_watts()),
        100.0 * (1.0 - ss_report.avg_power_watts() / dvfs_report.avg_power_watts()),
    );

    // Hourly policy timeline: what SleepScale chose as the day unfolded.
    println!("\nSleepScale policy timeline (hourly samples):");
    println!(
        "{:>6} {:>8} {:>8} {:>14} {:>10} {:>12}",
        "hour", "rho^", "rho", "state", "f", "P (W)"
    );
    for e in ss_report.epochs().iter().step_by(12) {
        println!(
            "{:>6.1} {:>8.2} {:>8.2} {:>14} {:>10.2} {:>12.1}",
            2.0 + e.start_minute as f64 / 60.0,
            e.predicted_rho,
            e.realized_rho,
            e.program_label,
            e.frequency,
            e.power_watts
        );
    }

    println!("\nselected-state distribution (Figure 10 style):");
    for (label, frac) in ss_report.program_fractions() {
        println!("  {label:<14} {:>5.1}%", frac * 100.0);
    }
    Ok(())
}
