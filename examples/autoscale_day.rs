//! Autoscaled two-class day: the PR-9 control plane parking trailing
//! servers through the email-store trough while class-affinity dispatch
//! keeps interactive and batch traffic on their preferred groups — next
//! to the same day on a fixed, class-blind fleet.
//!
//! ```sh
//! cargo run --release --example autoscale_day
//! ```

use sleepscale_repro::prelude::*;
use sleepscale_repro::sleepscale_scenario::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The catalog pair: identical traffic, fleet shapes, and seeds —
    // only the dispatcher and the autoscaler differ.
    let autoscaled = catalog::autoscale_day();
    let fixed = catalog::autoscale_day_fixed();
    let epoch_minutes = autoscaled.epoch_minutes;
    let start_minute = 120_usize; // the catalog day opens at 2 AM
    let total_servers: usize = autoscaled.fleet.iter().map(|g| g.count).sum();

    println!("running '{}' and '{}' (this takes a minute)...", autoscaled.name, fixed.name);
    let auto_report = ScenarioRunner::new(autoscaled)?.run()?;
    let fixed_report = ScenarioRunner::new(fixed)?.run()?;

    println!(
        "\n{:>24} {:>12} {:>10} {:>8} {:>6}",
        "class", "p95 (ms)", "p95 (xU)", "budget", "QoS"
    );
    for (label, report) in [("autoscaled", &auto_report), ("fixed", &fixed_report)] {
        for class in report.classes() {
            println!(
                "{:>24} {:>12.1} {:>10.2} {:>8} {:>6}",
                format!("{label}/{}", class.name),
                class.p95_response_seconds * 1e3,
                class.normalized_p95,
                class.p95_budget.map_or("-".into(), |b| format!("{b:.0}x")),
                if class.qos_ok { "ok" } else { "MISS" },
            );
        }
    }

    println!(
        "\nenergy: autoscaled {:.1} MJ vs fixed {:.1} MJ ({:+.1}%), {:.0} server-s parked",
        auto_report.energy_joules() / 1e6,
        fixed_report.energy_joules() / 1e6,
        100.0 * (auto_report.energy_joules() / fixed_report.energy_joules() - 1.0),
        auto_report.parked_server_seconds(),
    );

    // The fleet-size trace: one entry per epoch, sampled hourly here.
    // The fixed run's trace is empty by construction — `Autoscaler:
    // None` leaves the engine byte-identical to the pre-PR-9 path.
    let trace = auto_report.fleet_size_trace();
    assert!(fixed_report.fleet_size_trace().is_empty());
    println!("\nfleet size through the day (of {total_servers} servers):");
    println!("{:>6} {:>8}", "hour", "active");
    let per_hour = (60 / epoch_minutes).max(1);
    for (i, active) in trace.iter().enumerate().step_by(per_hour) {
        let hour = (start_minute + i * epoch_minutes) as f64 / 60.0;
        println!("{:>6.1} {:>8}  {}", hour, active, "#".repeat(*active));
    }
    let min_active = trace.iter().min().copied().unwrap_or(0);
    println!(
        "\nthe controller dipped to {min_active} active servers at the trough and \
         restored all {total_servers} for the afternoon peak"
    );
    Ok(())
}
