//! Autoscaled two-class day: the PR-9 control plane parking trailing
//! servers through the email-store trough while class-affinity dispatch
//! keeps interactive and batch traffic on their preferred groups — next
//! to the same day on a fixed, class-blind fleet.
//!
//! ```sh
//! cargo run --release --example autoscale_day
//! ```

use sleepscale_repro::prelude::*;
use sleepscale_repro::sleepscale_scenario::catalog;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The catalog pair: identical traffic, fleet shapes, and seeds —
    // only the dispatcher and the autoscaler differ. Telemetry is armed
    // on the autoscaled run so the controller's park/wake decisions come
    // back as structured events rather than a bare fleet-size curve.
    let mut autoscaled = catalog::autoscale_day();
    autoscaled.telemetry = Some(TelemetrySpec::full());
    let fixed = catalog::autoscale_day_fixed();
    let epoch_minutes = autoscaled.epoch_minutes;
    let start_minute = 120_usize; // the catalog day opens at 2 AM
    let total_servers: usize = autoscaled.fleet.iter().map(|g| g.count).sum();

    println!("running '{}' and '{}' (this takes a minute)...", autoscaled.name, fixed.name);
    let auto_report = ScenarioRunner::new(autoscaled)?.run()?;
    let fixed_report = ScenarioRunner::new(fixed)?.run()?;

    println!(
        "\n{:>24} {:>12} {:>10} {:>8} {:>6}",
        "class", "p95 (ms)", "p95 (xU)", "budget", "QoS"
    );
    for (label, report) in [("autoscaled", &auto_report), ("fixed", &fixed_report)] {
        for class in report.classes() {
            println!(
                "{:>24} {:>12.1} {:>10.2} {:>8} {:>6}",
                format!("{label}/{}", class.name),
                class.p95_response_seconds * 1e3,
                class.normalized_p95,
                class.p95_budget.map_or("-".into(), |b| format!("{b:.0}x")),
                if class.qos_ok { "ok" } else { "MISS" },
            );
        }
    }

    println!(
        "\nenergy: autoscaled {:.1} MJ vs fixed {:.1} MJ ({:+.1}%), {:.0} server-s parked",
        auto_report.energy_joules() / 1e6,
        fixed_report.energy_joules() / 1e6,
        100.0 * (auto_report.energy_joules() / fixed_report.energy_joules() - 1.0),
        auto_report.parked_server_seconds(),
    );

    // The fleet-size trace: one entry per epoch, sampled hourly here.
    // The fixed run's trace is empty by construction — `Autoscaler:
    // None` leaves the engine byte-identical to the pre-PR-9 path.
    let trace = auto_report.fleet_size_trace();
    assert!(fixed_report.fleet_size_trace().is_empty());
    println!("\nfleet size through the day (of {total_servers} servers):");
    println!("{:>6} {:>8}", "hour", "active");
    let per_hour = (60 / epoch_minutes).max(1);
    for (i, active) in trace.iter().enumerate().step_by(per_hour) {
        let hour = (start_minute + i * epoch_minutes) as f64 / 60.0;
        println!("{:>6.1} {:>8}  {}", hour, active, "#".repeat(*active));
    }
    let min_active = trace.iter().min().copied().unwrap_or(0);
    println!(
        "\nthe controller dipped to {min_active} active servers at the trough and \
         restored all {total_servers} for the afternoon peak"
    );

    // The same decisions as structured telemetry (PR 10): every park and
    // wake the controller issued, with the control-law reading that
    // triggered it. The hours line up with the fleet-size dips above.
    let telemetry = auto_report.telemetry().expect("telemetry was armed on the autoscaled run");
    println!("\nautoscaler event log ({} park/wake events):", telemetry.scale_events().count());
    println!("{:>6} {:>7} {:>7}  reason", "hour", "action", "server");
    for event in telemetry.scale_events() {
        let (at, action, server, cause) = match event {
            TraceEvent::Park { server, at, cause } => (at, "park", server, cause),
            TraceEvent::Unpark { server, at, cause } => (at, "wake", server, cause),
            _ => unreachable!("scale_events yields only park/unpark"),
        };
        let hour = (start_minute as f64 + at / 60.0) / 60.0;
        println!("{hour:>6.1} {action:>7} {server:>7}  {}", cause.describe());
    }
    Ok(())
}
