//! Capacity planning: how the peak-design utilization `ρ_b` (the SLA
//! knob) trades response-time budget against achievable power, and how
//! the answer changes on an Atom-class machine (the paper's Section 4.2
//! remark: small CPUs with big platforms prefer racing and sleeping).
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = WorkloadSpec::dns();
    let rho = 0.2;
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let jobs = generator::generate_poisson_exp(15_000, rho, spec.service_mean(), &mut rng)?;

    for (machine, env) in [
        ("Xeon-class", SimEnv::xeon_cpu_bound()),
        ("Atom-class", SimEnv::new(presets::atom(), FrequencyScaling::CpuBound)),
    ] {
        println!("== {machine} server, DNS-like workload at rho = {rho} ==");
        println!(
            "{:>6} {:>10} {:>24} {:>10} {:>12}",
            "rho_b", "budget", "selected policy", "f", "E[P] (W)"
        );
        for rho_b in [0.5, 0.6, 0.7, 0.8, 0.9] {
            let manager = PolicyManager::new(
                env.clone(),
                QosConstraint::mean_response(rho_b)?,
                CandidateSet::standard(),
                spec.service_mean(),
                5_000,
            )?;
            let s = manager.select_from_stream(&jobs, rho);
            println!(
                "{:>6.1} {:>10.2} {:>24} {:>10.2} {:>12.1}",
                rho_b,
                1.0 / (1.0 - rho_b),
                s.policy.program().label(),
                s.policy.frequency().get(),
                s.predicted_power
            );
        }
        println!();
    }

    println!(
        "Reading: looser SLAs (higher rho_b) buy lower power; on the Atom-class\n\
         machine the CPU is a small fraction of total power, so the manager\n\
         prefers higher frequencies + deep sleep (race-and-sleep) over slow\n\
         clocks — the paper's Atom observation."
    );
    Ok(())
}
