//! Capacity planning: how the peak-design utilization `ρ_b` (the SLA
//! knob) trades response-time budget against achievable power, and how
//! the answer changes on an Atom-class machine (the paper's Section 4.2
//! remark: small CPUs with big platforms prefer racing and sleeping).
//!
//! Every cell of the sweep is the same declarative `Scenario` with the
//! QoS constraint and machine class overridden — the runner drives the
//! full closed loop (predictor, log replay, pruned search) per cell.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use sleepscale_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rho = 0.2;
    let base = Scenario {
        eval_jobs: 1_000,
        seed: 5,
        ..Scenario::new(
            "capacity-planning",
            WorkloadSource::Dns,
            LoadSchedule::Constant { rho, minutes: 60 },
        )
    };

    for (machine, env) in [
        ("Xeon-class", SimEnv::xeon_cpu_bound()),
        ("Atom-class", SimEnv::new(presets::atom(), FrequencyScaling::CpuBound)),
    ] {
        println!("== {machine} server, DNS-like workload at rho = {rho} ==");
        println!(
            "{:>6} {:>10} {:>20} {:>12} {:>12}",
            "rho_b", "budget", "dominant program", "mu*E[R]", "E[P] (W)"
        );
        for rho_b in [0.5, 0.6, 0.7, 0.8, 0.9] {
            let mut scenario = base.clone();
            scenario.fleet[0].env = env.clone();
            scenario.fleet[0].qos = QosConstraint::mean_response(rho_b)?;
            let report = ScenarioRunner::new(scenario)?.run()?;
            let run = report.run_report().expect("single-server backend");
            let (program, fraction) = run.program_fractions().remove(0);
            println!(
                "{:>6.1} {:>10.2} {:>14} ({:>2.0}%) {:>12.2} {:>12.1}",
                rho_b,
                1.0 / (1.0 - rho_b),
                program,
                fraction * 100.0,
                report.normalized_mean_response(),
                report.avg_power_watts()
            );
        }
        println!();
    }

    println!(
        "Reading: looser SLAs (higher rho_b) buy lower power; on the Atom-class\n\
         machine the CPU is a small fraction of total power, so the manager\n\
         prefers higher frequencies + deep sleep (race-and-sleep) over slow\n\
         clocks — the paper's Atom observation."
    );
    Ok(())
}
