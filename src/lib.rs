//! Meta-crate for the SleepScale reproduction workspace.
//!
//! This package exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests under `tests/`. It re-exports every
//! workspace crate under one roof so examples can write
//! `use sleepscale_repro::prelude::*;`.
//!
//! The actual library code lives in the `crates/` members:
//!
//! * [`sleepscale_power`] — CPU/platform power-state models (paper §3.1).
//! * [`sleepscale_dist`] — random-variate library and moment fitting.
//! * [`sleepscale_sim`] — the FCFS queueing simulator (paper Algorithm 1).
//! * [`sleepscale_analytic`] — closed-form M/M/1-with-sleep results (appendix).
//! * [`sleepscale_workloads`] — Table-5 workloads, utilization traces, replay.
//! * [`sleepscale_traffic`] — class-tagged traffic: multi-class job streams
//!   drawn per component, burst/diurnal arrival modulators, CSV arrival logs.
//! * [`sleepscale_predict`] — utilization predictors (paper Algorithm 2).
//! * [`sleepscale`] — the policy manager, runtime, and baseline strategies.
//! * [`sleepscale_cluster`] — multi-server scale-out behind pluggable
//!   dispatchers (paper §7 future work), with heterogeneous server groups.
//! * [`sleepscale_autoscale`] — the fleet control plane: the closed-loop
//!   autoscaler's control law, spec, and snapshotable controller state.
//! * [`sleepscale_telemetry`] — deterministic structured event tracing,
//!   trace sinks, and the worker-invariant metrics registry.
//! * [`sleepscale_scenario`] — the unified declarative Scenario API: one
//!   entry point over the runtime, analytic, and cluster backends.

pub use sleepscale;
pub use sleepscale_analytic;
pub use sleepscale_autoscale;
pub use sleepscale_cluster;
pub use sleepscale_dist;
pub use sleepscale_power;
pub use sleepscale_predict;
pub use sleepscale_scenario;
pub use sleepscale_sim;
pub use sleepscale_telemetry;
pub use sleepscale_traffic;
pub use sleepscale_workloads;

/// Convenience re-exports for examples and tests.
pub mod prelude {
    pub use sleepscale::prelude::*;
    pub use sleepscale_analytic as analytic;
    pub use sleepscale_analytic::{AnalyticOutcome, MG1Sleep, MM1Sleep, PolicyAnalyzer};
    pub use sleepscale_autoscale as autoscale;
    pub use sleepscale_cluster as cluster;
    pub use sleepscale_cluster::{ClusterConfig, ClusterReport, GroupSummary, ServerGroup};
    pub use sleepscale_dist::prelude::*;
    pub use sleepscale_power::prelude::*;
    pub use sleepscale_predict::prelude::*;
    pub use sleepscale_scenario::prelude::*;
    pub use sleepscale_sim::prelude::*;
    pub use sleepscale_telemetry as telemetry;
    pub use sleepscale_telemetry::{
        MemorySink, MetricsRegistry, ScaleCause, TelemetryReport, TelemetrySpec, TraceEvent,
        TraceSink,
    };
    pub use sleepscale_traffic::prelude::*;
    pub use sleepscale_workloads::prelude::*;
}
