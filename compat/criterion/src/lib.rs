//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a minimal harness with the same surface: [`Criterion`],
//! benchmark groups with [`Throughput`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It really measures — a short warm-up then a fixed measurement
//! budget, reporting mean ns/iter (and element throughput when
//! declared) — but does no statistical analysis, outlier rejection, or
//! HTML reporting. Swapping the real `criterion` back in later is a
//! manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration workload, used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; the stand-in re-runs setup per batch regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// The timing loop handed to each benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a warm-up pass and a measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up
        let budget = Duration::from_millis(300);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let budget = Duration::from_millis(300);
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < budget {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = measured;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{id:<40} (no iterations)");
            return;
        }
        let ns = self.elapsed.as_nanos() as f64 / self.iters as f64;
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / (ns / 1e9);
                println!("{id:<40} {ns:>14.0} ns/iter {per_sec:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let per_sec = n as f64 / (ns / 1e9);
                println!("{id:<40} {ns:>14.0} ns/iter {per_sec:>14.0} B/s");
            }
            None => println!("{id:<40} {ns:>14.0} ns/iter"),
        }
    }
}

/// The top-level benchmark harness.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher::default();
    f(&mut b);
    b.report(id, throughput);
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into()), self.throughput, f);
        self
    }

    /// Finishes the group (reporting is immediate in the stand-in).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a callable group, mirroring
/// upstream's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each group, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| {
            b.iter_batched(|| vec![1u64, 2, 3, 4], |v| v.iter().sum::<u64>(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
