//! The derive macros must keep compiling on the item shapes the
//! workspace actually uses: plain structs, tuple/unit/enum variants,
//! `Default`-deriving structs, and (for forward-compatibility) generics.

#![allow(dead_code)] // compile-time shapes; fields are never read

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
struct Plain {
    x: f64,
    ys: Vec<(u64, f64)>,
    opt: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
enum Kind {
    A,
    B(f64),
    C { v: usize },
}

#[derive(Debug, Serialize, Deserialize)]
struct Generic<T> {
    inner: Vec<T>,
}

#[derive(Debug, Serialize, Deserialize)]
pub struct Tuple(pub f64, pub u64);

fn assert_round_trippable<T: Serialize + for<'de> Deserialize<'de>>() {}

#[test]
fn derives_produce_marker_impls() {
    assert_round_trippable::<Plain>();
    assert_round_trippable::<Kind>();
    assert_round_trippable::<Tuple>();
    assert_round_trippable::<Generic<f64>>();
    assert_round_trippable::<Option<Vec<f64>>>();
}
