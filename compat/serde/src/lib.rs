//! Offline stand-in for the `serde` marker surface this workspace uses.
//!
//! The workspace derives `Serialize`/`Deserialize` on its archivable
//! types but — per DESIGN.md §7 — ships no serialization format crate,
//! so the derives are exercised purely at compile time. This stand-in
//! keeps that contract checkable without crates.io access: the traits
//! are structural markers (the derive macros verify the annotated item
//! parses and emit marker impls), and swapping the real `serde` back in
//! later is a manifest-only change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that can be serialized.
///
/// Upstream `serde` drives a `Serializer` through this trait; the
/// offline stand-in only records the capability.
pub trait Serialize {}

/// Marker for types that can be deserialized from borrowed data with
/// lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_primitives {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_primitives!(
    bool, char, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, String
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
}
