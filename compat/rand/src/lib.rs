//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, self-contained implementation of the `rand` surface
//! its crates import: [`RngCore`], [`Rng`] (`gen`, `gen_range`),
//! [`SeedableRng`] (`seed_from_u64`), and [`rngs::StdRng`]. The
//! generator behind `StdRng` is xoshiro256++ seeded through SplitMix64 —
//! a high-quality, deterministic PRNG; streams are reproducible for a
//! given seed but do **not** match upstream `rand`'s byte streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// A value that can be sampled uniformly from an RNG's raw bits
/// (the `Standard` distribution in upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // Compute the span in the unsigned twin so wide signed
                // ranges (e.g. i32::MIN..i32::MAX) cannot overflow.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                // Modulo bias is negligible for the small spans used here.
                self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
            }
        }
    )*};
}

int_sample_range!(usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8, i64 => u64, i32 => u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// An RNG that can be reproducibly seeded.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it through
    /// SplitMix64. Deterministic per seed, but upstream `rand` uses a
    /// different expansion, so streams do not match it (see the crate
    /// docs).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna 2019).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words, for journaling. Together
        /// with [`StdRng::from_state_words`] this round-trips the
        /// generator exactly: a restored generator continues the draw
        /// stream from where the snapshot was taken.
        pub fn state_words(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from previously captured state words.
        ///
        /// Unlike [`SeedableRng::from_seed`] this performs no all-zero
        /// nudge: an in-flight generator can never reach the all-zero
        /// state (it is a fixed point the seeding path already avoids),
        /// so captured words are restored verbatim.
        pub fn from_state_words(s: [u64; 4]) -> StdRng {
            StdRng { s }
        }

        fn step(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // A xoshiro all-zero state is a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    // Marker-serializable (DESIGN.md §7): the state words are exposed
    // via `state_words`/`from_state_words`, so any realized format can
    // round-trip the generator.
    impl serde::Serialize for StdRng {}
    impl<'de> serde::Deserialize<'de> for StdRng {}
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_covers_integer_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_handles_wide_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut saw_negative = false;
        let mut saw_positive = false;
        for _ in 0..200 {
            let v = rng.gen_range(i32::MIN..i32::MAX);
            saw_negative |= v < 0;
            saw_positive |= v > 0;
            let w = rng.gen_range(-2_000_000_000i64..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&w));
        }
        assert!(saw_negative && saw_positive);
    }

    #[test]
    fn dyn_rng_core_works_through_reborrows() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let a = dyn_rng.next_u64();
        let b = dyn_rng.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn state_words_round_trip_continues_draw_stream() {
        let mut rng = StdRng::seed_from_u64(1234);
        // Burn an arbitrary prefix so the captured state is mid-stream.
        for _ in 0..37 {
            rng.next_u64();
        }
        let words = rng.state_words();
        let mut restored = StdRng::from_state_words(words);
        assert_eq!(restored, rng);
        // The restored generator continues the exact draw stream —
        // including the f64 path the simulators sample through.
        for _ in 0..256 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
        let a: f64 = restored.gen();
        let b: f64 = rng.gen();
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn fill_bytes_fills_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
