//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small property-testing harness with the same surface its
//! tests import: the [`proptest!`] macro (with an optional
//! `#![proptest_config(..)]` header), [`prop_assert!`] /
//! [`prop_assert_eq!`], range strategies, [`Strategy::prop_map`], and
//! [`collection::vec`].
//!
//! Differences from upstream: cases are drawn uniformly from their
//! strategies with a seed derived deterministically from the test name
//! (no persistent failure file), and failing cases are reported but not
//! shrunk. Each failure prints the case number, generated inputs, and
//! the assertion message, which is enough to reproduce: the same test
//! name always replays the same sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and the built-in strategies for ranges and maps.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of generated values for property tests.
    pub trait Strategy {
        /// The type of the generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f` (upstream's `prop_map`).
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    // Span via the unsigned twin so wide signed ranges
                    // cannot overflow.
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $u as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer strategy range");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    let off = if span == u64::MAX {
                        rng.next_u64()
                    } else {
                        rng.next_u64() % (span + 1)
                    };
                    lo.wrapping_add(off as $u as $t)
                }
            }
        )*};
    }

    int_range_strategy!(usize => usize, u64 => u64, u32 => u32, u16 => u16, u8 => u8, i64 => u64, i32 => u32);

    /// A strategy that always yields a clone of one value (upstream's
    /// `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0);
    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A strategy producing `Vec`s with lengths drawn from `size` and
    /// elements drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors (upstream's `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec-length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner configuration, RNG, and failure plumbing.
pub mod test_runner {
    use std::fmt;

    /// How many cases each property runs, mirroring upstream's field of
    /// the same name.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            // Upstream defaults to 256; the workspace's undecorated
            // properties are cheap arithmetic checks, so match it.
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator behind strategy sampling
    /// (SplitMix64; seeded from the test name).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's name so every run of a
        /// given property replays the same case sequence.
        pub fn deterministic(test_name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed property case (carried by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Wraps a failure message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained property function over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn my_property(x in 0.0f64..1.0, n in 0usize..5) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )*
                let __inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!(stringify!($arg), " = "));
                        s.push_str(&format!("{:?}, ", $arg));
                    )*
                    s
                };
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "property `{}` failed at case #{}\n  inputs: {}\n  {}",
                        stringify!($name),
                        __case,
                        __inputs,
                        e
                    );
                }
            }
        }
    )*};
}

/// `assert!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// `assert_ne!` that reports through the property harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (0.25f64..0.75).generate(&mut rng);
            assert!((0.25..0.75).contains(&x));
            let n = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&n));
            let m = (0.0f64..=1.0).generate(&mut rng);
            assert!((0.0..=1.0).contains(&m));
        }
    }

    #[test]
    fn prop_map_and_vec_compose() {
        let mut rng = TestRng::deterministic("prop_map_and_vec_compose");
        let doubled = (1u64..10).prop_map(|v| v * 2);
        for _ in 0..100 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let vecs = crate::collection::vec(0.0f64..1.0, 1..5);
        for _ in 0..100 {
            let v = vecs.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn seeding_is_stable_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated args are in range and
        /// prop_assert works.
        #[test]
        fn macro_generates_cases(x in 0.0f64..1.0, n in 1usize..4) {
            prop_assert!((0.0..1.0).contains(&x), "x out of range: {x}");
            prop_assert!((1..4).contains(&n));
            prop_assert_eq!(n * 2 / 2, n);
        }
    }

    proptest! {
        /// Default config path (no header).
        #[test]
        fn default_config_runs(v in 0u64..100) {
            prop_assert!(v < 100);
        }
    }
}
