//! Derive macros for the offline `serde` stand-in.
//!
//! The real `serde_derive` generates full visitor-based
//! (de)serialization code; this stand-in emits marker-trait impls so
//! `#[derive(Serialize, Deserialize)]` keeps compiling (and keeps
//! asserting the item is well-formed) without crates.io access. It
//! parses just enough of the item — name and generic parameters — to
//! emit a correctly-bounded impl, without `syn`/`quote`.

#![warn(missing_docs)]

use proc_macro::{TokenStream, TokenTree};

/// The name and generic parameter idents of a `struct`/`enum` item.
struct ItemShape {
    name: String,
    lifetimes: Vec<String>,
    types: Vec<String>,
}

/// Extracts the item name and its generic parameters from the token
/// stream of a `struct` or `enum` definition.
fn parse_shape(input: TokenStream) -> ItemShape {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        let TokenTree::Ident(id) = &tt else { continue };
        let kw = id.to_string();
        if kw != "struct" && kw != "enum" {
            continue;
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            panic!("expected an identifier after `{kw}`");
        };
        let mut shape =
            ItemShape { name: name.to_string(), lifetimes: Vec::new(), types: Vec::new() };
        // Collect top-level generic parameters, if any: `<` ... `>`.
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '<' {
                iter.next();
                let mut depth = 1usize;
                let mut at_param_start = true;
                let mut pending_lifetime = false;
                for tt in iter.by_ref() {
                    match &tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                            at_param_start = true;
                        }
                        TokenTree::Punct(p) if p.as_char() == '\'' && depth == 1 => {
                            pending_lifetime = at_param_start;
                        }
                        TokenTree::Ident(id) if depth == 1 && at_param_start => {
                            let s = id.to_string();
                            if pending_lifetime {
                                shape.lifetimes.push(format!("'{s}"));
                                pending_lifetime = false;
                            } else if s != "const" {
                                shape.types.push(s);
                            }
                            at_param_start = false;
                        }
                        _ => {}
                    }
                }
            }
        }
        return shape;
    }
    panic!("serde derive stand-in: expected a `struct` or `enum` item");
}

fn generics_decl(extra: Option<&str>, shape: &ItemShape, bound: &str) -> (String, String) {
    let mut params: Vec<String> = Vec::new();
    if let Some(lt) = extra {
        params.push(lt.to_string());
    }
    params.extend(shape.lifetimes.iter().cloned());
    params.extend(shape.types.iter().map(|t| format!("{t}: {bound}")));
    let decl = if params.is_empty() { String::new() } else { format!("<{}>", params.join(", ")) };
    let mut args: Vec<String> = shape.lifetimes.clone();
    args.extend(shape.types.iter().cloned());
    let args = if args.is_empty() { String::new() } else { format!("<{}>", args.join(", ")) };
    (decl, args)
}

/// Derives the offline `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let (decl, args) = generics_decl(None, &shape, "::serde::Serialize");
    format!("impl{decl} ::serde::Serialize for {}{args} {{}}", shape.name)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the offline `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let (decl, args) = generics_decl(Some("'de"), &shape, "::serde::Deserialize<'de>");
    format!("impl{decl} ::serde::Deserialize<'de> for {}{args} {{}}", shape.name)
        .parse()
        .expect("generated Deserialize impl parses")
}
