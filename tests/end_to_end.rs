//! Cross-crate integration: the full pipeline from trace synthesis
//! through replay, runtime policy management, and reporting.

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

fn day(
    hours: usize,
    seed: u64,
) -> (UtilizationTrace, sleepscale_repro::sleepscale_sim::JobStream, WorkloadSpec) {
    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dists = WorkloadDistributions::empirical(&spec, 8_000, &mut rng).unwrap();
    let trace = traces::email_store(1, 7).window(480, 480 + hours * 60);
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
    (trace, jobs, spec)
}

fn config(spec: &WorkloadSpec, alpha: f64) -> RuntimeConfig {
    RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).unwrap())
        .epoch_minutes(5)
        .eval_jobs(600)
        .over_provisioning(alpha)
        .build()
        .unwrap()
}

#[test]
fn sleepscale_full_loop_produces_consistent_report() {
    let (trace, jobs, spec) = day(3, 31);
    let cfg = config(&spec, 0.35);
    let env = SimEnv::xeon_cpu_bound();
    let mut ss = SleepScaleStrategy::new(&cfg, CandidateSet::standard())
        .with_predictor(Box::new(LmsCusum::new(10)));
    let report = run(&trace, &jobs, &mut ss, &env, &cfg).unwrap();

    // Shape.
    assert_eq!(report.epochs().len(), trace.len().div_ceil(5));
    assert_eq!(report.total_jobs(), jobs.len());

    // Energy bookkeeping: per-epoch powers integrate back to the total
    // (modulo the tail segment past the last epoch boundary).
    let epoch_energy: f64 = report.epochs().iter().map(|e| e.power_watts * 300.0).sum();
    assert!(
        (epoch_energy - report.energy_joules()).abs() / report.energy_joules() < 0.02,
        "epoch energies {epoch_energy:.0} J vs total {:.0} J",
        report.energy_joules()
    );

    // Power must sit strictly between the deepest-sleep floor and the
    // flat-out ceiling.
    assert!(report.avg_power_watts() > 28.1);
    assert!(report.avg_power_watts() < 250.0);

    // Every epoch deployed a frequency that can keep up with its
    // prediction under CPU-bound scaling.
    for e in report.epochs() {
        assert!(e.frequency > 0.0 && e.frequency <= 1.0);
        assert!(e.mean_response >= 0.0);
    }

    // The histogram accounts for every epoch.
    let counted: usize = report.program_histogram().iter().map(|(_, n)| n).sum();
    assert_eq!(counted, report.epochs().len());
}

#[test]
fn strategy_ordering_matches_the_paper() {
    // Figure 9's ordering on a shorter window: SS uses the least power;
    // R2H keeps the fastest responses; DVFS-only burns the most power.
    let (trace, jobs, spec) = day(3, 32);
    let cfg = config(&spec, 0.35);
    let env = SimEnv::xeon_cpu_bound();

    let mut ss = SleepScaleStrategy::new(&cfg, CandidateSet::standard());
    let ss_r = run(&trace, &jobs, &mut ss, &env, &cfg).unwrap();
    let mut ss_c3 = SleepScaleStrategy::new(&cfg, CandidateSet::single_state(SystemState::C3_S0I));
    let c3_r = run(&trace, &jobs, &mut ss_c3, &env, &cfg).unwrap();
    let mut dvfs = SleepScaleStrategy::new(&cfg, CandidateSet::dvfs_only());
    let dvfs_r = run(&trace, &jobs, &mut dvfs, &env, &cfg).unwrap();
    let mut r2h = RaceToHaltStrategy::new(presets::C6_S0I);
    let r2h_r = run(&trace, &jobs, &mut r2h, &env, &cfg).unwrap();

    assert!(ss_r.avg_power_watts() <= c3_r.avg_power_watts() + 1e-9);
    assert!(ss_r.avg_power_watts() < dvfs_r.avg_power_watts());
    assert!(ss_r.avg_power_watts() < r2h_r.avg_power_watts());
    assert!(r2h_r.normalized_mean_response() < ss_r.normalized_mean_response());
}

#[test]
fn over_provisioning_trades_power_for_response() {
    let (trace, jobs, spec) = day(3, 33);
    let env = SimEnv::xeon_cpu_bound();
    let cfg0 = config(&spec, 0.0);
    let mut s0 = SleepScaleStrategy::new(&cfg0, CandidateSet::standard());
    let r0 = run(&trace, &jobs, &mut s0, &env, &cfg0).unwrap();
    let cfg35 = config(&spec, 0.35);
    let mut s35 = SleepScaleStrategy::new(&cfg35, CandidateSet::standard());
    let r35 = run(&trace, &jobs, &mut s35, &env, &cfg35).unwrap();
    // The guard band cannot make responses worse, and costs some power.
    assert!(
        r35.normalized_mean_response() <= r0.normalized_mean_response() + 0.3,
        "alpha=0.35 {} vs alpha=0 {}",
        r35.normalized_mean_response(),
        r0.normalized_mean_response()
    );
    assert!(r35.avg_power_watts() >= r0.avg_power_watts() - 1.0);
}

#[test]
fn tail_qos_selects_more_conservative_policies() {
    let (trace, jobs, spec) = day(2, 34);
    let env = SimEnv::xeon_cpu_bound();
    let mean_cfg = config(&spec, 0.0);
    let tail_cfg = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::p95(0.8).unwrap())
        .epoch_minutes(5)
        .eval_jobs(600)
        .build()
        .unwrap();
    let mut mean_s = SleepScaleStrategy::new(&mean_cfg, CandidateSet::standard());
    let mean_r = run(&trace, &jobs, &mut mean_s, &env, &mean_cfg).unwrap();
    let mut tail_s = SleepScaleStrategy::new(&tail_cfg, CandidateSet::standard());
    let tail_r = run(&trace, &jobs, &mut tail_s, &env, &tail_cfg).unwrap();
    // Both complete and produce sane reports; the tail-constrained run
    // must control p95.
    assert!(tail_r.p95_response_seconds() > 0.0);
    assert!(mean_r.total_jobs() == tail_r.total_jobs());
}

#[test]
fn google_workload_day_runs_at_scale() {
    // Millions of sub-millisecond jobs: exercises the engine's
    // performance path and the manager on a fine-grained service.
    let spec = WorkloadSpec::google();
    let mut rng = rand::rngs::StdRng::seed_from_u64(35);
    let dists = WorkloadDistributions::empirical(&spec, 8_000, &mut rng).unwrap();
    let trace = traces::email_store(1, 7).window(480, 540); // one hour
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
    assert!(jobs.len() > 100_000, "Google-scale stream: {} jobs", jobs.len());
    let cfg = config(&spec, 0.35);
    let env = SimEnv::xeon_cpu_bound();
    let mut ss = SleepScaleStrategy::new(&cfg, CandidateSet::standard());
    let report = run(&trace, &jobs, &mut ss, &env, &cfg).unwrap();
    assert_eq!(report.total_jobs(), jobs.len());
    assert!(report.normalized_mean_response() < 20.0);
}
