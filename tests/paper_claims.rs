//! The paper's six engineering lessons (Section 4.2) and headline
//! claims, verified across crates.

use rand::SeedableRng;
use sleepscale_repro::prelude::*;
use sleepscale_repro::sleepscale_analytic::PolicyAnalyzer;

fn stream(spec: &WorkloadSpec, rho: f64, seed: u64) -> sleepscale_repro::sleepscale_sim::JobStream {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    generator::generate_poisson_exp(20_000, rho, spec.service_mean(), &mut rng).unwrap()
}

fn best_policy(
    jobs: &sleepscale_repro::sleepscale_sim::JobStream,
    rho: f64,
    _mean_service: f64,
) -> (Policy, f64) {
    let env = SimEnv::xeon_cpu_bound();
    let grid = FrequencyGrid::new((rho + 0.05).min(1.0), 1.0, 0.05).unwrap();
    let programs = presets::standard_programs();
    sweep::grid_sweep(jobs, &programs, &grid, &env)
        .into_iter()
        .map(|e| {
            let w = e.outcome.avg_power().as_watts();
            (e.policy, w)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap()
        .clone()
}

/// Lesson 1: there exists an optimal *joint* choice of frequency and
/// low-power state — neither f = 1 nor the lowest stable f is optimal.
#[test]
fn lesson1_joint_optimum_is_interior() {
    let spec = WorkloadSpec::dns();
    let jobs = stream(&spec, 0.1, 1);
    let (policy, watts) = best_policy(&jobs, 0.1, spec.service_mean());
    assert!(policy.frequency().get() < 0.95, "optimal f = {}", policy.frequency());
    assert!(policy.frequency().get() > 0.15);
    assert!(watts < 100.0, "joint optimum {watts:.1} W");
}

/// Lesson 2: at low utilization the best state depends on the response
/// budget — tight budgets pick deeper-but-fast policies, loose budgets
/// migrate through the state ladder.
#[test]
fn lesson2_best_state_depends_on_budget() {
    let spec = WorkloadSpec::dns();
    let rho = 0.1;
    let jobs = stream(&spec, rho, 2);
    let env = SimEnv::xeon_cpu_bound();
    let grid = FrequencyGrid::new(0.15, 1.0, 0.05).unwrap();
    let evals = sweep::grid_sweep(&jobs, &presets::standard_programs(), &grid, &env);
    let best_for = |budget: f64| -> String {
        evals
            .iter()
            .filter(|e| e.outcome.normalized_mean_response(spec.service_mean()) <= budget)
            .min_by(|a, b| a.outcome.avg_power().partial_cmp(&b.outcome.avg_power()).unwrap())
            .map(|e| e.policy.program().label())
            .unwrap_or_default()
    };
    let tight = best_for(1.5);
    let loose = best_for(50.0);
    assert_ne!(tight, loose, "different budgets should pick different states");
    // The loosest budget admits the global optimum: deep platform sleep.
    assert_eq!(loose, "C6S3");
}

/// Lesson 3: the best state depends on job size (Figure 2's claim,
/// verified at high utilization through the whole stack).
#[test]
fn lesson3_best_state_depends_on_job_size() {
    let dns = WorkloadSpec::dns();
    let google = WorkloadSpec::google();
    let (dns_policy, _) = best_policy(&stream(&dns, 0.7, 3), 0.7, dns.service_mean());
    let (google_policy, _) = best_policy(&stream(&google, 0.7, 4), 0.7, google.service_mean());
    assert_eq!(dns_policy.program().label(), "C6S0(i)");
    assert_eq!(google_policy.program().label(), "C3S0(i)");
}

/// Lesson 5: the sequential five-state cascade is conservative — never
/// meaningfully better than the best single state, and wasteful at low
/// utilization.
#[test]
fn lesson5_sequential_cascade_is_conservative() {
    let spec = WorkloadSpec::dns();
    let rho = 0.1;
    let jobs = stream(&spec, rho, 5);
    let env = SimEnv::xeon_cpu_bound();
    let grid = FrequencyGrid::new(0.15, 1.0, 0.05).unwrap();
    let single_best = sweep::grid_sweep(&jobs, &presets::standard_programs(), &grid, &env)
        .into_iter()
        .map(|e| e.outcome.avg_power().as_watts())
        .fold(f64::INFINITY, f64::min);
    let cascade = presets::sequential_cascade(0.05);
    let cascade_best = sweep::frequency_sweep(&jobs, &cascade, &grid, &env)
        .into_iter()
        .map(|e| e.outcome.avg_power().as_watts())
        .fold(f64::INFINITY, f64::min);
    assert!(
        cascade_best >= single_best - 0.5,
        "cascade {cascade_best:.1} W should not beat the best single state {single_best:.1} W"
    );
}

/// Lesson 6: service-time/frequency coupling matters — the memory-bound
/// optimum is the lowest stable frequency.
#[test]
fn lesson6_memory_bound_prefers_lowest_frequency() {
    let spec = WorkloadSpec::dns();
    let jobs = stream(&spec, 0.1, 6);
    let env = SimEnv::xeon_cpu_bound().with_scaling(FrequencyScaling::MemoryBound);
    let grid = FrequencyGrid::new(0.15, 1.0, 0.05).unwrap();
    let evals =
        sweep::frequency_sweep(&jobs, &SleepProgram::immediate(presets::C6_S3), &grid, &env);
    let best = evals
        .iter()
        .min_by(|a, b| a.outcome.avg_power().partial_cmp(&b.outcome.avg_power()).unwrap())
        .unwrap();
    assert!((best.policy.frequency().get() - 0.15).abs() < 1e-9);
}

/// Section 5.1.2 observation 1: no one-size-fits-all policy — across
/// (workload, utilization) cells, at least three distinct states win.
#[test]
fn no_one_size_fits_all() {
    let mut winners = std::collections::BTreeSet::new();
    for (spec, seed) in [(WorkloadSpec::dns(), 7), (WorkloadSpec::google(), 8)] {
        for rho in [0.1, 0.7] {
            let (policy, _) = best_policy(&stream(&spec, rho, seed), rho, spec.service_mean());
            winners.insert(policy.program().label());
        }
    }
    assert!(winners.len() >= 3, "winning states: {winners:?}");
}

/// Section 4.3: the idealized closed form and the simulator agree on the
/// QoS-constrained optimum's location for an M/M/1 workload.
#[test]
fn idealized_optimizer_matches_simulated_selection() {
    let spec = WorkloadSpec::dns();
    let rho = 0.2;
    let jobs = stream(&spec, rho, 9);
    let env = SimEnv::xeon_cpu_bound();
    let power = presets::xeon();
    let grid = FrequencyGrid::new(0.25, 1.0, 0.05).unwrap();
    let programs = presets::standard_programs();
    let budget = 5.0;

    let analyzer =
        PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, spec.mu(), rho)
            .unwrap();
    let (ana_policy, _) = analyzer.min_power_policy(&programs, &grid, budget).unwrap();

    let sim_best = sweep::grid_sweep(&jobs, &programs, &grid, &env)
        .into_iter()
        .filter(|e| e.outcome.normalized_mean_response(spec.service_mean()) <= budget)
        .min_by(|a, b| a.outcome.avg_power().partial_cmp(&b.outcome.avg_power()).unwrap())
        .unwrap();

    assert_eq!(
        ana_policy.program().label(),
        sim_best.policy.program().label(),
        "closed form and simulation pick the same state"
    );
    assert!(
        (ana_policy.frequency().get() - sim_best.policy.frequency().get()).abs() < 0.11,
        "frequencies near-agree: analytic {} vs simulated {}",
        ana_policy.frequency(),
        sim_best.policy.frequency()
    );
}
