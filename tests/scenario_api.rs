//! Scenario-API equivalence suite: the declarative `ScenarioRunner`
//! must be a *pure re-wiring* of the hand-written experiment setup —
//! byte-identical reports, not merely statistically similar ones. If
//! these tests fail, the unified entry point silently changed what an
//! experiment means.

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

/// The DNS-day recipe, shortened to a two-hour window for test budget:
/// the scenario form and the direct `runtime::run` wiring must produce
/// byte-identical `RunReport`s.
#[test]
fn scenario_runner_reproduces_direct_runtime_wiring() {
    let scenario = Scenario {
        eval_jobs: 400,
        dist_samples: 5_000,
        seed: 7,
        ..Scenario::new(
            "dns-day-equivalence",
            WorkloadSource::Dns,
            LoadSchedule::EmailStoreDay { seed: 7, start_minute: 120, end_minute: 240 },
        )
    };
    let via_scenario = ScenarioRunner::new(scenario).unwrap().run().unwrap();

    // The hand-written wiring, exactly as the pre-scenario examples
    // spelled it: one rng seeds distribution synthesis then replay.
    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let dists = WorkloadDistributions::empirical(&spec, 5_000, &mut rng).unwrap();
    let trace = traces::email_store(1, 7).window(120, 240);
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
    let config = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).unwrap())
        .epoch_minutes(5)
        .eval_jobs(400)
        .build()
        .unwrap();
    let mut strategy = SleepScaleStrategy::new(&config, CandidateSet::standard());
    let direct = run(&trace, &jobs, &mut strategy, config.env(), &config).unwrap();

    assert_eq!(
        via_scenario.run_report(),
        Some(&direct),
        "the scenario runner must reproduce the direct wiring byte for byte"
    );
    assert_eq!(via_scenario.total_jobs(), direct.total_jobs());
    assert_eq!(via_scenario.backend(), Backend::SingleServer);
}

/// The fleet path: a homogeneous cluster scenario and the direct
/// `Cluster::run` wiring over the same materialized inputs must
/// produce byte-identical `ClusterReport`s.
#[test]
fn scenario_runner_reproduces_direct_cluster_wiring() {
    use cluster::{Cluster, JoinShortestBacklog};

    let n = 4;
    let mut scenario = Scenario {
        eval_jobs: 250,
        dist_samples: 4_000,
        seed: 90,
        dispatcher: DispatcherSpec::JoinShortestBacklog,
        ..Scenario::new(
            "fleet-equivalence",
            WorkloadSource::Dns,
            LoadSchedule::EmailStoreDay { seed: 7, start_minute: 540, end_minute: 600 },
        )
    };
    scenario.fleet = vec![ServerGroup::new("fleet", n, StrategySpec::sleepscale())];
    let runner = ScenarioRunner::new(scenario).unwrap();
    let via_scenario = runner.run().unwrap();

    // Direct wiring consuming identical inputs.
    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(90);
    let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
    let trace = traces::email_store(1, 7).window(540, 600);
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).unwrap())
        .epoch_minutes(5)
        .eval_jobs(250)
        .build()
        .unwrap();
    let config = ClusterConfig::homogeneous(n, runtime).unwrap();
    let mut fleet = Cluster::new(config);
    let direct = fleet.run(&trace, &jobs, &mut JoinShortestBacklog::new()).unwrap();

    assert_eq!(
        via_scenario.cluster_report(),
        Some(&direct),
        "the scenario runner must reproduce the direct fleet wiring byte for byte"
    );
    assert_eq!(via_scenario.backend(), Backend::Cluster);
    assert_eq!(via_scenario.total_jobs(), jobs.len());
}

/// `run_with_inputs` on materialized inputs equals `run()` — the
/// comparison-harness path is not a second semantics.
#[test]
fn materialized_inputs_round_trip() {
    let mut scenario = Scenario {
        eval_jobs: 200,
        dist_samples: 4_000,
        seed: 91,
        ..Scenario::new(
            "inputs-roundtrip",
            WorkloadSource::Dns,
            LoadSchedule::Constant { rho: 0.25, minutes: 30 },
        )
    };
    scenario.fleet = vec![ServerGroup::new("fleet", 2, StrategySpec::sleepscale())];
    let runner = ScenarioRunner::new(scenario).unwrap();
    let (spec, trace, jobs) = runner.inputs().unwrap();
    let one = runner.run().unwrap();
    let two = runner.run_with_inputs(&spec, &trace, &jobs).unwrap();
    assert_eq!(one.cluster_report(), two.cluster_report());
    assert_eq!(one.groups(), two.groups());
}
