//! Structural checks for the workspace's archivable data types: the
//! `Clone`/`PartialEq`/`Debug` trio on configs, policies, and reports
//! (all of which also derive serde's `Serialize`/`Deserialize`; no JSON
//! crate is in the dependency set per DESIGN.md §7, so the derives are
//! exercised by compilation and the structural checks here).

use sleepscale_repro::prelude::*;

#[test]
fn reports_and_configs_are_cloneable_and_comparable() {
    let qos = QosConstraint::mean_response(0.8).unwrap();
    assert_eq!(qos, qos);

    let candidates = CandidateSet::standard();
    assert_eq!(candidates.clone(), candidates);

    let policy = sleepscale_repro::sleepscale_power::Policy::full_speed_no_sleep();
    assert_eq!(policy.clone(), policy);

    let spec = WorkloadSpec::dns();
    assert_eq!(spec.clone(), spec);
}

#[test]
fn serializable_types_produce_stable_debug_output() {
    // Debug formatting is part of the archival story too (C-DEBUG /
    // C-DEBUG-NONEMPTY): never empty, always contains the key fields.
    let policy = sleepscale_repro::sleepscale_power::Policy::full_speed_no_sleep();
    let dbg = format!("{policy:?}");
    assert!(dbg.contains("frequency"));
    let qos = QosConstraint::p95(0.6).unwrap();
    assert!(format!("{qos:?}").contains("Tail"));
    let trace = traces::file_server(1, 1);
    assert!(!format!("{trace:?}").is_empty());
}
