//! Structural checks for the workspace's archivable data types: the
//! `Clone`/`PartialEq`/`Debug` trio on configs, policies, reports, and
//! the PR-4 declarative scenario types (all of which also derive
//! serde's `Serialize`/`Deserialize`; no JSON crate is in the
//! dependency set per DESIGN.md §7, so the derives are exercised by
//! compilation and the structural checks here).
//!
//! Everything below compiles from `use sleepscale_repro::prelude::*;`
//! alone — the facade-prelude audit's acceptance criterion.

use sleepscale_repro::prelude::*;

#[test]
fn reports_and_configs_are_cloneable_and_comparable() {
    let qos = QosConstraint::mean_response(0.8).unwrap();
    assert_eq!(qos, qos);

    let candidates = CandidateSet::standard();
    assert_eq!(candidates.clone(), candidates);

    let policy = Policy::full_speed_no_sleep();
    assert_eq!(policy.clone(), policy);

    let spec = WorkloadSpec::dns();
    assert_eq!(spec.clone(), spec);

    let config = RuntimeConfig::builder(spec.service_mean()).qos(qos).build().unwrap();
    assert_eq!(config.clone(), config);
}

#[test]
fn scenario_types_are_declarative_data() {
    // The whole experiment round-trips as plain data: clone, compare,
    // and (structurally) serialize.
    let mut scenario = Scenario::new(
        "archival",
        WorkloadSource::Mix(vec![
            MixComponent { spec: WorkloadSpec::dns(), weight: 1.0 },
            MixComponent { spec: WorkloadSpec::mail(), weight: 1.0 },
        ]),
        LoadSchedule::EmailStoreDay { seed: 7, start_minute: 120, end_minute: 1200 },
    );
    scenario.fleet = vec![
        ServerGroup::new("a", 4, StrategySpec::sleepscale()),
        ServerGroup {
            qos: QosConstraint::mean_response(0.9).unwrap(),
            ..ServerGroup::new("b", 4, StrategySpec::race_to_halt_c6())
        },
    ];
    scenario.dispatcher = DispatcherSpec::PackFirstFit { backlog_seconds: 1.0 };
    assert_eq!(scenario.clone(), scenario);
    assert_eq!(scenario.total_servers(), 8);

    let strategy = StrategySpec::SleepScale {
        candidates: CandidateSpec::SingleState(SystemState::C3_S0I),
        search: SearchMode::Exhaustive,
        predictor: PredictorSpec::MovingAverage { window: 5 },
        cached: false,
    };
    assert_eq!(strategy.clone(), strategy);
    assert_eq!(strategy.label(), "SS(C3)/exh/nocache");
}

#[test]
fn serializable_types_produce_stable_debug_output() {
    // Debug formatting is part of the archival story too (C-DEBUG /
    // C-DEBUG-NONEMPTY): never empty, always contains the key fields.
    let policy = Policy::full_speed_no_sleep();
    let dbg = format!("{policy:?}");
    assert!(dbg.contains("frequency"));
    let qos = QosConstraint::p95(0.6).unwrap();
    assert!(format!("{qos:?}").contains("Tail"));
    let trace = traces::file_server(1, 1);
    assert!(!format!("{trace:?}").is_empty());
    let scenario =
        Scenario::new("dbg", WorkloadSource::Dns, LoadSchedule::Constant { rho: 0.2, minutes: 5 });
    let dbg = format!("{scenario:?}");
    assert!(dbg.contains("dbg") && dbg.contains("fleet"));
}
