//! The cluster crate through the facade: `sleepscale_repro` re-exports
//! `sleepscale_cluster` (and aliases it as `cluster` in the prelude),
//! and a fleet run driven entirely through those paths works end to
//! end.

use rand::SeedableRng;
use sleepscale_repro::prelude::*;

#[test]
fn dispatchers_route_through_the_facade() {
    use cluster::{DispatchIndex, Dispatcher, JoinShortestBacklog, RoundRobin};

    // Backlogs at t = 0 of 5.0, 0.0, and 2.5 seconds.
    let mut index = DispatchIndex::new(3);
    index.update(0, 5.0);
    index.update(1, 0.0);
    index.update(2, 2.5);
    let job = |arrival: f64| sleepscale_repro::sleepscale_sim::Job { id: 0, arrival, size: 0.1 };

    let mut rr = RoundRobin::new();
    let first = rr.route(&job(0.0), &index);
    let second = rr.route(&job(0.1), &index);
    assert_ne!(first, second, "round-robin must advance");

    let mut jsb = JoinShortestBacklog::new();
    assert_eq!(jsb.route(&job(0.2), &index), 1, "shortest backlog wins");
    assert_eq!(index.backlog(0, 0.2), 4.8);
}

#[test]
fn cluster_run_through_the_facade_produces_a_consistent_report() {
    use cluster::{Cluster, ClusterConfig, PackFirstFit};

    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(91);
    let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
    let trace = traces::email_store(1, 7).window(480, 540); // one hour
    let n_servers = 4;
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n_servers), &mut rng).unwrap();

    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).unwrap())
        .epoch_minutes(5)
        .eval_jobs(200)
        .build()
        .unwrap();
    let config = ClusterConfig::homogeneous(n_servers, runtime).unwrap();
    let mut fleet = Cluster::new(config);
    let report = fleet.run(&trace, &jobs, &mut PackFirstFit::new(30.0)).unwrap();

    assert_eq!(report.n_servers(), n_servers);
    assert_eq!(report.total_jobs(), jobs.len());
    assert_eq!(report.dispatcher(), "pack-first-fit(30s)");
    // Every job landed on some server, and the fleet-wide aggregates
    // are consistent with the per-server summaries.
    let per_server_jobs: usize = report.servers().iter().map(|s| s.jobs).sum();
    assert_eq!(per_server_jobs, report.total_jobs());
    assert!(report.mean_response_seconds() > 0.0);
    assert!(report.normalized_mean_response() >= 1.0);
    // Fleet power sits between N deepest-sleep floors and N ceilings.
    assert!(report.total_power_watts() > 28.1 * n_servers as f64);
    assert!(report.total_power_watts() < 250.0 * n_servers as f64);
}
