//! Determinism regression tests: with a fixed seed, every layer of the
//! characterization pipeline must produce byte-identical results across
//! repeated runs and across worker counts. This pins down the
//! refactored lock-free sweep (chunked ownership must not introduce
//! evaluation-order dependence) and the characterization cache (a hit
//! must reproduce exactly what recomputation would have produced for
//! the same quantized prediction and log signature).

use rand::SeedableRng;
use sleepscale_repro::prelude::*;
use sleepscale_repro::sleepscale_sim::{generator, sweep, JobStream};

fn seeded_stream(n: usize, rho: f64, seed: u64) -> JobStream {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    generator::generate_poisson_exp(n, rho, 0.194, &mut rng).unwrap()
}

/// The parallel sweep is invariant to worker count — the partition
/// fixes which candidate lands at which index, so 1, 2, 5, and 13
/// workers must return byte-identical evaluation vectors.
#[test]
fn sweep_is_thread_count_invariant() {
    let jobs = seeded_stream(3_000, 0.25, 7);
    let env = SimEnv::xeon_cpu_bound();
    let grid = sleepscale_repro::sleepscale_power::FrequencyGrid::new(0.3, 1.0, 0.05).unwrap();
    let policies: Vec<sleepscale_repro::sleepscale_power::Policy> = presets::standard_programs()
        .iter()
        .flat_map(|prog| {
            grid.iter()
                .map(move |f| sleepscale_repro::sleepscale_power::Policy::new(f, prog.clone()))
        })
        .collect();
    let reference = sweep::evaluate_policies_with_threads(&jobs, &policies, &env, 1);
    for threads in [2, 5, 13] {
        let run = sweep::evaluate_policies_with_threads(&jobs, &policies, &env, threads);
        assert_eq!(run, reference, "{threads} workers diverged from serial");
    }
}

/// Repeated manager selections from the same log and prediction are
/// identical in every mode — pruned, exhaustive, cached, and uncached —
/// and a cache hit reproduces the miss's policy exactly.
#[test]
fn selection_is_reproducible_across_modes_and_repeats() {
    let mk_log = || {
        let mut log = JobLog::new(8_192);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let ia = sleepscale_repro::sleepscale_dist::Exponential::from_mean(1.0).unwrap();
        let sv = sleepscale_repro::sleepscale_dist::Exponential::from_mean(0.194).unwrap();
        use sleepscale_repro::sleepscale_dist::Distribution;
        for _ in 0..2_000 {
            log.push(ia.sample(&mut rng), sv.sample(&mut rng));
        }
        log
    };
    let manager = || {
        PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(0.8).unwrap(),
            CandidateSet::standard(),
            0.194,
            1_000,
        )
        .unwrap()
    };
    for mode in [SearchMode::CoarseToFine, SearchMode::Exhaustive] {
        let log = mk_log();
        // Two independent managers (fresh caches) must agree.
        let mut a = manager().with_search_mode(mode);
        let mut b = manager().with_search_mode(mode);
        let first = a.select_from_log(&log, 0.3).unwrap();
        assert_eq!(b.select_from_log(&log, 0.3).unwrap(), first, "{mode:?}");
        // A cache hit repeats the selection with zero evaluations.
        let hit = a.select_from_log(&log, 0.3).unwrap();
        assert_eq!(hit.policy, first.policy, "{mode:?}");
        assert_eq!(hit.evaluated, 0, "{mode:?}");
        // Uncached managers recompute and still agree on the decision;
        // the repeat may reach it in fewer simulations because the
        // coarse-to-fine search warm-starts from the remembered
        // per-program bowl bottoms.
        let mut c = manager().with_search_mode(mode).without_cache();
        let uncached_1 = c.select_from_log(&log, 0.3).unwrap();
        let uncached_2 = c.select_from_log(&log, 0.3).unwrap();
        assert_eq!(uncached_1.policy, uncached_2.policy, "{mode:?}");
        assert_eq!(uncached_1.predicted_power, uncached_2.predicted_power, "{mode:?}");
        assert!(uncached_2.evaluated <= uncached_1.evaluated, "{mode:?}");
    }
}

/// The parallel cluster engine is a pure function of its inputs: the
/// owner-elected characterization phase and chunked epoch close-out
/// must make fleet runs byte-identical for every worker count.
#[test]
fn fleet_run_is_thread_count_invariant() {
    use sleepscale_repro::sleepscale_cluster::{Cluster, ClusterConfig, JoinShortestBacklog};

    let spec = WorkloadSpec::dns();
    let n_servers = 6;
    let mut rng = rand::rngs::StdRng::seed_from_u64(83);
    let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
    let trace = traces::email_store(1, 7).window(540, 540 + 60);
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n_servers), &mut rng).unwrap();
    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).unwrap())
        .epoch_minutes(5)
        .eval_jobs(300)
        .build()
        .unwrap();
    let config = ClusterConfig::homogeneous(n_servers, runtime).unwrap();
    let run_pinned = |threads: usize| {
        let mut cluster = Cluster::new(config.clone()).with_threads(threads);
        let report = cluster.run(&trace, &jobs, &mut JoinShortestBacklog::new()).unwrap();
        (report, cluster.characterization_stats())
    };
    let (reference, reference_stats) = run_pinned(1);
    assert_eq!(reference.total_jobs(), jobs.len());
    // The invariance argument assumes the fleet cache never evicts
    // (owner election peeks at residency); this run must be inside
    // that regime or the test is vacuous.
    assert_eq!(reference_stats.evictions, 0);
    for threads in [2, 3, 8] {
        let (run, stats) = run_pinned(threads);
        assert_eq!(run, reference, "threads={threads} diverged from the serial fleet");
        assert_eq!(
            (stats.hits, stats.misses),
            (reference_stats.hits, reference_stats.misses),
            "threads={threads} changed the shared-cache traffic"
        );
    }
}

/// PR-4 satellite: a *heterogeneous* two-group fleet scenario (mixed
/// machine generations, per-group QoS) is just as thread-count
/// invariant as a homogeneous one — per-group caches keep owner
/// election deterministic within each group, whatever the worker
/// count.
#[test]
fn heterogeneous_fleet_scenario_is_thread_count_invariant() {
    let mut scenario = Scenario {
        eval_jobs: 250,
        dist_samples: 4_000,
        seed: 84,
        dispatcher: DispatcherSpec::JoinShortestBacklog,
        ..Scenario::new(
            "hetero-invariance",
            WorkloadSource::Dns,
            LoadSchedule::EmailStoreDay { seed: 7, start_minute: 540, end_minute: 600 },
        )
    };
    scenario.fleet = vec![
        ServerGroup {
            qos: QosConstraint::mean_response(0.7).unwrap(),
            ..ServerGroup::new("xeon-table2", 3, StrategySpec::sleepscale())
        },
        ServerGroup {
            env: SimEnv::new(presets::xeon_prose_variant(), FrequencyScaling::CpuBound),
            qos: QosConstraint::mean_response(0.9).unwrap(),
            ..ServerGroup::new("xeon-prose", 3, StrategySpec::sleepscale())
        },
    ];
    let run_pinned = |threads: usize| {
        let mut pinned = scenario.clone();
        pinned.threads = threads;
        ScenarioRunner::new(pinned).unwrap().run().unwrap()
    };
    let reference = run_pinned(1);
    assert_eq!(reference.total_jobs(), reference.groups().iter().map(|g| g.jobs).sum::<usize>());
    assert_eq!(reference.cache_stats().evictions, 0, "invariance needs the no-eviction regime");
    for threads in [2, 3, 8] {
        let run = run_pinned(threads);
        assert_eq!(
            run.cluster_report(),
            reference.cluster_report(),
            "threads={threads} diverged from the serial fleet"
        );
        assert_eq!(run.groups(), reference.groups(), "threads={threads} changed group slices");
    }
}

/// A class-tagged two-class fleet scenario is thread-count invariant:
/// the per-class response slices (and everything else in the report)
/// are byte-identical for every worker count — tagging adds reporting
/// axes, never schedule dependence.
#[test]
fn tagged_fleet_scenario_is_thread_count_invariant() {
    let mut scenario = Scenario {
        eval_jobs: 250,
        dist_samples: 4_000,
        seed: 85,
        dispatcher: DispatcherSpec::JoinShortestBacklog,
        ..Scenario::new(
            "tagged-invariance",
            WorkloadSource::Tagged(
                TrafficModel::new(vec![
                    TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0)
                        .with_p95_budget(40.0),
                    TrafficClass::new("batch", WorkloadSpec::mail(), 1.0),
                ])
                .unwrap(),
            ),
            LoadSchedule::EmailStoreDay { seed: 7, start_minute: 540, end_minute: 620 },
        )
    };
    scenario.fleet = vec![ServerGroup::new("shared", 4, StrategySpec::sleepscale())];
    let run_pinned = |threads: usize| {
        let mut pinned = scenario.clone();
        pinned.threads = threads;
        ScenarioRunner::new(pinned).unwrap().run().unwrap()
    };
    let reference = run_pinned(1);
    assert_eq!(reference.classes().len(), 2);
    assert_eq!(
        reference.classes().iter().map(|c| c.jobs).sum::<usize>(),
        reference.total_jobs(),
        "class slices partition the fleet's jobs"
    );
    // PR-6: the exact energy attribution is part of the invariance
    // contract — both classes carry real active energy, and the active
    // + idle line items reproduce the fleet total.
    assert!(reference.classes().iter().all(|c| c.active_energy_joules > 0.0));
    assert!(reference.active_energy_joules() > 0.0);
    let line_items = reference.active_energy_joules() + reference.idle_energy_joules();
    assert!((line_items - reference.energy_joules()).abs() <= 1e-9 * reference.energy_joules());
    assert_eq!(reference.cache_stats().evictions, 0, "invariance needs the no-eviction regime");
    for threads in [2, 3, 8] {
        let run = run_pinned(threads);
        assert_eq!(
            run.cluster_report(),
            reference.cluster_report(),
            "threads={threads} diverged from the serial fleet (class slices included)"
        );
        assert_eq!(run.classes(), reference.classes(), "threads={threads} changed class slices");
        // Byte-equality of the class-tagged energy slices and the
        // fleet-level split, independent of worker count.
        assert_eq!(
            run.active_energy_joules().to_bits(),
            reference.active_energy_joules().to_bits(),
            "threads={threads} changed active-energy bytes"
        );
        let (a, b): (Vec<u64>, Vec<u64>) = (
            run.classes().iter().map(|c| c.active_energy_joules.to_bits()).collect(),
            reference.classes().iter().map(|c| c.active_energy_joules.to_bits()).collect(),
        );
        assert_eq!(a, b, "threads={threads} changed class-slice energy bytes");
    }
}

/// PR-7 tentpole: the sharded fleet engine is invariant across the
/// full shard-count × worker-count grid. Every (shards, threads) cell
/// must reproduce the central `SplitUniform` run byte-for-byte — the
/// split is a pure function of (seed, job sequence), shard membership
/// is a pure function of the split, and each shard's dispatch loop is
/// the serial engine over its own slice.
#[test]
fn sharded_fleet_is_shard_and_thread_count_invariant() {
    let scenario = Scenario {
        eval_jobs: 250,
        dist_samples: 4_000,
        seed: 86,
        dispatcher: DispatcherSpec::SplitUniform { seed: 21 },
        fleet: vec![ServerGroup::new("fleet", 6, StrategySpec::sleepscale())],
        ..Scenario::new(
            "shard-invariance",
            WorkloadSource::Dns,
            LoadSchedule::EmailStoreDay { seed: 7, start_minute: 540, end_minute: 600 },
        )
    };
    let run_pinned = |shards: usize, threads: usize| {
        let mut pinned = scenario.clone();
        pinned.shards = shards;
        pinned.threads = threads;
        ScenarioRunner::new(pinned).unwrap().run().unwrap()
    };
    // shards=1 routes through the central dispatcher loop — the
    // pre-sharding engine is the reference every grid cell must match.
    let reference = run_pinned(1, 1);
    assert_eq!(reference.total_jobs(), reference.groups().iter().map(|g| g.jobs).sum::<usize>());
    assert_eq!(reference.cache_stats().evictions, 0, "invariance needs the no-eviction regime");
    for shards in [2, 3, 5] {
        for threads in [1, 2, 5] {
            let run = run_pinned(shards, threads);
            assert_eq!(
                run.cluster_report(),
                reference.cluster_report(),
                "shards={shards} threads={threads} diverged from the central engine"
            );
            assert_eq!(
                run.energy_joules().to_bits(),
                reference.energy_joules().to_bits(),
                "shards={shards} threads={threads} changed energy bytes"
            );
        }
    }
}

/// Sharding a *class-tagged* stream preserves the per-class response
/// and energy slices byte-for-byte: tagged accumulators merge in slot
/// and shard order, so the reporting axes stay schedule-independent.
#[test]
fn sharded_tagged_fleet_matches_central_bytes() {
    let scenario = Scenario {
        eval_jobs: 250,
        dist_samples: 4_000,
        seed: 87,
        dispatcher: DispatcherSpec::SplitUniform { seed: 33 },
        fleet: vec![ServerGroup::new("shared", 4, StrategySpec::sleepscale())],
        ..Scenario::new(
            "shard-tagged-invariance",
            WorkloadSource::Tagged(
                TrafficModel::new(vec![
                    TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0)
                        .with_p95_budget(40.0),
                    TrafficClass::new("batch", WorkloadSpec::mail(), 1.0),
                ])
                .unwrap(),
            ),
            LoadSchedule::EmailStoreDay { seed: 7, start_minute: 540, end_minute: 620 },
        )
    };
    let run_pinned = |shards: usize, threads: usize| {
        let mut pinned = scenario.clone();
        pinned.shards = shards;
        pinned.threads = threads;
        ScenarioRunner::new(pinned).unwrap().run().unwrap()
    };
    let reference = run_pinned(1, 1);
    assert_eq!(reference.classes().len(), 2);
    assert!(reference.classes().iter().all(|c| c.jobs > 0));
    for (shards, threads) in [(2, 1), (3, 2), (4, 5)] {
        let run = run_pinned(shards, threads);
        assert_eq!(
            run.cluster_report(),
            reference.cluster_report(),
            "shards={shards} threads={threads} diverged (class slices included)"
        );
        assert_eq!(run.classes(), reference.classes(), "shards={shards} changed class slices");
        let (a, b): (Vec<u64>, Vec<u64>) = (
            run.classes().iter().map(|c| c.active_energy_joules.to_bits()).collect(),
            reference.classes().iter().map(|c| c.active_energy_joules.to_bits()).collect(),
        );
        assert_eq!(a, b, "shards={shards} threads={threads} changed class energy bytes");
    }
}

/// PR-9 tentpole: an *autoscaled* class-affinity scenario is thread-count
/// invariant — the controller's park/wake decisions are pure functions
/// of epoch-boundary state, so the fleet-size trace, parked
/// server-seconds, and every report byte must match the serial run for
/// every worker count.
#[test]
fn autoscaled_scenario_is_thread_count_invariant() {
    let mut scenario = sleepscale_repro::sleepscale_scenario::catalog::autoscale_day().quick();
    scenario.seed = 88;
    let run_pinned = |threads: usize| {
        let mut pinned = scenario.clone();
        pinned.threads = threads;
        ScenarioRunner::new(pinned).unwrap().run().unwrap()
    };
    let reference = run_pinned(1);
    assert!(reference.parked_server_seconds() > 0.0, "invariance run never parked a server");
    assert!(!reference.fleet_size_trace().is_empty());
    for threads in [2, 3, 8] {
        let run = run_pinned(threads);
        assert_eq!(
            run.cluster_report(),
            reference.cluster_report(),
            "threads={threads} diverged from the serial autoscaled fleet"
        );
        assert_eq!(
            run.fleet_size_trace(),
            reference.fleet_size_trace(),
            "threads={threads} changed the fleet-size trace"
        );
        assert_eq!(
            run.parked_server_seconds().to_bits(),
            reference.parked_server_seconds().to_bits(),
            "threads={threads} changed parked-server-seconds bytes"
        );
    }
}

/// An autoscaled fleet behind the sharded `SplitUniform` engine is
/// invariant across the shard-count × worker-count grid: shards see the
/// same `ActiveSet` because the controller runs on merged
/// epoch-boundary state, before the next epoch's split.
#[test]
fn autoscaled_sharded_fleet_matches_central_bytes() {
    let mut scenario = sleepscale_repro::sleepscale_scenario::catalog::autoscale_day().quick();
    scenario.name = "autoscale-shard-invariance".into();
    scenario.dispatcher = DispatcherSpec::SplitUniform { seed: 17 };
    let run_pinned = |shards: usize, threads: usize| {
        let mut pinned = scenario.clone();
        pinned.shards = shards;
        pinned.threads = threads;
        ScenarioRunner::new(pinned).unwrap().run().unwrap()
    };
    let reference = run_pinned(1, 1);
    assert!(reference.parked_server_seconds() > 0.0, "invariance run never parked a server");
    for (shards, threads) in [(2, 1), (3, 2), (4, 5)] {
        let run = run_pinned(shards, threads);
        assert_eq!(
            run.cluster_report(),
            reference.cluster_report(),
            "shards={shards} threads={threads} diverged from the central autoscaled engine"
        );
        assert_eq!(
            run.fleet_size_trace(),
            reference.fleet_size_trace(),
            "shards={shards} threads={threads} changed the fleet-size trace"
        );
    }
}

/// PR-10 tentpole: the merged telemetry trace is invariant across the
/// worker-count × shard-count grid. Events are buffered per slot and
/// merged at the serial epoch boundary in slot (then shard) order, so
/// the JSONL rendering of the stream — and the metrics registry folded
/// from it — must be byte-identical for every grid cell.
#[test]
fn telemetry_trace_is_worker_and_shard_count_invariant() {
    let mut scenario = sleepscale_repro::sleepscale_scenario::catalog::autoscale_day().quick();
    scenario.name = "telemetry-grid-invariance".into();
    scenario.dispatcher = DispatcherSpec::SplitUniform { seed: 17 };
    scenario.telemetry = Some(TelemetrySpec::full());
    let run_pinned = |shards: usize, threads: usize| {
        let mut pinned = scenario.clone();
        pinned.shards = shards;
        pinned.threads = threads;
        ScenarioRunner::new(pinned).unwrap().run().unwrap()
    };
    let reference = run_pinned(1, 1);
    let reference_telemetry = reference.telemetry().expect("telemetry was armed");
    assert!(!reference_telemetry.events.is_empty(), "invariance run produced no events");
    assert!(!reference_telemetry.metrics.counters().is_empty());
    let reference_jsonl = reference_telemetry.to_jsonl();
    for (shards, threads) in [(1, 2), (1, 5), (2, 1), (3, 2), (4, 5)] {
        let run = run_pinned(shards, threads);
        let telemetry = run.telemetry().expect("telemetry was armed");
        assert_eq!(
            telemetry.to_jsonl(),
            reference_jsonl,
            "shards={shards} threads={threads} changed trace bytes"
        );
        assert_eq!(
            telemetry.metrics, reference_telemetry.metrics,
            "shards={shards} threads={threads} changed the metrics registry"
        );
    }
}

/// The full runtime loop is a pure function of (trace, jobs, config,
/// seed): repeated runs produce byte-identical `RunReport`s, including
/// every epoch's selection metadata.
#[test]
fn run_report_is_byte_identical_across_repeats() {
    let spec = WorkloadSpec::dns();
    let run_once = || {
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = traces::email_store(1, 7).window(540, 540 + 90);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let config = RuntimeConfig::builder(spec.service_mean())
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .epoch_minutes(5)
            .eval_jobs(400)
            .build()
            .unwrap();
        let mut strategy = SleepScaleStrategy::new(&config, CandidateSet::standard());
        run(&trace, &jobs, &mut strategy, &SimEnv::xeon_cpu_bound(), &config).unwrap()
    };
    let first = run_once();
    let second = run_once();
    assert_eq!(first, second);
    // Sanity: the run actually exercised the cached pruned manager.
    assert!(first.epochs().iter().any(|e| e.evaluated > 0));
    assert!(first.epochs().iter().any(|e| e.evaluated == 0 && e.arrivals > 0));
}
