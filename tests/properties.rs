//! Cross-crate property tests: invariants that must hold for arbitrary
//! (seeded) workloads and policies.

use proptest::prelude::*;
use rand::SeedableRng;
use sleepscale_repro::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Simulator invariants for random policies over random M/M/1-ish
    /// workloads: FCFS ordering, response bounds, energy bounds, and
    /// residency accounting.
    #[test]
    fn simulator_invariants(
        rho in 0.05_f64..0.7,
        f_margin in 0.1_f64..0.4,
        state_idx in 0_usize..5,
        seed in 0_u64..10_000,
    ) {
        let mean_service = 0.194;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(1_500, rho, mean_service, &mut rng).unwrap();
        let f = Frequency::new((rho + f_margin).min(1.0)).unwrap();
        let state = SystemState::LOW_POWER_LADDER[state_idx];
        let policy = Policy::new(f, SleepProgram::immediate(presets::immediate_stage(state)));
        let env = SimEnv::xeon_cpu_bound();
        let out = simulate(&jobs, &policy, &env);

        // Power bounds: between the deepest sleep floor and flat-out max.
        let watts = out.avg_power().as_watts();
        prop_assert!(watts >= 28.1 - 1e-9, "power {watts} below C6S3 floor");
        prop_assert!(watts <= 250.0 + 1e-9, "power {watts} above active ceiling");

        // Residency partitions the horizon exactly.
        prop_assert!((out.residency().total() - out.horizon()).abs() < 1e-6);

        // Responses: mean >= stretched mean service.
        let stretched = mean_service / f.get();
        prop_assert!(out.mean_response() >= stretched * 0.8);

        // Busy fraction ≈ ρ/f (within Monte-Carlo slack).
        let expect_busy = rho / f.get();
        prop_assert!((out.busy_fraction() - expect_busy).abs() < 0.12,
            "busy {} vs {}", out.busy_fraction(), expect_busy);

        // Wake events can never exceed the number of jobs.
        let wakes: u64 = out.wakes_from().iter().map(|(_, n)| n).sum::<u64>()
            + out.wakes_without_sleep();
        prop_assert!(wakes <= out.n_jobs() as u64);
    }

    /// Deeper immediate states always cost more response time and less
    /// idle-state power *at equal frequency* — the trade-off that makes
    /// the joint optimization non-trivial.
    #[test]
    fn deeper_states_trade_response_for_power(
        rho in 0.05_f64..0.5,
        seed in 0_u64..10_000,
    ) {
        let mean_service = 0.194;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(2_000, rho, mean_service, &mut rng).unwrap();
        let env = SimEnv::xeon_cpu_bound();
        let f = Frequency::new((rho + 0.3).min(1.0)).unwrap();
        let shallow = simulate(
            &jobs,
            &Policy::new(f, SleepProgram::immediate(presets::C0I_S0I)),
            &env,
        );
        let deep = simulate(
            &jobs,
            &Policy::new(f, SleepProgram::immediate(presets::C6_S3)),
            &env,
        );
        // The deep state's wake latency inflates responses.
        prop_assert!(deep.mean_response() >= shallow.mean_response() - 1e-9);
        // And its idle residency runs at far lower power.
        let idle_t = deep.residency().state_time(SystemState::C6_S3);
        if idle_t > 1.0 {
            // Compare energy during idle directly: deep idle wattage.
            prop_assert!(28.1 < shallow.avg_power().as_watts() + 250.0); // sanity
        }
    }

    /// The pruned (coarse-to-fine) search stays within 1% power of the
    /// exhaustive sweep on a seeded corpus of random load levels and
    /// replay streams. Exhaustive is the floor, so the band is one-sided:
    /// pruned never finds a *better* feasible policy, and may give up at
    /// most 1%.
    #[test]
    fn pruned_selection_power_within_one_percent_of_exhaustive(
        rho in 0.05_f64..0.75,
        seed in 0_u64..10_000,
    ) {
        let mean_service = 0.194;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(2_000, rho, mean_service, &mut rng).unwrap();
        let manager = |mode| {
            PolicyManager::new(
                SimEnv::xeon_cpu_bound(),
                QosConstraint::mean_response(0.8).unwrap(),
                CandidateSet::standard(),
                mean_service,
                2_000,
            )
            .unwrap()
            .with_search_mode(mode)
        };
        let pruned = manager(SearchMode::CoarseToFine).select_from_stream(&jobs, rho);
        let exhaustive = manager(SearchMode::Exhaustive).select_from_stream(&jobs, rho);
        prop_assert_eq!(pruned.feasible, exhaustive.feasible);
        prop_assert!(
            pruned.predicted_power <= exhaustive.predicted_power * 1.01 + 1e-9,
            "rho={}: pruned {} W vs exhaustive {} W",
            rho, pruned.predicted_power, exhaustive.predicted_power
        );
        prop_assert!(pruned.predicted_power >= exhaustive.predicted_power - 1e-9);
        prop_assert!(pruned.evaluated < exhaustive.evaluated);
    }

    /// The runtime's per-epoch energy buckets always integrate to the
    /// run's total energy, whatever the strategy does.
    #[test]
    fn runtime_energy_buckets_are_exact(
        seed in 0_u64..1_000,
        epoch_minutes in 1_usize..8,
    ) {
        let spec = WorkloadSpec::dns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = traces::email_store(1, seed).window(600, 660);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let cfg = RuntimeConfig::builder(spec.service_mean())
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .epoch_minutes(epoch_minutes)
            .eval_jobs(200)
            .build()
            .unwrap();
        let mut s = RaceToHaltStrategy::new(presets::C3_S0I);
        let report = run(&trace, &jobs, &mut s, &SimEnv::xeon_cpu_bound(), &cfg).unwrap();
        let bucket_sum: f64 = report
            .epochs()
            .iter()
            .map(|e| e.power_watts * (epoch_minutes as f64 * 60.0))
            .sum();
        // The final epoch may extend past the trace end (backlog), so
        // allow the tail tolerance.
        prop_assert!(
            (bucket_sum - report.energy_joules()).abs() / report.energy_joules().max(1.0) < 0.05,
            "buckets {bucket_sum} vs total {}", report.energy_joules()
        );
    }

    /// The O(log N) dispatch index routes exactly like the O(N) linear
    /// scan the serial engine ran per job: for arbitrary fleets and
    /// arbitrary interleavings of arrivals and commitments,
    /// shortest-backlog and first-fit picks agree with a first-minimum
    /// scan over clamped backlogs (including the all-idle tie, which
    /// both break toward the lowest server index).
    #[test]
    fn dispatch_index_matches_linear_scan(
        n in 1_usize..33,
        threshold in 0.0_f64..4.0,
        seed in 0_u64..10_000,
    ) {
        use rand::Rng;
        use sleepscale_repro::sleepscale_cluster::DispatchIndex;

        let linear_jsb = |free: &[f64], now: f64| -> usize {
            free.iter()
                .enumerate()
                .map(|(i, &t)| (i, (t - now).max(0.0)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        let linear_first_fit = |free: &[f64], now: f64| -> usize {
            free.iter()
                .enumerate()
                .find(|(_, &t)| (t - now).max(0.0) < threshold)
                .map(|(i, _)| i)
                .unwrap_or_else(|| linear_jsb(free, now))
        };

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut index = DispatchIndex::new(n);
        let mut free = vec![0.0_f64; n];
        let mut now = 0.0;
        for step in 0..300 {
            now += rng.gen_range(0.0..0.5);
            let jsb = index.shortest_backlog_server(now);
            prop_assert_eq!(jsb, linear_jsb(&free, now), "jsb step {} now {}", step, now);
            let fit = index
                .first_free_below(now + threshold)
                .unwrap_or_else(|| index.shortest_backlog_server(now));
            prop_assert_eq!(fit, linear_first_fit(&free, now), "fit step {} now {}", step, now);
            // Commit work to whichever server first-fit picked, exactly
            // as the engine re-keys only the routed server.
            free[fit] = free[fit].max(now) + rng.gen_range(0.0..2.0);
            index.update(fit, free[fit]);
        }
        prop_assert_eq!(index.free_times(), &free[..]);
    }

    /// Class-affinity routing (preferred group, spill-over, saturated
    /// fallback, every tie-break) agrees with a naive linear scan of
    /// the same law — over arbitrary grouped fleets, class tables,
    /// thresholds, interleavings, *and* arbitrary autoscaler active
    /// prefixes (the `route_active` view the control plane dispatches
    /// through).
    #[test]
    fn class_affinity_matches_linear_scan(
        n_groups in 1_usize..4,
        sizes_seed in 0_u64..10_000,
        table_len in 1_usize..5,
        threshold in 0.05_f64..3.0,
        seed in 0_u64..10_000,
    ) {
        use rand::Rng;
        use sleepscale_repro::sleepscale_cluster::{ActiveSet, ClassAffinity, DispatchIndex, Dispatcher};
        use sleepscale_repro::sleepscale_sim::pack_id;

        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ sizes_seed);
        let group_sizes: Vec<usize> = (0..n_groups).map(|_| rng.gen_range(1..6)).collect();
        let class_groups: Vec<usize> =
            (0..table_len).map(|_| rng.gen_range(0..n_groups)).collect();
        let starts: Vec<usize> =
            group_sizes.iter().scan(0, |s, &c| { let v = *s; *s += c; Some(v) }).collect();
        let n: usize = group_sizes.iter().sum();

        // The O(N) reference over an explicit per-group active view:
        // stage 1 first under-threshold server in the preferred group,
        // stage 2 first under-threshold server anywhere (ascending slot
        // order), stage 3 first minimum of clamped backlog.
        let reference = |free: &[f64], active: &[usize], class: usize, now: f64| -> usize {
            let g = class_groups[class.min(class_groups.len() - 1)];
            let bound = now + threshold;
            let range = |g: usize| starts[g]..starts[g] + active[g];
            if let Some(i) = range(g).find(|&i| free[i] < bound) {
                return i;
            }
            if let Some(i) = (0..n_groups).flat_map(range).find(|&i| free[i] < bound) {
                return i;
            }
            (0..n_groups)
                .flat_map(range)
                .map(|i| (i, (free[i] - now).max(0.0)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("backlogs are finite"))
                .map(|(i, _)| i)
                .expect("at least one active server")
        };

        let mut dispatcher = ClassAffinity::new(&group_sizes, class_groups.clone(), threshold);
        let mut index = DispatchIndex::new(n);
        let mut free = vec![0.0_f64; n];
        let mut active: Vec<usize> = group_sizes.clone();
        let mut now = 0.0;
        for step in 0..300 {
            now += rng.gen_range(0.0..0.4);
            // Re-draw the active prefixes occasionally, as the
            // autoscaler does at epoch boundaries.
            if step % 25 == 0 {
                for (g, m) in active.iter_mut().enumerate() {
                    *m = rng.gen_range(1..group_sizes[g] + 1);
                }
            }
            let class = rng.gen_range(0_u64..6);
            let job = sleepscale_repro::sleepscale_sim::Job {
                id: pack_id(step as u64, sleepscale_repro::sleepscale_sim::ClassId(class as u16)),
                arrival: now,
                size: 0.1,
            };
            let full = active.iter().zip(&group_sizes).all(|(m, s)| m == s);
            let target = if full {
                dispatcher.route(&job, &index)
            } else {
                let slots: Vec<usize> = (0..n_groups)
                    .flat_map(|g| starts[g]..starts[g] + active[g])
                    .collect();
                let groups: Vec<(usize, usize)> =
                    (0..n_groups).map(|g| (starts[g], active[g])).collect();
                let set = ActiveSet::new(&slots, &groups);
                dispatcher.route_active(&job, &index, &set)
            };
            prop_assert_eq!(
                target,
                reference(&free, &active, class as usize, now),
                "step {} class {} now {} active {:?}",
                step, class, now, &active
            );
            free[target] = free[target].max(now) + rng.gen_range(0.0..1.5);
            index.update(target, free[target]);
        }
    }

    /// PR-10: the telemetry event stream is a lossless account of the
    /// engine's time and energy. For arbitrary single-server runs, the
    /// per-C-state residency folded from a `MemorySink` reproduces the
    /// engine's `Residency` table bit-for-bit (states in the same
    /// first-entered order), wake counts match, and the idle energy
    /// integrated from `CState` segments reconciles with the
    /// `EnergyLedger`'s idle line item.
    #[test]
    fn trace_residency_reconciles_with_energy_ledger(
        rho in 0.05_f64..0.6,
        state_idx in 0_usize..5,
        seed in 0_u64..10_000,
    ) {
        use sleepscale_repro::sleepscale_sim::OnlineSim;

        let mean_service = 0.194;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(2_000, rho, mean_service, &mut rng).unwrap();
        let state = SystemState::LOW_POWER_LADDER[state_idx];
        let policy = Policy::new(
            Frequency::new((rho + 0.3).min(1.0)).unwrap(),
            SleepProgram::immediate(presets::immediate_stage(state)),
        );
        let env = SimEnv::xeon_cpu_bound();
        let mut sim = OnlineSim::new(env, 300.0);
        sim.enable_trace(0);
        let horizon = jobs.last_arrival() + 60.0;
        sim.run_epoch(jobs.jobs(), &policy, horizon);
        let (ledger, residency, wakes_from, wakes_without_sleep, events) =
            sim.finish_traced(horizon);

        let mut sink = MemorySink::new();
        for event in &events {
            sink.record(event);
        }

        // Bitwise per-state residency, including discovery order.
        let traced: Vec<(SystemState, u64)> =
            sink.state_residency().iter().map(|(s, t)| (*s, t.to_bits())).collect();
        let engine: Vec<(SystemState, u64)> =
            residency.states().iter().map(|(s, t)| (*s, t.to_bits())).collect();
        prop_assert_eq!(traced, engine, "per-state residency diverged from the engine");
        prop_assert_eq!(
            sink.active_idle_seconds().to_bits(),
            residency.active_idle().to_bits(),
            "active-idle bytes diverged"
        );
        prop_assert_eq!(
            sink.waking_seconds().to_bits(),
            residency.waking().to_bits(),
            "wake-latency bytes diverged"
        );

        // Wake counts: one `Wake { from: Some(_) }` per sleep-state exit,
        // one `Wake { from: None }` per pre-tau wake.
        let wake_events = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Wake { from: Some(_), .. }))
            .count() as u64;
        prop_assert_eq!(wake_events, wakes_from.iter().map(|(_, n)| n).sum::<u64>());
        let shallow_wakes = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Wake { from: None, .. }))
            .count() as u64;
        prop_assert_eq!(shallow_wakes, wakes_without_sleep);

        // Idle energy integrates from the trace to the ledger's line item.
        let ledger_idle = ledger.idle_energy().as_joules();
        prop_assert!(
            (sink.idle_energy_joules() - ledger_idle).abs() <= 1e-9 * ledger_idle.max(1.0),
            "trace idle {} J vs ledger {} J", sink.idle_energy_joules(), ledger_idle
        );
    }

    /// Log replay hits any requested utilization target.
    #[test]
    fn job_log_replay_matches_target(
        target in 0.05_f64..0.9,
        seed in 0_u64..10_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut log = JobLog::new(512);
        let ia = Exponential::from_mean(1.0).unwrap();
        let sv = Exponential::from_mean(0.2).unwrap();
        for _ in 0..256 {
            log.push(ia.sample(&mut rng), sv.sample(&mut rng));
        }
        let stream = log.replay(400, target).unwrap();
        prop_assert!((stream.offered_utilization() - target).abs() < 0.02);
    }
}
