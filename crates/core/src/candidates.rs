use crate::error::CoreError;
use serde::Serialize;
use sleepscale_power::{FrequencyGrid, Policy, SleepProgram, SystemState};

/// The search space the policy manager characterizes each epoch: a set
/// of sleep programs crossed with a frequency grid.
///
/// The grid adapts to the predicted utilization — frequencies below the
/// stability floor `ρ + margin` are pointless to simulate — and is
/// deliberately coarse (the paper notes real parts expose roughly ten
/// settings, and re-simulation cost scales with the candidate count).
///
/// A `CandidateSet` is **non-empty by construction**: [`CandidateSet::new`]
/// rejects an empty program list, and every extension method only adds
/// programs, so downstream selection code (the policy manager, the
/// strategies' cold-start path) can rely on at least one program and at
/// least one grid frequency existing.
///
/// Deliberately `Serialize`-only: a derived `Deserialize` would
/// construct the private fields directly and bypass the non-empty
/// check. If deserialization is ever needed, implement it by routing
/// through [`CandidateSet::new`] (e.g. serde's `try_from`).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CandidateSet {
    name: String,
    programs: Vec<SleepProgram>,
    freq_step: f64,
    stability_margin: f64,
}

/// Default frequency-grid spacing (≈10–18 settings over the stable
/// range).
pub const DEFAULT_FREQ_STEP: f64 = 0.05;

/// Default margin above the predicted utilization for the lowest
/// candidate frequency.
pub const DEFAULT_STABILITY_MARGIN: f64 = 0.05;

impl CandidateSet {
    /// Builds a custom set.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `programs` is empty —
    /// the manager's selection logic depends on every candidate set
    /// containing at least one program.
    pub fn new(
        name: impl Into<String>,
        programs: Vec<SleepProgram>,
        freq_step: f64,
    ) -> Result<CandidateSet, CoreError> {
        if programs.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "a candidate set needs at least one sleep program".into(),
            });
        }
        Ok(CandidateSet {
            name: name.into(),
            programs,
            freq_step: freq_step.clamp(1e-3, 0.5),
            stability_margin: DEFAULT_STABILITY_MARGIN,
        })
    }

    /// Full SleepScale: all five single-stage immediate programs
    /// (`C0(i)S0(i)` … `C6S3`).
    pub fn standard() -> CandidateSet {
        CandidateSet::new("SS", sleepscale_power::presets::standard_programs(), DEFAULT_FREQ_STEP)
            .expect("the standard program list is non-empty")
    }

    /// SleepScale restricted to one low-power state — the paper's
    /// `SS(C3)` uses [`SystemState::C3_S0I`].
    pub fn single_state(state: SystemState) -> CandidateSet {
        let stage = sleepscale_power::presets::immediate_stage(state);
        CandidateSet::new(
            format!("SS({})", state.cpu().name()),
            vec![SleepProgram::immediate(stage)],
            DEFAULT_FREQ_STEP,
        )
        .expect("one program is non-empty")
    }

    /// The DVFS-only strategy: frequency scaling with *no* low-power
    /// state at all. The paper counts `C0(i)S0(i)` among the low-power
    /// states its policies select, so "not allowed to enter any
    /// low-power state when idling" means idle time stays in
    /// `C0(a)S0(a)` at the DVFS setting's active power — which is why
    /// Section 6.1 calls DVFS-only wasteful.
    pub fn dvfs_only() -> CandidateSet {
        CandidateSet::new("DVFS", vec![SleepProgram::never_sleep()], DEFAULT_FREQ_STEP)
            .expect("one program is non-empty")
    }

    /// Adds two-stage delayed-deep-sleep programs
    /// (`C0(i)S0(i) → C6S3` after each delay in `delays_seconds`) to the
    /// standard set — the extended search space suggested by Figure 3.
    pub fn with_delayed_deep_sleep(mut self, delays_seconds: &[f64]) -> CandidateSet {
        for &d in delays_seconds {
            let stages = vec![
                sleepscale_power::presets::C0I_S0I,
                sleepscale_power::SleepStage::new(
                    SystemState::C6_S3,
                    d,
                    sleepscale_power::presets::WAKE_C6_S3,
                )
                .expect("delayed stage parameters are valid"),
            ];
            if let Ok(program) = SleepProgram::new(stages) {
                self.programs.push(program);
            }
        }
        self
    }

    /// Set name (used in figures: `"SS"`, `"SS(C3)"`, `"DVFS"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sleep programs searched.
    pub fn programs(&self) -> &[SleepProgram] {
        &self.programs
    }

    /// The frequency grid for a predicted utilization: from
    /// `min(1, ρ + margin)` to 1 in `freq_step` increments. Falls back
    /// to the single point `f = 1` at extreme load.
    pub fn grid_for(&self, rho_pred: f64) -> FrequencyGrid {
        let min = (rho_pred + self.stability_margin).clamp(self.freq_step, 1.0);
        FrequencyGrid::new(min, 1.0, self.freq_step)
            .unwrap_or_else(|_| FrequencyGrid::new(1.0, 1.0, self.freq_step).expect("valid"))
    }

    /// All candidate policies for a predicted utilization.
    pub fn policies_for(&self, rho_pred: f64) -> Vec<Policy> {
        let grid = self.grid_for(rho_pred);
        self.programs
            .iter()
            .flat_map(|prog| grid.iter().map(move |f| Policy::new(f, prog.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_set_has_five_programs() {
        let c = CandidateSet::standard();
        assert_eq!(c.programs().len(), 5);
        assert_eq!(c.name(), "SS");
    }

    #[test]
    fn single_state_and_dvfs_names() {
        assert_eq!(CandidateSet::single_state(SystemState::C3_S0I).name(), "SS(C3)");
        let d = CandidateSet::dvfs_only();
        assert_eq!(d.name(), "DVFS");
        assert_eq!(d.programs().len(), 1);
        assert!(d.programs()[0].is_never_sleep());
    }

    #[test]
    fn grid_respects_stability_floor() {
        let c = CandidateSet::standard();
        let grid = c.grid_for(0.6);
        assert!(grid.min() >= 0.6);
        assert!((grid.max() - 1.0).abs() < 1e-12);
        // Extreme load: degenerate single-point grid at f = 1.
        let top = c.grid_for(0.99);
        assert!(top.iter().count() >= 1);
        assert!((top.iter().last().unwrap().get() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn policies_cover_programs_times_grid() {
        let c = CandidateSet::standard();
        let policies = c.policies_for(0.5);
        let grid_len = c.grid_for(0.5).len();
        assert_eq!(policies.len(), 5 * grid_len);
        assert!(policies.iter().all(|p| p.frequency().get() >= 0.5));
    }

    #[test]
    fn empty_program_list_is_rejected() {
        let err = CandidateSet::new("empty", vec![], DEFAULT_FREQ_STEP);
        assert!(matches!(err, Err(CoreError::InvalidConfig { .. })));
    }

    #[test]
    fn delayed_deep_sleep_extension() {
        let c = CandidateSet::standard().with_delayed_deep_sleep(&[0.1, 1.0]);
        assert_eq!(c.programs().len(), 7);
        let two_stage = &c.programs()[5];
        assert_eq!(two_stage.stages().len(), 2);
        assert_eq!(two_stage.stages()[1].state(), SystemState::C6_S3);
    }
}
