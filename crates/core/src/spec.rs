//! Declarative, serde-derivable mirrors of the strategy-construction
//! API — the data half of the Scenario redesign.
//!
//! The builder-method sprawl (`SleepScaleStrategy::new(..)
//! .with_predictor(..).with_alpha(..).with_search_mode(..)`) is great
//! for one-off wiring but cannot be stored, compared, or shipped inside
//! a scenario file. [`StrategySpec`] (with [`CandidateSpec`] and
//! [`PredictorSpec`]) is the declarative construction path: a plain
//! data enum that names a strategy the way the paper names them
//! (SleepScale / SS(C3) / DVFS / R2H / analytic / fixed) and can be
//! lowered into a live [`Strategy`] against any [`RuntimeConfig`].
//! Heterogeneous fleets store one spec per server group and build a
//! fresh strategy per server from it.

use crate::analytic_strategy::AnalyticStrategy;
use crate::candidates::CandidateSet;
use crate::manager::SearchMode;
use crate::runtime::RuntimeConfig;
use crate::strategies::{FixedPolicyStrategy, RaceToHaltStrategy, SleepScaleStrategy, Strategy};
use serde::{Deserialize, Serialize};
use sleepscale_power::{presets, Policy, SystemState};
use sleepscale_predict::{Lms, LmsCusum, MovingAverage, NaivePrevious, Offline, Predictor};

/// Which candidate search space a managed strategy explores — the
/// declarative mirror of the [`CandidateSet`] constructors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CandidateSpec {
    /// [`CandidateSet::standard`]: all five single-stage programs.
    Standard,
    /// [`CandidateSet::single_state`]: SleepScale restricted to one
    /// low-power state (the paper's `SS(C3)`).
    SingleState(SystemState),
    /// [`CandidateSet::dvfs_only`]: frequency scaling, never sleep.
    DvfsOnly,
    /// The standard set extended with two-stage delayed-deep-sleep
    /// programs ([`CandidateSet::with_delayed_deep_sleep`]).
    DelayedDeepSleep {
        /// Dwell delays (seconds) before dropping to `C6S3`.
        delays_seconds: Vec<f64>,
    },
}

impl CandidateSpec {
    /// Lowers the spec into a live candidate set.
    pub fn build(&self) -> CandidateSet {
        match self {
            CandidateSpec::Standard => CandidateSet::standard(),
            CandidateSpec::SingleState(state) => CandidateSet::single_state(*state),
            CandidateSpec::DvfsOnly => CandidateSet::dvfs_only(),
            CandidateSpec::DelayedDeepSleep { delays_seconds } => {
                CandidateSet::standard().with_delayed_deep_sleep(delays_seconds)
            }
        }
    }
}

/// Which utilization predictor drives a managed strategy — the
/// declarative mirror of the `sleepscale-predict` constructors
/// (Figure 8 compares them).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub enum PredictorSpec {
    /// The strategy's own default: the paper's LMS+CUSUM hybrid with
    /// the history depth from [`RuntimeConfig::predictor_history`] —
    /// the config stays the source of truth for the default predictor.
    #[default]
    ConfigDefault,
    /// The paper's LMS+CUSUM hybrid (Algorithm 2) at an explicit
    /// history depth.
    LmsCusum {
        /// History depth `p`.
        history: usize,
    },
    /// Pure least-mean-squares.
    Lms {
        /// History depth `p`.
        history: usize,
    },
    /// Last observed minute, verbatim.
    NaivePrevious,
    /// Mean of the last `window` minutes.
    MovingAverage {
        /// Window length in minutes.
        window: usize,
    },
    /// Oracle replay of a known future (offline upper bound).
    Offline {
        /// The per-epoch utilizations the oracle will "predict".
        future: Vec<f64>,
    },
}

impl PredictorSpec {
    /// Lowers the spec into a live predictor for `config`.
    pub fn build(&self, config: &RuntimeConfig) -> Box<dyn Predictor> {
        match self {
            PredictorSpec::ConfigDefault => Box::new(LmsCusum::new(config.predictor_history())),
            PredictorSpec::LmsCusum { history } => Box::new(LmsCusum::new(*history)),
            PredictorSpec::Lms { history } => Box::new(Lms::new(*history)),
            PredictorSpec::NaivePrevious => Box::new(NaivePrevious::new()),
            PredictorSpec::MovingAverage { window } => Box::new(MovingAverage::new(*window)),
            PredictorSpec::Offline { future } => Box::new(Offline::new(future.clone())),
        }
    }
}

/// A strategy as data: the declarative construction path for every
/// per-epoch policy source this crate implements.
///
/// A spec is what a scenario stores per server group; lowering it with
/// [`StrategySpec::build`] against a group's [`RuntimeConfig`] (which
/// carries the QoS constraint, over-provisioning `α`, characterization
/// environment, and evaluation depth) yields a fresh, independent
/// strategy per server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// The full SleepScale runtime (Section 5): predictor + job log +
    /// policy manager.
    SleepScale {
        /// The candidate search space.
        candidates: CandidateSpec,
        /// Exhaustive (Algorithm 1 literal) or pruned coarse-to-fine.
        search: SearchMode,
        /// The utilization predictor.
        predictor: PredictorSpec,
        /// Whether selections are memoized in a characterization cache
        /// (`false` recovers the paper's literal re-characterize-every-
        /// epoch runtime; in a fleet it also opts the group out of
        /// cache sharing).
        cached: bool,
    },
    /// Simulation-free selection from the closed-form M/M/1-with-sleep
    /// model (Section 5.1.2, observation 3).
    Analytic {
        /// The candidate search space.
        candidates: CandidateSpec,
        /// The utilization predictor.
        predictor: PredictorSpec,
    },
    /// Race-to-halt into one fixed sleep state (Section 6.1's R2H
    /// baselines).
    RaceToHalt {
        /// The state raced into (e.g. [`SystemState::C6_S0I`]).
        state: SystemState,
    },
    /// One fixed policy every epoch (the static baselines).
    FixedPolicy {
        /// The policy deployed unconditionally.
        policy: Policy,
    },
}

impl Default for StrategySpec {
    fn default() -> StrategySpec {
        StrategySpec::sleepscale()
    }
}

impl StrategySpec {
    /// The paper's default runtime: standard candidates, pruned search,
    /// LMS+CUSUM predictor, characterization caching on.
    pub fn sleepscale() -> StrategySpec {
        StrategySpec::SleepScale {
            candidates: CandidateSpec::Standard,
            search: SearchMode::CoarseToFine,
            predictor: PredictorSpec::default(),
            cached: true,
        }
    }

    /// Race-to-halt into `C6S0(i)` — the stronger of the paper's two
    /// R2H baselines.
    pub fn race_to_halt_c6() -> StrategySpec {
        StrategySpec::RaceToHalt { state: SystemState::C6_S0I }
    }

    /// DVFS-only SleepScale (frequency scaling, never sleep).
    pub fn dvfs_only() -> StrategySpec {
        StrategySpec::SleepScale {
            candidates: CandidateSpec::DvfsOnly,
            search: SearchMode::CoarseToFine,
            predictor: PredictorSpec::default(),
            cached: true,
        }
    }

    /// Closed-form analytic selection over the standard candidates.
    pub fn analytic() -> StrategySpec {
        StrategySpec::Analytic {
            candidates: CandidateSpec::Standard,
            predictor: PredictorSpec::default(),
        }
    }

    /// Whether this spec lowers to a policy-*managed* strategy whose
    /// characterizations can be shared through a fleet cache (the
    /// cluster engine's owner-election path).
    pub fn is_managed(&self) -> bool {
        matches!(self, StrategySpec::SleepScale { .. })
    }

    /// Whether the lowered strategy memoizes characterizations — the
    /// single source of truth fleet engines consult before handing a
    /// group's servers one shared cache.
    pub fn is_cached(&self) -> bool {
        matches!(self, StrategySpec::SleepScale { cached: true, .. })
    }

    /// Lowers a [`StrategySpec::SleepScale`] spec into the concrete
    /// strategy type (fleet engines need the concrete type for
    /// characterization planning and cache sharing); `None` for every
    /// other variant.
    pub fn build_managed(&self, config: &RuntimeConfig) -> Option<SleepScaleStrategy> {
        let StrategySpec::SleepScale { candidates, search, predictor, cached } = self else {
            return None;
        };
        let mut strategy =
            SleepScaleStrategy::new(config, candidates.build()).with_search_mode(*search);
        // The config-default predictor is what `new` already installed;
        // only an explicit spec swaps it (which also tags the label).
        if *predictor != PredictorSpec::ConfigDefault {
            strategy = strategy.with_predictor(predictor.build(config));
        }
        Some(if *cached { strategy } else { strategy.without_cache() })
    }

    /// Lowers the spec into a live strategy for `config`.
    pub fn build(&self, config: &RuntimeConfig) -> Box<dyn Strategy + Send> {
        match self {
            StrategySpec::SleepScale { .. } => {
                Box::new(self.build_managed(config).expect("variant checked"))
            }
            StrategySpec::Analytic { candidates, predictor } => {
                let mut strategy = AnalyticStrategy::new(config, candidates.build());
                if *predictor != PredictorSpec::ConfigDefault {
                    strategy = strategy.with_predictor(predictor.build(config));
                }
                Box::new(strategy)
            }
            StrategySpec::RaceToHalt { state } => {
                Box::new(RaceToHaltStrategy::new(presets::immediate_stage(*state)))
            }
            StrategySpec::FixedPolicy { policy } => {
                Box::new(FixedPolicyStrategy::new(policy.clone()))
            }
        }
    }

    /// A short display label for reports and scenario tables.
    pub fn label(&self) -> String {
        match self {
            StrategySpec::SleepScale { candidates, search, cached, .. } => {
                let base = match candidates {
                    CandidateSpec::Standard => "SS".to_string(),
                    CandidateSpec::SingleState(state) => format!("SS({})", state.cpu().name()),
                    CandidateSpec::DvfsOnly => "DVFS".to_string(),
                    CandidateSpec::DelayedDeepSleep { .. } => "SS+delay".to_string(),
                };
                match (search, cached) {
                    (SearchMode::Exhaustive, true) => format!("{base}/exh"),
                    (SearchMode::Exhaustive, false) => format!("{base}/exh/nocache"),
                    (SearchMode::CoarseToFine, false) => format!("{base}/nocache"),
                    (SearchMode::CoarseToFine, true) => base,
                }
            }
            StrategySpec::Analytic { .. } => "analytic".to_string(),
            StrategySpec::RaceToHalt { state } => format!("R2H({})", state.cpu().name()),
            StrategySpec::FixedPolicy { policy } => format!("Fixed[{}]", policy.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosConstraint;

    fn config() -> RuntimeConfig {
        RuntimeConfig::builder(0.194)
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .eval_jobs(300)
            .build()
            .unwrap()
    }

    #[test]
    fn candidate_specs_lower_to_the_named_sets() {
        assert_eq!(CandidateSpec::Standard.build(), CandidateSet::standard());
        assert_eq!(
            CandidateSpec::SingleState(SystemState::C3_S0I).build(),
            CandidateSet::single_state(SystemState::C3_S0I)
        );
        assert_eq!(CandidateSpec::DvfsOnly.build(), CandidateSet::dvfs_only());
        let delayed = CandidateSpec::DelayedDeepSleep { delays_seconds: vec![0.5] }.build();
        assert_eq!(delayed.programs().len(), 6);
    }

    #[test]
    fn predictor_specs_lower_to_the_named_predictors() {
        let cfg = config();
        assert_eq!(PredictorSpec::default().build(&cfg).name(), LmsCusum::new(10).name());
        assert_eq!(PredictorSpec::NaivePrevious.build(&cfg).name(), NaivePrevious::new().name());
        assert_eq!(
            PredictorSpec::MovingAverage { window: 5 }.build(&cfg).name(),
            MovingAverage::new(5).name()
        );
    }

    /// The config, not the spec, owns the default predictor's history:
    /// a fleet configured with `predictor_history(30)` must actually
    /// predict with history 30 under the default spec.
    #[test]
    fn config_default_predictor_honors_predictor_history() {
        let cfg = RuntimeConfig::builder(0.194)
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .predictor_history(30)
            .eval_jobs(300)
            .build()
            .unwrap();
        // `name()` doesn't carry the depth, so compare behavior: after
        // an identical observation stream, the config-default predictor
        // must agree with a direct LmsCusum(30) and (on a noisy ramp)
        // disagree with the old hard-coded LmsCusum(10).
        let mut from_spec = PredictorSpec::default().build(&cfg);
        let mut depth_30 = LmsCusum::new(30);
        let mut depth_10 = LmsCusum::new(10);
        for i in 0..120 {
            let rho = 0.2 + 0.3 * (i as f64 / 120.0) + 0.05 * ((i * 7 % 13) as f64 / 13.0);
            from_spec.observe(rho);
            depth_30.observe(rho);
            depth_10.observe(rho);
        }
        assert_eq!(from_spec.predict(), depth_30.predict());
        assert_ne!(from_spec.predict(), depth_10.predict());
        // The managed build leaves the strategy's own (config-derived)
        // predictor in place — same label as direct construction.
        let via_spec = StrategySpec::sleepscale().build_managed(&cfg).unwrap();
        let direct = SleepScaleStrategy::new(&cfg, CandidateSet::standard());
        assert_eq!(via_spec.name(), direct.name());
    }

    #[test]
    fn default_spec_is_the_paper_runtime() {
        let spec = StrategySpec::default();
        assert!(spec.is_managed());
        assert_eq!(spec.label(), "SS");
        let managed = spec.build_managed(&config()).unwrap();
        assert!(managed.name().starts_with("SS"));
        // The boxed path builds the same strategy kind.
        let boxed = spec.build(&config());
        assert_eq!(boxed.name(), managed.name());
    }

    #[test]
    fn baseline_specs_build_and_label() {
        let cfg = config();
        assert_eq!(StrategySpec::race_to_halt_c6().label(), "R2H(C6)");
        assert_eq!(StrategySpec::race_to_halt_c6().build(&cfg).name(), "R2H(C6)");
        assert!(!StrategySpec::race_to_halt_c6().is_managed());
        assert!(StrategySpec::race_to_halt_c6().build_managed(&cfg).is_none());
        assert_eq!(StrategySpec::analytic().label(), "analytic");
        assert!(StrategySpec::analytic().build(&cfg).name().contains("analytic"));
        let fixed = StrategySpec::FixedPolicy { policy: Policy::full_speed_no_sleep() };
        assert!(fixed.build(&cfg).name().contains("Fixed"));
        assert_eq!(StrategySpec::dvfs_only().label(), "DVFS");
    }

    #[test]
    fn uncached_and_exhaustive_variants_are_labelled() {
        let spec = StrategySpec::SleepScale {
            candidates: CandidateSpec::Standard,
            search: SearchMode::Exhaustive,
            predictor: PredictorSpec::default(),
            cached: false,
        };
        assert_eq!(spec.label(), "SS/exh/nocache");
    }
}
