//! The policy manager's cross-epoch (and cross-server) characterization
//! cache.
//!
//! Characterizing a candidate grid by simulation is the runtime's
//! dominant cost, yet data-center load is diurnal: the predicted
//! utilization revisits the same handful of levels for hours at a time
//! (cf. the energy-proportionality literature's scale-out utilization
//! profiles). Selections are therefore cached under a key that captures
//! everything the characterization actually depends on:
//!
//! * the **quantized predicted utilization** `ρ̂` (the manager rounds
//!   `ρ̂` to [`crate::manager::RHO_QUANTUM`] *before* replaying, so a
//!   cached selection is exact for its bucket, not merely close), and
//! * the job log's **coarse signature**
//!   ([`sleepscale_workloads::JobLog::coarse_signature`]) — bucketed
//!   means and CVs of the logged gaps/sizes plus the occupancy scale.
//!   The log's exact contents churn every epoch; its signature only
//!   moves when the workload's replay statistics move.
//!
//! The candidate set and QoS constraint are fixed per manager, so they
//! are part of the cache's identity rather than the key: a cache must
//! only ever be shared between managers with identical configuration.
//! That sharing is the point — a homogeneous cluster hands one handle
//! ([`CharacterizationCache::clone`] shares storage) to every server's
//! strategy, so N servers predicting the same load characterize once
//! per epoch instead of N times.

use crate::manager::{SearchMode, Selection};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Default number of cached selections (`(ρ̂ bucket, log signature)`
/// pairs); a day-long diurnal trace touches far fewer distinct keys.
pub const DEFAULT_CACHE_CAPACITY: usize = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// Quantized predicted utilization (bucket index).
    pub rho_bucket: u32,
    /// The job log's coarse signature.
    pub log_signature: u64,
    /// The search mode that produced the selection. Part of the key so
    /// that a cloned manager switched to another mode (e.g. an
    /// exhaustive baseline cloned from a pruned manager) can share the
    /// handle without being served the other mode's selections.
    pub search: SearchMode,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, Selection>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Hit/miss counters and current occupancy of a
/// [`CharacterizationCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache (each saves a full
    /// characterization sweep).
    pub hits: u64,
    /// Lookups that fell through to simulation.
    pub misses: u64,
    /// Entries dropped by FIFO eviction since the cache was created.
    /// Nonzero evictions matter beyond recomputation cost: fleet
    /// engines that elect characterization owners from a planning peek
    /// rely on keys staying resident within an epoch, so a run that
    /// evicts is no longer guaranteed byte-reproducible across engines
    /// or worker counts (size the cache so this stays 0).
    pub evictions: u64,
    /// Selections currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A shareable store of epoch selections keyed by (quantized `ρ̂`, log
/// signature) — see the [module docs](self) for the key semantics.
///
/// Cloning is cheap and *shares* the underlying storage, which is how a
/// homogeneous cluster amortizes characterization across servers. Only
/// share a cache between managers with identical environment, QoS
/// constraint, candidate set, and evaluation depth; the key re-encodes
/// the search mode (so mixed-mode sharing is safe) but not those.
#[derive(Debug, Clone)]
pub struct CharacterizationCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl Default for CharacterizationCache {
    fn default() -> CharacterizationCache {
        CharacterizationCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl CharacterizationCache {
    /// A cache bounded to `capacity` selections (clamped to ≥ 1),
    /// evicting first-in-first-out.
    pub fn new(capacity: usize) -> CharacterizationCache {
        let inner = CacheInner { capacity: capacity.max(1), ..CacheInner::default() };
        CharacterizationCache { inner: Arc::new(Mutex::new(inner)) }
    }

    pub(crate) fn get(&self, key: &CacheKey) -> Option<Selection> {
        let mut inner = self.inner.lock().expect("cache lock is never poisoned");
        match inner.map.get(key).cloned() {
            Some(selection) => {
                inner.hits += 1;
                Some(selection)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    pub(crate) fn insert(&self, key: CacheKey, selection: Selection) {
        let mut inner = self.inner.lock().expect("cache lock is never poisoned");
        if inner.map.insert(key, selection).is_none() {
            inner.order.push_back(key);
            while inner.order.len() > inner.capacity {
                if let Some(evicted) = inner.order.pop_front() {
                    inner.map.remove(&evicted);
                    inner.evictions += 1;
                }
            }
        }
    }

    /// Whether a selection for `key` is stored, *without* counting a
    /// lookup — the planning peek fleet engines use to elect one owner
    /// per missing key before parallel epoch control (counting it would
    /// skew the hit/miss telemetry relative to a serial fleet run).
    pub fn contains(&self, key: &crate::manager::CharacterizationKey) -> bool {
        let inner = self.inner.lock().expect("cache lock is never poisoned");
        inner.map.contains_key(&key.0)
    }

    /// Snapshot of the hit/miss counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock is never poisoned");
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.map.len(),
        }
    }

    /// Drops every stored selection and resets the counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock is never poisoned");
        inner.map.clear();
        inner.order.clear();
        inner.hits = 0;
        inner.misses = 0;
        inner.evictions = 0;
    }

    /// Serializes contents and counters for checkpointing. Entries are
    /// written in insertion (`order`) sequence — never by iterating the
    /// hash map — so the bytes are deterministic across runs and builds.
    pub fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        use sleepscale_journal::Snapshot;
        let inner = self.inner.lock().expect("cache lock is never poisoned");
        w.put_usize(inner.capacity);
        w.put_u64(inner.hits);
        w.put_u64(inner.misses);
        w.put_u64(inner.evictions);
        w.put_usize(inner.order.len());
        for key in &inner.order {
            key.snapshot(w);
            inner.map[key].snapshot(w);
        }
    }

    /// Replaces this cache's contents and counters from a
    /// [`CharacterizationCache::snapshot_state`] record. Mutates through
    /// the shared handle, so every clone observes the restored state.
    ///
    /// # Errors
    ///
    /// Returns [`sleepscale_journal::CodecError`] on truncated or
    /// malformed bytes; the cache is left unchanged in that case.
    pub fn restore_state(
        &self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        use sleepscale_journal::Snapshot;
        let capacity = r.get_usize()?.max(1);
        let hits = r.get_u64()?;
        let misses = r.get_u64()?;
        let evictions = r.get_u64()?;
        let n = r.get_usize()?;
        if n > capacity {
            return Err(sleepscale_journal::CodecError::Invalid(format!(
                "cache snapshot holds {n} entries but capacity is {capacity}"
            )));
        }
        let mut map = HashMap::with_capacity(n.min(1024));
        let mut order = VecDeque::new();
        for _ in 0..n {
            let key = CacheKey::restore(r)?;
            let selection = Selection::restore(r)?;
            if map.insert(key, selection).is_none() {
                order.push_back(key);
            }
        }
        let mut inner = self.inner.lock().expect("cache lock is never poisoned");
        *inner = CacheInner { map, order, capacity, hits, misses, evictions };
        Ok(())
    }
}

impl sleepscale_journal::Snapshot for CacheKey {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_u32(self.rho_bucket);
        w.put_u64(self.log_signature);
        self.search.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<CacheKey, sleepscale_journal::CodecError> {
        Ok(CacheKey {
            rho_bucket: r.get_u32()?,
            log_signature: r.get_u64()?,
            search: SearchMode::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepscale_power::Policy;

    fn selection(power: f64) -> Selection {
        Selection {
            policy: Policy::full_speed_no_sleep(),
            predicted_power: power,
            predicted_norm_response: 1.0,
            feasible: true,
            evaluated: 10,
        }
    }

    fn key(rho_bucket: u32, log_signature: u64) -> CacheKey {
        CacheKey { rho_bucket, log_signature, search: SearchMode::CoarseToFine }
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = CharacterizationCache::new(8);
        assert!(cache.get(&key(1, 2)).is_none());
        cache.insert(key(1, 2), selection(100.0));
        let got = cache.get(&key(1, 2)).unwrap();
        assert_eq!(got.predicted_power, 100.0);
        assert!(cache.get(&key(1, 3)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 2, 1));
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clones_share_storage() {
        let a = CharacterizationCache::new(8);
        let b = a.clone();
        a.insert(key(5, 5), selection(42.0));
        assert_eq!(b.get(&key(5, 5)).unwrap().predicted_power, 42.0);
        b.clear();
        assert!(a.get(&key(5, 5)).is_none());
    }

    #[test]
    fn search_mode_partitions_the_key_space() {
        let cache = CharacterizationCache::new(8);
        cache.insert(key(1, 1), selection(10.0));
        let exhaustive = CacheKey { search: SearchMode::Exhaustive, ..key(1, 1) };
        assert!(cache.get(&exhaustive).is_none(), "modes must not alias");
        cache.insert(exhaustive, selection(20.0));
        assert_eq!(cache.get(&key(1, 1)).unwrap().predicted_power, 10.0);
        assert_eq!(cache.get(&exhaustive).unwrap().predicted_power, 20.0);
    }

    #[test]
    fn fifo_eviction_respects_capacity() {
        let cache = CharacterizationCache::new(2);
        cache.insert(key(1, 0), selection(1.0));
        cache.insert(key(2, 0), selection(2.0));
        cache.insert(key(3, 0), selection(3.0));
        assert!(cache.get(&key(1, 0)).is_none(), "oldest entry evicted");
        assert!(cache.get(&key(2, 0)).is_some());
        assert!(cache.get(&key(3, 0)).is_some());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 1, "evictions are counted");
        cache.clear();
        assert_eq!(cache.stats().evictions, 0);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// PR 8 round-trip property: snapshot → restore into a fresh
        /// cache → snapshot reproduces the original bytes exactly, with
        /// counters, occupancy, and insertion order all intact.
        #[test]
        fn snapshot_round_trip_is_byte_equal(
            entries in proptest::collection::vec((0u32..64, 0u64..1_000, 20.0f64..200.0, 0u8..2), 0..24),
            probes in proptest::collection::vec((0u32..64, 0u64..1_000), 0..12),
        ) {
            use sleepscale_journal::{ByteReader, ByteWriter};
            let cache = CharacterizationCache::new(16);
            for &(rho_bucket, log_signature, power, mode) in &entries {
                let search =
                    if mode == 0 { SearchMode::CoarseToFine } else { SearchMode::Exhaustive };
                let k = CacheKey { rho_bucket, log_signature, search };
                let _ = cache.get(&k);
                cache.insert(k, selection(power));
            }
            // Extra lookups move the hit/miss counters independently of
            // the contents, so they must survive the trip too.
            for &(rho_bucket, log_signature) in &probes {
                let _ = cache.get(&key(rho_bucket, log_signature));
            }
            let mut w = ByteWriter::new();
            cache.snapshot_state(&mut w);
            let bytes = w.into_bytes();
            let restored = CharacterizationCache::new(1);
            restored
                .restore_state(&mut ByteReader::new(&bytes))
                .expect("snapshot bytes decode");
            let mut w2 = ByteWriter::new();
            restored.snapshot_state(&mut w2);
            prop_assert_eq!(&bytes, &w2.into_bytes());
            prop_assert_eq!(restored.stats(), cache.stats());
        }

        /// Truncated snapshot bytes are a typed decode error and leave
        /// the target cache exactly as it was — never a panic, never a
        /// half-restored cache.
        #[test]
        fn truncated_snapshot_is_an_error_and_leaves_cache_intact(cut in 0usize..10_000) {
            use sleepscale_journal::{ByteReader, ByteWriter};
            let cache = CharacterizationCache::new(8);
            cache.insert(key(1, 2), selection(50.0));
            cache.insert(key(3, 4), selection(60.0));
            let mut w = ByteWriter::new();
            cache.snapshot_state(&mut w);
            let bytes = w.into_bytes();
            let cut = cut % bytes.len();
            let target = CharacterizationCache::new(8);
            target.insert(key(9, 9), selection(70.0));
            let before = target.stats();
            prop_assert!(target.restore_state(&mut ByteReader::new(&bytes[..cut])).is_err());
            prop_assert_eq!(target.stats(), before);
            prop_assert_eq!(target.get(&key(9, 9)).map(|s| s.predicted_power), Some(70.0));
        }
    }
}
