use crate::cache::{CacheStats, CharacterizationCache};
use crate::candidates::CandidateSet;
use crate::error::CoreError;
use crate::manager::{CharacterizationKey, PolicyManager, SearchMode, Selection, WarmStartStats};
use crate::runtime::RuntimeConfig;
use sleepscale_power::{Policy, SleepStage};
use sleepscale_predict::{LmsCusum, Predictor};
use sleepscale_sim::JobRecord;
use sleepscale_workloads::JobLog;
use std::fmt;

/// A per-epoch policy source driven by the runtime loop (Section 6's
/// strategy comparison slot).
///
/// The loop calls [`Strategy::begin_epoch`] to obtain the epoch's policy,
/// [`Strategy::end_epoch`] with the epoch's completed jobs, and
/// [`Strategy::observe_minute`] for every realized utilization sample.
pub trait Strategy: fmt::Debug {
    /// Display name (e.g. `"SS"`, `"R2H(C6)"`).
    fn name(&self) -> String;

    /// Decides the policy for epoch `epoch`.
    ///
    /// # Errors
    ///
    /// Implementations may fail on configuration errors; the adaptive
    /// strategies fall back to a safe full-speed policy instead of
    /// failing when their logs are still cold.
    fn begin_epoch(&mut self, epoch: usize) -> Result<Policy, CoreError>;

    /// Ingests the epoch's completed-job records.
    fn end_epoch(&mut self, records: &[JobRecord]);

    /// Feeds one realized utilization sample (one trace minute).
    fn observe_minute(&mut self, rho: f64);

    /// Whether this strategy reads the records passed to
    /// [`Strategy::end_epoch`]. Strategies that ignore them (fixed
    /// policies, race-to-halt) return `false`, letting fleet engines
    /// skip materializing per-epoch record buffers for their servers —
    /// a pure capacity optimization that cannot change results, since
    /// `end_epoch` would discard the records anyway.
    fn wants_epoch_records(&self) -> bool {
        true
    }

    /// The utilization prediction used for the current epoch (for
    /// reporting; fixed strategies report 0).
    fn last_prediction(&self) -> f64 {
        0.0
    }

    /// The manager's selection details for the current epoch, if the
    /// strategy runs a policy manager.
    fn last_selection(&self) -> Option<&Selection> {
        None
    }

    /// Serializes this strategy's mutable cross-epoch state for
    /// checkpointing. Stateless strategies (fixed policy, race-to-halt)
    /// keep the default no-op: their construction-time fields are
    /// rebuilt from configuration on resume.
    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        let _ = w;
    }

    /// Restores state written by [`Strategy::snapshot_state`] into a
    /// freshly constructed strategy.
    ///
    /// # Errors
    ///
    /// Returns [`sleepscale_journal::CodecError`] on truncated or
    /// malformed bytes.
    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        let _ = r;
        Ok(())
    }
}

/// The full SleepScale strategy (Section 5): predictor + job log +
/// policy manager + frequency over-provisioning.
pub struct SleepScaleStrategy {
    label: String,
    manager: PolicyManager,
    predictor: Box<dyn Predictor>,
    log: JobLog,
    alpha: f64,
    delay_budget_seconds: f64,
    last_epoch_mean_delay: Option<f64>,
    last_prediction: f64,
    last_selection: Option<Selection>,
    /// `(prediction, key)` cached by `planned_characterization` for the
    /// next `begin_epoch`, so the log signature is hashed once per
    /// epoch. Invalidated by anything that changes the prediction or
    /// the log.
    planned: Option<(f64, CharacterizationKey)>,
}

impl fmt::Debug for SleepScaleStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SleepScaleStrategy")
            .field("label", &self.label)
            .field("alpha", &self.alpha)
            .field("predictor", &self.predictor)
            .finish_non_exhaustive()
    }
}

impl SleepScaleStrategy {
    /// Builds the strategy from a runtime configuration and candidate
    /// set, with the paper's default LMS+CUSUM predictor (history
    /// `p = 10`).
    pub fn new(config: &RuntimeConfig, candidates: CandidateSet) -> SleepScaleStrategy {
        let label = candidates.name().to_string();
        let manager = PolicyManager::new(
            config.env().clone(),
            config.qos(),
            candidates,
            config.mean_service(),
            config.eval_jobs(),
        )
        .expect("RuntimeConfig construction already validated these fields");
        SleepScaleStrategy {
            label,
            manager,
            predictor: Box::new(LmsCusum::new(config.predictor_history())),
            log: JobLog::new(config.log_capacity()),
            alpha: config.over_provisioning(),
            delay_budget_seconds: config.qos().normalized_mean_budget() * config.mean_service(),
            last_epoch_mean_delay: None,
            last_prediction: 0.0,
            last_selection: None,
            planned: None,
        }
    }

    /// Replaces the predictor (Figure 8 compares NP / LMS / LC /
    /// Offline).
    pub fn with_predictor(mut self, predictor: Box<dyn Predictor>) -> SleepScaleStrategy {
        self.label = format!("{}[{}]", self.label, predictor.name());
        self.predictor = predictor;
        self
    }

    /// Overrides the over-provisioning factor `α`.
    pub fn with_alpha(mut self, alpha: f64) -> SleepScaleStrategy {
        self.alpha = alpha.max(0.0);
        self
    }

    /// Overrides the manager's grid-search mode (the default is the
    /// pruned [`SearchMode::CoarseToFine`]; Section 5.1.1's literal
    /// exhaustive sweep remains available for comparison runs).
    pub fn with_search_mode(mut self, mode: SearchMode) -> SleepScaleStrategy {
        self.manager = self.manager.with_search_mode(mode);
        self
    }

    /// Shares a characterization cache with this strategy's manager —
    /// how a homogeneous cluster characterizes once per epoch instead of
    /// once per server.
    pub fn with_shared_cache(mut self, cache: CharacterizationCache) -> SleepScaleStrategy {
        self.manager = self.manager.with_cache(cache);
        self
    }

    /// Disables the manager's characterization cache (every epoch
    /// re-characterizes, as the paper's literal runtime does).
    pub fn without_cache(mut self) -> SleepScaleStrategy {
        self.manager = self.manager.without_cache();
        self
    }

    /// The characterization this strategy's next `begin_epoch` would
    /// memoize, if any — `None` while the log is cold (no
    /// characterization happens) or when caching is disabled. Cheap
    /// (no simulation); fleet engines use it to elect exactly one
    /// owner per distinct missing key before running `begin_epoch`
    /// across worker threads, keeping parallel fleets byte-identical
    /// to serial ones. The plan is cached and consumed by the next
    /// `begin_epoch`, so planning does not double the per-epoch log
    /// signature cost.
    pub fn planned_characterization(&mut self) -> Option<CharacterizationKey> {
        let rho_pred = self.predictor.predict();
        let key = self.manager.plan_key(&self.log, rho_pred);
        self.planned = key.map(|k| (rho_pred, k));
        key
    }

    /// Whether `planned_characterization`'s key is already cached (a
    /// non-counting peek; see [`PolicyManager::is_cached`]).
    pub fn is_characterization_cached(&self, key: &CharacterizationKey) -> bool {
        self.manager.is_cached(key)
    }

    /// Cross-epoch warm-start counters of this strategy's manager.
    pub fn warm_start_stats(&self) -> WarmStartStats {
        self.manager.warm_start_stats()
    }

    /// Hit/miss counters of this strategy's characterization cache
    /// (`None` when caching is disabled).
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.manager.cache().map(CharacterizationCache::stats)
    }

    /// Serializes every mutable cross-epoch field for checkpointing.
    ///
    /// `include_cache` controls whether the manager's shared
    /// characterization cache rides along: single-server runs pass
    /// `true` (the strategy owns its cache), while fleet engines pass
    /// `false` and snapshot each *group's* shared cache exactly once —
    /// otherwise N slots would write N redundant copies and the restore
    /// order would matter. The `planned` memo is deliberately excluded:
    /// it is always `None` at epoch boundaries.
    pub fn snapshot_checkpoint(&self, w: &mut sleepscale_journal::ByteWriter, include_cache: bool) {
        use sleepscale_journal::Snapshot;
        sleepscale_predict::snapshot_predictor(self.predictor.as_ref(), w);
        self.log.snapshot(w);
        self.last_epoch_mean_delay.snapshot(w);
        w.put_f64(self.last_prediction);
        self.last_selection.snapshot(w);
        self.manager.snapshot_warm(w);
        if include_cache {
            let cache = self.manager.cache();
            w.put_bool(cache.is_some());
            if let Some(cache) = cache {
                cache.snapshot_state(w);
            }
        }
    }

    /// Restores state written by
    /// [`SleepScaleStrategy::snapshot_checkpoint`] with the same
    /// `include_cache` flag.
    ///
    /// # Errors
    ///
    /// Returns [`sleepscale_journal::CodecError`] on malformed bytes or
    /// when the snapshot's cache-presence flag disagrees with this
    /// strategy's configuration.
    pub fn restore_checkpoint(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
        include_cache: bool,
    ) -> Result<(), sleepscale_journal::CodecError> {
        use sleepscale_journal::Snapshot;
        self.predictor = sleepscale_predict::restore_predictor(r)?;
        self.log = JobLog::restore(r)?;
        self.last_epoch_mean_delay = Option::restore(r)?;
        self.last_prediction = r.get_f64()?;
        self.last_selection = Option::restore(r)?;
        self.manager.restore_warm(r)?;
        if include_cache {
            let had_cache = r.get_bool()?;
            match (had_cache, self.manager.cache()) {
                (true, Some(cache)) => cache.restore_state(r)?,
                (false, None) => {}
                (snapshotted, _) => {
                    return Err(sleepscale_journal::CodecError::Invalid(format!(
                        "cache presence mismatch: snapshot {} a cache, strategy {}",
                        if snapshotted { "carries" } else { "lacks" },
                        if snapshotted { "has none" } else { "has one" },
                    )));
                }
            }
        }
        self.planned = None;
        Ok(())
    }

    /// The cold-start policy: full speed (safe for response) with the
    /// candidate set's *deepest* program (safe for power — a server that
    /// never receives work must not idle at operating power; in a
    /// consolidated fleet the spare servers stay cold indefinitely).
    fn cold_start_policy(&self) -> Policy {
        let programs = self.manager.candidates().programs();
        let program = programs.last().expect("CandidateSet is non-empty by construction").clone();
        Policy::new(sleepscale_power::Frequency::MAX, program)
    }
}

impl Strategy for SleepScaleStrategy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn begin_epoch(&mut self, _epoch: usize) -> Result<Policy, CoreError> {
        let rho_pred = self.predictor.predict();
        self.last_prediction = rho_pred;
        // Reuse the key `planned_characterization` hashed, if it is
        // still current (same prediction, log untouched since).
        let planned = self
            .planned
            .take()
            .and_then(|(planned_rho, key)| (planned_rho == rho_pred).then_some(key));
        let selection = match self.manager.select_from_log_keyed(&self.log, rho_pred, planned) {
            Ok(s) => s,
            Err(_) => {
                // Cold start: no log yet. Run safe and fast.
                self.last_selection = None;
                return Ok(self.cold_start_policy());
            }
        };
        // Over-provisioning (Section 5.2.3): if the *past* epoch kept its
        // average delay within the baseline budget, raise the frequency
        // by the guard-band factor to absorb unpredicted surges.
        let mut policy = selection.policy.clone();
        if self.alpha > 0.0 {
            let within_budget =
                self.last_epoch_mean_delay.is_some_and(|d| d < self.delay_budget_seconds);
            if within_budget {
                policy = policy.with_frequency(policy.frequency().scaled_by(1.0 + self.alpha));
            }
        }
        self.last_selection = Some(selection);
        Ok(policy)
    }

    fn end_epoch(&mut self, records: &[JobRecord]) {
        self.planned = None; // the log is about to change
        self.log.extend_from_records(records);
        self.last_epoch_mean_delay = if records.is_empty() {
            Some(0.0)
        } else {
            Some(records.iter().map(JobRecord::response).sum::<f64>() / records.len() as f64)
        };
    }

    fn observe_minute(&mut self, rho: f64) {
        self.planned = None; // the prediction is about to change
        self.predictor.observe(rho);
    }

    fn last_prediction(&self) -> f64 {
        self.last_prediction
    }

    fn last_selection(&self) -> Option<&Selection> {
        self.last_selection.as_ref()
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.snapshot_checkpoint(w, true);
    }

    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        self.restore_checkpoint(r, true)
    }
}

/// Race-to-halt (Section 6.1's R2H baselines): always run at `f = 1` and
/// drop into one fixed sleep state the moment the queue empties.
#[derive(Debug, Clone)]
pub struct RaceToHaltStrategy {
    label: String,
    policy: Policy,
}

impl RaceToHaltStrategy {
    /// R2H into `stage` (use [`sleepscale_power::presets::C3_S0I`] or
    /// [`sleepscale_power::presets::C6_S0I`] for the paper's R2H(C3) and
    /// R2H(C6)).
    pub fn new(stage: SleepStage) -> RaceToHaltStrategy {
        RaceToHaltStrategy {
            label: format!("R2H({})", stage.state().cpu().name()),
            policy: Policy::race_to_halt(stage),
        }
    }
}

impl Strategy for RaceToHaltStrategy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn begin_epoch(&mut self, _epoch: usize) -> Result<Policy, CoreError> {
        Ok(self.policy.clone())
    }

    fn end_epoch(&mut self, _records: &[JobRecord]) {}

    fn observe_minute(&mut self, _rho: f64) {}

    fn wants_epoch_records(&self) -> bool {
        false
    }
}

/// A fixed policy applied every epoch — the static baselines of
/// Section 4 and ablation studies.
#[derive(Debug, Clone)]
pub struct FixedPolicyStrategy {
    label: String,
    policy: Policy,
}

impl FixedPolicyStrategy {
    /// Deploys `policy` unconditionally.
    pub fn new(policy: Policy) -> FixedPolicyStrategy {
        FixedPolicyStrategy { label: format!("Fixed[{}]", policy.label()), policy }
    }
}

impl Strategy for FixedPolicyStrategy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn begin_epoch(&mut self, _epoch: usize) -> Result<Policy, CoreError> {
        Ok(self.policy.clone())
    }

    fn end_epoch(&mut self, _records: &[JobRecord]) {}

    fn observe_minute(&mut self, _rho: f64) {}

    fn wants_epoch_records(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::QosConstraint;
    use sleepscale_power::{presets, SystemState};

    fn config() -> RuntimeConfig {
        RuntimeConfig::builder(0.194)
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .eval_jobs(500)
            .build()
            .unwrap()
    }

    fn record(arrival: f64, response_end: f64) -> JobRecord {
        JobRecord {
            id: 0,
            arrival,
            start: arrival,
            departure: response_end,
            size: 0.194,
            service: 0.194,
            wake: 0.0,
        }
    }

    #[test]
    fn cold_start_runs_full_speed_with_deep_sleep() {
        let mut s = SleepScaleStrategy::new(&config(), CandidateSet::standard());
        let p = s.begin_epoch(0).unwrap();
        assert_eq!(p.frequency().get(), 1.0);
        // Deepest program of the standard set: an idle cold server must
        // not burn operating power.
        assert_eq!(p.program().label(), "C6S3");
        assert!(s.last_selection().is_none());
    }

    #[test]
    fn warm_strategy_selects_from_log() {
        let mut s = SleepScaleStrategy::new(&config(), CandidateSet::standard()).with_alpha(0.0);
        // Warm the log at ρ ≈ 0.2 and the predictor at 0.2.
        let records: Vec<JobRecord> =
            (0..400).map(|i| record(i as f64 * 0.97, i as f64 * 0.97 + 0.2)).collect();
        s.end_epoch(&records);
        for _ in 0..30 {
            s.observe_minute(0.2);
        }
        let p = s.begin_epoch(1).unwrap();
        assert!(p.frequency().get() < 1.0, "should scale down at ρ=0.2, got {p}");
        let sel = s.last_selection().unwrap();
        assert!(sel.feasible);
        assert!((s.last_prediction() - 0.2).abs() < 0.05);
    }

    #[test]
    fn over_provisioning_raises_frequency_when_within_budget() {
        let mk = |alpha| {
            let mut s =
                SleepScaleStrategy::new(&config(), CandidateSet::standard()).with_alpha(alpha);
            let records: Vec<JobRecord> =
                (0..400).map(|i| record(i as f64 * 0.97, i as f64 * 0.97 + 0.2)).collect();
            s.end_epoch(&records); // mean delay 0.2 s < budget 0.97 s
            for _ in 0..30 {
                s.observe_minute(0.2);
            }
            s.begin_epoch(1).unwrap().frequency().get()
        };
        let base = mk(0.0);
        let boosted = mk(0.35);
        assert!(
            (boosted - base * 1.35).abs() < 1e-9 || (boosted - 1.0).abs() < 1e-9,
            "α=0.35 should scale frequency: base {base}, boosted {boosted}"
        );
        assert!(boosted > base);
    }

    #[test]
    fn over_provisioning_skipped_when_over_budget() {
        let mut s = SleepScaleStrategy::new(&config(), CandidateSet::standard()).with_alpha(0.35);
        // Past epoch blew the budget (responses ≈ 2 s > 0.97 s).
        let records: Vec<JobRecord> =
            (0..400).map(|i| record(i as f64 * 0.97, i as f64 * 0.97 + 2.0)).collect();
        s.end_epoch(&records);
        for _ in 0..30 {
            s.observe_minute(0.2);
        }
        let with_alpha = s.begin_epoch(1).unwrap().frequency().get();

        let mut s0 = SleepScaleStrategy::new(&config(), CandidateSet::standard()).with_alpha(0.0);
        let records: Vec<JobRecord> =
            (0..400).map(|i| record(i as f64 * 0.97, i as f64 * 0.97 + 2.0)).collect();
        s0.end_epoch(&records);
        for _ in 0..30 {
            s0.observe_minute(0.2);
        }
        let without = s0.begin_epoch(1).unwrap().frequency().get();
        assert!((with_alpha - without).abs() < 1e-9, "no boost when over budget");
    }

    #[test]
    fn race_to_halt_is_constant_full_speed() {
        let mut s = RaceToHaltStrategy::new(presets::C6_S0I);
        assert_eq!(s.name(), "R2H(C6)");
        let p = s.begin_epoch(0).unwrap();
        assert_eq!(p.frequency().get(), 1.0);
        assert_eq!(p.program().stages()[0].state(), SystemState::C6_S0I);
        s.observe_minute(0.9);
        s.end_epoch(&[]);
        assert_eq!(s.begin_epoch(5).unwrap(), p);
        assert!(!s.wants_epoch_records(), "R2H discards records");
    }

    #[test]
    fn record_appetite_follows_whether_end_epoch_reads_them() {
        assert!(SleepScaleStrategy::new(&config(), CandidateSet::standard()).wants_epoch_records());
        assert!(!FixedPolicyStrategy::new(Policy::full_speed_no_sleep()).wants_epoch_records());
    }

    #[test]
    fn fixed_policy_strategy() {
        let policy = Policy::full_speed_no_sleep();
        let mut s = FixedPolicyStrategy::new(policy.clone());
        assert!(s.name().contains("Fixed"));
        assert_eq!(s.begin_epoch(0).unwrap(), policy);
        assert_eq!(s.last_prediction(), 0.0);
    }

    #[test]
    fn predictor_swap_changes_label() {
        let s = SleepScaleStrategy::new(&config(), CandidateSet::standard())
            .with_predictor(Box::new(sleepscale_predict::NaivePrevious::new()));
        assert!(s.name().contains("NP"));
    }
}
