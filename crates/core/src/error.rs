use std::error::Error;
use std::fmt;

/// Errors from the SleepScale policy manager and runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration field is out of range.
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The policy manager had nothing to work with (empty job log and no
    /// fallback) or no stable candidate existed.
    NoFeasiblePolicy {
        /// Human-readable reason.
        reason: String,
    },
    /// Propagated workload error.
    Workload(sleepscale_workloads::WorkloadError),
    /// Propagated power-model error.
    Power(sleepscale_power::PowerError),
    /// A checkpoint/resume operation failed: journal I/O, corrupt
    /// snapshot bytes, or a header mismatch (schema/seed/config). The
    /// reason preserves the journal error's Display form, whose stable
    /// substrings ("schema mismatch", "seed mismatch", "config
    /// mismatch") callers may match on.
    Checkpoint {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::NoFeasiblePolicy { reason } => write!(f, "no feasible policy: {reason}"),
            CoreError::Workload(e) => write!(f, "workload error: {e}"),
            CoreError::Power(e) => write!(f, "power model error: {e}"),
            CoreError::Checkpoint { reason } => write!(f, "checkpoint error: {reason}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Workload(e) => Some(e),
            CoreError::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sleepscale_workloads::WorkloadError> for CoreError {
    fn from(e: sleepscale_workloads::WorkloadError) -> CoreError {
        CoreError::Workload(e)
    }
}

impl From<sleepscale_power::PowerError> for CoreError {
    fn from(e: sleepscale_power::PowerError) -> CoreError {
        CoreError::Power(e)
    }
}

impl From<sleepscale_journal::JournalError> for CoreError {
    fn from(e: sleepscale_journal::JournalError) -> CoreError {
        CoreError::Checkpoint { reason: e.to_string() }
    }
}

impl From<sleepscale_journal::CodecError> for CoreError {
    fn from(e: sleepscale_journal::CodecError) -> CoreError {
        CoreError::Checkpoint { reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::InvalidConfig { reason: "bad".into() };
        assert!(e.to_string().contains("bad"));
        let e: CoreError = sleepscale_power::PowerError::InvalidFrequency { value: 2.0 }.into();
        assert!(e.source().is_some());
        let e: CoreError =
            sleepscale_workloads::WorkloadError::InvalidTrace { reason: "x".into() }.into();
        assert!(e.to_string().contains("workload"));
    }
}
