use serde::{Deserialize, Serialize};
use sleepscale_dist::StreamingSummary;
use sleepscale_power::{ep, EnergyProportionality, PowerSample, SystemState};

/// One epoch's record in a runtime evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// First trace minute of the epoch.
    pub start_minute: usize,
    /// The strategy's utilization prediction for the epoch.
    pub predicted_rho: f64,
    /// Mean trace utilization realized over the epoch.
    pub realized_rho: f64,
    /// The deployed policy's display label.
    pub policy_label: String,
    /// The deployed frequency setting.
    pub frequency: f64,
    /// The sleep program's label (e.g. `"C6S0(i)"`).
    pub program_label: String,
    /// Whether the manager's selection met the QoS constraint on its
    /// characterization (true for non-managed strategies).
    pub feasible: bool,
    /// Candidate policies simulated for this epoch's selection (0 for
    /// non-managed strategies and for characterization-cache hits).
    pub evaluated: usize,
    /// Arrivals in the epoch.
    pub arrivals: usize,
    /// Mean response time of this epoch's arrivals, in seconds.
    pub mean_response: f64,
    /// Average power over the epoch, in watts.
    pub power_watts: f64,
    /// Committed work overhanging the epoch boundary, in seconds.
    pub backlog_seconds: f64,
}

impl sleepscale_journal::Snapshot for EpochReport {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_usize(self.epoch);
        w.put_usize(self.start_minute);
        w.put_f64(self.predicted_rho);
        w.put_f64(self.realized_rho);
        w.put_str(&self.policy_label);
        w.put_f64(self.frequency);
        w.put_str(&self.program_label);
        w.put_bool(self.feasible);
        w.put_usize(self.evaluated);
        w.put_usize(self.arrivals);
        w.put_f64(self.mean_response);
        w.put_f64(self.power_watts);
        w.put_f64(self.backlog_seconds);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<EpochReport, sleepscale_journal::CodecError> {
        Ok(EpochReport {
            epoch: r.get_usize()?,
            start_minute: r.get_usize()?,
            predicted_rho: r.get_f64()?,
            realized_rho: r.get_f64()?,
            policy_label: r.get_string()?,
            frequency: r.get_f64()?,
            program_label: r.get_string()?,
            feasible: r.get_bool()?,
            evaluated: r.get_usize()?,
            arrivals: r.get_usize()?,
            mean_response: r.get_f64()?,
            power_watts: r.get_f64()?,
            backlog_seconds: r.get_f64()?,
        })
    }
}

/// Aggregate result of a runtime evaluation over a trace —
/// what Figures 8–10 report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    strategy: String,
    epochs: Vec<EpochReport>,
    total_jobs: usize,
    mean_response: f64,
    p95_response: f64,
    mean_service: f64,
    avg_power: f64,
    energy_joules: f64,
    horizon_seconds: f64,
    wakes_from: Vec<(SystemState, u64)>,
    responses: StreamingSummary,
    class_responses: Vec<StreamingSummary>,
    active_energy_joules: f64,
    class_active_energy: Vec<f64>,
    power_samples: Vec<PowerSample>,
}

impl RunReport {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        strategy: String,
        epochs: Vec<EpochReport>,
        total_jobs: usize,
        mean_response: f64,
        p95_response: f64,
        mean_service: f64,
        avg_power: f64,
        energy_joules: f64,
        horizon_seconds: f64,
        wakes_from: Vec<(SystemState, u64)>,
        responses: StreamingSummary,
        class_responses: Vec<StreamingSummary>,
    ) -> RunReport {
        RunReport {
            strategy,
            epochs,
            total_jobs,
            mean_response,
            p95_response,
            mean_service,
            avg_power,
            energy_joules,
            horizon_seconds,
            wakes_from,
            responses,
            class_responses,
            active_energy_joules: 0.0,
            class_active_energy: Vec::new(),
            power_samples: Vec::new(),
        }
    }

    /// Attaches the ledger's exact energy split: total active (serving)
    /// energy, its per-class slices, and the per-bucket
    /// utilization→power samples.
    pub(crate) fn with_energy_split(
        mut self,
        active_energy_joules: f64,
        class_active_energy: Vec<f64>,
        power_samples: Vec<PowerSample>,
    ) -> RunReport {
        self.active_energy_joules = active_energy_joules;
        self.class_active_energy = class_active_energy;
        self.power_samples = power_samples;
        self
    }

    /// Strategy display name.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Per-epoch details.
    pub fn epochs(&self) -> &[EpochReport] {
        &self.epochs
    }

    /// Total jobs completed.
    pub fn total_jobs(&self) -> usize {
        self.total_jobs
    }

    /// Job-weighted mean response time, seconds.
    pub fn mean_response_seconds(&self) -> f64 {
        self.mean_response
    }

    /// The paper's normalized mean response `µ·E[R]`.
    pub fn normalized_mean_response(&self) -> f64 {
        self.mean_response / self.mean_service
    }

    /// 95th-percentile response across all jobs, seconds.
    pub fn p95_response_seconds(&self) -> f64 {
        self.p95_response
    }

    /// Average power over the whole horizon, watts.
    pub fn avg_power_watts(&self) -> f64 {
        self.avg_power
    }

    /// Total energy, joules.
    pub fn energy_joules(&self) -> f64 {
        self.energy_joules
    }

    /// Active (serving) energy in joules: the slice of
    /// [`RunReport::energy_joules`] spent executing jobs, exactly
    /// attributed by the engine's ledger.
    pub fn active_energy_joules(&self) -> f64 {
        self.active_energy_joules
    }

    /// Idle-side energy in joules — idle, sleep, and wake-up intervals
    /// that belong to no job. Defined as `total − active`, so the two
    /// line items always reproduce the total.
    pub fn idle_energy_joules(&self) -> f64 {
        self.energy_joules - self.active_energy_joules
    }

    /// Per-class active energy in joules, indexed by class tag. For an
    /// untagged (or effectively single-class) run this is a one-entry
    /// vector holding all active energy under tag 0 — unlike response
    /// slices, energy attribution is always on, because the tagged and
    /// untagged ledger paths are byte-identical.
    pub fn class_active_energy(&self) -> &[f64] {
        &self.class_active_energy
    }

    /// Per-bucket `(utilization, average power)` samples from the
    /// energy ledger — the measured utilization→power relationship.
    pub fn power_samples(&self) -> &[PowerSample] {
        &self.power_samples
    }

    /// Energy-proportionality summary over this run's power samples
    /// (`None` when undefined — e.g. a run that never served a job).
    pub fn energy_proportionality(&self) -> Option<EnergyProportionality> {
        ep::analyze(&self.power_samples)
    }

    /// The run's utilization→power curve, binned into `bins`
    /// fixed-width utilization bins.
    pub fn utilization_power_curve(&self, bins: usize) -> Vec<PowerSample> {
        ep::utilization_power_curve(&self.power_samples, bins)
    }

    /// Evaluation horizon, seconds.
    pub fn horizon_seconds(&self) -> f64 {
        self.horizon_seconds
    }

    /// Wake-up counts per sleep state over the whole run.
    pub fn wakes_from(&self) -> &[(SystemState, u64)] {
        &self.wakes_from
    }

    /// The run's response distribution as a mergeable streaming summary
    /// (exact count/mean, sketched quantiles) — what fleet- and
    /// scenario-level reports fold per-run results into.
    pub fn responses(&self) -> &StreamingSummary {
        &self.responses
    }

    /// Per-traffic-class response summaries, indexed by
    /// [`ClassId`](sleepscale_sim::ClassId) — **empty for untagged
    /// runs** (a stream whose jobs all carry the default class keeps
    /// per-class accounting switched off entirely, which is what makes
    /// a single-class tagged run byte-identical to the untagged path;
    /// its "class 0" slice *is* [`RunReport::responses`]).
    pub fn class_responses(&self) -> &[StreamingSummary] {
        &self.class_responses
    }

    /// How often each sleep program was deployed, as
    /// `(program label, epoch count)` pairs sorted by descending count —
    /// Figure 10's distribution of selected low-power states.
    pub fn program_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for e in &self.epochs {
            match counts.iter_mut().find(|(label, _)| *label == e.program_label) {
                Some(entry) => entry.1 += 1,
                None => counts.push((e.program_label.clone(), 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts
    }

    /// Same histogram normalized to fractions of epochs.
    pub fn program_fractions(&self) -> Vec<(String, f64)> {
        let total = self.epochs.len().max(1) as f64;
        self.program_histogram().into_iter().map(|(label, n)| (label, n as f64 / total)).collect()
    }

    /// Total candidate policies simulated across every epoch's
    /// selection — the characterization cost the pruned search and
    /// cache reduce (`sweep_speedup` reports the ratio against the
    /// exhaustive sweep).
    pub fn total_evaluated(&self) -> usize {
        self.epochs.iter().map(|e| e.evaluated).sum()
    }

    /// Mean absolute utilization prediction error across epochs.
    pub fn mean_prediction_error(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| (e.predicted_rho - e.realized_rho).abs()).sum::<f64>()
            / self.epochs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epoch(i: usize, program: &str, pred: f64, real: f64) -> EpochReport {
        EpochReport {
            epoch: i,
            start_minute: i * 5,
            predicted_rho: pred,
            realized_rho: real,
            policy_label: format!("f=0.5 {program}"),
            frequency: 0.5,
            program_label: program.to_string(),
            feasible: true,
            evaluated: 7,
            arrivals: 10,
            mean_response: 0.2,
            power_watts: 80.0,
            backlog_seconds: 0.0,
        }
    }

    fn report(epochs: Vec<EpochReport>) -> RunReport {
        RunReport::new(
            "SS".into(),
            epochs,
            100,
            0.2,
            0.5,
            0.194,
            80.0,
            1000.0,
            3600.0,
            vec![(SystemState::C6_S0I, 42)],
            StreamingSummary::new(),
            Vec::new(),
        )
    }

    #[test]
    fn histogram_counts_programs() {
        let r = report(vec![
            epoch(0, "C6S0(i)", 0.2, 0.25),
            epoch(1, "C6S0(i)", 0.3, 0.3),
            epoch(2, "C0(i)S0(i)", 0.1, 0.15),
        ]);
        let h = r.program_histogram();
        assert_eq!(h[0], ("C6S0(i)".to_string(), 2));
        assert_eq!(h[1], ("C0(i)S0(i)".to_string(), 1));
        let f = r.program_fractions();
        assert!((f[0].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_response_and_prediction_error() {
        let r = report(vec![epoch(0, "C6S3", 0.2, 0.3), epoch(1, "C6S3", 0.4, 0.3)]);
        assert!((r.normalized_mean_response() - 0.2 / 0.194).abs() < 1e-12);
        assert!((r.mean_prediction_error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_report_degrades() {
        let r = report(vec![]);
        assert_eq!(r.mean_prediction_error(), 0.0);
        assert!(r.program_histogram().is_empty());
        assert_eq!(r.wakes_from()[0].1, 42);
    }

    /// The energy split's two line items always reproduce the total,
    /// and the EP summary comes straight from the attached samples.
    #[test]
    fn energy_split_line_items_sum_to_total() {
        let samples = vec![
            PowerSample { utilization: 0.0, watts: 30.0 },
            PowerSample { utilization: 0.5, watts: 150.0 },
            PowerSample { utilization: 1.0, watts: 250.0 },
        ];
        let r = report(vec![epoch(0, "C6S3", 0.2, 0.3)]).with_energy_split(
            600.0,
            vec![400.0, 200.0],
            samples,
        );
        assert_eq!(r.active_energy_joules(), 600.0);
        assert_eq!(r.idle_energy_joules(), 400.0);
        assert!(
            (r.active_energy_joules() + r.idle_energy_joules() - r.energy_joules()).abs() < 1e-12
        );
        assert_eq!(r.class_active_energy(), [400.0, 200.0]);
        let ep = r.energy_proportionality().unwrap();
        assert_eq!(ep.peak_watts, 250.0);
        assert_eq!(ep.idle_watts, 30.0);
        assert_eq!(r.utilization_power_curve(4).len(), 3);
        // Without samples the metric is undefined, not fabricated.
        assert!(report(vec![]).energy_proportionality().is_none());
    }
}
