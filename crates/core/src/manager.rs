use crate::candidates::CandidateSet;
use crate::error::CoreError;
use crate::qos::QosConstraint;
use serde::{Deserialize, Serialize};
use sleepscale_power::Policy;
use sleepscale_sim::{sweep, JobStream, SimEnv};
use sleepscale_workloads::JobLog;

/// The policy manager (Section 5.1): characterizes every candidate
/// policy by simulating the logged workload at the predicted utilization
/// and picks the minimum-power policy meeting the QoS constraint.
#[derive(Debug, Clone)]
pub struct PolicyManager {
    env: SimEnv,
    qos: QosConstraint,
    candidates: CandidateSet,
    mean_service: f64,
    eval_jobs: usize,
}

/// What the manager decided for an epoch, with its predicted metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen policy.
    pub policy: Policy,
    /// Predicted average power (W) for the epoch.
    pub predicted_power: f64,
    /// Predicted normalized mean response.
    pub predicted_norm_response: f64,
    /// Whether the prediction met the QoS constraint (false means the
    /// manager fell back to the least-bad candidate).
    pub feasible: bool,
    /// How many candidate policies were simulated.
    pub evaluated: usize,
}

impl PolicyManager {
    /// Builds a manager.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive mean
    /// service time or zero evaluation length.
    pub fn new(
        env: SimEnv,
        qos: QosConstraint,
        candidates: CandidateSet,
        mean_service: f64,
        eval_jobs: usize,
    ) -> Result<PolicyManager, CoreError> {
        if !mean_service.is_finite() || mean_service <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("mean service {mean_service} must be finite and > 0"),
            });
        }
        if eval_jobs == 0 {
            return Err(CoreError::InvalidConfig { reason: "eval_jobs must be at least 1".into() });
        }
        Ok(PolicyManager { env, qos, candidates, mean_service, eval_jobs })
    }

    /// Selects a policy from a runtime job log, rescaled to the
    /// predicted utilization (Section 5.2.1's log replay).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Workload`] when the log is empty or the
    /// prediction is degenerate.
    pub fn select_from_log(&self, log: &JobLog, rho_pred: f64) -> Result<Selection, CoreError> {
        let rho = rho_pred.clamp(0.01, 0.95);
        let stream = log.replay(self.eval_jobs, rho)?;
        Ok(self.select_from_stream(&stream, rho))
    }

    /// Selects a policy for an explicit characterization stream (used by
    /// the figure harness and by callers that build their own replays).
    pub fn select_from_stream(&self, stream: &JobStream, rho_pred: f64) -> Selection {
        let policies = self.candidates.policies_for(rho_pred);
        let evals = sweep::evaluate_policies(stream, &policies, &self.env);
        let evaluated = evals.len();

        let mut best_feasible: Option<(&sweep::PolicyEvaluation, f64)> = None;
        let mut best_score = f64::INFINITY;
        for e in &evals {
            let power = e.outcome.avg_power().as_watts();
            if self.qos.satisfied_by(&e.outcome, self.mean_service)
                && best_feasible.as_ref().is_none_or(|(_, p)| power < *p)
            {
                best_feasible = Some((e, power));
            }
            best_score = best_score.min(self.qos.score(&e.outcome, self.mean_service));
        }
        // Fallback when nothing meets the budget: among the candidates
        // within 5% of the best achievable score, take the cheapest.
        // Pure score-minimization would pick C0(i)S0(i) at f = 1 (zero
        // wake) and waste ~60 W of idle power over near-identical
        // response.
        let least_bad = evals
            .iter()
            .filter(|e| self.qos.score(&e.outcome, self.mean_service) <= best_score * 1.05 + 1e-9)
            .min_by(|a, b| {
                a.outcome
                    .avg_power()
                    .partial_cmp(&b.outcome.avg_power())
                    .expect("powers are finite")
            });

        let (chosen, feasible) = match (best_feasible, least_bad) {
            (Some((e, _)), _) => (e, true),
            (None, Some(e)) => (e, false),
            (None, None) => unreachable!("candidate sets are never empty"),
        };
        Selection {
            policy: chosen.policy.clone(),
            predicted_power: chosen.outcome.avg_power().as_watts(),
            predicted_norm_response: chosen.outcome.normalized_mean_response(self.mean_service),
            feasible,
            evaluated,
        }
    }

    /// The QoS constraint in force.
    pub fn qos(&self) -> QosConstraint {
        self.qos
    }

    /// The candidate set searched.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// The workload's full-speed mean service time `1/µ`.
    pub fn mean_service(&self) -> f64 {
        self.mean_service
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sleepscale_sim::generator;

    const MEAN_SERVICE: f64 = 0.194;

    fn manager(candidates: CandidateSet, rho_b: f64) -> PolicyManager {
        PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(rho_b).unwrap(),
            candidates,
            MEAN_SERVICE,
            2000,
        )
        .unwrap()
    }

    fn stream(rho: f64, seed: u64) -> JobStream {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generator::generate_poisson_exp(4000, rho, MEAN_SERVICE, &mut rng).unwrap()
    }

    #[test]
    fn selection_meets_qos_on_its_characterization() {
        let m = manager(CandidateSet::standard(), 0.8);
        let s = m.select_from_stream(&stream(0.2, 1), 0.2);
        assert!(s.feasible);
        assert!(s.predicted_norm_response <= 5.0 + 1e-9);
        assert!(s.evaluated > 50);
    }

    #[test]
    fn wider_candidate_sets_never_pick_worse_power() {
        let full = manager(CandidateSet::standard(), 0.8);
        let restricted =
            manager(CandidateSet::single_state(sleepscale_power::SystemState::C3_S0I), 0.8);
        for (rho, seed) in [(0.1, 2), (0.3, 3), (0.6, 4)] {
            let st = stream(rho, seed);
            let s_full = full.select_from_stream(&st, rho);
            let s_restricted = restricted.select_from_stream(&st, rho);
            assert!(
                s_full.predicted_power <= s_restricted.predicted_power + 1e-9,
                "rho={rho}: SS {} W > SS(C3) {} W",
                s_full.predicted_power,
                s_restricted.predicted_power
            );
        }
    }

    #[test]
    fn tighter_qos_selects_higher_frequency() {
        let loose = manager(CandidateSet::standard(), 0.8);
        let tight = manager(CandidateSet::standard(), 0.6);
        let st = stream(0.5, 5);
        let f_loose = loose.select_from_stream(&st, 0.5).policy.frequency().get();
        let f_tight = tight.select_from_stream(&st, 0.5).policy.frequency().get();
        assert!(
            f_tight >= f_loose,
            "tight budget should not pick a slower clock: {f_tight} vs {f_loose}"
        );
    }

    #[test]
    fn infeasible_budget_falls_back_to_least_bad() {
        // ρ close to 1 at the grid's top: nothing meets a tight budget.
        let m = PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(0.05).unwrap(), // budget ≈ 1.05
            CandidateSet::standard(),
            MEAN_SERVICE,
            2000,
        )
        .unwrap();
        let s = m.select_from_stream(&stream(0.7, 6), 0.7);
        assert!(!s.feasible);
        // The least-bad fallback runs fast.
        assert!(s.policy.frequency().get() >= 0.9);
    }

    #[test]
    fn select_from_log_replays_at_prediction() {
        let mut log = JobLog::new(5000);
        for _ in 0..500 {
            log.push(1.0, 0.194);
        }
        let m = manager(CandidateSet::standard(), 0.8);
        let s = m.select_from_log(&log, 0.15).unwrap();
        assert!(s.feasible);
        // Log empty → error.
        let empty = JobLog::new(10);
        assert!(m.select_from_log(&empty, 0.15).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(0.8).unwrap(),
            CandidateSet::standard(),
            0.0,
            100,
        )
        .is_err());
        assert!(PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(0.8).unwrap(),
            CandidateSet::standard(),
            0.1,
            0,
        )
        .is_err());
    }
}
