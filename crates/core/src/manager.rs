//! The per-epoch characterize-and-select step (Section 5.1), plus the
//! two optimizations that make it cheap enough for production epochs:
//!
//! * **Pruned search** ([`SearchMode::CoarseToFine`]): instead of
//!   simulating every (frequency, program) pair, each program's
//!   frequency axis is searched by bracketing the power minimum on a
//!   coarse subsample and refining only the winning bracket, then
//!   binary-searching the QoS-feasibility boundary when the bottom of
//!   the bowl is infeasible. This is *exact* (picks the same candidate
//!   as the exhaustive sweep) whenever power is unimodal in `f` and the
//!   QoS score is monotone non-increasing in `f` on the replay stream —
//!   the bowl structure of the paper's Figure 1 and the
//!   common-random-numbers monotonicity the engine's property tests
//!   establish. Simulation noise can dent either assumption, so it is a
//!   *heuristic* in general; the cross-crate property suite bounds the
//!   damage to within 1% of the exhaustive sweep's power.
//! * **Selection caching** ([`CharacterizationCache`]): selections are
//!   memoized under (quantized `ρ̂`, coarse log signature). The manager
//!   quantizes the prediction to [`RHO_QUANTUM`] *before* replaying, so
//!   a hit returns exactly what recomputation would return whenever the
//!   log signature still matches; across epochs the log's contents
//!   churn while its signature doesn't, making hits heuristic to
//!   precisely the degree the diurnal-similarity assumption holds.

use crate::cache::{CacheKey, CharacterizationCache, DEFAULT_CACHE_CAPACITY};
use crate::candidates::CandidateSet;
use crate::error::CoreError;
use crate::qos::QosConstraint;
use serde::{Deserialize, Serialize};
use sleepscale_power::{Frequency, Policy, SleepProgram};
use sleepscale_sim::{simulate_summary_into, sweep, JobStream, SimEnv, SimOutcome, SimScratch};
use sleepscale_workloads::JobLog;

/// Bucket width for the predicted utilization in cache keys. The
/// manager rounds `ρ̂` to this grid before replaying, so every cached
/// selection is exact for its bucket; 0.02 is well inside the paper's
/// own prediction error while keeping a diurnal day to a few dozen
/// distinct buckets.
pub const RHO_QUANTUM: f64 = 0.02;

/// An opaque handle to the characterization a manager *would* perform
/// for a given (log, prediction) pair — the cache key, without the
/// work. Fleet engines use it to elect one owner per distinct missing
/// key before fanning `begin_epoch` out across threads, so exactly one
/// server performs each real sweep regardless of worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CharacterizationKey(pub(crate) CacheKey);

/// Counters for the cross-epoch warm-start of the coarse-to-fine
/// search: how many per-program bowl searches ran, and how many of them
/// started from a remembered bottom instead of a cold bracket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WarmStartStats {
    /// Program searches seeded from a previous epoch's bowl bottom.
    pub warm: u64,
    /// Total program searches performed by `select_from_log`.
    pub searches: u64,
    /// QoS-feasibility boundary searches resolved by verifying the
    /// previous epoch's remembered boundary (two probes) instead of a
    /// cold binary search (each hit saves ~2–4 evaluations).
    pub boundary_hits: u64,
    /// Total boundary searches (bowl bottom infeasible but some faster
    /// frequency feasible).
    pub boundary_searches: u64,
}

impl WarmStartStats {
    /// Fraction of searches that were warm-started (0 when none ran).
    pub fn warm_rate(&self) -> f64 {
        if self.searches == 0 {
            0.0
        } else {
            self.warm as f64 / self.searches as f64
        }
    }

    /// Fraction of boundary searches answered from the remembered
    /// boundary (0 when none ran).
    pub fn boundary_hit_rate(&self) -> f64 {
        if self.boundary_searches == 0 {
            0.0
        } else {
            self.boundary_hits as f64 / self.boundary_searches as f64
        }
    }

    /// Adds another manager's counters in (fleet aggregation).
    pub fn merge(&mut self, other: WarmStartStats) {
        self.warm += other.warm;
        self.searches += other.searches;
        self.boundary_hits += other.boundary_hits;
        self.boundary_searches += other.boundary_searches;
    }
}

/// The coarse-to-fine search's cross-epoch memory: the last-seen bowl
///-bottom *frequency* per program, plus the last-seen QoS-feasibility
/// boundary frequency per program (the smallest feasible frequency
/// above an infeasible bowl bottom). Stored as frequencies (not grid
/// indices) because the grid itself moves with the predicted
/// utilization.
#[derive(Debug, Clone, Default)]
struct WarmStart {
    bottoms: Vec<Option<f64>>,
    boundaries: Vec<Option<f64>>,
    stats: WarmStartStats,
}

/// How the policy manager explores the candidate grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SearchMode {
    /// Simulate every (frequency, program) candidate — the paper's
    /// literal Algorithm 1, and the reference the pruned mode is tested
    /// against.
    Exhaustive,
    /// Per program: bracket the power minimum on a coarse frequency
    /// subsample, refine only the winning bracket, and binary-search
    /// the feasibility boundary if the bowl bottom violates QoS. Far
    /// fewer `simulate` calls than `|grid| × |programs|`; exact under
    /// the bowl-convexity and response-monotonicity assumptions (see
    /// the [module docs](self)).
    CoarseToFine,
}

/// The policy manager (Section 5.1): characterizes candidate policies
/// by simulating the logged workload at the predicted utilization and
/// picks the minimum-power policy meeting the QoS constraint.
///
/// Cloning a manager shares its [`CharacterizationCache`] handle (the
/// cache is reference-counted); everything else is copied.
#[derive(Debug, Clone)]
pub struct PolicyManager {
    env: SimEnv,
    qos: QosConstraint,
    candidates: CandidateSet,
    mean_service: f64,
    eval_jobs: usize,
    search: SearchMode,
    cache: Option<CharacterizationCache>,
    replay_scratch: JobStream,
    warm: WarmStart,
}

/// What the manager decided for an epoch, with its predicted metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// The chosen policy.
    pub policy: Policy,
    /// Predicted average power (W) for the epoch.
    pub predicted_power: f64,
    /// Predicted normalized mean response.
    pub predicted_norm_response: f64,
    /// Whether the prediction met the QoS constraint (false means the
    /// manager fell back to the least-bad candidate).
    pub feasible: bool,
    /// How many candidate policies were simulated for this selection
    /// (0 when the selection came from the characterization cache).
    pub evaluated: usize,
}

impl PolicyManager {
    /// Builds a manager with the default pruned search
    /// ([`SearchMode::CoarseToFine`]) and a private characterization
    /// cache.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a non-positive mean
    /// service time or zero evaluation length.
    pub fn new(
        env: SimEnv,
        qos: QosConstraint,
        candidates: CandidateSet,
        mean_service: f64,
        eval_jobs: usize,
    ) -> Result<PolicyManager, CoreError> {
        if !mean_service.is_finite() || mean_service <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("mean service {mean_service} must be finite and > 0"),
            });
        }
        if eval_jobs == 0 {
            return Err(CoreError::InvalidConfig { reason: "eval_jobs must be at least 1".into() });
        }
        Ok(PolicyManager {
            env,
            qos,
            candidates,
            mean_service,
            eval_jobs,
            search: SearchMode::CoarseToFine,
            cache: Some(CharacterizationCache::new(DEFAULT_CACHE_CAPACITY)),
            replay_scratch: JobStream::default(),
            warm: WarmStart::default(),
        })
    }

    /// Replaces the grid-search mode.
    pub fn with_search_mode(mut self, mode: SearchMode) -> PolicyManager {
        self.search = mode;
        self
    }

    /// Shares `cache` with this manager (a cluster hands every server's
    /// manager one handle so homogeneous servers characterize once).
    pub fn with_cache(mut self, cache: CharacterizationCache) -> PolicyManager {
        self.cache = Some(cache);
        self
    }

    /// Disables selection caching: every `select_from_log` re-replays
    /// and re-characterizes, and the prediction is *not* quantized.
    pub fn without_cache(mut self) -> PolicyManager {
        self.cache = None;
        self
    }

    /// The search mode in force.
    pub fn search_mode(&self) -> SearchMode {
        self.search
    }

    /// The characterization cache, if caching is enabled.
    pub fn cache(&self) -> Option<&CharacterizationCache> {
        self.cache.as_ref()
    }

    /// The cache key `select_from_log` would use for this (log,
    /// prediction) pair, or `None` when the call could not be served
    /// from (or stored into) the cache — caching disabled, degenerate
    /// prediction, or an empty log (which `select_from_log` rejects).
    ///
    /// Fleet engines call this before fanning epoch control out across
    /// threads: grouping servers by key and electing the first server
    /// of each missing key as its computer makes the shared cache's
    /// contents independent of worker count and scheduling.
    pub fn plan_key(&self, log: &JobLog, rho_pred: f64) -> Option<CharacterizationKey> {
        (self.cache.is_some() && rho_pred.is_finite() && !log.is_empty()).then(|| {
            let rho = rho_pred.clamp(0.01, 0.95);
            CharacterizationKey(CacheKey {
                rho_bucket: (rho / RHO_QUANTUM).round() as u32,
                log_signature: log.coarse_signature(),
                search: self.search,
            })
        })
    }

    /// Whether a selection for `key` is already cached. Unlike a
    /// lookup through `select_from_log`, this does *not* touch the
    /// hit/miss counters — it is a planning peek, not a use.
    pub fn is_cached(&self, key: &CharacterizationKey) -> bool {
        self.cache.as_ref().is_some_and(|c| c.contains(key))
    }

    /// Counters for the coarse-to-fine search's cross-epoch warm-start
    /// (how often a program's bowl search started from a remembered
    /// bottom instead of a cold bracket).
    pub fn warm_start_stats(&self) -> WarmStartStats {
        self.warm.stats
    }

    /// Selects a policy from a runtime job log, rescaled to the
    /// predicted utilization (Section 5.2.1's log replay).
    ///
    /// With caching enabled the prediction is quantized to
    /// [`RHO_QUANTUM`] and the selection memoized under
    /// (`ρ̂` bucket, [`JobLog::coarse_signature`]); a hit performs zero
    /// simulations (`Selection::evaluated == 0`). The replay buffer is
    /// reused across calls, so a cache miss allocates no fresh stream.
    /// In [`SearchMode::CoarseToFine`], misses warm-start each
    /// program's bowl search from the bottom this manager found for
    /// that program in a previous epoch (load drifts slowly between
    /// epochs, so the remembered bottom is usually 1–3 descent steps
    /// from the new one).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Workload`] when the log is empty or the
    /// prediction is degenerate.
    pub fn select_from_log(&mut self, log: &JobLog, rho_pred: f64) -> Result<Selection, CoreError> {
        self.select_from_log_keyed(log, rho_pred, None)
    }

    /// [`PolicyManager::select_from_log`] with a pre-computed
    /// [`CharacterizationKey`] from [`PolicyManager::plan_key`], so the
    /// log signature is hashed once per epoch instead of once at
    /// planning time and again at selection time (fleet engines plan
    /// every server's key up front for owner election).
    ///
    /// `planned` must come from `plan_key` on the *same* `(log,
    /// rho_pred)` pair with no intervening log or configuration change —
    /// a stale key would alias another characterization. Passing `None`
    /// recomputes the key here.
    ///
    /// # Errors
    ///
    /// Same as [`PolicyManager::select_from_log`].
    pub fn select_from_log_keyed(
        &mut self,
        log: &JobLog,
        rho_pred: f64,
        planned: Option<CharacterizationKey>,
    ) -> Result<Selection, CoreError> {
        let mut rho = rho_pred.clamp(0.01, 0.95);
        // A non-finite prediction must reach the replay's validation
        // error, not be laundered into bucket 0 by the `as u32` cast.
        let key = match planned {
            Some(k) if self.cache.is_some() && rho_pred.is_finite() => {
                debug_assert_eq!(k.0.search, self.search, "planned key from another search mode");
                rho = (k.0.rho_bucket as f64 * RHO_QUANTUM).clamp(0.01, 0.95);
                Some(k.0)
            }
            _ => (self.cache.is_some() && rho_pred.is_finite()).then(|| {
                let bucket = (rho / RHO_QUANTUM).round() as u32;
                rho = (bucket as f64 * RHO_QUANTUM).clamp(0.01, 0.95);
                CacheKey {
                    rho_bucket: bucket,
                    log_signature: log.coarse_signature(),
                    search: self.search,
                }
            }),
        };
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(mut selection) = cache.get(key) {
                selection.evaluated = 0;
                return Ok(selection);
            }
        }
        let mut stream = std::mem::take(&mut self.replay_scratch);
        let replayed = log.replay_into(self.eval_jobs, rho, &mut stream);
        self.replay_scratch = stream;
        replayed?;
        let mut warm = std::mem::take(&mut self.warm);
        let selection = match self.search {
            SearchMode::Exhaustive => self.select_exhaustive(&self.replay_scratch, rho),
            SearchMode::CoarseToFine => {
                self.select_pruned_with(&self.replay_scratch, rho, &mut warm)
            }
        };
        self.warm = warm;
        if let (Some(cache), Some(key)) = (&self.cache, key) {
            cache.insert(key, selection.clone());
        }
        Ok(selection)
    }

    /// Selects a policy for an explicit characterization stream (used by
    /// the figure harness and by callers that build their own replays).
    /// Never consults the cache or the cross-epoch warm-start memory;
    /// honors the configured [`SearchMode`].
    pub fn select_from_stream(&self, stream: &JobStream, rho_pred: f64) -> Selection {
        match self.search {
            SearchMode::Exhaustive => self.select_exhaustive(stream, rho_pred),
            SearchMode::CoarseToFine => {
                self.select_pruned_with(stream, rho_pred, &mut WarmStart::default())
            }
        }
    }

    /// The paper's literal sweep: every candidate simulated, then the
    /// minimum-power feasible policy (or the least-bad fallback).
    fn select_exhaustive(&self, stream: &JobStream, rho_pred: f64) -> Selection {
        let policies = self.candidates.policies_for(rho_pred);
        let evals = sweep::evaluate_policies(stream, &policies, &self.env);
        let evaluated = evals.len();
        let refs: Vec<(&Policy, &SimOutcome)> =
            evals.iter().map(|e| (&e.policy, &e.outcome)).collect();
        self.pick(&refs, evaluated)
    }

    /// Coarse-to-fine pruned search (see the [module docs](self) for
    /// the exactness conditions). `warm` carries the cross-epoch
    /// per-program bowl-bottom memory: when it holds a bottom for a
    /// program, that program's search starts with a local descent from
    /// the remembered frequency instead of a cold bracket-and-refine
    /// pass; either way the bottom found this time is written back.
    fn select_pruned_with(
        &self,
        stream: &JobStream,
        rho_pred: f64,
        warm: &mut WarmStart,
    ) -> Selection {
        let grid: Vec<Frequency> = self.candidates.grid_for(rho_pred).iter().collect();
        let programs = self.candidates.programs();
        if warm.bottoms.len() != programs.len() {
            warm.bottoms = vec![None; programs.len()];
            warm.boundaries = vec![None; programs.len()];
        }
        let mut scratch = SimScratch::new();
        let mut evaluated = 0usize;
        // Every (policy, outcome) the search simulated, for the
        // least-bad fallback; indices of per-program winners.
        let mut evals: Vec<(Policy, SimOutcome)> = Vec::new();
        let mut winners: Vec<usize> = Vec::new();

        // The bowl bottoms of different programs sit close together
        // (the frequency/response trade dominates; the sleep program
        // mostly shifts the curve), so each program's search warm-starts
        // from its own bottom in the previous epoch when one is
        // remembered, else from the previous program's minimum, and
        // descends locally.
        let mut hint: Option<usize> = None;
        for (p, program) in programs.iter().enumerate() {
            let remembered = warm.bottoms[p].map(|f| nearest_grid_index(&grid, f));
            let boundary_hint = warm.boundaries[p].map(|f| nearest_grid_index(&grid, f));
            warm.stats.searches += 1;
            if remembered.is_some() {
                warm.stats.warm += 1;
            }
            let mut search = ProgramSearch {
                jobs: stream,
                env: &self.env,
                grid: &grid,
                program,
                memo: vec![None; grid.len()],
                evaluated: 0,
                scratch: &mut scratch,
            };
            let (bottom, winner) = search.run(
                &self.qos,
                self.mean_service,
                remembered.or(hint),
                boundary_hint,
                &mut warm.stats,
            );
            hint = Some(bottom);
            warm.bottoms[p] = Some(grid[bottom].get());
            // Remember the feasibility boundary only when one was
            // actually searched (an infeasible bottom with a feasible
            // faster frequency); a feasible bottom keeps the previous
            // memory — the boundary may return when load does.
            if let Some(w) = winner {
                if w != bottom {
                    warm.boundaries[p] = Some(grid[w].get());
                }
            }
            evaluated += search.evaluated;
            let memo = search.memo;
            for (i, outcome) in memo.into_iter().enumerate() {
                if let Some(outcome) = outcome {
                    if winner == Some(i) {
                        winners.push(evals.len());
                    }
                    evals.push((Policy::new(grid[i], program.clone()), outcome));
                }
            }
        }

        // Minimum power among the per-program feasible winners.
        let best_feasible = winners
            .iter()
            .map(|&i| &evals[i])
            .min_by(|a, b| a.1.avg_power().partial_cmp(&b.1.avg_power()).expect("finite power"));
        if let Some((policy, outcome)) = best_feasible {
            return Selection {
                policy: policy.clone(),
                predicted_power: outcome.avg_power().as_watts(),
                predicted_norm_response: outcome.normalized_mean_response(self.mean_service),
                feasible: true,
                evaluated,
            };
        }
        let refs: Vec<(&Policy, &SimOutcome)> = evals.iter().map(|(p, o)| (p, o)).collect();
        self.pick(&refs, evaluated)
    }

    /// Shared selection rule over a set of characterized candidates:
    /// minimum-power feasible policy, else the least-bad fallback —
    /// among the candidates within 5% of the best achievable QoS score,
    /// the cheapest. (Pure score-minimization would pick `C0(i)S0(i)`
    /// at `f = 1` — zero wake — and waste ~60 W of idle power over a
    /// near-identical response.)
    fn pick(&self, evals: &[(&Policy, &SimOutcome)], evaluated: usize) -> Selection {
        let mut best_feasible: Option<(usize, f64)> = None;
        let mut best_score = f64::INFINITY;
        for (i, (_, outcome)) in evals.iter().enumerate() {
            let power = outcome.avg_power().as_watts();
            if self.qos.satisfied_by(outcome, self.mean_service)
                && best_feasible.as_ref().is_none_or(|(_, p)| power < *p)
            {
                best_feasible = Some((i, power));
            }
            best_score = best_score.min(self.qos.score(outcome, self.mean_service));
        }
        let (index, feasible) = match best_feasible {
            Some((i, _)) => (i, true),
            None => {
                let least_bad = evals
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, o))| {
                        self.qos.score(o, self.mean_service) <= best_score * 1.05 + 1e-9
                    })
                    .min_by(|(_, (_, a)), (_, (_, b))| {
                        a.avg_power().partial_cmp(&b.avg_power()).expect("powers are finite")
                    })
                    .map(|(i, _)| i)
                    .expect("CandidateSet is non-empty by construction, so at least one candidate was characterized");
                (least_bad, false)
            }
        };
        let (policy, outcome) = evals[index];
        Selection {
            policy: policy.clone(),
            predicted_power: outcome.avg_power().as_watts(),
            predicted_norm_response: outcome.normalized_mean_response(self.mean_service),
            feasible,
            evaluated,
        }
    }

    /// The QoS constraint in force.
    pub fn qos(&self) -> QosConstraint {
        self.qos
    }

    /// The candidate set searched.
    pub fn candidates(&self) -> &CandidateSet {
        &self.candidates
    }

    /// The workload's full-speed mean service time `1/µ`.
    pub fn mean_service(&self) -> f64 {
        self.mean_service
    }
}

impl sleepscale_journal::Snapshot for SearchMode {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_u8(match self {
            SearchMode::Exhaustive => 0,
            SearchMode::CoarseToFine => 1,
        });
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<SearchMode, sleepscale_journal::CodecError> {
        match r.get_u8()? {
            0 => Ok(SearchMode::Exhaustive),
            1 => Ok(SearchMode::CoarseToFine),
            other => Err(sleepscale_journal::CodecError::Invalid(format!(
                "unknown search mode tag {other}"
            ))),
        }
    }
}

impl sleepscale_journal::Snapshot for Selection {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.policy.snapshot(w);
        w.put_f64(self.predicted_power);
        w.put_f64(self.predicted_norm_response);
        w.put_bool(self.feasible);
        w.put_usize(self.evaluated);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Selection, sleepscale_journal::CodecError> {
        Ok(Selection {
            policy: Policy::restore(r)?,
            predicted_power: r.get_f64()?,
            predicted_norm_response: r.get_f64()?,
            feasible: r.get_bool()?,
            evaluated: r.get_usize()?,
        })
    }
}

impl sleepscale_journal::Snapshot for WarmStartStats {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_u64(self.warm);
        w.put_u64(self.searches);
        w.put_u64(self.boundary_hits);
        w.put_u64(self.boundary_searches);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<WarmStartStats, sleepscale_journal::CodecError> {
        Ok(WarmStartStats {
            warm: r.get_u64()?,
            searches: r.get_u64()?,
            boundary_hits: r.get_u64()?,
            boundary_searches: r.get_u64()?,
        })
    }
}

impl sleepscale_journal::Snapshot for WarmStart {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.bottoms.snapshot(w);
        self.boundaries.snapshot(w);
        self.stats.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<WarmStart, sleepscale_journal::CodecError> {
        Ok(WarmStart {
            bottoms: Vec::restore(r)?,
            boundaries: Vec::restore(r)?,
            stats: WarmStartStats::restore(r)?,
        })
    }
}

impl PolicyManager {
    /// Serializes the cross-epoch warm-start memory (bowl bottoms,
    /// feasibility boundaries, counters) for checkpointing. The shared
    /// characterization cache is snapshotted separately — once per
    /// handle, not once per manager.
    pub fn snapshot_warm(&self, w: &mut sleepscale_journal::ByteWriter) {
        use sleepscale_journal::Snapshot;
        self.warm.snapshot(w);
    }

    /// Restores the warm-start memory written by
    /// [`PolicyManager::snapshot_warm`].
    ///
    /// # Errors
    ///
    /// Returns [`sleepscale_journal::CodecError`] on malformed bytes;
    /// the manager keeps its previous memory in that case.
    pub fn restore_warm(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        use sleepscale_journal::Snapshot;
        self.warm = WarmStart::restore(r)?;
        Ok(())
    }
}

/// The grid index whose frequency is closest to `f` — how a remembered
/// bowl-bottom frequency re-anchors on a grid that shifted with the
/// predicted utilization. The grid is ascending, so this is a binary
/// search plus a two-neighbor comparison.
fn nearest_grid_index(grid: &[Frequency], f: f64) -> usize {
    let pos = grid.partition_point(|g| g.get() < f);
    match (pos.checked_sub(1), grid.get(pos)) {
        (Some(lo), Some(hi)) => {
            if f - grid[lo].get() <= hi.get() - f {
                lo
            } else {
                pos
            }
        }
        (Some(lo), None) => lo,
        (None, _) => 0,
    }
}

/// Memoizing per-program frequency search: each grid index is simulated
/// at most once, on demand, with one shared scratch.
struct ProgramSearch<'a> {
    jobs: &'a JobStream,
    env: &'a SimEnv,
    grid: &'a [Frequency],
    program: &'a SleepProgram,
    memo: Vec<Option<SimOutcome>>,
    evaluated: usize,
    scratch: &'a mut SimScratch,
}

impl ProgramSearch<'_> {
    fn ensure(&mut self, i: usize) {
        if self.memo[i].is_none() {
            let policy = Policy::new(self.grid[i], self.program.clone());
            self.memo[i] = Some(simulate_summary_into(self.jobs, &policy, self.env, self.scratch));
            self.evaluated += 1;
        }
    }

    fn power(&mut self, i: usize) -> f64 {
        self.ensure(i);
        self.memo[i].as_ref().expect("just ensured").avg_power().as_watts()
    }

    fn feasible(&mut self, i: usize, qos: &QosConstraint, mean_service: f64) -> bool {
        self.ensure(i);
        qos.satisfied_by(self.memo[i].as_ref().expect("just ensured"), mean_service)
    }

    /// Finds this program's power-bowl bottom (from a warm-start `hint`
    /// when available) and its minimum-power feasible frequency.
    /// Returns `(bowl bottom index, feasible winner)`; the winner is
    /// `None` when no evaluated frequency meets the QoS budget.
    ///
    /// When the bottom is infeasible, `boundary_hint` (a previous
    /// epoch's feasibility boundary, re-anchored on the current grid)
    /// is verified first: if it is feasible and its left neighbor is
    /// not, it *is* the boundary under the same response-monotonicity
    /// assumption the binary search rests on, for two probes instead of
    /// a log-width bisection. A failed verification falls back to the
    /// cold binary search (the probes are memoized, so the fallback
    /// costs nothing extra beyond them).
    fn run(
        &mut self,
        qos: &QosConstraint,
        mean_service: f64,
        hint: Option<usize>,
        boundary_hint: Option<usize>,
        stats: &mut WarmStartStats,
    ) -> (usize, Option<usize>) {
        let n = self.grid.len();
        let i_star = match hint {
            Some(guess) => self.descend_from(guess.min(n - 1)),
            None => self.bracket_and_refine(),
        };
        // Feasibility: the bowl bottom if it meets QoS, else the
        // smallest feasible frequency above it (response improves and
        // power worsens monotonically to the right of the bottom).
        if self.feasible(i_star, qos, mean_service) {
            return (i_star, Some(i_star));
        }
        if !self.feasible(n - 1, qos, mean_service) {
            return (i_star, None); // Even f = 1 misses this program's budget.
        }
        stats.boundary_searches += 1;
        if let Some(guess) = boundary_hint {
            let j = guess.clamp(i_star + 1, n - 1);
            if self.feasible(j, qos, mean_service)
                && (j == i_star + 1 || !self.feasible(j - 1, qos, mean_service))
            {
                stats.boundary_hits += 1;
                return (i_star, Some(j));
            }
        }
        let (mut infeasible, mut feasible) = (i_star, n - 1);
        while feasible - infeasible > 1 {
            let mid = infeasible + (feasible - infeasible) / 2;
            if self.feasible(mid, qos, mean_service) {
                feasible = mid;
            } else {
                infeasible = mid;
            }
        }
        (i_star, Some(feasible))
    }

    /// Cold-start bowl-bottom search: bracket the minimum on a coarse
    /// subsample of the grid, then refine only the winning bracket by
    /// discrete ternary search.
    fn bracket_and_refine(&mut self) -> usize {
        let n = self.grid.len();
        // Coarse pass: every `stride`-th index plus the top of the grid
        // (f = 1 must always be examined — it anchors the bracket).
        let stride = n.div_ceil(4).max(1);
        let mut coarse: Vec<usize> = (0..n).step_by(stride).collect();
        if *coarse.last().expect("grids are non-empty") != n - 1 {
            coarse.push(n - 1);
        }
        let pos = (0..coarse.len())
            .min_by(|&a, &b| {
                self.power(coarse[a]).partial_cmp(&self.power(coarse[b])).expect("finite power")
            })
            .expect("coarse pass is non-empty");
        // Refine the two coarse intervals around the coarse minimum.
        let mut lo = coarse[pos.saturating_sub(1)];
        let mut hi = coarse[(pos + 1).min(coarse.len() - 1)];
        while hi - lo > 2 {
            let m1 = lo + (hi - lo) / 3;
            let m2 = hi - (hi - lo) / 3;
            if self.power(m1) <= self.power(m2) {
                hi = m2;
            } else {
                lo = m1;
            }
        }
        (lo..=hi)
            .min_by(|&a, &b| self.power(a).partial_cmp(&self.power(b)).expect("finite power"))
            .expect("bracket is non-empty")
    }

    /// Warm-start bowl-bottom search: local descent from `guess`.
    /// Under unimodality the first local minimum *is* the bowl bottom;
    /// when the neighboring program's bottom is close (the common
    /// case), this costs 2–3 evaluations instead of a full bracket.
    fn descend_from(&mut self, guess: usize) -> usize {
        let n = self.grid.len();
        let mut best = guess;
        loop {
            let left_down = best > 0 && self.power(best - 1) < self.power(best);
            if left_down {
                best -= 1;
                continue;
            }
            let right_down = best + 1 < n && self.power(best + 1) < self.power(best);
            if right_down {
                best += 1;
                continue;
            }
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sleepscale_sim::generator;

    const MEAN_SERVICE: f64 = 0.194;

    fn manager(candidates: CandidateSet, rho_b: f64) -> PolicyManager {
        PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(rho_b).unwrap(),
            candidates,
            MEAN_SERVICE,
            2000,
        )
        .unwrap()
    }

    fn stream(rho: f64, seed: u64) -> JobStream {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generator::generate_poisson_exp(4000, rho, MEAN_SERVICE, &mut rng).unwrap()
    }

    #[test]
    fn selection_meets_qos_on_its_characterization() {
        let m = manager(CandidateSet::standard(), 0.8);
        let s = m.select_from_stream(&stream(0.2, 1), 0.2);
        assert!(s.feasible);
        assert!(s.predicted_norm_response <= 5.0 + 1e-9);
        assert!(s.evaluated > 0);
    }

    #[test]
    fn pruned_search_simulates_far_fewer_candidates() {
        let m = manager(CandidateSet::standard(), 0.8);
        let exhaustive = m.clone().with_search_mode(SearchMode::Exhaustive);
        let st = stream(0.2, 1);
        let pruned_sel = m.select_from_stream(&st, 0.2);
        let full_sel = exhaustive.select_from_stream(&st, 0.2);
        assert!(
            pruned_sel.evaluated * 2 < full_sel.evaluated,
            "pruned {} vs exhaustive {}",
            pruned_sel.evaluated,
            full_sel.evaluated
        );
    }

    #[test]
    fn pruned_matches_exhaustive_within_one_percent() {
        let pruned = manager(CandidateSet::standard(), 0.8);
        let exhaustive = pruned.clone().with_search_mode(SearchMode::Exhaustive);
        for (rho, seed) in [(0.1, 11), (0.2, 12), (0.35, 13), (0.5, 14), (0.7, 15)] {
            let st = stream(rho, seed);
            let p = pruned.select_from_stream(&st, rho);
            let e = exhaustive.select_from_stream(&st, rho);
            assert_eq!(p.feasible, e.feasible, "rho={rho}");
            // Exhaustive is the floor; pruned may give up at most 1%.
            assert!(
                p.predicted_power <= e.predicted_power * 1.01 + 1e-9,
                "rho={rho}: pruned {} W vs exhaustive {} W",
                p.predicted_power,
                e.predicted_power
            );
            assert!(p.predicted_power >= e.predicted_power - 1e-9, "rho={rho}");
        }
    }

    #[test]
    fn cache_hit_skips_simulation_and_reproduces_selection() {
        let mut m = manager(CandidateSet::standard(), 0.8);
        let mut log = JobLog::new(5000);
        for _ in 0..500 {
            log.push(1.0, 0.194);
        }
        let first = m.select_from_log(&log, 0.2).unwrap();
        assert!(first.evaluated > 0);
        let second = m.select_from_log(&log, 0.2).unwrap();
        assert_eq!(second.evaluated, 0, "second call must be a cache hit");
        assert_eq!(second.policy, first.policy);
        // A nearby prediction in the same RHO_QUANTUM bucket also hits.
        let third = m.select_from_log(&log, 0.2 + RHO_QUANTUM / 4.0).unwrap();
        assert_eq!(third.evaluated, 0);
        let stats = m.cache().unwrap().stats();
        assert_eq!(stats.hits, 2);
        // A different load level misses.
        let far = m.select_from_log(&log, 0.5).unwrap();
        assert!(far.evaluated > 0);
    }

    #[test]
    fn disabling_cache_restores_unquantized_replay() {
        let mut m = manager(CandidateSet::standard(), 0.8).without_cache();
        assert!(m.cache().is_none());
        let mut log = JobLog::new(5000);
        for _ in 0..500 {
            log.push(1.0, 0.194);
        }
        let a = m.select_from_log(&log, 0.21).unwrap();
        let b = m.select_from_log(&log, 0.21).unwrap();
        assert!(a.evaluated > 0 && b.evaluated > 0);
        // Determinism still holds on the decision; the second call may
        // reach it in fewer simulations via the cross-epoch warm start.
        assert_eq!(a.policy, b.policy, "no cache, but determinism still holds");
        assert_eq!(a.predicted_power, b.predicted_power);
        assert_eq!(a.feasible, b.feasible);
        assert!(b.evaluated <= a.evaluated, "warm start must not cost extra simulations");
        let warm = m.warm_start_stats();
        assert!(warm.warm > 0 && warm.searches > warm.warm, "{warm:?}");
        assert!(warm.warm_rate() > 0.0);
    }

    /// Satellite (PR 4): the QoS-feasibility boundary, not just the
    /// bowl bottom, warm-starts across epochs. With a budget tight
    /// enough that the bowl bottom is infeasible, the repeat search
    /// must verify the remembered boundary in two probes instead of
    /// re-bisecting, saving ~2–4 evaluations per warm search.
    #[test]
    fn boundary_warm_start_cuts_repeat_search_cost() {
        let mut m = manager(CandidateSet::standard(), 0.45).without_cache();
        let mut log = JobLog::new(5000);
        for _ in 0..500 {
            log.push(1.0, 0.194);
        }
        let first = m.select_from_log(&log, 0.3).unwrap();
        let cold = m.warm_start_stats();
        assert!(cold.boundary_searches > 0, "bottom should be infeasible at this budget: {cold:?}");
        assert_eq!(cold.boundary_hits, 0, "a first search has no boundary memory");
        let second = m.select_from_log(&log, 0.3).unwrap();
        let warm = m.warm_start_stats();
        assert_eq!(second.policy, first.policy, "warm start must not change the decision");
        assert_eq!(second.predicted_power, first.predicted_power);
        let hits = warm.boundary_hits;
        assert!(hits > 0, "repeat boundary searches should hit the memory: {warm:?}");
        assert!(warm.boundary_hit_rate() > 0.0);
        // Each hit replaces a log-width bisection with ≤2 memoized
        // probes; the warm repeat must be cheaper by at least two
        // evaluations per hit.
        assert!(
            first.evaluated >= second.evaluated + 2 * hits as usize,
            "cold {} vs warm {} evaluations with {hits} boundary hits",
            first.evaluated,
            second.evaluated
        );
    }

    #[test]
    fn shared_cache_serves_a_second_manager() {
        let mut a = manager(CandidateSet::standard(), 0.8);
        let cache = a.cache().unwrap().clone();
        let mut b = manager(CandidateSet::standard(), 0.8).with_cache(cache.clone());
        let mut log = JobLog::new(5000);
        for _ in 0..500 {
            log.push(1.0, 0.194);
        }
        let first = a.select_from_log(&log, 0.3).unwrap();
        assert!(first.evaluated > 0);
        let second = b.select_from_log(&log, 0.3).unwrap();
        assert_eq!(second.evaluated, 0, "second server reuses the shared characterization");
        assert_eq!(second.policy, first.policy);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn wider_candidate_sets_never_pick_worse_power() {
        let full = manager(CandidateSet::standard(), 0.8);
        let restricted =
            manager(CandidateSet::single_state(sleepscale_power::SystemState::C3_S0I), 0.8);
        for (rho, seed) in [(0.1, 2), (0.3, 3), (0.6, 4)] {
            let st = stream(rho, seed);
            let s_full = full.select_from_stream(&st, rho);
            let s_restricted = restricted.select_from_stream(&st, rho);
            assert!(
                s_full.predicted_power <= s_restricted.predicted_power + 1e-9,
                "rho={rho}: SS {} W > SS(C3) {} W",
                s_full.predicted_power,
                s_restricted.predicted_power
            );
        }
    }

    #[test]
    fn tighter_qos_selects_higher_frequency() {
        let loose = manager(CandidateSet::standard(), 0.8);
        let tight = manager(CandidateSet::standard(), 0.6);
        let st = stream(0.5, 5);
        let f_loose = loose.select_from_stream(&st, 0.5).policy.frequency().get();
        let f_tight = tight.select_from_stream(&st, 0.5).policy.frequency().get();
        assert!(
            f_tight >= f_loose,
            "tight budget should not pick a slower clock: {f_tight} vs {f_loose}"
        );
    }

    #[test]
    fn infeasible_budget_falls_back_to_least_bad() {
        // ρ close to 1 at the grid's top: nothing meets a tight budget.
        for mode in [SearchMode::Exhaustive, SearchMode::CoarseToFine] {
            let m = PolicyManager::new(
                SimEnv::xeon_cpu_bound(),
                QosConstraint::mean_response(0.05).unwrap(), // budget ≈ 1.05
                CandidateSet::standard(),
                MEAN_SERVICE,
                2000,
            )
            .unwrap()
            .with_search_mode(mode);
            let s = m.select_from_stream(&stream(0.7, 6), 0.7);
            assert!(!s.feasible, "{mode:?}");
            // The least-bad fallback runs fast.
            assert!(s.policy.frequency().get() >= 0.9, "{mode:?}");
        }
    }

    #[test]
    fn select_from_log_replays_at_prediction() {
        let mut log = JobLog::new(5000);
        for _ in 0..500 {
            log.push(1.0, 0.194);
        }
        let mut m = manager(CandidateSet::standard(), 0.8);
        let s = m.select_from_log(&log, 0.15).unwrap();
        assert!(s.feasible);
        // Log empty → error.
        let empty = JobLog::new(10);
        assert!(m.select_from_log(&empty, 0.15).is_err());
        // A degenerate (non-finite) prediction errors instead of being
        // quantized into the near-idle bucket.
        assert!(m.select_from_log(&log, f64::NAN).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(0.8).unwrap(),
            CandidateSet::standard(),
            0.0,
            100,
        )
        .is_err());
        assert!(PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(0.8).unwrap(),
            CandidateSet::standard(),
            0.1,
            0,
        )
        .is_err());
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// PR 8 round-trip property for the warm-start memory: an
        /// arbitrary mix of remembered and absent per-program bottoms
        /// and boundaries re-serializes byte-for-byte after restore —
        /// including the `None` holes, which a resumed run must *not*
        /// mistake for freshly-searchable programs.
        #[test]
        fn warm_start_snapshot_round_trip_is_byte_equal(
            bottoms in proptest::collection::vec((0.3f64..3.0, 0u8..2), 0..8),
            boundaries in proptest::collection::vec((0.3f64..3.0, 0u8..2), 0..8),
            counters in (0u64..500, 0u64..500, 0u64..500, 0u64..500),
        ) {
            use sleepscale_journal::{ByteReader, ByteWriter, Snapshot};
            let hole = |entries: &[(f64, u8)]| -> Vec<Option<f64>> {
                entries.iter().map(|&(f, keep)| (keep == 1).then_some(f)).collect()
            };
            let warm = WarmStart {
                bottoms: hole(&bottoms),
                boundaries: hole(&boundaries),
                stats: WarmStartStats {
                    warm: counters.0,
                    searches: counters.1,
                    boundary_hits: counters.2,
                    boundary_searches: counters.3,
                },
            };
            let mut w = ByteWriter::new();
            warm.snapshot(&mut w);
            let bytes = w.into_bytes();
            let restored =
                WarmStart::restore(&mut ByteReader::new(&bytes)).expect("snapshot bytes decode");
            let mut w2 = ByteWriter::new();
            restored.snapshot(&mut w2);
            prop_assert_eq!(&bytes, &w2.into_bytes());
            prop_assert_eq!(restored.stats, warm.stats);
            prop_assert_eq!(restored.bottoms.len(), warm.bottoms.len());
        }

        /// Truncated warm-start bytes are a typed error, and a manager
        /// fed them keeps its previous memory instead of panicking.
        #[test]
        fn truncated_warm_start_is_an_error_not_a_panic(cut in 0usize..10_000) {
            use sleepscale_journal::{ByteReader, ByteWriter, Snapshot};
            let warm = WarmStart {
                bottoms: vec![Some(1.2), None, Some(2.0)],
                boundaries: vec![None, Some(1.6), None],
                stats: WarmStartStats {
                    warm: 3,
                    searches: 5,
                    boundary_hits: 1,
                    boundary_searches: 2,
                },
            };
            let mut w = ByteWriter::new();
            warm.snapshot(&mut w);
            let bytes = w.into_bytes();
            let cut = cut % bytes.len();
            prop_assert!(WarmStart::restore(&mut ByteReader::new(&bytes[..cut])).is_err());
        }
    }
}
