use crate::error::CoreError;
use serde::{Deserialize, Serialize};
use sleepscale_sim::SimOutcome;
use std::fmt;

/// The QoS constraint derived from the paper's baseline system
/// (Section 5.1.1).
///
/// The baseline is a server provisioned for a peak design utilization
/// `ρ_b` running flat out (`f = 1`, no sleeping). Under the idealized
/// model its normalized mean response is `µE[R] = 1/(1−ρ_b)` and its
/// response tail is exponential, giving a 95th-percentile deadline
/// `µd = ln(1/ε)/(1−ρ_b)`. A candidate policy is admissible when it does
/// no worse than that baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QosConstraint {
    /// Normalized mean response: `µ·E[R] ≤ 1/(1−ρ_b)`.
    MeanResponse {
        /// Peak design utilization `ρ_b ∈ (0, 1)`.
        rho_b: f64,
    },
    /// Tail: `Pr(R ≥ d) ≤ epsilon` with `µ·d = ln(1/ε)/(1−ρ_b)`.
    Tail {
        /// Peak design utilization `ρ_b ∈ (0, 1)`.
        rho_b: f64,
        /// Exceedance probability (0.05 for the paper's 95th percentile).
        epsilon: f64,
    },
}

impl QosConstraint {
    /// Mean-response constraint for peak design utilization `rho_b`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `0 < rho_b < 1`.
    pub fn mean_response(rho_b: f64) -> Result<QosConstraint, CoreError> {
        validate_rho_b(rho_b)?;
        Ok(QosConstraint::MeanResponse { rho_b })
    }

    /// 95th-percentile constraint for peak design utilization `rho_b`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `0 < rho_b < 1`.
    pub fn p95(rho_b: f64) -> Result<QosConstraint, CoreError> {
        QosConstraint::tail(rho_b, 0.05)
    }

    /// General tail constraint.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] unless `0 < rho_b < 1` and
    /// `0 < epsilon < 1`.
    pub fn tail(rho_b: f64, epsilon: f64) -> Result<QosConstraint, CoreError> {
        validate_rho_b(rho_b)?;
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(CoreError::InvalidConfig {
                reason: format!("epsilon {epsilon} must be in (0, 1)"),
            });
        }
        Ok(QosConstraint::Tail { rho_b, epsilon })
    }

    /// The peak design utilization `ρ_b`.
    pub fn rho_b(&self) -> f64 {
        match self {
            QosConstraint::MeanResponse { rho_b } | QosConstraint::Tail { rho_b, .. } => *rho_b,
        }
    }

    /// The normalized mean-response budget `1/(1−ρ_b)` (used by the
    /// mean constraint and by the over-provisioning guard band).
    pub fn normalized_mean_budget(&self) -> f64 {
        1.0 / (1.0 - self.rho_b())
    }

    /// The normalized deadline `µ·d` for tail constraints
    /// (`ln(1/ε)/(1−ρ_b)`); for the mean constraint this is the deadline
    /// an exponential baseline would imply, provided for reporting.
    pub fn normalized_deadline(&self) -> f64 {
        let eps = match self {
            QosConstraint::Tail { epsilon, .. } => *epsilon,
            QosConstraint::MeanResponse { .. } => 0.05,
        };
        (1.0 / eps).ln() / (1.0 - self.rho_b())
    }

    /// Whether a simulated outcome satisfies the constraint, given the
    /// workload's full-speed mean service time `1/µ` in seconds.
    pub fn satisfied_by(&self, outcome: &SimOutcome, mean_service: f64) -> bool {
        match self {
            QosConstraint::MeanResponse { .. } => {
                outcome.normalized_mean_response(mean_service) <= self.normalized_mean_budget()
            }
            QosConstraint::Tail { epsilon, .. } => {
                let deadline = self.normalized_deadline() * mean_service;
                outcome.fraction_exceeding(deadline) <= *epsilon
            }
        }
    }

    /// The constraint's scalar score for an outcome (lower is better):
    /// the normalized mean response or the exceedance probability. Used
    /// to pick a least-bad fallback when nothing is feasible.
    pub fn score(&self, outcome: &SimOutcome, mean_service: f64) -> f64 {
        match self {
            QosConstraint::MeanResponse { .. } => outcome.normalized_mean_response(mean_service),
            QosConstraint::Tail { .. } => {
                outcome.fraction_exceeding(self.normalized_deadline() * mean_service)
            }
        }
    }
}

impl fmt::Display for QosConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosConstraint::MeanResponse { rho_b } => {
                write!(f, "µE[R] ≤ {:.2} (ρb={rho_b})", self.normalized_mean_budget())
            }
            QosConstraint::Tail { rho_b, epsilon } => {
                write!(f, "Pr(R ≥ {:.2}/µ) ≤ {epsilon} (ρb={rho_b})", self.normalized_deadline())
            }
        }
    }
}

fn validate_rho_b(rho_b: f64) -> Result<(), CoreError> {
    if rho_b.is_finite() && rho_b > 0.0 && rho_b < 1.0 {
        Ok(())
    } else {
        Err(CoreError::InvalidConfig { reason: format!("rho_b {rho_b} must be in (0, 1)") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sleepscale_power::{presets, Policy, SleepProgram};
    use sleepscale_sim::{generator, simulate, SimEnv};

    #[test]
    fn paper_budgets() {
        let q = QosConstraint::mean_response(0.8).unwrap();
        assert!((q.normalized_mean_budget() - 5.0).abs() < 1e-12);
        let q6 = QosConstraint::mean_response(0.6).unwrap();
        assert!((q6.normalized_mean_budget() - 2.5).abs() < 1e-12);
        // Tighter ρb means tighter budget.
        assert!(q6.normalized_mean_budget() < q.normalized_mean_budget());
        // 95th percentile deadline: ln(20)/(1−0.8) ≈ 14.98.
        let t = QosConstraint::p95(0.8).unwrap();
        assert!((t.normalized_deadline() - 20.0_f64.ln() / 0.2).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(QosConstraint::mean_response(0.0).is_err());
        assert!(QosConstraint::mean_response(1.0).is_err());
        assert!(QosConstraint::tail(0.8, 0.0).is_err());
        assert!(QosConstraint::tail(0.8, 1.0).is_err());
        assert!(QosConstraint::mean_response(f64::NAN).is_err());
    }

    #[test]
    fn baseline_system_satisfies_its_own_constraint() {
        // The f=1 baseline at ρ = ρb should sit at the edge of the budget.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let jobs = generator::generate_poisson_exp(40_000, 0.8, 0.194, &mut rng).unwrap();
        let policy = Policy::new(
            sleepscale_power::Frequency::MAX,
            SleepProgram::immediate(presets::C0I_S0I),
        );
        let out = simulate(&jobs, &policy, &SimEnv::xeon_cpu_bound());
        let q = QosConstraint::mean_response(0.8).unwrap();
        let norm = out.normalized_mean_response(0.194);
        assert!((norm - 5.0).abs() < 0.5, "baseline µE[R] = {norm}");
        // And a run at lower utilization clearly satisfies it.
        let jobs_low = generator::generate_poisson_exp(20_000, 0.3, 0.194, &mut rng).unwrap();
        let out_low = simulate(&jobs_low, &policy, &SimEnv::xeon_cpu_bound());
        assert!(q.satisfied_by(&out_low, 0.194));
        assert!(q.score(&out_low, 0.194) < q.score(&out, 0.194));
    }

    #[test]
    fn tail_constraint_uses_exceedance() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let jobs = generator::generate_poisson_exp(20_000, 0.3, 0.194, &mut rng).unwrap();
        let policy = Policy::new(
            sleepscale_power::Frequency::MAX,
            SleepProgram::immediate(presets::C0I_S0I),
        );
        let out = simulate(&jobs, &policy, &SimEnv::xeon_cpu_bound());
        let q = QosConstraint::p95(0.8).unwrap();
        assert!(q.satisfied_by(&out, 0.194));
        // A tiny ρb implies a deadline of ln(20)/0.95 ≈ 3.15/µ ≈ 0.61 s;
        // at ρ = 0.3 the exponential tail exceeds that far more than 5%
        // of the time, so the constraint fails.
        let tight = QosConstraint::tail(0.05, 0.05).unwrap();
        assert!(!tight.satisfied_by(&out, 0.194));
    }

    #[test]
    fn display() {
        let q = QosConstraint::mean_response(0.8).unwrap();
        assert!(q.to_string().contains("5.00"));
        let t = QosConstraint::p95(0.6).unwrap();
        assert!(t.to_string().contains("0.05"));
    }
}
