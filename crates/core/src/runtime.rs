use crate::error::CoreError;
use crate::qos::QosConstraint;
use crate::report::{EpochReport, RunReport};
use crate::strategies::Strategy;
use serde::{Deserialize, Serialize};
use sleepscale_dist::{StreamingSummary, SummaryStats};
use sleepscale_sim::{JobRecord, JobStream, OnlineSim, SimEnv};
use sleepscale_telemetry::TraceEvent;
use sleepscale_workloads::UtilizationTrace;

/// Runtime parameters: the paper's `T` (epoch length), the evaluation-log
/// replay depth, the QoS constraint, the over-provisioning factor `α`,
/// and the characterization environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    mean_service: f64,
    qos: QosConstraint,
    epoch_minutes: usize,
    eval_jobs: usize,
    log_capacity: usize,
    alpha: f64,
    predictor_history: usize,
    env: SimEnv,
}

impl RuntimeConfig {
    /// Starts a builder for a workload with full-speed mean service time
    /// `mean_service` (`1/µ`, seconds).
    pub fn builder(mean_service: f64) -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            mean_service,
            qos: None,
            epoch_minutes: 5,
            eval_jobs: 2_000,
            log_capacity: 20_000,
            alpha: 0.0,
            predictor_history: 10,
            env: None,
        }
    }

    /// The workload's full-speed mean service time `1/µ` (seconds).
    pub fn mean_service(&self) -> f64 {
        self.mean_service
    }

    /// The QoS constraint.
    pub fn qos(&self) -> QosConstraint {
        self.qos
    }

    /// The policy update interval `T` in minutes.
    pub fn epoch_minutes(&self) -> usize {
        self.epoch_minutes
    }

    /// Jobs replayed per candidate characterization.
    pub fn eval_jobs(&self) -> usize {
        self.eval_jobs
    }

    /// Job-log capacity (observations kept across epochs).
    pub fn log_capacity(&self) -> usize {
        self.log_capacity
    }

    /// The over-provisioning factor `α` (0 disables the guard band).
    pub fn over_provisioning(&self) -> f64 {
        self.alpha
    }

    /// Predictor history depth `p`.
    pub fn predictor_history(&self) -> usize {
        self.predictor_history
    }

    /// The characterization environment (power model + scaling law) used
    /// by managed strategies.
    pub fn env(&self) -> &SimEnv {
        &self.env
    }
}

/// Builder for [`RuntimeConfig`].
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    mean_service: f64,
    qos: Option<QosConstraint>,
    epoch_minutes: usize,
    eval_jobs: usize,
    log_capacity: usize,
    alpha: f64,
    predictor_history: usize,
    env: Option<SimEnv>,
}

impl RuntimeConfigBuilder {
    /// Sets the QoS constraint (required).
    pub fn qos(mut self, qos: QosConstraint) -> RuntimeConfigBuilder {
        self.qos = Some(qos);
        self
    }

    /// Sets the policy update interval `T` in minutes (default 5).
    pub fn epoch_minutes(mut self, t: usize) -> RuntimeConfigBuilder {
        self.epoch_minutes = t;
        self
    }

    /// Sets how many logged jobs each candidate characterization replays
    /// (default 2000).
    pub fn eval_jobs(mut self, n: usize) -> RuntimeConfigBuilder {
        self.eval_jobs = n;
        self
    }

    /// Sets the job-log capacity (default 20 000).
    pub fn log_capacity(mut self, n: usize) -> RuntimeConfigBuilder {
        self.log_capacity = n;
        self
    }

    /// Sets the over-provisioning factor `α` (default 0; the paper's
    /// evaluated value is 0.35).
    pub fn over_provisioning(mut self, alpha: f64) -> RuntimeConfigBuilder {
        self.alpha = alpha;
        self
    }

    /// Sets the predictor history depth `p` (default 10).
    pub fn predictor_history(mut self, p: usize) -> RuntimeConfigBuilder {
        self.predictor_history = p;
        self
    }

    /// Sets the characterization environment (default: Xeon, CPU-bound).
    pub fn env(mut self, env: SimEnv) -> RuntimeConfigBuilder {
        self.env = Some(env);
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for missing QoS, non-positive
    /// mean service time, zero epoch length, zero eval jobs, or negative
    /// `α`.
    pub fn build(self) -> Result<RuntimeConfig, CoreError> {
        if !self.mean_service.is_finite() || self.mean_service <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("mean service {} must be finite and > 0", self.mean_service),
            });
        }
        let qos = self.qos.ok_or_else(|| CoreError::InvalidConfig {
            reason: "a QoS constraint is required".into(),
        })?;
        if self.epoch_minutes == 0 {
            return Err(CoreError::InvalidConfig { reason: "epoch_minutes must be >= 1".into() });
        }
        if self.eval_jobs == 0 {
            return Err(CoreError::InvalidConfig { reason: "eval_jobs must be >= 1".into() });
        }
        if !self.alpha.is_finite() || self.alpha < 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("over-provisioning {} must be finite and >= 0", self.alpha),
            });
        }
        Ok(RuntimeConfig {
            mean_service: self.mean_service,
            qos,
            epoch_minutes: self.epoch_minutes,
            eval_jobs: self.eval_jobs,
            log_capacity: self.log_capacity.max(16),
            alpha: self.alpha,
            predictor_history: self.predictor_history.max(1),
            env: self.env.unwrap_or_else(SimEnv::xeon_cpu_bound),
        })
    }
}

/// Drives a [`Strategy`] over a utilization trace against the
/// ground-truth job stream — the closed evaluation loop of Section 6.
///
/// Per epoch: the strategy picks a policy, the ground-truth jobs of the
/// epoch execute under it (with exact cross-epoch energy accounting),
/// the strategy sees the completed records and the realized per-minute
/// utilizations, and the loop advances.
///
/// # Errors
///
/// Propagates strategy errors ([`CoreError`]).
pub fn run(
    trace: &UtilizationTrace,
    jobs: &JobStream,
    strategy: &mut dyn Strategy,
    env: &SimEnv,
    config: &RuntimeConfig,
) -> Result<RunReport, CoreError> {
    Ok(run_resumable(trace, jobs, strategy, env, config, None, None)?
        .expect("run without a checkpoint sink always completes"))
}

/// A checkpoint sink: called after each completed epoch `k` with the
/// serialized loop state. Return `Ok(false)` to stop the run at that
/// boundary (fault injection); `Ok(true)` to continue.
pub type CheckpointSink<'a> = &'a mut dyn FnMut(usize, &[u8]) -> Result<bool, CoreError>;

/// The checkpoint-aware form of [`run`]: same loop, but optionally
/// seeded from a prior epoch-boundary snapshot and optionally emitting
/// one snapshot per completed epoch.
///
/// `resume_from` is the payload a previous run's `sink` received at some
/// boundary: the loop restores the full mid-run state (simulator
/// carry-over, energy ledger, job-stream position, accumulated report
/// rows, strategy memory) and continues from the *next* epoch. The
/// strategy must be freshly constructed from the same configuration that
/// produced the snapshot. `sink` (when present) receives the serialized
/// state after every completed epoch; returning `Ok(false)` abandons the
/// run at that boundary and `run_resumable` returns `Ok(None)`.
///
/// A completed resume is byte-identical to the uninterrupted run: the
/// snapshot captures everything the remaining epochs read.
///
/// # Errors
///
/// Propagates strategy errors, sink errors, and
/// [`CoreError::Checkpoint`] for malformed `resume_from` bytes.
pub fn run_resumable(
    trace: &UtilizationTrace,
    jobs: &JobStream,
    strategy: &mut dyn Strategy,
    env: &SimEnv,
    config: &RuntimeConfig,
    resume_from: Option<&[u8]>,
    sink: Option<CheckpointSink<'_>>,
) -> Result<Option<RunReport>, CoreError> {
    run_inner(trace, jobs, strategy, env, config, resume_from, sink, None)
}

/// [`run`] with structured event tracing: returns the report plus the
/// server's deterministic [`TraceEvent`] stream (C-state residency
/// segments, wakes, per-epoch policy decisions, frequency changes),
/// attributed to slot 0.
///
/// Tracing composes with neither resume nor checkpoint sinks — the
/// trace buffer is not part of the snapshot state — so this is the
/// plain uninterrupted loop.
///
/// # Errors
///
/// Propagates strategy errors ([`CoreError`]).
pub fn run_traced(
    trace: &UtilizationTrace,
    jobs: &JobStream,
    strategy: &mut dyn Strategy,
    env: &SimEnv,
    config: &RuntimeConfig,
) -> Result<(RunReport, Vec<TraceEvent>), CoreError> {
    let mut events = Vec::new();
    let report = run_inner(trace, jobs, strategy, env, config, None, None, Some(&mut events))?
        .expect("run without a checkpoint sink always completes");
    Ok((report, events))
}

#[allow(clippy::too_many_arguments)]
fn run_inner(
    trace: &UtilizationTrace,
    jobs: &JobStream,
    strategy: &mut dyn Strategy,
    env: &SimEnv,
    config: &RuntimeConfig,
    resume_from: Option<&[u8]>,
    mut sink: Option<CheckpointSink<'_>>,
    trace_out: Option<&mut Vec<TraceEvent>>,
) -> Result<Option<RunReport>, CoreError> {
    use sleepscale_journal::{ByteReader, ByteWriter, CodecError, Snapshot};

    let t_minutes = config.epoch_minutes();
    let epoch_seconds = t_minutes as f64 * 60.0;
    let total_minutes = trace.len();
    let n_epochs = total_minutes.div_ceil(t_minutes);

    let mut online = OnlineSim::new(env.clone(), epoch_seconds);
    if trace_out.is_some() {
        online.enable_trace(0);
    }
    let mut prev_freq: Option<f64> = None;
    let mut epochs = Vec::with_capacity(n_epochs);
    let mut responses: Vec<f64> = Vec::new();
    // Per-class accounting only switches on for genuinely multi-class
    // streams (any non-default tag): untagged runs — and single-class
    // tagged runs, whose one class *is* the default — skip it
    // entirely, keeping the hot path and the report bytes unchanged.
    let tagged = jobs.is_tagged();
    let mut class_responses: Vec<StreamingSummary> = Vec::new();
    // The epoch loop borrows each batch from the ground-truth stream;
    // no per-epoch clone of the remaining jobs.
    let mut cursor = jobs.cursor();

    let mut start_epoch = 0;
    if let Some(bytes) = resume_from {
        let mut r = ByteReader::new(bytes);
        let done = r.get_usize()?;
        if done >= n_epochs {
            return Err(CoreError::Checkpoint {
                reason: format!("snapshot is at epoch {done} but the run has only {n_epochs}"),
            });
        }
        online = OnlineSim::restore_state(env.clone(), &mut r)?;
        epochs = Vec::restore(&mut r)?;
        responses = Vec::restore(&mut r)?;
        class_responses = Vec::restore(&mut r)?;
        cursor.seek(r.get_usize()?);
        strategy.restore_state(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after run snapshot",
                r.remaining()
            ))
            .into());
        }
        start_epoch = done + 1;
    }

    for k in start_epoch..n_epochs {
        let policy = strategy.begin_epoch(k)?;
        if online.trace_enabled() {
            let freq = policy.frequency().get();
            online.trace_push(TraceEvent::EpochDecision {
                server: 0,
                epoch: k as u32,
                predicted_rho: strategy.last_prediction(),
                frequency: freq,
                program: policy.program().label(),
                evaluated: strategy.last_selection().map_or(0, |s| s.evaluated) as u32,
                cache_hit: strategy.last_selection().is_some_and(|s| s.evaluated == 0),
            });
            if let Some(prev) = prev_freq {
                if prev != freq {
                    online.trace_push(TraceEvent::FrequencyChange {
                        server: 0,
                        epoch: k as u32,
                        from: prev,
                        to: freq,
                    });
                }
            }
            prev_freq = Some(freq);
        }
        let start_minute = k * t_minutes;
        let end_minute = (start_minute + t_minutes).min(total_minutes);
        let epoch_end = (start_minute + t_minutes) as f64 * 60.0;

        let now = cursor.take_before(epoch_end);
        let out = online.run_epoch(now, &policy, epoch_end);
        responses.extend(out.records().iter().map(JobRecord::response));
        if tagged {
            for r in out.records() {
                let c = r.class().as_index();
                if c >= class_responses.len() {
                    class_responses.resize_with(c + 1, StreamingSummary::new);
                }
                class_responses[c].push(r.response());
            }
        }

        let realized_rho = (start_minute..end_minute).map(|m| trace.at(m)).sum::<f64>()
            / (end_minute - start_minute).max(1) as f64;

        epochs.push(EpochReport {
            epoch: k,
            start_minute,
            predicted_rho: strategy.last_prediction(),
            realized_rho,
            policy_label: policy.label(),
            frequency: policy.frequency().get(),
            program_label: policy.program().label(),
            feasible: strategy.last_selection().is_none_or(|s| s.feasible),
            evaluated: strategy.last_selection().map_or(0, |s| s.evaluated),
            arrivals: out.arrivals(),
            mean_response: out.mean_response(),
            power_watts: 0.0, // filled from the ledger below
            backlog_seconds: out.backlog_seconds(),
        });

        strategy.end_epoch(out.records());
        // The utilization a real server measures saturates while a
        // backlog drains; feeding the raw offered load would let the
        // manager keep selecting zero-slack policies computed for an
        // empty queue, so the backlog would persist indefinitely. Fold
        // the queue overhang into the observation as extra pressure.
        let pressure = out.backlog_seconds() / epoch_seconds;
        for m in start_minute..end_minute {
            strategy.observe_minute((trace.at(m) + pressure).min(0.97));
        }

        if let Some(sink) = sink.as_deref_mut() {
            let mut w = ByteWriter::new();
            w.put_usize(k);
            online.snapshot_state(&mut w);
            epochs.snapshot(&mut w);
            responses.snapshot(&mut w);
            class_responses.snapshot(&mut w);
            w.put_usize(cursor.position());
            strategy.snapshot_state(&mut w);
            if !sink(k, w.as_bytes())? {
                return Ok(None);
            }
        }
    }

    // Close the trace and distribute per-epoch power from the ledger.
    let trace_end = total_minutes as f64 * 60.0;
    let horizon = trace_end.max(online.state().free_time());
    let (ledger, _residency, wakes_from, _, events) = online.finish_traced(horizon);
    if let Some(out) = trace_out {
        *out = events;
    }
    for (k, e) in epochs.iter_mut().enumerate() {
        e.power_watts = ledger.bucket_power(k).as_watts();
    }

    // The exact order statistics summarize the collected samples; the
    // streaming summary is folded alongside so single-server reports
    // merge into fleet/scenario aggregates the same way cluster runs do.
    let mut streaming = StreamingSummary::new();
    for &r in &responses {
        streaming.push(r);
    }
    let stats = SummaryStats::from_samples(responses);
    let (total_jobs, mean_response, p95) = match &stats {
        Some(s) => (s.count(), s.mean(), s.p95()),
        None => (0, 0.0, 0.0),
    };
    Ok(Some(
        RunReport::new(
            strategy.name(),
            epochs,
            total_jobs,
            mean_response,
            p95,
            config.mean_service(),
            ledger.total_energy().as_joules() / horizon,
            ledger.total_energy().as_joules(),
            horizon,
            wakes_from,
            streaming,
            class_responses,
        )
        .with_energy_split(
            ledger.active_energy().as_joules(),
            ledger.active_energy_by_class().to_vec(),
            ledger.power_samples(),
        ),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::CandidateSet;
    use crate::strategies::{FixedPolicyStrategy, RaceToHaltStrategy, SleepScaleStrategy};
    use rand::SeedableRng;
    use sleepscale_power::{presets, Policy};
    use sleepscale_workloads::{replay_trace, ReplayConfig, WorkloadDistributions, WorkloadSpec};

    fn setup(hours: usize, seed: u64) -> (UtilizationTrace, JobStream, RuntimeConfig) {
        let spec = WorkloadSpec::dns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists = WorkloadDistributions::empirical(&spec, 5_000, &mut rng).unwrap();
        let trace =
            sleepscale_workloads::traces::email_store(1, seed).window(120, 120 + hours * 60);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let config = RuntimeConfig::builder(spec.service_mean())
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .epoch_minutes(5)
            .eval_jobs(800)
            .build()
            .unwrap();
        (trace, jobs, config)
    }

    #[test]
    fn fixed_baseline_runs_end_to_end() {
        let (trace, jobs, config) = setup(2, 21);
        let env = SimEnv::xeon_cpu_bound();
        let mut s = FixedPolicyStrategy::new(Policy::full_speed_no_sleep());
        let report = run(&trace, &jobs, &mut s, &env, &config).unwrap();
        assert_eq!(report.epochs().len(), 24); // 2 h / 5 min
        assert!(report.total_jobs() > 100);
        // Full speed, never sleeping: power pinned at 250 W.
        assert!((report.avg_power_watts() - 250.0).abs() < 1.0);
        // Every epoch's power is 250 W too.
        for e in report.epochs() {
            assert!((e.power_watts - 250.0).abs() < 2.0, "epoch {}: {}", e.epoch, e.power_watts);
        }
    }

    #[test]
    fn race_to_halt_saves_power_vs_no_sleep() {
        let (trace, jobs, config) = setup(2, 22);
        let env = SimEnv::xeon_cpu_bound();
        let mut never = FixedPolicyStrategy::new(Policy::full_speed_no_sleep());
        let base = run(&trace, &jobs, &mut never, &env, &config).unwrap();
        let mut r2h = RaceToHaltStrategy::new(presets::C6_S0I);
        let saved = run(&trace, &jobs, &mut r2h, &env, &config).unwrap();
        assert!(saved.avg_power_watts() < base.avg_power_watts() - 20.0);
        // R2H runs at full speed so responses stay tiny.
        assert!(saved.normalized_mean_response() < 2.0);
    }

    #[test]
    fn sleepscale_beats_race_to_halt_power_within_qos() {
        let (trace, jobs, config) = setup(3, 23);
        let env = SimEnv::xeon_cpu_bound();
        let mut ss = SleepScaleStrategy::new(&config, CandidateSet::standard()).with_alpha(0.35);
        let ss_report = run(&trace, &jobs, &mut ss, &env, &config).unwrap();
        let mut r2h = RaceToHaltStrategy::new(presets::C6_S0I);
        let r2h_report = run(&trace, &jobs, &mut r2h, &env, &config).unwrap();
        assert!(
            ss_report.avg_power_watts() < r2h_report.avg_power_watts(),
            "SS {} W should beat R2H {} W",
            ss_report.avg_power_watts(),
            r2h_report.avg_power_watts()
        );
        // And stay within ~the budget (5×) with slack for prediction error.
        assert!(
            ss_report.normalized_mean_response() < 6.5,
            "µE[R] = {}",
            ss_report.normalized_mean_response()
        );
    }

    #[test]
    fn report_program_histogram_tracks_selections() {
        let (trace, jobs, config) = setup(2, 24);
        let env = SimEnv::xeon_cpu_bound();
        let mut ss = SleepScaleStrategy::new(&config, CandidateSet::standard());
        let report = run(&trace, &jobs, &mut ss, &env, &config).unwrap();
        let hist = report.program_histogram();
        assert!(!hist.is_empty());
        let total: usize = hist.iter().map(|(_, n)| n).sum();
        assert_eq!(total, report.epochs().len());
    }

    /// Tagged streams produce per-class response slices that partition
    /// the run's responses; untagged streams keep the slices empty and
    /// the report bytes unchanged.
    #[test]
    fn tagged_runs_slice_responses_per_class() {
        use sleepscale_sim::{pack_id, ClassId, Job};
        let (trace, jobs, config) = setup(1, 25);
        let env = SimEnv::xeon_cpu_bound();
        let mut s = FixedPolicyStrategy::new(Policy::full_speed_no_sleep());
        let untagged = run(&trace, &jobs, &mut s, &env, &config).unwrap();
        assert!(untagged.class_responses().is_empty());

        let tagged_jobs: Vec<Job> = jobs
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, j)| Job { id: pack_id(j.id, ClassId((i % 3) as u16)), ..*j })
            .collect();
        let tagged_stream = sleepscale_sim::JobStream::new(tagged_jobs).unwrap();
        let mut s = FixedPolicyStrategy::new(Policy::full_speed_no_sleep());
        let tagged = run(&trace, &tagged_stream, &mut s, &env, &config).unwrap();
        let slices = tagged.class_responses();
        assert_eq!(slices.len(), 3);
        assert_eq!(
            slices.iter().map(|c| c.count()).sum::<u64>(),
            tagged.responses().count(),
            "class slices partition the responses"
        );
        // Tags are invisible to the simulation itself.
        assert_eq!(tagged.responses(), untagged.responses());
        assert_eq!(tagged.energy_joules(), untagged.energy_joules());
        // The ledger's active energy is the same bytes either way; tags
        // only split it. Class slices must rebuild the active total.
        assert_eq!(tagged.active_energy_joules(), untagged.active_energy_joules());
        assert_eq!(untagged.class_active_energy().len(), 1);
        assert_eq!(tagged.class_active_energy().len(), 3);
        let rebuilt: f64 = tagged.class_active_energy().iter().sum();
        assert!((rebuilt - tagged.active_energy_joules()).abs() < 1e-6);
        assert!(
            (tagged.active_energy_joules() + tagged.idle_energy_joules() - tagged.energy_joules())
                .abs()
                < 1e-9
        );
        assert!(tagged.active_energy_joules() > 0.0);
        assert_eq!(tagged.power_samples(), untagged.power_samples());
        assert!(tagged.energy_proportionality().is_some());
    }

    /// Killing the loop at any epoch boundary and resuming from the
    /// snapshot must reproduce the uninterrupted run exactly, including
    /// the managed strategy's predictor, log, warm-start, and cache
    /// memory.
    #[test]
    fn kill_and_resume_reproduces_uninterrupted_run() {
        let (trace, jobs, config) = setup(2, 26);
        let env = SimEnv::xeon_cpu_bound();
        let build = || SleepScaleStrategy::new(&config, CandidateSet::standard()).with_alpha(0.35);
        let mut s = build();
        let reference = run(&trace, &jobs, &mut s, &env, &config).unwrap();
        let n = reference.epochs().len();
        for kill_at in [0, n / 2, n - 2] {
            let mut snapshot: Option<Vec<u8>> = None;
            let mut sink = |epoch: usize, bytes: &[u8]| {
                if epoch == kill_at {
                    snapshot = Some(bytes.to_vec());
                    Ok(false)
                } else {
                    Ok(true)
                }
            };
            let mut first = build();
            let killed =
                run_resumable(&trace, &jobs, &mut first, &env, &config, None, Some(&mut sink))
                    .unwrap();
            assert!(killed.is_none(), "kill at {kill_at} should abandon the run");
            let snapshot = snapshot.expect("sink sees every boundary");
            let mut second = build();
            let resumed =
                run_resumable(&trace, &jobs, &mut second, &env, &config, Some(&snapshot), None)
                    .unwrap()
                    .expect("resume without a sink completes");
            assert_eq!(resumed, reference, "kill at {kill_at} diverged");
            assert_eq!(
                format!("{resumed:?}"),
                format!("{reference:?}"),
                "kill at {kill_at} diverged in debug form"
            );
        }
    }

    /// Malformed or truncated resume bytes surface as typed checkpoint
    /// errors, never panics.
    #[test]
    fn resume_from_garbage_is_a_typed_error() {
        let (trace, jobs, config) = setup(1, 27);
        let env = SimEnv::xeon_cpu_bound();
        let mut s = FixedPolicyStrategy::new(Policy::full_speed_no_sleep());
        for bytes in [&[][..], &[7, 0, 0, 0, 0, 0, 0, 0, 1, 2][..]] {
            let err = run_resumable(&trace, &jobs, &mut s, &env, &config, Some(bytes), None)
                .expect_err("garbage must not restore");
            assert!(matches!(err, CoreError::Checkpoint { .. }), "got {err}");
        }
    }

    #[test]
    fn builder_validation() {
        assert!(RuntimeConfig::builder(0.0)
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .build()
            .is_err());
        assert!(RuntimeConfig::builder(0.1).build().is_err()); // missing QoS
        assert!(RuntimeConfig::builder(0.1)
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .epoch_minutes(0)
            .build()
            .is_err());
        assert!(RuntimeConfig::builder(0.1)
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .over_provisioning(-0.1)
            .build()
            .is_err());
    }
}
