use crate::candidates::CandidateSet;
use crate::error::CoreError;
use crate::manager::Selection;
use crate::qos::QosConstraint;
use crate::runtime::RuntimeConfig;
use crate::strategies::Strategy;
use sleepscale_analytic::PolicyAnalyzer;
use sleepscale_power::{Frequency, Policy};
use sleepscale_predict::{LmsCusum, Predictor};
use sleepscale_sim::JobRecord;
use std::fmt;

/// The paper's suggested simulation-free variant (Section 5.1.2,
/// observation 3 and future work): select policies from the *idealized
/// closed-form model* instead of replaying job logs through the
/// simulator.
///
/// Each epoch it takes the predicted utilization, sets `λ = ρ̂·µ`, and
/// ranks the candidate grid by the appendix's `E[P]` subject to the
/// mean-response budget — thousands of times cheaper than re-simulation
/// (see the `analytic` criterion bench), at the cost of assuming
/// Poisson/exponential statistics. The paper observes this usually
/// finds the right sleep state but a slightly lower frequency than the
/// empirical statistics warrant; compare the two with
/// `--bin ablation_manager`.
pub struct AnalyticStrategy {
    label: String,
    qos: QosConstraint,
    candidates: CandidateSet,
    mean_service: f64,
    alpha: f64,
    delay_budget_seconds: f64,
    last_epoch_mean_delay: Option<f64>,
    predictor: Box<dyn Predictor>,
    last_prediction: f64,
    last_selection: Option<Selection>,
    scaling: sleepscale_power::FrequencyScaling,
    power: sleepscale_power::SystemPowerModel,
}

impl fmt::Debug for AnalyticStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalyticStrategy")
            .field("label", &self.label)
            .field("alpha", &self.alpha)
            .finish_non_exhaustive()
    }
}

impl AnalyticStrategy {
    /// Builds the strategy from the runtime configuration (QoS, α, env)
    /// and a candidate set, with the default LMS+CUSUM predictor.
    pub fn new(config: &RuntimeConfig, candidates: CandidateSet) -> AnalyticStrategy {
        AnalyticStrategy {
            label: format!("{}-analytic", candidates.name()),
            qos: config.qos(),
            candidates,
            mean_service: config.mean_service(),
            alpha: config.over_provisioning(),
            delay_budget_seconds: config.qos().normalized_mean_budget() * config.mean_service(),
            last_epoch_mean_delay: None,
            predictor: Box::new(LmsCusum::new(config.predictor_history())),
            last_prediction: 0.0,
            last_selection: None,
            scaling: config.env().scaling(),
            power: config.env().power().clone(),
        }
    }

    /// Replaces the predictor.
    pub fn with_predictor(mut self, predictor: Box<dyn Predictor>) -> AnalyticStrategy {
        self.label = format!("{}[{}]", self.label, predictor.name());
        self.predictor = predictor;
        self
    }
}

impl Strategy for AnalyticStrategy {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn begin_epoch(&mut self, _epoch: usize) -> Result<Policy, CoreError> {
        let rho_pred = self.predictor.predict().clamp(0.01, 0.95);
        self.last_prediction = rho_pred;
        let mu = 1.0 / self.mean_service;
        let analyzer = PolicyAnalyzer::from_utilization(&self.power, self.scaling, mu, rho_pred)
            .map_err(|e| CoreError::InvalidConfig { reason: e.to_string() })?;
        let grid = self.candidates.grid_for(rho_pred);
        let budget = self.qos.normalized_mean_budget();
        let selection = analyzer.min_power_policy(self.candidates.programs(), &grid, budget);
        let (policy, selection) = match selection {
            Some((policy, out)) => {
                let sel = Selection {
                    policy: policy.clone(),
                    predicted_power: out.avg_power,
                    predicted_norm_response: out.normalized_mean_response,
                    feasible: true,
                    evaluated: self.candidates.programs().len() * grid.len(),
                };
                (policy, Some(sel))
            }
            None => {
                // Nothing feasible under the closed form: run flat out
                // with the shallowest program.
                let fallback = Policy::new(Frequency::MAX, self.candidates.programs()[0].clone());
                (fallback, None)
            }
        };
        self.last_selection = selection;
        let mut policy = policy;
        if self.alpha > 0.0
            && self.last_epoch_mean_delay.is_some_and(|d| d < self.delay_budget_seconds)
        {
            policy = policy.with_frequency(policy.frequency().scaled_by(1.0 + self.alpha));
        }
        Ok(policy)
    }

    fn end_epoch(&mut self, records: &[JobRecord]) {
        self.last_epoch_mean_delay = if records.is_empty() {
            Some(0.0)
        } else {
            Some(records.iter().map(JobRecord::response).sum::<f64>() / records.len() as f64)
        };
    }

    fn observe_minute(&mut self, rho: f64) {
        self.predictor.observe(rho);
    }

    fn last_prediction(&self) -> f64 {
        self.last_prediction
    }

    fn last_selection(&self) -> Option<&Selection> {
        self.last_selection.as_ref()
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        use sleepscale_journal::Snapshot;
        sleepscale_predict::snapshot_predictor(self.predictor.as_ref(), w);
        self.last_epoch_mean_delay.snapshot(w);
        w.put_f64(self.last_prediction);
        self.last_selection.snapshot(w);
    }

    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        use sleepscale_journal::Snapshot;
        self.predictor = sleepscale_predict::restore_predictor(r)?;
        self.last_epoch_mean_delay = Option::restore(r)?;
        self.last_prediction = r.get_f64()?;
        self.last_selection = Option::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> RuntimeConfig {
        RuntimeConfig::builder(0.194)
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn selects_feasible_policies_without_any_log() {
        let mut s = AnalyticStrategy::new(&config(), CandidateSet::standard());
        for _ in 0..30 {
            s.observe_minute(0.2);
        }
        let p = s.begin_epoch(0).unwrap();
        assert!(p.frequency().get() < 1.0, "closed form scales down at rho=0.2: {p}");
        let sel = s.last_selection().unwrap();
        assert!(sel.feasible);
        assert!(sel.predicted_norm_response <= 5.0);
    }

    #[test]
    fn tracks_predictions_and_applies_guard_band() {
        let mut s = AnalyticStrategy::new(&config(), CandidateSet::standard())
            .with_predictor(Box::new(sleepscale_predict::NaivePrevious::new()));
        assert!(s.name().contains("NP"));
        for _ in 0..5 {
            s.observe_minute(0.3);
        }
        let base = s.begin_epoch(0).unwrap().frequency().get();
        // Report a well-within-budget epoch; α defaults to 0, so no boost.
        s.end_epoch(&[]);
        let after = s.begin_epoch(1).unwrap().frequency().get();
        assert!((after - base).abs() < 1e-9);
    }

    #[test]
    fn matches_simulation_driven_selection_on_state() {
        // The paper's observation: the idealized model usually finds the
        // same low-power state as the simulation-driven manager.
        use crate::manager::PolicyManager;
        use sleepscale_workloads::JobLog;
        let cfg = config();
        let mut log = JobLog::new(4096);
        let mut t = 0.0f64;
        // Exponential-ish log at rho 0.25.
        for i in 0..2000 {
            let gap = 0.776 * (1.0 + 0.5 * ((i * 37 % 100) as f64 / 100.0 - 0.5));
            t += gap;
            log.push(gap, 0.194);
        }
        let _ = t;
        let mut sim_manager = PolicyManager::new(
            cfg.env().clone(),
            cfg.qos(),
            CandidateSet::standard(),
            cfg.mean_service(),
            2000,
        )
        .unwrap();
        let sim_sel = sim_manager.select_from_log(&log, 0.25).unwrap();

        let mut ana = AnalyticStrategy::new(&cfg, CandidateSet::standard());
        for _ in 0..30 {
            ana.observe_minute(0.25);
        }
        let ana_policy = ana.begin_epoch(0).unwrap();
        assert_eq!(
            ana_policy.program().label(),
            sim_sel.policy.program().label(),
            "state choice should agree at rho=0.25"
        );
    }
}
