//! SleepScale: runtime joint speed scaling and sleep-state management.
//!
//! This crate is the paper's primary contribution (Sections 5–6): a
//! runtime power-management controller that, every epoch,
//!
//! 1. predicts the upcoming utilization from minute-granularity history
//!    (`sleepscale-predict`),
//! 2. rescales its logged job arrivals to the prediction
//!    (`sleepscale-workloads::JobLog`),
//! 3. characterizes candidate (frequency, sleep program) pairs by
//!    queueing simulation (`sleepscale-sim`) — by default with a pruned
//!    coarse-to-fine frequency search per program ([`SearchMode`]) and a
//!    cross-epoch [`CharacterizationCache`], so far fewer than
//!    `|grid| × |programs|` candidates are simulated per epoch — and
//! 4. deploys the minimum-power policy that meets the QoS constraint,
//!    optionally over-provisioned by a frequency guard band `α`.
//!
//! The building blocks:
//!
//! * [`QosConstraint`] — the baseline-derived budgets: normalized mean
//!   response `µE[R] ≤ 1/(1−ρ_b)` or the 95th-percentile deadline.
//! * [`CandidateSet`] — which sleep programs and frequency grid the
//!   manager searches (full SleepScale, SS(C3), DVFS-only, …).
//! * [`PolicyManager`] — the per-epoch characterize-and-select step.
//! * [`Strategy`] and its implementations — SleepScale plus the paper's
//!   comparison strategies (race-to-halt, DVFS-only, fixed policies).
//! * [`run`]/[`RunReport`] — the closed-loop evaluation harness driving a
//!   strategy over a utilization trace against ground-truth job streams
//!   (Section 6's experiments).
//!
//! # Example
//!
//! ```no_run
//! use sleepscale::prelude::*;
//! use sleepscale_sim::SimEnv;
//! use sleepscale_workloads::{traces, WorkloadSpec, WorkloadDistributions, replay_trace, ReplayConfig};
//! use rand::SeedableRng;
//!
//! let spec = WorkloadSpec::dns();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let dists = WorkloadDistributions::empirical(&spec, 10_000, &mut rng)?;
//! let trace = traces::email_store(1, 7).window(120, 1200); // 2 AM – 8 PM
//! let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng)?;
//!
//! let config = RuntimeConfig::builder(spec.service_mean())
//!     .qos(QosConstraint::mean_response(0.8)?)
//!     .epoch_minutes(5)
//!     .over_provisioning(0.35)
//!     .build()?;
//! let mut strategy = SleepScaleStrategy::new(&config, CandidateSet::standard());
//! let report = run(&trace, &jobs, &mut strategy, &SimEnv::xeon_cpu_bound(), &config)?;
//! println!("avg power {:.1} W", report.avg_power_watts());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analytic_strategy;
mod cache;
mod candidates;
mod error;
mod manager;
mod qos;
mod report;
mod runtime;
mod spec;
mod strategies;

pub use analytic_strategy::AnalyticStrategy;
pub use cache::{CacheStats, CharacterizationCache, DEFAULT_CACHE_CAPACITY};
pub use candidates::CandidateSet;
pub use error::CoreError;
pub use manager::{
    CharacterizationKey, PolicyManager, SearchMode, Selection, WarmStartStats, RHO_QUANTUM,
};
pub use qos::QosConstraint;
pub use report::{EpochReport, RunReport};
pub use runtime::{
    run, run_resumable, run_traced, CheckpointSink, RuntimeConfig, RuntimeConfigBuilder,
};
pub use spec::{CandidateSpec, PredictorSpec, StrategySpec};
pub use strategies::{FixedPolicyStrategy, RaceToHaltStrategy, SleepScaleStrategy, Strategy};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::{
        run, AnalyticStrategy, CacheStats, CandidateSet, CandidateSpec, CharacterizationCache,
        CharacterizationKey, CoreError, EpochReport, FixedPolicyStrategy, PolicyManager,
        PredictorSpec, QosConstraint, RaceToHaltStrategy, RunReport, RuntimeConfig,
        RuntimeConfigBuilder, SearchMode, Selection, SleepScaleStrategy, Strategy, StrategySpec,
        WarmStartStats,
    };
}
