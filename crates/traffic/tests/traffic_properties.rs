//! Property suite tying the tagged-draw subsystem to the old
//! moment-composed `Mix` semantics: a tagged mixture's *realized*
//! per-stream moments must converge to what `mix_moments` composes
//! from the class statistics — the two representations describe the
//! same population, they just differ in whether identity survives.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sleepscale_dist::Moments;
use sleepscale_traffic::{mix_moments, replay_traffic, TrafficClass, TrafficModel};
use sleepscale_workloads::{ReplayConfig, UtilizationTrace, WorkloadSpec};

fn realized_size_moments(model: &TrafficModel, seed: u64) -> (Moments, Vec<Moments>) {
    let trace = UtilizationTrace::constant(0.5, 180).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let tables = model.empirical_tables(6_000, &mut rng).unwrap();
    let jobs = replay_traffic(&trace, model, &tables, &ReplayConfig::default(), &mut rng).unwrap();
    let mut overall = Moments::new();
    let mut per_class = vec![Moments::new(); model.len()];
    for job in jobs.jobs() {
        overall.push(job.size);
        per_class[job.class().as_index()].push(job.size);
    }
    (overall, per_class)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A two-class tagged stream's realized size mean and Cv converge
    /// to the moment-level composition `WorkloadSource::Mix` would
    /// have collapsed the classes into, while each class's own sizes
    /// still follow its own spec — the moment identity the subsystem
    /// must preserve and the per-class identity it must add.
    #[test]
    fn tagged_mixture_converges_to_mix_moments(
        mean_a in 0.05_f64..0.4,
        mean_b in 0.05_f64..0.4,
        cv_a in 0.5_f64..2.0,
        cv_b in 0.5_f64..2.0,
        weight_a in 0.25_f64..4.0,
        seed in 0_u64..1_000,
    ) {
        let spec_a = WorkloadSpec::new("a", 1.0, 1.0, mean_a, cv_a).unwrap();
        let spec_b = WorkloadSpec::new("b", 1.0, 1.0, mean_b, cv_b).unwrap();
        let model = TrafficModel::new(vec![
            TrafficClass::new("a", spec_a, weight_a),
            TrafficClass::new("b", spec_b, 1.0),
        ]).unwrap();

        let w = weight_a / (weight_a + 1.0);
        let (mix_mean, mix_cv) =
            mix_moments(&[(w, mean_a, cv_a), (1.0 - w, mean_b, cv_b)]);
        // The model's own composition is the same formula.
        let composed = model.composed_spec().unwrap();
        prop_assert!((composed.service_mean() - mix_mean).abs() / mix_mean < 1e-12);
        prop_assert!((composed.service_cv() - mix_cv).abs() / mix_cv.max(1e-9) < 1e-9);

        let (overall, per_class) = realized_size_moments(&model, seed);
        prop_assert!(overall.count() > 5_000, "only {} jobs realized", overall.count());
        // Realized mixture moments sit near the composition (empirical
        // tables + finite streams: allow a few Monte-Carlo percent).
        prop_assert!(
            (overall.mean() - mix_mean).abs() / mix_mean < 0.08,
            "realized mixture mean {} vs composed {mix_mean}", overall.mean()
        );
        prop_assert!(
            (overall.cv() - mix_cv).abs() / mix_cv.max(0.5) < 0.2,
            "realized mixture Cv {} vs composed {mix_cv}", overall.cv()
        );
        // Per-class sizes follow each class's own law — the identity
        // the moment-composed Mix erases.
        prop_assert!((per_class[0].mean() - mean_a).abs() / mean_a < 0.12,
            "class a mean {} vs {mean_a}", per_class[0].mean());
        prop_assert!((per_class[1].mean() - mean_b).abs() / mean_b < 0.12,
            "class b mean {} vs {mean_b}", per_class[1].mean());
        // And the job-count split follows the weights.
        let share = per_class[0].count() as f64 / overall.count() as f64;
        prop_assert!((share - w).abs() < 0.06, "class a share {share} vs weight {w}");
    }

    /// Replay is a pure function of (model, trace, seed): repeated
    /// generation is byte-identical.
    #[test]
    fn tagged_replay_is_reproducible(seed in 0_u64..1_000) {
        let model = TrafficModel::new(vec![
            TrafficClass::new("dns", WorkloadSpec::dns(), 2.0),
            TrafficClass::new("mail", WorkloadSpec::mail(), 1.0),
        ]).unwrap();
        let trace = UtilizationTrace::constant(0.3, 45).unwrap();
        let make = || {
            let mut rng = StdRng::seed_from_u64(seed);
            let tables = model.empirical_tables(2_000, &mut rng).unwrap();
            replay_traffic(&trace, &model, &tables, &ReplayConfig::default(), &mut rng).unwrap()
        };
        prop_assert_eq!(make(), make());
    }
}
