//! Class-tagged trace replay: the tagged-draw counterpart of
//! [`sleepscale_workloads::replay_trace`].
//!
//! Each class replays the utilization schedule through its *own*
//! inter-arrival and service tables (its share of the offered load is
//! its job-count weight times its size share), and the per-class
//! streams are interleaved into one arrival-ordered stream whose jobs
//! carry their class tag. A single-class model consumes the RNG in
//! exactly the order `replay_trace` does and tags everything with the
//! default class, so its stream is **byte-identical** to the untagged
//! replay of the same spec — the parity the `multiclass` gate pins.

use crate::error::TrafficError;
use crate::model::TrafficModel;
use rand::RngCore;
use sleepscale_sim::{pack_id, ClassId, Job, JobStream};
use sleepscale_workloads::{ReplayConfig, UtilizationTrace, WorkloadDistributions};

impl TrafficModel {
    /// Synthesizes one BigHouse-substitute empirical table pair per
    /// class, in class order, from a single RNG — the tagged
    /// counterpart of `WorkloadDistributions::empirical` over a
    /// composed spec (and, for a single-class model, exactly that call).
    ///
    /// # Errors
    ///
    /// Propagates model-validation and fitting errors.
    pub fn empirical_tables(
        &self,
        table_size: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<WorkloadDistributions>, TrafficError> {
        self.validate()?;
        self.classes
            .iter()
            .map(|c| WorkloadDistributions::empirical(&c.spec, table_size, rng).map_err(Into::into))
            .collect()
    }
}

/// Builds the class-tagged ground-truth job stream for a utilization
/// trace: class `i` draws arrivals and sizes from `tables[i]`
/// (sampling the RNG one full class at a time, in class order), its
/// per-minute arrival rate is `weightᵢ · ρ(m) · modulatorᵢ(m)` of the
/// mixture's total, and the interleaved stream tags every job with its
/// class.
///
/// The trace's `ρ(m)` stays the *mixture's* offered utilization: the
/// per-class target inter-arrival is chosen so the classes' offered
/// work sums back to `ρ(m) · rate_multiplier` when every modulator is
/// 1 (bursts deliberately push beyond the schedule — that is what a
/// flash crowd is).
///
/// # Errors
///
/// Returns [`TrafficError::InvalidModel`] when `tables` does not match
/// the model's classes, and propagates stream-assembly errors.
pub fn replay_traffic(
    trace: &UtilizationTrace,
    model: &TrafficModel,
    tables: &[WorkloadDistributions],
    config: &ReplayConfig,
    rng: &mut dyn RngCore,
) -> Result<JobStream, TrafficError> {
    model.validate()?;
    if tables.len() != model.classes.len() {
        return Err(TrafficError::InvalidModel {
            reason: format!(
                "{} distribution tables for {} classes — synthesize with \
                 TrafficModel::empirical_tables",
                tables.len(),
                model.classes.len()
            ),
        });
    }
    let weights = model.normalized_weights();
    let mix_mean = model.composed_spec()?.service_mean();

    // Per-class passes: each class walks the whole trace with its own
    // arrival clock, exactly the `replay_trace` loop over its own
    // tables. Classes consume the shared RNG sequentially (class 0's
    // whole day, then class 1's, …), which is what makes the
    // single-class model consume it identically to the untagged path.
    let mut per_class: Vec<Vec<(f64, f64)>> = Vec::with_capacity(model.classes.len());
    for (c, class) in model.classes.iter().enumerate() {
        let dists = &tables[c];
        let ia = dists.interarrival();
        let sv = dists.service();
        let ia_mean = ia.mean();
        let sv_scale = class.spec.service_mean() / sv.mean().max(1e-300);
        // The class's share of the mixture's offered *work* is its
        // job-count weight times its size share.
        let share = weights[c] * class.spec.service_mean() / mix_mean;

        let mut pairs = Vec::new();
        let mut t = 0.0_f64;
        for (m, &rho) in trace.values().iter().enumerate() {
            let sample_start = m as f64 * config.seconds_per_sample;
            let sample_end = sample_start + config.seconds_per_sample;
            let rho_class = rho * share * class.rate_factor(m);
            if rho_class < config.min_utilization {
                // No arrivals this sample; restart the arrival clock at
                // the next sample boundary if it fell behind.
                t = t.max(sample_end);
                continue;
            }
            let target_ia =
                class.spec.service_mean() / (rho_class * config.rate_multiplier.max(1e-9));
            let scale = target_ia / ia_mean;
            if t < sample_start {
                t = sample_start;
            }
            loop {
                let gap = ia.sample(rng) * scale;
                let next = t + gap;
                if next >= sample_end {
                    // The gap crosses into the next sample: carry the
                    // clock forward so bursts don't pile up at
                    // boundaries.
                    t = next;
                    break;
                }
                t = next;
                pairs.push((t, sv.sample(rng) * sv_scale));
            }
        }
        per_class.push(pairs);
    }

    // Interleave the per-class streams by arrival (ties go to the
    // lower class index — deterministic), assigning global sequence
    // numbers and packing each job's class tag into its id.
    let total: usize = per_class.iter().map(Vec::len).sum();
    let mut merged = Vec::with_capacity(total);
    let mut idx = vec![0usize; per_class.len()];
    let mut seq = 0u64;
    while seq < total as u64 {
        let mut best = usize::MAX;
        for (c, pairs) in per_class.iter().enumerate() {
            if idx[c] < pairs.len()
                && (best == usize::MAX || pairs[idx[c]].0 < per_class[best][idx[best]].0)
            {
                best = c;
            }
        }
        let (arrival, size) = per_class[best][idx[best]];
        merged.push(Job { id: pack_id(seq, ClassId(best as u16)), arrival, size });
        idx[best] += 1;
        seq += 1;
    }
    JobStream::new(merged).map_err(TrafficError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ArrivalModulator, TrafficClass};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sleepscale_workloads::{replay_trace, WorkloadSpec};

    /// The heart of the tentpole's parity guarantee: a single-class
    /// tagged replay is byte-identical to the untagged replay of the
    /// same spec under the same seed.
    #[test]
    fn single_class_replay_matches_untagged_byte_for_byte() {
        for spec in [WorkloadSpec::dns(), WorkloadSpec::mail()] {
            let trace = sleepscale_workloads::traces::email_store(1, 5).window(400, 520);
            let config = ReplayConfig::for_fleet(3);

            let mut rng = StdRng::seed_from_u64(99);
            let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
            let untagged = replay_trace(&trace, &dists, &config, &mut rng).unwrap();

            let model = TrafficModel::single(spec.clone());
            let mut rng = StdRng::seed_from_u64(99);
            let tables = model.empirical_tables(4_000, &mut rng).unwrap();
            let tagged = replay_traffic(&trace, &model, &tables, &config, &mut rng).unwrap();

            assert_eq!(tagged, untagged, "{}: tagged single-class stream drifted", spec.name());
            assert!(!tagged.is_tagged());
        }
    }

    #[test]
    fn two_class_stream_interleaves_by_weight_and_draws_per_class_sizes() {
        let model = TrafficModel::new(vec![
            TrafficClass::new("dns", WorkloadSpec::dns(), 2.0),
            TrafficClass::new("mail", WorkloadSpec::mail(), 1.0),
        ])
        .unwrap();
        let trace = UtilizationTrace::constant(0.4, 240).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let tables = model.empirical_tables(8_000, &mut rng).unwrap();
        let jobs =
            replay_traffic(&trace, &model, &tables, &ReplayConfig::default(), &mut rng).unwrap();
        assert!(jobs.is_tagged());

        let (mut counts, mut size_sums) = ([0usize; 2], [0.0f64; 2]);
        for job in jobs.jobs() {
            let c = job.class().as_index();
            assert!(c < 2);
            counts[c] += 1;
            size_sums[c] += job.size;
        }
        // Job-count shares follow the weights.
        let share = counts[0] as f64 / (counts[0] + counts[1]) as f64;
        assert!((share - 2.0 / 3.0).abs() < 0.04, "dns share {share}");
        // Sizes come from each class's own service law, not the
        // moment-composed mixture.
        let dns_mean = size_sums[0] / counts[0] as f64;
        let mail_mean = size_sums[1] / counts[1] as f64;
        assert!((dns_mean - 0.194).abs() / 0.194 < 0.1, "dns mean size {dns_mean}");
        assert!((mail_mean - 0.092).abs() / 0.092 < 0.1, "mail mean size {mail_mean}");
        // Offered work matches the schedule: total work / horizon ≈ ρ.
        let rho = jobs.jobs().iter().map(|j| j.size).sum::<f64>() / (240.0 * 60.0);
        assert!((rho - 0.4).abs() < 0.04, "measured ρ {rho}");
    }

    #[test]
    fn burst_modulator_concentrates_a_class_into_its_window() {
        let model = TrafficModel::new(vec![
            TrafficClass::new("steady", WorkloadSpec::dns(), 1.0),
            TrafficClass::new("crowd", WorkloadSpec::dns(), 1.0).with_modulator(
                ArrivalModulator::Burst { start_minute: 60, end_minute: 120, factor: 4.0 },
            ),
        ])
        .unwrap();
        let trace = UtilizationTrace::constant(0.3, 180).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let tables = model.empirical_tables(6_000, &mut rng).unwrap();
        let jobs =
            replay_traffic(&trace, &model, &tables, &ReplayConfig::default(), &mut rng).unwrap();
        let in_window = |j: &Job| (3600.0..7200.0).contains(&j.arrival);
        let crowd: Vec<&Job> = jobs.jobs().iter().filter(|j| j.class() == ClassId(1)).collect();
        let steady: Vec<&Job> = jobs.jobs().iter().filter(|j| j.class() == ClassId(0)).collect();
        let crowd_in = crowd.iter().filter(|j| in_window(j)).count() as f64 / crowd.len() as f64;
        let steady_in = steady.iter().filter(|j| in_window(j)).count() as f64 / steady.len() as f64;
        // The window is 1/3 of the horizon at 4× rate: 4/(4+2) of the
        // bursting class lands inside vs 1/3 of the steady class.
        assert!((steady_in - 1.0 / 3.0).abs() < 0.05, "steady in-window share {steady_in}");
        assert!((crowd_in - 4.0 / 6.0).abs() < 0.07, "crowd in-window share {crowd_in}");
    }

    #[test]
    fn table_count_mismatch_is_rejected() {
        let model = TrafficModel::single(WorkloadSpec::dns());
        let trace = UtilizationTrace::constant(0.2, 10).unwrap();
        let err = replay_traffic(
            &trace,
            &model,
            &[],
            &ReplayConfig::default(),
            &mut StdRng::seed_from_u64(1),
        )
        .unwrap_err();
        assert!(err.to_string().contains("distribution tables"), "{err}");
    }
}
