use sleepscale_sim::SimError;
use sleepscale_workloads::WorkloadError;
use std::fmt;

/// Errors from traffic-model construction, tagged replay, and
/// arrival-log ingestion.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficError {
    /// A traffic model's shape is invalid (empty, bad weights, bad
    /// modulator windows, too many classes, …).
    InvalidModel {
        /// What was wrong.
        reason: String,
    },
    /// An external arrival log could not be parsed.
    InvalidLog {
        /// What was wrong (with a line number where applicable).
        reason: String,
    },
    /// A workload-layer failure (distribution fitting, spec
    /// validation).
    Workload(WorkloadError),
    /// A job-stream assembly failure.
    Stream(SimError),
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrafficError::InvalidModel { reason } => write!(f, "invalid traffic model: {reason}"),
            TrafficError::InvalidLog { reason } => write!(f, "invalid arrival log: {reason}"),
            TrafficError::Workload(e) => write!(f, "workload error: {e}"),
            TrafficError::Stream(e) => write!(f, "job stream error: {e}"),
        }
    }
}

impl std::error::Error for TrafficError {}

impl From<WorkloadError> for TrafficError {
    fn from(e: WorkloadError) -> TrafficError {
        TrafficError::Workload(e)
    }
}

impl From<SimError> for TrafficError {
    fn from(e: SimError) -> TrafficError {
        TrafficError::Stream(e)
    }
}
