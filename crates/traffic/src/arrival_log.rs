//! External arrival-trace ingestion: parse a CSV arrival log into a
//! class-tagged [`JobStream`] (and write one back out), so measured
//! traces from real front-ends can drive the simulator directly
//! instead of passing through a synthetic distribution fit.
//!
//! The format is one job per line, `arrival_seconds,size_seconds`
//! with an optional third `class` column holding either a class name
//! (mapped to tags in order of first appearance) or a bare tag index.
//! Blank lines and `#` comments are skipped; a header line whose first
//! field is `arrival` is skipped too. Rows may arrive unsorted —
//! ingestion sorts by arrival (stable, so equal instants keep file
//! order) before sequencing ids.

use crate::error::TrafficError;
use sleepscale_sim::{pack_id, ClassId, Job, JobStream};
use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed arrival log: the tagged stream plus the class-name table
/// its tags index into (`names[i]` is the display name of
/// [`ClassId`]`(i)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalLog {
    /// The class-tagged, arrival-ordered job stream.
    pub stream: JobStream,
    /// Class display names, in tag order. A log without a class column
    /// gets the single name `"all"`.
    pub class_names: Vec<String>,
}

/// Parses a CSV arrival log (see the module docs for the format).
///
/// # Errors
///
/// Returns [`TrafficError::InvalidLog`] (with the offending line
/// number) for malformed rows, non-finite fields, or more classes than
/// the 16-bit tag space holds; and propagates stream validation
/// errors.
pub fn parse_csv(text: &str) -> Result<ArrivalLog, TrafficError> {
    let mut rows: Vec<(f64, f64, u16)> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    // Interning index over `names` — O(1) per row where a linear scan
    // made wide logs (up to the full 65,536-tag space) quadratic. The
    // first tag a name maps to wins, matching the old first-occurrence
    // scan for backfilled placeholder names.
    let mut index: HashMap<String, u16> = HashMap::new();
    fn intern(names: &mut Vec<String>, index: &mut HashMap<String, u16>, name: String) {
        index.entry(name.clone()).or_insert(names.len() as u16);
        names.push(name);
    }
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let first = fields.next().unwrap_or("");
        if rows.is_empty() && first.eq_ignore_ascii_case("arrival") {
            continue; // header
        }
        let bad = |what: &str| TrafficError::InvalidLog {
            reason: format!("line {}: {what} in '{line}'", lineno + 1),
        };
        let arrival: f64 = first.parse().map_err(|_| bad("unparsable arrival"))?;
        let size: f64 = fields
            .next()
            .ok_or_else(|| bad("missing size column"))?
            .parse()
            .map_err(|_| bad("unparsable size"))?;
        if !arrival.is_finite() || arrival < 0.0 {
            return Err(bad("arrival must be finite and >= 0"));
        }
        if !size.is_finite() || size < 0.0 {
            return Err(bad("size must be finite and >= 0"));
        }
        let class = match fields.next() {
            None | Some("") => {
                if names.is_empty() {
                    intern(&mut names, &mut index, "all".into());
                }
                0
            }
            Some(label) => {
                // A bare integer is a tag index; anything else is a
                // name mapped in order of first appearance. An integer
                // too large for the tag space is an error, not a name.
                if let Ok(tag) = label.parse::<u16>() {
                    while names.len() <= tag as usize {
                        let placeholder = format!("class{}", names.len());
                        intern(&mut names, &mut index, placeholder);
                    }
                    tag
                } else if label.chars().all(|c| c.is_ascii_digit()) {
                    return Err(bad("numeric class tag exceeds the 16-bit tag space"));
                } else {
                    match index.get(label) {
                        Some(&i) => i,
                        None => {
                            if names.len() > u16::MAX as usize {
                                return Err(bad("more classes than the 16-bit tag space"));
                            }
                            intern(&mut names, &mut index, label.to_string());
                            (names.len() - 1) as u16
                        }
                    }
                }
            }
        };
        rows.push((arrival, size, class));
    }
    if names.is_empty() {
        names.push("all".into());
    }
    // Stable sort: measured logs are usually ordered already, and equal
    // instants keep their file order. `total_cmp` is a total order, so
    // there is no panic path here even if the finiteness validation
    // above ever changes.
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));
    let jobs = rows
        .into_iter()
        .enumerate()
        .map(|(i, (arrival, size, class))| Job {
            id: pack_id(i as u64, ClassId(class)),
            arrival,
            size,
        })
        .collect();
    Ok(ArrivalLog { stream: JobStream::new(jobs)?, class_names: names })
}

/// Renders a tagged stream back to the CSV format [`parse_csv`] reads
/// (header included) — the round-trip partner for exporting simulator
/// inputs.
pub fn to_csv(log: &ArrivalLog) -> String {
    let mut out = String::from("arrival,size,class\n");
    for job in log.stream.jobs() {
        let class = job.class().as_index();
        let name = log.class_names.get(class).map(String::as_str).unwrap_or("all");
        let _ = writeln!(out, "{},{},{}", job.arrival, job.size, name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_named_classes_and_sorts() {
        let log = parse_csv(
            "# measured front-end trace\n\
             arrival,size,class\n\
             0.5,0.2,interactive\n\
             0.1,0.3,batch\n\
             \n\
             0.9,0.1,interactive\n",
        )
        .unwrap();
        assert_eq!(log.class_names, ["interactive", "batch"]);
        assert_eq!(log.stream.len(), 3);
        // Sorted by arrival; the batch row moved first.
        assert_eq!(log.stream.jobs()[0].arrival, 0.1);
        assert_eq!(log.stream.jobs()[0].class(), ClassId(1));
        assert_eq!(log.stream.jobs()[1].class(), ClassId(0));
        assert!(log.stream.jobs().iter().enumerate().all(|(i, j)| j.sequence() == i as u64));
    }

    #[test]
    fn two_column_logs_are_untagged() {
        let log = parse_csv("0.0,0.1\n1.0,0.2\n").unwrap();
        assert_eq!(log.class_names, ["all"]);
        assert!(!log.stream.is_tagged());
        assert_eq!(log.stream.jobs()[1].id, 1);
    }

    #[test]
    fn numeric_class_column_is_a_tag_index() {
        let log = parse_csv("0.0,0.1,2\n1.0,0.2,0\n").unwrap();
        assert_eq!(log.stream.jobs()[0].class(), ClassId(2));
        assert_eq!(log.stream.jobs()[1].class(), ClassId(0));
        assert_eq!(log.class_names.len(), 3, "names backfilled up to the highest tag");
    }

    #[test]
    fn round_trips_through_csv() {
        let original = parse_csv("0.0,0.25,web\n1.5,0.5,batch\n2.0,0.125,web\n").unwrap();
        let again = parse_csv(&to_csv(&original)).unwrap();
        assert_eq!(again, original);
    }

    #[test]
    fn malformed_rows_name_their_line() {
        let err = parse_csv("0.0,0.1\nnope,0.2\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = parse_csv("0.0\n").unwrap_err();
        assert!(err.to_string().contains("missing size"), "{err}");
        // An out-of-range numeric tag is rejected, not re-tagged as a
        // name.
        let err = parse_csv("0.0,0.1,70000\n").unwrap_err();
        assert!(err.to_string().contains("16-bit tag space"), "{err}");
        assert!(parse_csv("0.0,-1.0\n").is_err());
        assert!(parse_csv("-1.0,0.1\n").is_err());
    }

    #[test]
    fn non_finite_fields_are_errors_not_panics() {
        // `NaN`/`inf` parse as valid f64s, so they must be caught by
        // validation (never reaching the sort) rather than by a panic.
        for text in ["NaN,0.1\n", "nan,0.1\n", "inf,0.1\n", "0.0,NaN\n", "0.0,-inf\n"] {
            let err = parse_csv(text).unwrap_err();
            assert!(err.to_string().contains("finite"), "{text:?}: {err}");
        }
    }

    #[test]
    fn placeholder_names_alias_their_numeric_tags() {
        // A backfilled placeholder (`class1`) is a real name: a later
        // literal `class1` label maps to the same tag, as the old
        // first-occurrence scan guaranteed.
        let log = parse_csv("0.0,0.1,2\n1.0,0.2,class1\n").unwrap();
        assert_eq!(log.stream.jobs()[1].class(), ClassId(1));
        assert_eq!(log.class_names.len(), 3);
    }

    #[test]
    fn class_table_stops_exactly_at_the_tag_space() {
        // 65,536 distinct names fill the 16-bit tag space exactly...
        let mut text = String::new();
        for i in 0..=u16::MAX as u32 {
            let _ = writeln!(text, "{i}.0,0.1,name{i}");
        }
        let log = parse_csv(&text).unwrap();
        assert_eq!(log.class_names.len(), u16::MAX as usize + 1);
        assert_eq!(log.stream.jobs().last().unwrap().class(), ClassId(u16::MAX));
        // ...and the 65,537th is an error, not a wrapped tag.
        let _ = writeln!(text, "70000.0,0.1,one-too-many");
        let err = parse_csv(&text).unwrap_err();
        assert!(err.to_string().contains("more classes"), "{err}");
    }
}
