//! Class-tagged traffic for the SleepScale reproduction: *who* the
//! jobs are, on top of the existing how-much (utilization schedules)
//! and how-fast (policy) axes.
//!
//! # Tagged draws vs moment-composed mixtures
//!
//! The original `WorkloadSource::Mix` collapses several job
//! populations into one [`WorkloadSpec`](sleepscale_workloads::WorkloadSpec)
//! *before any job exists*: mixture mean and mixture second moment
//! (hence mixture Cv), which is exactly the statistic Table 5
//! publishes for its own mixed live traces. That is faithful at the
//! population level but erases identity — once the moments are
//! composed, no per-component question (an interactive class's p95, a
//! batch class's energy share) can ever be answered.
//!
//! A [`TrafficModel`] keeps the components apart: every arriving job
//! is drawn from its *own class's* inter-arrival and service tables
//! (sizes per class, arrivals interleaved by weight) and carries a
//! compact [`ClassId`](sleepscale_sim::ClassId) tag packed into its
//! job id. The tag rides through the simulator for free — the engine
//! never inspects it — and surfaces as per-class response summaries in
//! run, cluster, and scenario reports, against per-class QoS targets
//! ("p95 ≤ 2× for interactive while batch rides at 10×").
//!
//! The two semantics are deliberately tied together:
//! [`TrafficModel::composed_spec`] applies the *same* moment
//! composition `Mix` uses (the property suite checks a tagged stream's
//! realized moments converge to it), and a single-class model's stream
//! is **byte-identical** to the untagged replay of its spec (the
//! `multiclass` gate bin asserts whole-report parity).
//!
//! # What's here
//!
//! * [`TrafficClass`]/[`TrafficModel`] — the class mixture as data
//!   (serde-derivable, used by `WorkloadSource::Tagged`).
//! * [`ArrivalModulator`] — per-class rate shaping: flash-crowd
//!   [`Burst`](ArrivalModulator::Burst) windows, per-class
//!   [`Diurnal`](ArrivalModulator::Diurnal) swings, constant
//!   [`Scale`](ArrivalModulator::Scale) factors.
//! * [`replay_traffic`] — the tagged ground-truth stream generator
//!   (the tagged-draw counterpart of
//!   [`sleepscale_workloads::replay_trace`]).
//! * [`arrival_log`] — CSV ingestion/export of measured, class-tagged
//!   arrival traces.
//!
//! # Example
//!
//! ```
//! use sleepscale_traffic::prelude::*;
//! use sleepscale_workloads::{ReplayConfig, UtilizationTrace, WorkloadSpec};
//! use rand::SeedableRng;
//!
//! let model = TrafficModel::new(vec![
//!     TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0).with_p95_budget(12.0),
//!     TrafficClass::new("batch", WorkloadSpec::mail(), 1.0),
//! ])?;
//! let trace = UtilizationTrace::constant(0.3, 60)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let tables = model.empirical_tables(4_000, &mut rng)?;
//! let jobs = replay_traffic(&trace, &model, &tables, &ReplayConfig::default(), &mut rng)?;
//! assert!(jobs.is_tagged());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival_log;
mod error;
mod model;
mod replay;

pub use arrival_log::ArrivalLog;
pub use error::TrafficError;
pub use model::{mix_moments, ArrivalModulator, TrafficClass, TrafficModel, MAX_CLASSES};
pub use replay::replay_traffic;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::arrival_log;
    pub use crate::{
        replay_traffic, ArrivalLog, ArrivalModulator, TrafficClass, TrafficError, TrafficModel,
    };
    pub use sleepscale_sim::ClassId;
}
