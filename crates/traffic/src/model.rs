use crate::error::TrafficError;
use serde::{Deserialize, Serialize};
use sleepscale_sim::ClassId;
use sleepscale_workloads::{traces, WorkloadSpec};

/// Largest number of classes a model may declare ([`ClassId`] is 16
/// bits).
pub const MAX_CLASSES: usize = 1 << 16;

/// A per-class arrival-rate modulator: multiplies the class's arrival
/// rate minute by minute on top of the scenario-wide utilization
/// schedule. Modulators compose multiplicatively
/// ([`TrafficClass::rate_factor`]).
///
/// All minute fields are **schedule-relative**: minute 0 is the first
/// sample of the trace the scenario actually runs (for a windowed
/// `LoadSchedule` that is the window's start, not midnight), matching
/// how burst windows are written against the scenario's own horizon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalModulator {
    /// A flash-crowd window: the class's arrival rate is multiplied by
    /// `factor` for minutes in `[start_minute, end_minute)`.
    Burst {
        /// First minute of the burst (schedule-relative).
        start_minute: usize,
        /// One past the last minute of the burst.
        end_minute: usize,
        /// Rate multiplier inside the window (≥ 0; 0 silences the
        /// class for the window).
        factor: f64,
    },
    /// A per-class diurnal swing on top of the shared schedule:
    /// `1 + amplitude · cos(2π (minute − peak_minute) / 1440)`, clamped
    /// at 0 — interactive traffic can peak mid-day while batch peaks
    /// overnight, on one fleet. Like every modulator, `peak_minute` is
    /// schedule-relative (a windowed schedule's minute 0 is its window
    /// start): a `EmailStoreDay { start_minute: 480, .. }` scenario
    /// wanting a noon peak writes `peak_minute: 240`, not 720.
    Diurnal {
        /// Swing amplitude in `[0, 1]` (0 = flat).
        amplitude: f64,
        /// Schedule-relative minute at which the class's rate peaks
        /// (period 1440 minutes).
        peak_minute: usize,
    },
    /// A constant per-class rate multiplier (a class-level
    /// `arrival_scale`).
    Scale {
        /// The multiplier (≥ 0, finite).
        factor: f64,
    },
}

impl ArrivalModulator {
    /// The rate multiplier this modulator applies at `minute`.
    pub fn factor_at(&self, minute: usize) -> f64 {
        match self {
            ArrivalModulator::Burst { start_minute, end_minute, factor } => {
                if (*start_minute..*end_minute).contains(&minute) {
                    *factor
                } else {
                    1.0
                }
            }
            ArrivalModulator::Diurnal { amplitude, peak_minute } => {
                let period = traces::MINUTES_PER_DAY as f64;
                let phase = (minute as f64 - *peak_minute as f64) / period;
                (1.0 + amplitude * (std::f64::consts::TAU * phase).cos()).max(0.0)
            }
            ArrivalModulator::Scale { factor } => *factor,
        }
    }

    /// Checks the modulator's shape.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidModel`] for an empty/inverted
    /// burst window, a non-finite or negative factor, or an
    /// out-of-range diurnal amplitude.
    pub fn validate(&self) -> Result<(), TrafficError> {
        match self {
            ArrivalModulator::Burst { start_minute, end_minute, factor } => {
                if start_minute >= end_minute {
                    return Err(TrafficError::InvalidModel {
                        reason: format!(
                            "burst window [{start_minute}, {end_minute}) is empty or inverted"
                        ),
                    });
                }
                if !factor.is_finite() || *factor < 0.0 {
                    return Err(TrafficError::InvalidModel {
                        reason: format!("burst factor {factor} must be finite and >= 0"),
                    });
                }
            }
            ArrivalModulator::Diurnal { amplitude, .. } => {
                if !amplitude.is_finite() || !(0.0..=1.0).contains(amplitude) {
                    return Err(TrafficError::InvalidModel {
                        reason: format!("diurnal amplitude {amplitude} must be inside [0, 1]"),
                    });
                }
            }
            ArrivalModulator::Scale { factor } => {
                if !factor.is_finite() || *factor < 0.0 {
                    return Err(TrafficError::InvalidModel {
                        reason: format!("scale factor {factor} must be finite and >= 0"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// One traffic class: a named job population with its own size and
/// inter-arrival laws (a [`WorkloadSpec`]), a share of the total
/// arrival stream, an optional per-class QoS target, and arrival
/// modulators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficClass {
    /// Display name (e.g. `"interactive"`, `"batch"`).
    pub name: String,
    /// The class's population statistics; sizes are drawn from *this*
    /// spec's service law, not from a moment-composed mixture.
    pub spec: WorkloadSpec,
    /// Relative share of the job count (normalized over the model).
    pub weight: f64,
    /// Optional QoS target on the class's 95th-percentile response,
    /// normalized by the class's own mean service time
    /// (`p95_response / service_mean ≤ budget`). `None` leaves the
    /// class unconstrained.
    pub p95_budget: Option<f64>,
    /// Per-class arrival-rate modulators, composed multiplicatively.
    pub modulators: Vec<ArrivalModulator>,
}

impl TrafficClass {
    /// A class with weight `weight`, no QoS target, and no modulators;
    /// chain [`TrafficClass::with_p95_budget`] /
    /// [`TrafficClass::with_modulator`] or use struct-update syntax.
    pub fn new(name: impl Into<String>, spec: WorkloadSpec, weight: f64) -> TrafficClass {
        TrafficClass { name: name.into(), spec, weight, p95_budget: None, modulators: Vec::new() }
    }

    /// Sets the normalized p95 response budget.
    pub fn with_p95_budget(mut self, budget: f64) -> TrafficClass {
        self.p95_budget = Some(budget);
        self
    }

    /// Appends an arrival modulator.
    pub fn with_modulator(mut self, modulator: ArrivalModulator) -> TrafficClass {
        self.modulators.push(modulator);
        self
    }

    /// The class's combined rate multiplier at `minute` (product over
    /// its modulators; 1 with none).
    pub fn rate_factor(&self, minute: usize) -> f64 {
        self.modulators.iter().map(|m| m.factor_at(minute)).product()
    }
}

/// Mixture mean and Cv from `(weight, mean, cv)` parts with weights
/// already normalized: `E[X] = Σ wᵢ mᵢ`,
/// `E[X²] = Σ wᵢ mᵢ²(1 + Cvᵢ²)` — the moment-level composition
/// Table 5 publishes for its own mixed live traces, and exactly the
/// formula `WorkloadSource::Mix` has always used.
pub fn mix_moments(parts: &[(f64, f64, f64)]) -> (f64, f64) {
    let mean: f64 = parts.iter().map(|(w, m, _)| w * m).sum();
    let second: f64 = parts.iter().map(|(w, m, cv)| w * m * m * (1.0 + cv * cv)).sum();
    let var = (second - mean * mean).max(0.0);
    (mean, var.sqrt() / mean)
}

/// A class-tagged traffic mixture: every arriving job is drawn from
/// one class's *own* distributions (sizes per class, arrivals
/// interleaved by weight) and carries that class's [`ClassId`] tag
/// through the simulator — in contrast to
/// `WorkloadSource::Mix`, which collapses the populations into one
/// moment-composed spec before any job exists.
///
/// Class `i` of the model is tagged [`ClassId`]`(i)`; a single-class
/// model therefore tags everything with the default class and its
/// streams are byte-identical to the untagged replay of the same spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficModel {
    /// The classes, in tag order (class `i` ↦ `ClassId(i)`).
    pub classes: Vec<TrafficClass>,
}

impl TrafficModel {
    /// A model over `classes`, validated.
    ///
    /// # Errors
    ///
    /// Same as [`TrafficModel::validate`].
    pub fn new(classes: Vec<TrafficClass>) -> Result<TrafficModel, TrafficError> {
        let model = TrafficModel { classes };
        model.validate()?;
        Ok(model)
    }

    /// The degenerate single-class model of `spec` — the tagged twin of
    /// an untagged workload (their job streams are byte-identical).
    pub fn single(spec: WorkloadSpec) -> TrafficModel {
        let name = spec.name().to_string();
        TrafficModel { classes: vec![TrafficClass::new(name, spec, 1.0)] }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the model declares no classes (invalid to run).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The tag of class `i`.
    pub fn class_id(&self, i: usize) -> ClassId {
        ClassId(i as u16)
    }

    /// Checks the model's shape: at least one class, at most
    /// [`MAX_CLASSES`], finite non-negative weights with a positive
    /// sum, positive finite budgets, and valid modulators.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidModel`] describing the first
    /// violation.
    pub fn validate(&self) -> Result<(), TrafficError> {
        if self.classes.is_empty() {
            return Err(TrafficError::InvalidModel {
                reason: "a traffic model needs at least one class".into(),
            });
        }
        if self.classes.len() > MAX_CLASSES {
            return Err(TrafficError::InvalidModel {
                reason: format!(
                    "{} classes exceed the {MAX_CLASSES}-class tag space",
                    self.classes.len()
                ),
            });
        }
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        if !total.is_finite()
            || total <= 0.0
            || self.classes.iter().any(|c| !c.weight.is_finite() || c.weight < 0.0)
        {
            return Err(TrafficError::InvalidModel {
                reason: format!(
                    "class weights must be finite and non-negative with a positive sum \
                     (got sum {total})"
                ),
            });
        }
        for class in &self.classes {
            if let Some(budget) = class.p95_budget {
                if !budget.is_finite() || budget <= 0.0 {
                    return Err(TrafficError::InvalidModel {
                        reason: format!(
                            "class '{}': p95 budget {budget} must be finite and > 0",
                            class.name
                        ),
                    });
                }
            }
            for modulator in &class.modulators {
                modulator.validate().map_err(|e| TrafficError::InvalidModel {
                    reason: format!("class '{}': {e}", class.name),
                })?;
            }
        }
        Ok(())
    }

    /// Per-class weights normalized to sum to 1, in class order.
    pub fn normalized_weights(&self) -> Vec<f64> {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        self.classes.iter().map(|c| c.weight / total).collect()
    }

    /// The mixture's moment-composed summary statistics — what the
    /// model looks like to anything that sees only one population
    /// (`mean_service` for the runtime configuration, the predictor's
    /// utilization accounting). Uses the same composition as
    /// `WorkloadSource::Mix` ([`mix_moments`]); a single-class model
    /// returns its class's spec verbatim, so the tagged twin of an
    /// untagged workload resolves to bit-identical statistics.
    ///
    /// # Errors
    ///
    /// Returns [`TrafficError::InvalidModel`] for invalid shapes and
    /// propagates spec-construction errors.
    pub fn composed_spec(&self) -> Result<WorkloadSpec, TrafficError> {
        self.validate()?;
        if self.classes.len() == 1 {
            return Ok(self.classes[0].spec.clone());
        }
        let weights = self.normalized_weights();
        let service: Vec<(f64, f64, f64)> = self
            .classes
            .iter()
            .zip(&weights)
            .map(|(c, &w)| (w, c.spec.service_mean(), c.spec.service_cv()))
            .collect();
        let arrival: Vec<(f64, f64, f64)> = self
            .classes
            .iter()
            .zip(&weights)
            .map(|(c, &w)| (w, c.spec.interarrival_mean(), c.spec.interarrival_cv()))
            .collect();
        let (sv_mean, sv_cv) = mix_moments(&service);
        let (ia_mean, ia_cv) = mix_moments(&arrival);
        let name = self.classes.iter().map(|c| c.spec.name()).collect::<Vec<_>>().join("+");
        Ok(WorkloadSpec::new(format!("tagged({name})"), ia_mean, ia_cv, sv_mean, sv_cv)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_class_model_resolves_to_its_spec_verbatim() {
        let model = TrafficModel::single(WorkloadSpec::dns());
        assert_eq!(model.composed_spec().unwrap(), WorkloadSpec::dns());
        assert_eq!(model.len(), 1);
        assert_eq!(model.class_id(0), ClassId::DEFAULT);
    }

    #[test]
    fn composition_matches_moment_mixture() {
        let model = TrafficModel::new(vec![
            TrafficClass::new("dns", WorkloadSpec::dns(), 1.0),
            TrafficClass::new("mail", WorkloadSpec::mail(), 1.0),
        ])
        .unwrap();
        let spec = model.composed_spec().unwrap();
        assert!((spec.service_mean() - (0.194 + 0.092) / 2.0).abs() < 1e-12);
        // Mixing two populations with different means inflates the Cv.
        assert!(spec.service_cv() > 1.0);
        assert!(spec.name().starts_with("tagged("));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        assert!(TrafficModel::new(vec![]).is_err());
        assert!(TrafficModel::new(vec![TrafficClass::new("x", WorkloadSpec::dns(), -1.0)]).is_err());
        assert!(TrafficModel::new(vec![TrafficClass::new("x", WorkloadSpec::dns(), 0.0)]).is_err());
        let bad_budget = TrafficClass::new("x", WorkloadSpec::dns(), 1.0).with_p95_budget(f64::NAN);
        assert!(TrafficModel::new(vec![bad_budget]).is_err());
        let bad_window = TrafficClass::new("x", WorkloadSpec::dns(), 1.0).with_modulator(
            ArrivalModulator::Burst { start_minute: 9, end_minute: 9, factor: 2.0 },
        );
        assert!(TrafficModel::new(vec![bad_window]).is_err());
    }

    #[test]
    fn modulators_compose_multiplicatively() {
        let class = TrafficClass::new("x", WorkloadSpec::dns(), 1.0)
            .with_modulator(ArrivalModulator::Scale { factor: 2.0 })
            .with_modulator(ArrivalModulator::Burst {
                start_minute: 10,
                end_minute: 20,
                factor: 3.0,
            });
        assert!((class.rate_factor(5) - 2.0).abs() < 1e-12);
        assert!((class.rate_factor(10) - 6.0).abs() < 1e-12);
        assert!((class.rate_factor(19) - 6.0).abs() < 1e-12);
        assert!((class.rate_factor(20) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn diurnal_modulator_peaks_where_asked() {
        let m = ArrivalModulator::Diurnal { amplitude: 0.5, peak_minute: 720 };
        assert!((m.factor_at(720) - 1.5).abs() < 1e-12, "peak at its peak minute");
        // Half a day away: the trough.
        assert!((m.factor_at(0) - 0.5).abs() < 1e-9);
        // A full period later it peaks again.
        assert!((m.factor_at(720 + traces::MINUTES_PER_DAY) - 1.5).abs() < 1e-9);
        // Amplitude 1 bottoms out at 0, never negative.
        let deep = ArrivalModulator::Diurnal { amplitude: 1.0, peak_minute: 0 };
        assert!(deep.factor_at(720) >= 0.0);
        assert!(deep.factor_at(720) < 1e-9);
    }
}
