use crate::{clamp_unit, Predictor};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A least-mean-square adaptive filter over the past `p` samples.
///
/// Predicts `ρ'(t) = Σ v_i ρ(t−i)` and updates the weights from the
/// prediction error every sample (normalized LMS for step-size
/// robustness). "The LMS adaptive filter outperforms the moving average
/// predictor because the weight for each of the past p minutes is chosen
/// adaptively."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lms {
    order: usize,
    step: f64,
    weights: Vec<f64>,
    history: VecDeque<f64>, // newest at the front
}

/// Default NLMS adaptation step.
pub const DEFAULT_STEP: f64 = 0.5;

impl Lms {
    /// A filter of order `p` (clamped to ≥ 1) with the default step.
    pub fn new(p: usize) -> Lms {
        Lms::with_step(p, DEFAULT_STEP)
    }

    /// A filter of order `p` with NLMS step `step` (clamped to
    /// `(0, 2)` for stability).
    pub fn with_step(p: usize, step: f64) -> Lms {
        let order = p.max(1);
        Lms {
            order,
            step: step.clamp(1e-6, 1.999),
            weights: vec![1.0 / order as f64; order],
            history: VecDeque::with_capacity(order),
        }
    }

    /// The filter order `p`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Current weight vector (index 0 = most recent sample).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Raw (unclamped) prediction from the current weights and history;
    /// 0.5 when no history exists.
    fn raw_predict(&self) -> f64 {
        if self.history.is_empty() {
            return 0.5;
        }
        self.weights.iter().zip(self.history.iter()).map(|(w, x)| w * x).sum::<f64>()
        // Missing taps implicitly read 0, matching a cold-started
        // filter; the weights re-adapt within a few samples.
    }

    /// NLMS weight update for a realized value given the current history.
    fn adapt(&mut self, actual: f64) {
        if self.history.is_empty() {
            return;
        }
        let error = actual - clamp_unit(self.raw_predict());
        let energy: f64 = self.history.iter().map(|x| x * x).sum::<f64>() + 1e-6;
        for (w, x) in self.weights.iter_mut().zip(self.history.iter()) {
            *w += self.step * error * x / energy;
        }
    }
}

impl Predictor for Lms {
    fn observe(&mut self, rho: f64) {
        let rho = clamp_unit(rho);
        self.adapt(rho);
        if self.history.len() == self.order {
            self.history.pop_back();
        }
        self.history.push_front(rho);
    }

    fn predict(&self) -> f64 {
        clamp_unit(self.raw_predict())
    }

    fn name(&self) -> &'static str {
        "LMS"
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        sleepscale_journal::Snapshot::snapshot(self, w);
    }
}

impl sleepscale_journal::Snapshot for Lms {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_usize(self.order);
        w.put_f64(self.step);
        self.weights.snapshot(w);
        self.history.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Lms, sleepscale_journal::CodecError> {
        let order = r.get_usize()?;
        if order == 0 {
            return Err(sleepscale_journal::CodecError::Invalid("LMS order must be >= 1".into()));
        }
        Ok(Lms {
            order,
            step: r.get_f64()?,
            weights: Vec::restore(r)?,
            history: VecDeque::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_constant_signal() {
        let mut p = Lms::new(10);
        for _ in 0..200 {
            p.observe(0.4);
        }
        assert!((p.predict() - 0.4).abs() < 0.01, "predicted {}", p.predict());
    }

    #[test]
    fn tracks_slow_ramp_with_lag() {
        let mut p = Lms::new(5);
        let mut last_err = 0.0;
        for i in 0..300 {
            let rho = 0.2 + 0.001 * i as f64;
            last_err = (p.predict() - rho).abs();
            p.observe(rho.min(1.0));
        }
        assert!(last_err < 0.05, "ramp error {last_err}");
    }

    #[test]
    fn outperforms_moving_average_on_trend() {
        use crate::MovingAverage;
        let mut lms = Lms::new(8);
        let mut ma = MovingAverage::new(8);
        let (mut lms_err, mut ma_err) = (0.0, 0.0);
        for i in 0..500 {
            let rho = (0.3 + 0.3 * (i as f64 / 40.0).sin()).clamp(0.0, 1.0);
            lms_err += (lms.predict() - rho).abs();
            ma_err += (ma.predict() - rho).abs();
            lms.observe(rho);
            ma.observe(rho);
        }
        assert!(lms_err < ma_err, "LMS {lms_err} vs MA {ma_err}");
    }

    #[test]
    fn predictions_stay_in_unit_interval() {
        let mut p = Lms::new(4);
        for i in 0..100 {
            p.observe(if i % 2 == 0 { 0.0 } else { 1.0 });
            let v = p.predict();
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn order_clamped_and_weights_exposed() {
        let p = Lms::new(0);
        assert_eq!(p.order(), 1);
        assert_eq!(p.weights().len(), 1);
    }
}
