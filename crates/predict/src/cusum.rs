use serde::{Deserialize, Serialize};

/// A two-sided CUSUM change-point detector (Page, 1954) with an adaptive
/// reference level.
///
/// Feeds on a scalar stream (here: utilization samples or prediction
/// errors); maintains exponentially weighted estimates of the stream's
/// mean and deviation, accumulates one-sided excursions beyond a
/// dead-band of `slack` deviations, and reports a change when either
/// accumulator exceeds `threshold` deviations. Both accumulators reset
/// on detection.
///
/// ```
/// use sleepscale_predict::Cusum;
/// let mut c = Cusum::new(0.25, 4.0);
/// for _ in 0..50 {
///     assert!(!c.update(0.3));
/// }
/// // An abrupt level shift trips the detector within a few samples.
/// let mut tripped = false;
/// for _ in 0..10 {
///     tripped |= c.update(0.9);
/// }
/// assert!(tripped);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cusum {
    slack: f64,
    threshold: f64,
    mean: f64,
    dev: f64,
    pos: f64,
    neg: f64,
    samples: u64,
}

impl Cusum {
    /// `slack` is the dead-band in deviations (the classic `k`);
    /// `threshold` is the alarm level in deviations (the classic `h`).
    /// Typical choices: `k = 0.25–0.5`, `h = 4–8`.
    pub fn new(slack: f64, threshold: f64) -> Cusum {
        Cusum {
            slack: slack.max(0.0),
            threshold: threshold.max(1e-6),
            mean: 0.0,
            dev: 0.0,
            pos: 0.0,
            neg: 0.0,
            samples: 0,
        }
    }

    /// Feeds one sample; returns `true` if a change point is declared.
    pub fn update(&mut self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        self.samples += 1;
        if self.samples == 1 {
            self.mean = x;
            self.dev = 0.05; // prior scale for utilization-like streams
            return false;
        }
        let alpha = 0.05; // EWMA adaptation rate for the reference level
        let dev = self.dev.max(1e-4);
        let z = (x - self.mean) / dev;
        self.pos = (self.pos + z - self.slack).max(0.0);
        self.neg = (self.neg - z - self.slack).max(0.0);
        // Update reference level estimates after scoring.
        self.mean += alpha * (x - self.mean);
        self.dev += alpha * ((x - self.mean).abs() - self.dev);
        if self.pos > self.threshold || self.neg > self.threshold {
            self.pos = 0.0;
            self.neg = 0.0;
            // Snap the reference to the new level so detection re-arms.
            self.mean = x;
            true
        } else {
            false
        }
    }

    /// Current reference mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

impl sleepscale_journal::Snapshot for Cusum {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_f64(self.slack);
        w.put_f64(self.threshold);
        w.put_f64(self.mean);
        w.put_f64(self.dev);
        w.put_f64(self.pos);
        w.put_f64(self.neg);
        w.put_u64(self.samples);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Cusum, sleepscale_journal::CodecError> {
        Ok(Cusum {
            slack: r.get_f64()?,
            threshold: r.get_f64()?,
            mean: r.get_f64()?,
            dev: r.get_f64()?,
            pos: r.get_f64()?,
            neg: r.get_f64()?,
            samples: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_stream_never_alarms() {
        let mut c = Cusum::new(0.5, 5.0);
        for i in 0..500 {
            let x = 0.3 + 0.01 * ((i % 7) as f64 - 3.0) / 3.0;
            assert!(!c.update(x), "false alarm at {i}");
        }
    }

    #[test]
    fn detects_upward_and_downward_shifts() {
        let mut c = Cusum::new(0.25, 4.0);
        for _ in 0..100 {
            c.update(0.5);
        }
        let mut up = false;
        for _ in 0..15 {
            up |= c.update(0.95);
        }
        assert!(up, "missed upward shift");
        for _ in 0..50 {
            c.update(0.95);
        }
        let mut down = false;
        for _ in 0..15 {
            down |= c.update(0.3);
        }
        assert!(down, "missed downward shift");
    }

    #[test]
    fn reference_tracks_level_after_detection() {
        let mut c = Cusum::new(0.25, 4.0);
        for _ in 0..50 {
            c.update(0.2);
        }
        for _ in 0..30 {
            c.update(0.8);
        }
        assert!((c.mean() - 0.8).abs() < 0.1, "mean {}", c.mean());
    }

    #[test]
    fn ignores_non_finite() {
        let mut c = Cusum::new(0.25, 4.0);
        c.update(0.5);
        assert!(!c.update(f64::NAN));
        assert_eq!(c.samples(), 1);
    }
}
