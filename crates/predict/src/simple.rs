use crate::{clamp_unit, Predictor};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The naive-previous predictor: the next sample equals the last observed
/// one. "Best suited to track sudden changes in utilization, however it
/// does not effectively predict the stationary behavior."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct NaivePrevious {
    last: Option<f64>,
}

impl NaivePrevious {
    /// A predictor with no history.
    pub fn new() -> NaivePrevious {
        NaivePrevious::default()
    }
}

impl Predictor for NaivePrevious {
    fn observe(&mut self, rho: f64) {
        self.last = Some(clamp_unit(rho));
    }

    fn predict(&self) -> f64 {
        self.last.unwrap_or(0.5)
    }

    fn name(&self) -> &'static str {
        "NP"
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        sleepscale_journal::Snapshot::snapshot(self, w);
    }
}

/// Fixed-weight moving average over the last `window` samples — the
/// baseline the paper says LMS outperforms (LMS adapts its weights
/// instead of fixing them to `1/p`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
    history: VecDeque<f64>,
}

impl MovingAverage {
    /// Averages the last `window` observations (clamped to ≥ 1).
    pub fn new(window: usize) -> MovingAverage {
        MovingAverage { window: window.max(1), history: VecDeque::new() }
    }
}

impl Predictor for MovingAverage {
    fn observe(&mut self, rho: f64) {
        if self.history.len() == self.window {
            self.history.pop_front();
        }
        self.history.push_back(clamp_unit(rho));
    }

    fn predict(&self) -> f64 {
        if self.history.is_empty() {
            0.5
        } else {
            self.history.iter().sum::<f64>() / self.history.len() as f64
        }
    }

    fn name(&self) -> &'static str {
        "MA"
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        sleepscale_journal::Snapshot::snapshot(self, w);
    }
}

/// The genie-aided offline predictor: knows the true future utilization
/// non-causally (Figure 8's "Offline" bars). Construct it with the whole
/// trace; each `observe` advances its clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Offline {
    future: Vec<f64>,
    clock: usize,
}

impl Offline {
    /// Wraps the full realized trace (per-sample utilizations).
    pub fn new(future: Vec<f64>) -> Offline {
        Offline { future, clock: 0 }
    }
}

impl Predictor for Offline {
    fn observe(&mut self, _rho: f64) {
        self.clock += 1;
    }

    fn predict(&self) -> f64 {
        // The next sample is the one at the current clock position.
        self.future.get(self.clock).copied().map_or(0.5, clamp_unit)
    }

    fn name(&self) -> &'static str {
        "Offline"
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        sleepscale_journal::Snapshot::snapshot(self, w);
    }
}

impl sleepscale_journal::Snapshot for NaivePrevious {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.last.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<NaivePrevious, sleepscale_journal::CodecError> {
        Ok(NaivePrevious { last: Option::restore(r)? })
    }
}

impl sleepscale_journal::Snapshot for MovingAverage {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_usize(self.window);
        self.history.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<MovingAverage, sleepscale_journal::CodecError> {
        let window = r.get_usize()?;
        if window == 0 {
            return Err(sleepscale_journal::CodecError::Invalid(
                "moving-average window must be >= 1".into(),
            ));
        }
        Ok(MovingAverage { window, history: VecDeque::restore(r)? })
    }
}

impl sleepscale_journal::Snapshot for Offline {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.future.snapshot(w);
        w.put_usize(self.clock);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Offline, sleepscale_journal::CodecError> {
        Ok(Offline { future: Vec::restore(r)?, clock: r.get_usize()? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_returns_last() {
        let mut p = NaivePrevious::new();
        assert_eq!(p.predict(), 0.5); // neutral default
        p.observe(0.3);
        p.observe(0.7);
        assert_eq!(p.predict(), 0.7);
        assert_eq!(p.name(), "NP");
    }

    #[test]
    fn moving_average_smooths() {
        let mut p = MovingAverage::new(3);
        for rho in [0.1, 0.2, 0.3, 0.4] {
            p.observe(rho);
        }
        // Window holds [0.2, 0.3, 0.4].
        assert!((p.predict() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn offline_is_clairvoyant() {
        let truth = vec![0.1, 0.2, 0.3];
        let mut p = Offline::new(truth.clone());
        // Before any observation, it predicts the first sample.
        assert_eq!(p.predict(), 0.1);
        p.observe(0.1);
        assert_eq!(p.predict(), 0.2);
        p.observe(0.2);
        p.observe(0.3);
        // Past the end: neutral default.
        assert_eq!(p.predict(), 0.5);
    }

    #[test]
    fn observations_are_clamped() {
        let mut p = NaivePrevious::new();
        p.observe(1.8);
        assert_eq!(p.predict(), 1.0);
        let mut p = MovingAverage::new(2);
        p.observe(-0.5);
        assert_eq!(p.predict(), 0.0);
    }
}
