//! Utilization predictors for the SleepScale runtime (Section 5.2.2).
//!
//! The runtime predicts the upcoming epoch's utilization from the
//! minute-by-minute history, then rescales its job logs to that
//! prediction before characterizing policies. The paper implements and
//! compares:
//!
//! * [`NaivePrevious`] — last observed minute; tracks sudden changes but
//!   not stationary behaviour,
//! * [`Lms`] — a least-mean-square adaptive filter over the past `p`
//!   minutes; smooths well, lags abrupt changes,
//! * [`LmsCusum`] — Algorithm 2: LMS plus a CUSUM change-point test
//!   (Page, 1954) that collapses the look-back window to 1 on abrupt
//!   change and regrows it afterwards,
//! * [`Offline`] — the genie that knows the true future (Figure 8's
//!   baseline),
//! * [`MovingAverage`] — the fixed-weight baseline LMS is compared
//!   against in the text.
//!
//! All predictors implement the object-safe [`Predictor`] trait:
//! `observe` each realized sample, `predict` the next one.
//!
//! # Example
//!
//! ```
//! use sleepscale_predict::{Lms, NaivePrevious, Predictor};
//! let mut naive = NaivePrevious::new();
//! let mut lms = Lms::new(10);
//! for rho in [0.2, 0.25, 0.3, 0.28, 0.31] {
//!     naive.observe(rho);
//!     lms.observe(rho);
//! }
//! assert_eq!(naive.predict(), 0.31);
//! assert!((lms.predict() - 0.3).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cusum;
pub mod eval;
mod lms;
mod lms_cusum;
mod simple;

pub use cusum::Cusum;
pub use eval::{evaluate, PredictorReport};
pub use lms::Lms;
pub use lms_cusum::LmsCusum;
pub use simple::{MovingAverage, NaivePrevious, Offline};

/// An online one-step-ahead predictor of utilization samples in `[0, 1]`.
pub trait Predictor: std::fmt::Debug + Send {
    /// Ingests the realized utilization of the sample that just ended.
    fn observe(&mut self, rho: f64);

    /// Predicts the next sample's utilization, clamped to `[0, 1]`.
    /// With no history yet, implementations return a neutral default.
    fn predict(&self) -> f64;

    /// Short name used in figures (e.g. `"LC"`, `"LMS"`, `"NP"`).
    fn name(&self) -> &'static str;

    /// Serializes the predictor's adaptive state for checkpointing.
    /// The default writes nothing — a stateless predictor resumes fresh.
    /// Pair with [`restore_predictor`], which dispatches on
    /// [`Predictor::name`].
    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        let _ = w;
    }
}

/// Writes `p`'s name tag followed by its adaptive state, so
/// [`restore_predictor`] can rebuild the concrete type behind the trait
/// object.
pub fn snapshot_predictor(p: &dyn Predictor, w: &mut sleepscale_journal::ByteWriter) {
    w.put_str(p.name());
    p.snapshot_state(w);
}

/// Rebuilds a boxed predictor from a [`snapshot_predictor`] record.
///
/// # Errors
///
/// Returns [`sleepscale_journal::CodecError::Invalid`] for an unknown
/// name tag or malformed state bytes — corrupt checkpoints surface as
/// typed errors, never panics.
pub fn restore_predictor(
    r: &mut sleepscale_journal::ByteReader<'_>,
) -> Result<Box<dyn Predictor>, sleepscale_journal::CodecError> {
    use sleepscale_journal::Snapshot;
    let name = r.get_string()?;
    Ok(match name.as_str() {
        "NP" => Box::new(NaivePrevious::restore(r)?),
        "MA" => Box::new(MovingAverage::restore(r)?),
        "Offline" => Box::new(Offline::restore(r)?),
        "LMS" => Box::new(Lms::restore(r)?),
        "LC" => Box::new(LmsCusum::restore(r)?),
        other => {
            return Err(sleepscale_journal::CodecError::Invalid(format!(
                "unknown predictor tag {other:?}"
            )))
        }
    })
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::eval;
    pub use crate::{Cusum, Lms, LmsCusum, MovingAverage, NaivePrevious, Offline, Predictor};
}

pub(crate) fn clamp_unit(x: f64) -> f64 {
    if x.is_finite() {
        x.clamp(0.0, 1.0)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_unit_handles_edges() {
        assert_eq!(clamp_unit(0.5), 0.5);
        assert_eq!(clamp_unit(-0.1), 0.0);
        assert_eq!(clamp_unit(1.7), 1.0);
        assert_eq!(clamp_unit(f64::NAN), 0.0);
    }

    #[test]
    fn trait_is_object_safe() {
        let predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(NaivePrevious::new()),
            Box::new(Lms::new(10)),
            Box::new(LmsCusum::new(10)),
            Box::new(MovingAverage::new(5)),
        ];
        for mut p in predictors {
            p.observe(0.4);
            let v = p.predict();
            assert!((0.0..=1.0).contains(&v), "{}", p.name());
        }
    }
}
