use crate::cusum::Cusum;
use crate::{clamp_unit, Predictor};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Algorithm 2: LMS prediction with CUSUM change-point handling.
///
/// Runs an adaptive-order LMS filter. Each observation:
///
/// 1. predict `ρ'(t)` from the past `p` samples,
/// 2. compute the error and update the weights,
/// 3. feed the error to a CUSUM test; on an abrupt change, *reset* the
///    look-back to `p = 1` with `v(1) = Σv` (dropping the smoothing so
///    the filter snaps to the new level),
/// 4. otherwise grow `p` back toward `hist`, re-spreading the weight
///    mass uniformly (`v(i) = Σv / p`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LmsCusum {
    hist: usize,
    step: f64,
    p: usize,
    weights: Vec<f64>,
    history: VecDeque<f64>, // newest at the front
    detector: Cusum,
}

impl LmsCusum {
    /// A filter with maximum history depth `hist` (the paper's `p = 10`)
    /// and default CUSUM parameters.
    pub fn new(hist: usize) -> LmsCusum {
        LmsCusum::with_params(hist, crate::lms::DEFAULT_STEP, 0.5, 3.0)
    }

    /// Full parameter control: NLMS step, CUSUM slack `k` and alarm
    /// threshold `h` (in deviations of the error stream).
    pub fn with_params(hist: usize, step: f64, slack: f64, threshold: f64) -> LmsCusum {
        let hist = hist.max(1);
        LmsCusum {
            hist,
            step: step.clamp(1e-6, 1.999),
            p: 1,
            weights: vec![1.0],
            history: VecDeque::with_capacity(hist),
            detector: Cusum::new(slack, threshold),
        }
    }

    /// Current look-back order `p`.
    pub fn order(&self) -> usize {
        self.p
    }

    fn raw_predict(&self) -> f64 {
        if self.history.is_empty() {
            return 0.5;
        }
        self.weights.iter().take(self.p).zip(self.history.iter()).map(|(w, x)| w * x).sum()
    }

    fn total_weight(&self) -> f64 {
        self.weights.iter().take(self.p).sum()
    }
}

impl Predictor for LmsCusum {
    fn observe(&mut self, rho: f64) {
        let rho = clamp_unit(rho);
        if !self.history.is_empty() {
            let predicted = clamp_unit(self.raw_predict());
            let error = rho - predicted;
            // CUSUM on the absolute error stream (Algorithm 2 line 8).
            if self.detector.update(error.abs()) {
                // Line 10: reset p = 1, v(1) = Σv. The gradient step is
                // skipped on the detection sample — a change point means
                // the error is a level shift, not a gradient signal, and
                // folding it into the weights would blow up the collapsed
                // single tap.
                let sum = self.total_weight();
                self.p = 1;
                self.weights = vec![sum];
            } else {
                // NLMS update on the active taps (line 7).
                let energy: f64 =
                    self.history.iter().take(self.p).map(|x| x * x).sum::<f64>() + 1e-6;
                for (w, x) in self.weights.iter_mut().take(self.p).zip(self.history.iter()) {
                    *w += self.step * error * x / energy;
                }
                // Line 12: grow p, re-spread weights uniformly.
                let sum = self.total_weight();
                self.p = (self.p + 1).min(self.hist);
                self.weights = vec![sum / self.p as f64; self.p];
            }
        }
        if self.history.len() == self.hist {
            self.history.pop_back();
        }
        self.history.push_front(rho);
    }

    fn predict(&self) -> f64 {
        clamp_unit(self.raw_predict())
    }

    fn name(&self) -> &'static str {
        "LC"
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        sleepscale_journal::Snapshot::snapshot(self, w);
    }
}

impl sleepscale_journal::Snapshot for LmsCusum {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_usize(self.hist);
        w.put_f64(self.step);
        w.put_usize(self.p);
        self.weights.snapshot(w);
        self.history.snapshot(w);
        self.detector.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<LmsCusum, sleepscale_journal::CodecError> {
        let hist = r.get_usize()?;
        let step = r.get_f64()?;
        let p = r.get_usize()?;
        if hist == 0 || p == 0 || p > hist {
            return Err(sleepscale_journal::CodecError::Invalid(format!(
                "LMS+CUSUM look-back p={p} must satisfy 1 <= p <= hist={hist}"
            )));
        }
        Ok(LmsCusum {
            hist,
            step,
            p,
            weights: Vec::restore(r)?,
            history: VecDeque::restore(r)?,
            detector: Cusum::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_constant_signal() {
        let mut p = LmsCusum::new(10);
        for _ in 0..200 {
            p.observe(0.35);
        }
        assert!((p.predict() - 0.35).abs() < 0.02, "{}", p.predict());
        assert!(p.order() > 1, "order should regrow on stationary input");
    }

    #[test]
    fn resets_order_on_abrupt_change() {
        let mut p = LmsCusum::new(10);
        for _ in 0..120 {
            p.observe(0.2);
        }
        let before = p.order();
        assert_eq!(before, 10);
        // Abrupt surge: the CUSUM should fire within a few samples and the
        // order should momentarily collapse.
        let mut min_order = before;
        for _ in 0..12 {
            p.observe(0.9);
            min_order = min_order.min(p.order());
        }
        assert_eq!(min_order, 1, "order never reset after the surge");
    }

    #[test]
    fn tracks_surges_faster_than_plain_lms() {
        use crate::Lms;
        let mut lc = LmsCusum::new(10);
        let mut lms = Lms::new(10);
        // Long stationary stretch then a step.
        for _ in 0..200 {
            lc.observe(0.15);
            lms.observe(0.15);
        }
        let (mut lc_err, mut lms_err) = (0.0, 0.0);
        for _ in 0..12 {
            lc_err += (lc.predict() - 0.85_f64).abs();
            lms_err += (lms.predict() - 0.85_f64).abs();
            lc.observe(0.85);
            lms.observe(0.85);
        }
        assert!(
            lc_err < lms_err,
            "LMS+CUSUM ({lc_err:.3}) should track the step faster than LMS ({lms_err:.3})"
        );
    }

    #[test]
    fn stays_in_unit_interval() {
        let mut p = LmsCusum::new(6);
        for i in 0..300 {
            p.observe(if i % 17 == 0 { 1.0 } else { 0.05 });
            let v = p.predict();
            assert!((0.0..=1.0).contains(&v));
        }
    }
}
