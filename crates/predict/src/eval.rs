//! Offline predictor evaluation: replay a utilization series through a
//! predictor and score one-step-ahead accuracy.

use crate::Predictor;
use serde::{Deserialize, Serialize};

/// Accuracy report for one predictor over one series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictorReport {
    /// Predictor name.
    pub name: String,
    /// Mean absolute one-step error.
    pub mae: f64,
    /// Root-mean-square one-step error.
    pub rmse: f64,
    /// Worst absolute error.
    pub max_error: f64,
    /// Samples scored.
    pub samples: usize,
}

/// Replays `series` through `predictor`: at each step the predictor
/// first predicts, then observes the realized value. The first
/// `warmup` steps are observed but not scored.
pub fn evaluate(predictor: &mut dyn Predictor, series: &[f64], warmup: usize) -> PredictorReport {
    let mut abs_sum = 0.0;
    let mut sq_sum = 0.0;
    let mut max_error = 0.0_f64;
    let mut scored = 0usize;
    for (i, &rho) in series.iter().enumerate() {
        if i >= warmup {
            let err = (predictor.predict() - rho).abs();
            abs_sum += err;
            sq_sum += err * err;
            max_error = max_error.max(err);
            scored += 1;
        }
        predictor.observe(rho);
    }
    let n = scored.max(1) as f64;
    PredictorReport {
        name: predictor.name().to_string(),
        mae: abs_sum / n,
        rmse: (sq_sum / n).sqrt(),
        max_error,
        samples: scored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lms, LmsCusum, MovingAverage, NaivePrevious, Offline};

    fn bursty_series() -> Vec<f64> {
        // Diurnal-ish base plus abrupt plateaus, like the email store.
        (0..600)
            .map(|i| {
                let base = 0.35 + 0.25 * ((i as f64) / 90.0).sin();
                if (i / 60) % 4 == 3 {
                    0.9
                } else {
                    base.clamp(0.0, 1.0)
                }
            })
            .collect()
    }

    #[test]
    fn offline_is_perfect() {
        let series = bursty_series();
        let mut offline = Offline::new(series.clone());
        let report = evaluate(&mut offline, &series, 0);
        assert!(report.mae < 1e-12);
        assert!(report.max_error < 1e-12);
        assert_eq!(report.samples, series.len());
    }

    #[test]
    fn ranking_matches_the_paper_qualitatively() {
        // Figure 8: offline < {LC, NP} < LMS on bursty traces (LMS smooths
        // over the abrupt plateaus).
        let series = bursty_series();
        let offline = evaluate(&mut Offline::new(series.clone()), &series, 20).mae;
        let lc = evaluate(&mut LmsCusum::new(10), &series, 20).mae;
        let np = evaluate(&mut NaivePrevious::new(), &series, 20).mae;
        let lms = evaluate(&mut Lms::new(10), &series, 20).mae;
        assert!(offline < lc && offline < np);
        assert!(lc < lms, "LC {lc:.4} should beat LMS {lms:.4} on bursty input");
        // NP is competitive with LC on these traces (the paper notes this).
        assert!((np - lc).abs() < 0.05);
    }

    #[test]
    fn warmup_excludes_cold_start() {
        let series = vec![0.4; 50];
        let full = evaluate(&mut MovingAverage::new(5), &series.clone(), 0);
        let warm = evaluate(&mut MovingAverage::new(5), &series, 5);
        assert!(warm.mae <= full.mae);
        assert_eq!(warm.samples, 45);
    }
}
