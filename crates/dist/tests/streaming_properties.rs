//! Property tests for the mergeable streaming statistics: sharded
//! accumulation (split a stream across summaries, merge back) must
//! agree with the single-stream summary — exactly for counts, extrema,
//! and sketch buckets, and up to floating-point rounding for the
//! Welford moments (Chan's merge reassociates the update order).

use proptest::prelude::*;
use sleepscale_dist::{QuantileSketch, ScalarSummary, StreamingSummary};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard-merge equals the single stream: push each sample into the
    /// shard its index hashes to, merge the shards in order, and compare
    /// against pushing the whole stream into one summary.
    #[test]
    fn shard_merge_equals_single_stream(
        samples in proptest::collection::vec(1e-6f64..1e4, 1..600),
        shards in 1usize..9,
        route_seed in 0u64..1_000,
    ) {
        let mut whole = StreamingSummary::new();
        let mut parts = vec![StreamingSummary::new(); shards];
        for (i, &x) in samples.iter().enumerate() {
            whole.push(x);
            parts[(i as u64).wrapping_mul(route_seed | 1) as usize % shards].push(x);
        }
        let mut merged = StreamingSummary::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        // Sketch buckets add exactly, so every quantile agrees to the bit.
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q).to_bits(), whole.quantile(q).to_bits());
        }
        // Moments merge via Chan's pairwise formula — exact in value up
        // to rounding, not in bytes.
        let scale = whole.mean().abs().max(1e-9);
        prop_assert!((merged.mean() - whole.mean()).abs() / scale < 1e-9);
        prop_assert!(
            (merged.variance() - whole.variance()).abs() / whole.variance().max(1e-9) < 1e-6
        );
    }

    /// The split-accumulation form the sharded cluster uses — per-slot
    /// `ScalarSummary` plus a separate sketch, reassembled with
    /// `from_parts` — matches the direct summary byte-for-byte when the
    /// pushes happen in the same order.
    #[test]
    fn from_parts_reassembly_matches_direct_pushes(
        samples in proptest::collection::vec(-10.0f64..1e4, 0..400),
    ) {
        let mut direct = StreamingSummary::new();
        let mut scalar = ScalarSummary::new();
        let mut sketch = QuantileSketch::new();
        for &x in &samples {
            direct.push(x);
            scalar.push(x);
            sketch.push(x);
        }
        let assembled = StreamingSummary::from_parts(scalar, sketch);
        prop_assert_eq!(&assembled, &direct);
        prop_assert_eq!(assembled.mean().to_bits(), direct.mean().to_bits());
        prop_assert_eq!(assembled.p95().to_bits(), direct.p95().to_bits());
    }
}
