//! Property tests for the moment fitter and the empirical tables: the
//! contracts every downstream crate leans on.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sleepscale_dist::{fit, Distribution, Empirical, Moments};

fn sampled_moments(d: &dyn Distribution, n: usize, seed: u64) -> Moments {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Moments::new();
    for _ in 0..n {
        let x = d.sample(&mut rng);
        assert!(x.is_finite() && x >= 0.0, "{} produced invalid sample {x}", d.name());
        m.push(x);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `fit::by_moments` reports the target moments exactly across the
    /// whole Cv range the paper's workloads span.
    #[test]
    fn fit_reports_exact_moments(
        mean in 1e-4_f64..10.0,
        cv in 0.3_f64..10.0,
    ) {
        let d = fit::by_moments(mean, cv).unwrap();
        prop_assert!((d.mean() - mean).abs() / mean < 1e-9,
            "analytic mean {} vs target {mean}", d.mean());
        prop_assert!((d.cv() - cv).abs() / cv < 1e-9,
            "analytic cv {} vs target {cv}", d.cv());
        // Second moment is consistent with (mean, cv).
        let m2 = mean * mean * (1.0 + cv * cv);
        prop_assert!((d.second_moment() - m2).abs() / m2 < 1e-9);
    }

    /// Sampling a fitted family reproduces the target moments within
    /// Monte-Carlo tolerance.
    #[test]
    fn fit_samples_reproduce_target_moments(
        cv in 0.3_f64..10.0,
        seed in 0_u64..1_000,
    ) {
        let mean = 0.194;
        let d = fit::by_moments(mean, cv).unwrap();
        let n = 60_000;
        let m = sampled_moments(&*d, n, seed);
        // The sample mean's relative standard error is cv/√n; allow
        // five of them (floored for the light-tailed end) so heavy
        // tails don't flake.
        let mean_tol = (5.0 * cv / (n as f64).sqrt()).max(0.02);
        prop_assert!((m.mean() - mean).abs() / mean < mean_tol,
            "sampled mean {} vs {mean} at cv={cv}", m.mean());
        // Sample-Cv of heavy-tailed laws converges slower still (it
        // rides on the fourth moment); scale with the tail weight.
        let cv_tol = if cv <= 2.0 { 0.1 } else { 0.35 };
        prop_assert!((m.cv() - cv).abs() / cv < cv_tol,
            "sampled cv {} vs {cv}", m.cv());
    }

    /// Empirical tables frozen from a fitted family converge, under
    /// resampling, to the *table's* moments — which in turn track the
    /// source family.
    #[test]
    fn empirical_moments_converge_to_source(
        cv in 0.3_f64..6.0,
        seed in 0_u64..1_000,
    ) {
        let mean = 1.0;
        let source = fit::by_moments(mean, cv).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let table = Empirical::from_distribution(&*source, 20_000, &mut rng).unwrap();
        // Table moments track the source law.
        let tol = if cv <= 2.0 { 0.1 } else { 0.3 };
        prop_assert!((table.mean() - mean).abs() / mean < tol,
            "table mean {} vs source {mean} at cv={cv}", table.mean());
        // Resampled moments track the table's own moments (the table's
        // Cv governs the resampling error).
        let m = sampled_moments(&table, 60_000, seed ^ 0xA5A5);
        let mean_tol = (5.0 * table.cv() / (60_000_f64).sqrt()).max(0.02);
        prop_assert!((m.mean() - table.mean()).abs() / table.mean() < mean_tol,
            "resampled mean {} vs table {}", m.mean(), table.mean());
        let cv_tol = if cv <= 2.0 { 0.15 } else { 0.35 };
        prop_assert!((m.cv() - table.cv()).abs() / table.cv().max(1e-9) < cv_tol,
            "resampled cv {} vs table {}", m.cv(), table.cv());
    }

    /// Sampling is a pure function of the RNG stream: the same seed
    /// yields the same variates, different seeds diverge.
    #[test]
    fn sampling_is_deterministic_under_fixed_seed(
        cv in 0.3_f64..10.0,
        seed in 0_u64..10_000,
    ) {
        let d = fit::by_moments(0.5, cv).unwrap();
        let draw = |s: u64| -> Vec<f64> {
            let mut rng = StdRng::seed_from_u64(s);
            (0..256).map(|_| d.sample(&mut rng)).collect()
        };
        prop_assert_eq!(draw(seed), draw(seed));
        prop_assert_ne!(draw(seed), draw(seed.wrapping_add(1)));
    }
}

#[test]
fn empirical_freeze_is_deterministic_under_fixed_seed() {
    let source = fit::by_moments(0.092, 3.6).unwrap();
    let freeze = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        Empirical::from_distribution(&*source, 4_096, &mut rng).unwrap()
    };
    assert_eq!(freeze(42), freeze(42));
    assert_ne!(freeze(42), freeze(43));
}

#[test]
fn table5_rows_fit_cleanly() {
    // The exact (mean, Cv) pairs the paper publishes in Table 5.
    let rows = [
        (1.1, 1.1, 0.194, 1.0),     // DNS
        (0.206, 1.9, 0.092, 3.6),   // Mail
        (319e-6, 1.2, 4.2e-3, 1.1), // Google
    ];
    for (ia_mean, ia_cv, sv_mean, sv_cv) in rows {
        for (mean, cv) in [(ia_mean, ia_cv), (sv_mean, sv_cv)] {
            let d = fit::by_moments(mean, cv).unwrap();
            assert!((d.mean() - mean).abs() / mean < 1e-9);
            assert!((d.cv() - cv).abs() / cv < 1e-9);
        }
    }
}
