//! Serde round-trip properties for the streaming-statistics snapshot
//! types (PR 8): snapshot → restore → snapshot must reproduce the
//! original bytes exactly — the journal's byte-for-byte resume
//! guarantee bottoms out here — and a truncated byte stream must be a
//! typed [`CodecError`], never a panic.

use proptest::prelude::*;
use sleepscale_dist::{QuantileSketch, ScalarSummary, StreamingSummary};
use sleepscale_journal::{ByteReader, ByteWriter, Snapshot};

fn snapshot_bytes<T: Snapshot>(value: &T) -> Vec<u8> {
    let mut w = ByteWriter::new();
    value.snapshot(&mut w);
    w.into_bytes()
}

fn restore_from<T: Snapshot>(bytes: &[u8]) -> Result<T, sleepscale_journal::CodecError> {
    T::restore(&mut ByteReader::new(bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ScalarSummary: Welford moments and extrema survive the codec
    /// bit-exactly, so re-serialization is byte-equal.
    #[test]
    fn scalar_summary_round_trip_is_byte_equal(
        samples in proptest::collection::vec(1e-6f64..1e4, 0..400),
    ) {
        let mut summary = ScalarSummary::new();
        for &x in &samples {
            summary.push(x);
        }
        let bytes = snapshot_bytes(&summary);
        let restored: ScalarSummary = restore_from(&bytes).expect("snapshot bytes decode");
        prop_assert_eq!(&bytes, &snapshot_bytes(&restored));
        prop_assert_eq!(restored.count(), summary.count());
        prop_assert_eq!(restored.mean().to_bits(), summary.mean().to_bits());
    }

    /// QuantileSketch: every log-spaced bucket count survives, so every
    /// quantile read off the restored sketch agrees to the bit.
    #[test]
    fn quantile_sketch_round_trip_is_byte_equal(
        samples in proptest::collection::vec(1e-6f64..1e4, 0..400),
    ) {
        let mut sketch = QuantileSketch::new();
        for &x in &samples {
            sketch.push(x);
        }
        let bytes = snapshot_bytes(&sketch);
        let restored: QuantileSketch = restore_from(&bytes).expect("snapshot bytes decode");
        prop_assert_eq!(&bytes, &snapshot_bytes(&restored));
        for q in [0.0, 0.5, 0.95, 1.0] {
            prop_assert_eq!(restored.quantile(q).to_bits(), sketch.quantile(q).to_bits());
        }
    }

    /// StreamingSummary (the composite the reports carry): byte-equal
    /// re-serialization, and the restored summary answers identically.
    #[test]
    fn streaming_summary_round_trip_is_byte_equal(
        samples in proptest::collection::vec(1e-6f64..1e4, 0..400),
    ) {
        let mut summary = StreamingSummary::new();
        for &x in &samples {
            summary.push(x);
        }
        let bytes = snapshot_bytes(&summary);
        let restored: StreamingSummary = restore_from(&bytes).expect("snapshot bytes decode");
        prop_assert_eq!(&bytes, &snapshot_bytes(&restored));
        prop_assert_eq!(restored.count(), summary.count());
        prop_assert_eq!(restored.p95().to_bits(), summary.p95().to_bits());
    }

    /// Cutting the snapshot short at ANY byte is a typed decode error —
    /// the codec never panics and never fabricates a summary.
    #[test]
    fn truncated_snapshot_is_an_error_not_a_panic(
        samples in proptest::collection::vec(1e-6f64..1e4, 1..50),
        cut in 0usize..10_000,
    ) {
        let mut summary = StreamingSummary::new();
        for &x in &samples {
            summary.push(x);
        }
        let bytes = snapshot_bytes(&summary);
        let cut = cut % bytes.len();
        prop_assert!(restore_from::<StreamingSummary>(&bytes[..cut]).is_err());
    }
}
