use std::error::Error;
use std::fmt;

/// Errors from distribution construction, fitting, and table freezing.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// A parameter that must be strictly positive was not.
    NonPositive {
        /// Which parameter (e.g. `"rate"`, `"mean"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A parameter was NaN or infinite.
    NonFinite {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A coefficient of variation outside the fittable range.
    InvalidCv {
        /// The offending value.
        value: f64,
    },
    /// A probability outside the open interval `(0, 1)`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// An empirical table was built from zero observations.
    EmptySample,
    /// An observation fed to an empirical table was invalid
    /// (negative, NaN, or infinite).
    InvalidSample {
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::NonPositive { what, value } => {
                write!(f, "{what} must be > 0, got {value}")
            }
            DistError::NonFinite { what, value } => {
                write!(f, "{what} must be finite, got {value}")
            }
            DistError::InvalidCv { value } => {
                write!(f, "coefficient of variation must be finite and >= 0, got {value}")
            }
            DistError::InvalidProbability { value } => {
                write!(f, "probability must be in (0, 1), got {value}")
            }
            DistError::EmptySample => write!(f, "empirical table needs at least one observation"),
            DistError::InvalidSample { value } => {
                write!(f, "empirical observations must be finite and >= 0, got {value}")
            }
        }
    }
}

impl Error for DistError {}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn require_positive(what: &'static str, value: f64) -> Result<f64, DistError> {
    if !value.is_finite() {
        return Err(DistError::NonFinite { what, value });
    }
    if value <= 0.0 {
        return Err(DistError::NonPositive { what, value });
    }
    Ok(value)
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn require_non_negative(what: &'static str, value: f64) -> Result<f64, DistError> {
    if !value.is_finite() {
        return Err(DistError::NonFinite { what, value });
    }
    if value < 0.0 {
        return Err(DistError::NonPositive { what, value });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_parameter() {
        let e = DistError::NonPositive { what: "rate", value: -1.0 };
        assert!(e.to_string().contains("rate"));
        assert!(DistError::EmptySample.to_string().contains("at least one"));
        assert!(DistError::InvalidCv { value: f64::NAN }.to_string().contains("variation"));
    }

    #[test]
    fn validators_classify_values() {
        assert_eq!(require_positive("x", 1.0), Ok(1.0));
        assert!(matches!(
            require_positive("x", 0.0),
            Err(DistError::NonPositive { what: "x", .. })
        ));
        assert!(matches!(require_positive("x", f64::NAN), Err(DistError::NonFinite { .. })));
        assert_eq!(require_non_negative("x", 0.0), Ok(0.0));
        assert!(matches!(require_non_negative("x", -0.5), Err(DistError::NonPositive { .. })));
    }
}
