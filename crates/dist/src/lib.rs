//! Random-variate library and moment fitting for the SleepScale
//! reproduction.
//!
//! The paper evaluates every candidate policy against workloads whose
//! inter-arrival and service laws come from BigHouse-style empirical
//! tables, moment-matched to the published Table-5 statistics (mean and
//! coefficient of variation). This crate is that foundation:
//!
//! * [`Distribution`] — the object-safe sampling trait, with
//!   [`DynDistribution`] (`Arc<dyn Distribution>`) as the shared handle
//!   every other crate stores.
//! * [`Exponential`], [`Deterministic`], [`Gamma`], [`Hyperexp2`] — the
//!   parametric families.
//! * [`fit::by_moments`] — `(mean, Cv) → family`, exact in both moments
//!   (Cv = 1 → exponential, Cv < 1 → gamma, Cv > 1 → balanced-means
//!   hyperexponential, Cv = 0 → point mass).
//! * [`Empirical`] — frozen inverse-CDF tables sampled the way BigHouse
//!   replays its histograms.
//! * [`Moments`]/[`SummaryStats`] — streaming moment accumulation and
//!   order-statistic summaries (`E[R]`, p95, `Pr(R ≥ d)`).
//! * [`StreamingSummary`]/[`QuantileSketch`] — the mergeable,
//!   constant-memory form for fleet-scale streams (exact moments +
//!   ±0.5%-relative sketched quantiles).
//!
//! # Example
//!
//! ```
//! use sleepscale_dist::{fit, Distribution, Empirical, Moments};
//! use rand::SeedableRng;
//!
//! // Fit Mail's heavy-tailed service law and freeze a BigHouse table.
//! let family = fit::by_moments(0.092, 3.6)?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let table = Empirical::from_distribution(&*family, 20_000, &mut rng)?;
//! let mut m = Moments::new();
//! for _ in 0..50_000 {
//!     m.push(table.sample(&mut rng));
//! }
//! assert!((m.mean() - 0.092).abs() / 0.092 < 0.1);
//! # Ok::<(), sleepscale_dist::DistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod empirical;
mod error;
mod families;
pub mod fit;
mod moments;
mod streaming;
mod traits;

pub use empirical::Empirical;
pub use error::DistError;
pub use families::{Deterministic, Exponential, Gamma, Hyperexp2};
pub use moments::{Moments, SummaryStats};
pub use streaming::{QuantileSketch, ScalarSummary, StreamingSummary};
pub use traits::{Distribution, DynDistribution};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::fit;
    pub use crate::{
        Deterministic, DistError, Distribution, DynDistribution, Empirical, Exponential, Gamma,
        Hyperexp2, Moments, QuantileSketch, ScalarSummary, StreamingSummary, SummaryStats,
    };
}
