//! Frozen empirical-CDF tables — the BigHouse sampling mechanism.

use crate::error::DistError;
use crate::traits::{unit_uniform, Distribution};
use rand::RngCore;

/// A frozen empirical distribution: a sorted table of observations
/// sampled by inverse-CDF lookup.
///
/// BigHouse \[Meisner et al.\] stores observations harvested from live
/// traces and replays them by empirical-CDF sampling; this type is the
/// same mechanism. A draw picks `U ~ Uniform[0, 1)` and returns the
/// `⌊U·n⌋`-th order statistic — i.e. the generalized inverse of the
/// ECDF — so sample moments converge to the *table's* moments, and the
/// table (not a parametric idealization) defines the law.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    /// Observations in ascending order (the inverse-CDF table).
    table: Vec<f64>,
    mean: f64,
    variance: f64,
}

impl Empirical {
    /// Freezes a table from raw observations.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptySample`] for an empty input and
    /// [`DistError::InvalidSample`] for negative or non-finite
    /// observations.
    pub fn from_samples(mut samples: Vec<f64>) -> Result<Empirical, DistError> {
        if samples.is_empty() {
            return Err(DistError::EmptySample);
        }
        for &x in &samples {
            if !x.is_finite() || x < 0.0 {
                return Err(DistError::InvalidSample { value: x });
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite observations compare"));
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = if samples.len() < 2 {
            0.0
        } else {
            samples.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)
        };
        Ok(Empirical { table: samples, mean, variance })
    }

    /// Freezes `n` draws from `source` into a table — the
    /// moment-fit-then-freeze step of the BigHouse substitution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::EmptySample`] for `n = 0` and
    /// [`DistError::InvalidSample`] if the source produces invalid
    /// values.
    pub fn from_distribution(
        source: &dyn Distribution,
        n: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Empirical, DistError> {
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            samples.push(source.sample(rng));
        }
        Empirical::from_samples(samples)
    }

    /// Number of frozen observations.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The sorted observation table.
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// The empirical quantile at `q ∈ [0, 1]`: the generalized inverse
    /// CDF `inf{x : F(x) ≥ q}`, i.e. the `⌈qn⌉`-th order statistic.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.table.len() as f64).ceil() as usize;
        self.table[rank.saturating_sub(1).min(self.table.len() - 1)]
    }
}

impl Distribution for Empirical {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let idx = (unit_uniform(rng) * self.table.len() as f64) as usize;
        // `unit_uniform < 1` keeps idx in range; min() guards the
        // pathological rounding edge.
        self.table[idx.min(self.table.len() - 1)]
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn variance(&self) -> f64 {
        self.variance
    }

    fn name(&self) -> &'static str {
        "empirical"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{Exponential, Hyperexp2};
    use crate::moments::Moments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_invalid_observations() {
        assert_eq!(Empirical::from_samples(vec![]), Err(DistError::EmptySample));
        assert!(matches!(
            Empirical::from_samples(vec![1.0, -2.0]),
            Err(DistError::InvalidSample { .. })
        ));
        assert!(matches!(
            Empirical::from_samples(vec![f64::NAN]),
            Err(DistError::InvalidSample { .. })
        ));
        let mut rng = StdRng::seed_from_u64(1);
        let exp = Exponential::from_mean(1.0).unwrap();
        assert_eq!(Empirical::from_distribution(&exp, 0, &mut rng), Err(DistError::EmptySample));
    }

    #[test]
    fn table_is_sorted_and_moments_match_inputs() {
        let e = Empirical::from_samples(vec![3.0, 1.0, 2.0, 2.0]).unwrap();
        assert_eq!(e.table(), &[1.0, 2.0, 2.0, 3.0]);
        assert!((e.mean() - 2.0).abs() < 1e-12);
        // Sample variance of {1,2,2,3} = 2/3.
        assert!((e.variance() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn quantiles_walk_the_order_statistics() {
        let e = Empirical::from_samples(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.0), 10.0);
        assert_eq!(e.quantile(0.30), 20.0);
        assert_eq!(e.quantile(0.60), 30.0);
        assert_eq!(e.quantile(1.0), 40.0);
        // Exact boundaries q = k/n take the k-th order statistic
        // (smallest x with F(x) ≥ q), not the next one up.
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.5), 20.0);
    }

    #[test]
    fn single_observation_table_degenerates_gracefully() {
        let e = Empirical::from_samples(vec![5.0]).unwrap();
        assert_eq!(e.variance(), 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(e.sample(&mut rng), 5.0);
    }

    #[test]
    fn resampling_converges_to_table_moments() {
        let source = Hyperexp2::fit_balanced(0.092, 3.6).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let e = Empirical::from_distribution(&source, 20_000, &mut rng).unwrap();
        // The frozen table's moments hover near the source's…
        assert!((e.mean() - 0.092).abs() / 0.092 < 0.05);
        // …and resampling the table reproduces the *table* moments.
        let mut m = Moments::new();
        for _ in 0..100_000 {
            m.push(e.sample(&mut rng));
        }
        assert!((m.mean() - e.mean()).abs() / e.mean() < 0.02);
        assert!((m.cv() - e.cv()).abs() / e.cv() < 0.05);
        assert_eq!(e.name(), "empirical");
    }
}
