use rand::RngCore;
use std::fmt;
use std::sync::Arc;

/// A non-negative continuous random variate with known first two
/// moments.
///
/// Everything the SleepScale pipeline samples — inter-arrival gaps,
/// service demands, frozen BigHouse-style tables — implements this
/// trait. It is object-safe: the workloads layer stores distributions
/// as [`DynDistribution`] so empirical tables and parametric families
/// are interchangeable at every call site.
pub trait Distribution: fmt::Debug + Send + Sync {
    /// Draws one variate.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;

    /// The mean `E[X]`.
    fn mean(&self) -> f64;

    /// The variance `Var[X]`.
    fn variance(&self) -> f64;

    /// Short family name used in tests and figure legends
    /// (e.g. `"exp"`, `"hyperexp2"`, `"empirical"`).
    fn name(&self) -> &'static str;

    /// The coefficient of variation `σ/µ` (0 for a zero mean).
    fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance().sqrt() / m
        }
    }

    /// The second raw moment `E[X²] = Var[X] + E[X]²`.
    fn second_moment(&self) -> f64 {
        let m = self.mean();
        self.variance() + m * m
    }
}

/// A shared, dynamically-typed distribution handle.
///
/// `Arc` rather than `Box` so workload bundles stay cheaply cloneable
/// (the runtime clones its distributions into per-epoch evaluation
/// tasks).
pub type DynDistribution = Arc<dyn Distribution>;

/// Uniform draw from `[0, 1)` out of a raw bit source.
pub(crate) fn unit_uniform(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from the open interval `(0, 1]`, safe to pass to `ln`.
pub(crate) fn unit_uniform_open(rng: &mut dyn RngCore) -> f64 {
    1.0 - unit_uniform(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[derive(Debug)]
    struct Fixed;

    impl Distribution for Fixed {
        fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
            2.0
        }

        fn mean(&self) -> f64 {
            2.0
        }

        fn variance(&self) -> f64 {
            1.0
        }

        fn name(&self) -> &'static str {
            "fixed"
        }
    }

    #[test]
    fn derived_moments_follow_definitions() {
        let d = Fixed;
        assert!((d.cv() - 0.5).abs() < 1e-12);
        assert!((d.second_moment() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dyn_handle_is_cloneable_and_debuggable() {
        let d: DynDistribution = Arc::new(Fixed);
        let d2 = d.clone();
        assert_eq!(format!("{d:?}"), format!("{d2:?}"));
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(d2.sample(&mut rng), 2.0);
    }

    #[test]
    fn unit_uniform_stays_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let u = unit_uniform(&mut rng);
            assert!((0.0..1.0).contains(&u));
            let v = unit_uniform_open(&mut rng);
            assert!(v > 0.0 && v <= 1.0);
        }
    }
}
