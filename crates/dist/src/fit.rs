//! Moment fitting: pick a parametric family from `(mean, Cv)`.
//!
//! Table 5 of the paper publishes each workload's inter-arrival and
//! service statistics as a mean and coefficient of variation; the
//! BigHouse substitution (see `sleepscale-workloads`) moment-fits a
//! family to each row and freezes draws into empirical tables. The
//! family choice follows the standard queueing recipe \[Meisner et
//! al.\]:
//!
//! | Cv        | family                                   | name        |
//! |-----------|------------------------------------------|-------------|
//! | 0         | point mass ([`Deterministic`])           | `det`       |
//! | (0, 1)    | gamma, `k = 1/Cv²` ([`Gamma`])           | `gamma`     |
//! | 1         | exponential ([`Exponential`])            | `exp`       |
//! | (1, ∞)    | balanced-means `H2` ([`Hyperexp2`])      | `hyperexp2` |
//!
//! Every branch matches the requested mean and Cv **exactly** (not just
//! approximately), which is what lets the analytic M/G/1 cross-checks
//! compare simulated moments against closed forms at tight tolerance.

use crate::error::{require_positive, DistError};
use crate::families::{Deterministic, Exponential, Gamma, Hyperexp2};
use crate::traits::DynDistribution;
use std::sync::Arc;

/// Cv this close to a family boundary snaps to the boundary family.
const CV_EPS: f64 = 1e-9;

/// Fits a distribution with the given mean and coefficient of
/// variation, exactly.
///
/// # Errors
///
/// Returns [`DistError::NonPositive`]/[`DistError::NonFinite`] for an
/// invalid mean and [`DistError::InvalidCv`] for a negative or
/// non-finite Cv.
///
/// # Examples
///
/// ```
/// use sleepscale_dist::fit;
/// let sv = fit::by_moments(0.092, 3.6)?; // Mail's service law
/// assert_eq!(sv.name(), "hyperexp2");
/// assert!((sv.mean() - 0.092).abs() < 1e-12);
/// assert!((sv.cv() - 3.6).abs() < 1e-9);
/// # Ok::<(), sleepscale_dist::DistError>(())
/// ```
pub fn by_moments(mean: f64, cv: f64) -> Result<DynDistribution, DistError> {
    let mean = require_positive("mean", mean)?;
    if !cv.is_finite() || cv < 0.0 {
        return Err(DistError::InvalidCv { value: cv });
    }
    if cv <= CV_EPS {
        return Ok(Arc::new(Deterministic::new(mean)?));
    }
    if (cv - 1.0).abs() <= CV_EPS {
        return Ok(Arc::new(Exponential::from_mean(mean)?));
    }
    if cv < 1.0 {
        return Ok(Arc::new(Gamma::from_mean_cv(mean, cv)?));
    }
    Ok(Arc::new(Hyperexp2::fit_balanced(mean, cv)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_selection_follows_cv() {
        assert_eq!(by_moments(1.0, 0.0).unwrap().name(), "det");
        assert_eq!(by_moments(1.0, 0.5).unwrap().name(), "gamma");
        assert_eq!(by_moments(1.0, 1.0).unwrap().name(), "exp");
        assert_eq!(by_moments(1.0, 1.0 + 5e-10).unwrap().name(), "exp");
        assert_eq!(by_moments(1.0, 1.1).unwrap().name(), "hyperexp2");
        assert_eq!(by_moments(1.0, 3.6).unwrap().name(), "hyperexp2");
    }

    #[test]
    fn fit_is_exact_across_the_cv_range() {
        for cv in [0.0, 0.1, 0.3, 0.7, 1.0, 1.5, 2.0, 3.6, 10.0] {
            let d = by_moments(0.194, cv).unwrap();
            assert!((d.mean() - 0.194).abs() / 0.194 < 1e-12, "mean at cv={cv}");
            assert!((d.cv() - cv).abs() < 1e-9, "cv at cv={cv}");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(matches!(by_moments(0.0, 1.0), Err(DistError::NonPositive { .. })));
        assert!(matches!(by_moments(f64::NAN, 1.0), Err(DistError::NonFinite { .. })));
        assert!(matches!(by_moments(1.0, -0.1), Err(DistError::InvalidCv { .. })));
        assert!(matches!(by_moments(1.0, f64::INFINITY), Err(DistError::InvalidCv { .. })));
    }
}
