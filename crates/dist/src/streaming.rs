//! Constant-memory streaming statistics: a mergeable summary
//! ([`StreamingSummary`]) pairing the Welford [`Moments`] accumulator
//! with a log-bucketed quantile sketch ([`QuantileSketch`]).
//!
//! [`SummaryStats`](crate::SummaryStats) keeps every sample to answer
//! exact order statistics — fine for a characterization replay of a few
//! thousand jobs, untenable for a fleet-day of millions. The streaming
//! form holds O(1) state in the sample count (the sketch is bounded by
//! its bucket grid, not the stream), folds one observation in per
//! [`StreamingSummary::push`], and merges across shards for parallel
//! accumulation. Quantiles are approximate to the sketch's fixed
//! relative precision; counts, means, variances, minima, and maxima are
//! exact up to rounding.

use crate::moments::Moments;
use serde::{Deserialize, Serialize};
use sleepscale_journal::Snapshot;

/// Relative half-width of the sketch's geometric buckets: quantile
/// estimates are within ±0.5% of the true sample value.
const BUCKET_RATIO: f64 = 1.01;

/// Smallest and largest positive values the sketch resolves; samples
/// beyond the range clamp into the edge buckets (counts stay exact,
/// the reported quantile saturates at the edge).
const MIN_TRACKED: f64 = 1e-9;
const MAX_TRACKED: f64 = 1e12;

/// A mergeable quantile sketch over positive samples: geometric buckets
/// of fixed relative width ([DDSketch]-style), so any quantile comes
/// back within ±0.5% *relative* error regardless of stream length.
///
/// Non-positive samples collapse into a single underflow bucket that
/// reports as 0. Buckets live in a dense array spanning
/// `[1e-9, 1e12]` (≈ 38 KiB — a hot `push` is one `ln` and one array
/// increment, no tree or hash walk), so memory is constant in the
/// sample count. Merging adds bucket counts, so sharded accumulation
/// is exact with respect to the single-stream sketch.
///
/// [DDSketch]: https://arxiv.org/abs/1908.10693
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    counts: Vec<u64>,
    non_positive: u64,
    total: u64,
}

/// `1 / ln(BUCKET_RATIO)` and `floor(ln(MIN_TRACKED) / ln(BUCKET_RATIO))`,
/// precomputed because `f64::ln` is not const-evaluable and `push` is a
/// per-sample hot path (the unit tests re-derive both from the formula).
const INV_LN_RATIO: f64 = 100.49917080713044;
const MIN_SLOT: f64 = -2083.0;

/// `floor(ln(x) / ln(γ))` offset so the smallest tracked value lands
/// at slot 0.
fn bucket_of(x: f64) -> usize {
    let clamped = x.clamp(MIN_TRACKED, MAX_TRACKED);
    ((clamped.ln() * INV_LN_RATIO).floor() - MIN_SLOT) as usize
}

impl Default for QuantileSketch {
    fn default() -> QuantileSketch {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> QuantileSketch {
        debug_assert!((INV_LN_RATIO - 1.0 / BUCKET_RATIO.ln()).abs() < 1e-12);
        QuantileSketch { counts: vec![0; bucket_of(MAX_TRACKED) + 1], non_positive: 0, total: 0 }
    }

    /// Folds one sample in. Non-finite samples are ignored (they carry
    /// no rank information); non-positive ones count toward the
    /// underflow bucket.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.total += 1;
        if x <= 0.0 {
            self.non_positive += 1;
            return;
        }
        self.counts[bucket_of(x)] += 1;
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) to the sketch's relative
    /// precision; 0 when the sketch is empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic we report (1-based, ceil so q = 1
        // maps to the maximum bucket).
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank <= self.non_positive {
            return 0.0;
        }
        let mut seen = self.non_positive;
        for (slot, &n) in self.counts.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= rank {
                // Geometric midpoint of the bucket [γ^i, γ^(i+1)).
                return ((MIN_SLOT + slot as f64 + 0.5) / INV_LN_RATIO).exp();
            }
        }
        // Unreachable: ranks are bounded by the total count.
        0.0
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Adds every bucket of `other` into `self` — identical to having
    /// pushed `other`'s samples here.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.non_positive += other.non_positive;
        self.total += other.total;
    }
}

impl Snapshot for QuantileSketch {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        // Canonical sparse form: the dense grid is ~4.9k slots, nearly
        // all zero in practice, so only non-zero slots travel
        // (ascending slot order — one canonical byte string per value).
        w.put_usize(self.counts.len());
        let non_zero = self.counts.iter().filter(|&&n| n != 0).count();
        w.put_usize(non_zero);
        for (slot, &n) in self.counts.iter().enumerate() {
            if n != 0 {
                w.put_u32(slot as u32);
                w.put_u64(n);
            }
        }
        w.put_u64(self.non_positive);
        w.put_u64(self.total);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<QuantileSketch, sleepscale_journal::CodecError> {
        let len = r.get_usize()?;
        let mut sketch = QuantileSketch::new();
        if len != sketch.counts.len() {
            return Err(sleepscale_journal::CodecError::Invalid(format!(
                "sketch grid of {len} slots, this build uses {}",
                sketch.counts.len()
            )));
        }
        let non_zero = r.get_usize()?;
        let mut prev: Option<u32> = None;
        for _ in 0..non_zero {
            let slot = r.get_u32()?;
            if prev.is_some_and(|p| slot <= p) {
                return Err(sleepscale_journal::CodecError::Invalid(
                    "sketch slots out of order".into(),
                ));
            }
            prev = Some(slot);
            let n = r.get_u64()?;
            *sketch.counts.get_mut(slot as usize).ok_or_else(|| {
                sleepscale_journal::CodecError::Invalid(format!("sketch slot {slot} out of range"))
            })? = n;
        }
        sketch.non_positive = r.get_u64()?;
        sketch.total = r.get_u64()?;
        Ok(sketch)
    }
}

/// The scalar half of a [`StreamingSummary`]: exact count, Welford
/// moments, and extrema — no quantile sketch.
///
/// This exists for accumulations that are too numerous to each carry a
/// ~38 KiB sketch (one per server slot of a 100k-server fleet, say):
/// each slot keeps a `ScalarSummary` (~40 bytes), the sketch is kept
/// once per shard, and [`StreamingSummary::from_parts`] reassembles the
/// full summary at the end. Push/merge use the same float-op sequence
/// and non-finite filtering as [`StreamingSummary`], so folding a fixed
/// sequence of `ScalarSummary`s in a fixed order is byte-deterministic
/// regardless of how the observations were distributed across them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalarSummary {
    moments: Moments,
    min: f64,
    max: f64,
}

impl Default for ScalarSummary {
    fn default() -> ScalarSummary {
        ScalarSummary::new()
    }
}

impl ScalarSummary {
    /// An empty accumulator.
    pub fn new() -> ScalarSummary {
        ScalarSummary { moments: Moments::new(), min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Folds one observation in; non-finite observations are ignored
    /// (same rule as [`StreamingSummary::push`]).
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.moments.push(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.moments.count() == 0
    }

    /// The running mean (0 with no observations).
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        self.moments.variance()
    }

    /// The smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// The largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Folds another accumulator in, as if its observations had been
    /// pushed here. A merge with an empty `other` is a byte-level no-op,
    /// so interleaving empty accumulators into a fold cannot change the
    /// result.
    pub fn merge(&mut self, other: &ScalarSummary) {
        if other.is_empty() {
            return;
        }
        self.moments.merge(&other.moments);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Snapshot for ScalarSummary {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.moments.snapshot(w);
        // Raw bits: an empty accumulator's ±∞ sentinels must survive.
        w.put_f64(self.min);
        w.put_f64(self.max);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<ScalarSummary, sleepscale_journal::CodecError> {
        Ok(ScalarSummary { moments: Moments::restore(r)?, min: r.get_f64()?, max: r.get_f64()? })
    }
}

/// A mergeable, constant-memory replacement for collecting samples into
/// a `Vec` and summarizing at the end: exact count/mean/variance/min/
/// max plus sketched quantiles.
///
/// ```
/// use sleepscale_dist::StreamingSummary;
/// let mut s = StreamingSummary::new();
/// for i in 1..=1000 {
///     s.push(i as f64);
/// }
/// assert_eq!(s.count(), 1000);
/// assert!((s.mean() - 500.5).abs() < 1e-9);
/// assert!((s.quantile(0.95) - 950.0).abs() / 950.0 < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct StreamingSummary {
    moments: Moments,
    min: f64,
    max: f64,
    sketch: QuantileSketch,
}

impl StreamingSummary {
    /// An empty summary.
    pub fn new() -> StreamingSummary {
        StreamingSummary {
            moments: Moments::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sketch: QuantileSketch::new(),
        }
    }

    /// Reassembles a summary from a [`ScalarSummary`] and the matching
    /// [`QuantileSketch`] — the final step of an accumulation that kept
    /// the two halves separate (per-slot scalars, per-shard sketches).
    /// With empty parts this is byte-identical to
    /// [`StreamingSummary::new`], so "no observations" has one canonical
    /// representation however it was produced.
    pub fn from_parts(scalar: ScalarSummary, sketch: QuantileSketch) -> StreamingSummary {
        StreamingSummary { moments: scalar.moments, min: scalar.min, max: scalar.max, sketch }
    }

    /// Folds one observation in. Non-finite observations are ignored
    /// entirely (moments, extrema, sketch, and count all skip them) —
    /// one NaN must not poison the mean while the sketch, which drops
    /// it, keeps answering, leaving the two halves disagreeing on the
    /// sample count.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.moments.push(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.sketch.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.moments.count()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.moments.count() == 0
    }

    /// The running mean (0 with no observations) — exact, not sketched.
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        self.moments.variance()
    }

    /// The smallest observation (0 when empty) — exact.
    pub fn min(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// The largest observation (0 when empty) — exact.
    pub fn max(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile from the sketch (±0.5% relative), clamped into
    /// the exact `[min, max]` envelope.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.sketch.quantile(q).clamp(self.min.min(self.max), self.max)
    }

    /// The 95th percentile (sketched).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Folds another summary in, as if its observations had been pushed
    /// here — the shard-combining step of parallel accumulation.
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.is_empty() {
            return;
        }
        self.moments.merge(&other.moments);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sketch.merge(&other.sketch);
    }
}

impl Snapshot for StreamingSummary {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.moments.snapshot(w);
        w.put_f64(self.min);
        w.put_f64(self.max);
        self.sketch.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<StreamingSummary, sleepscale_journal::CodecError> {
        Ok(StreamingSummary {
            moments: Moments::restore(r)?,
            min: r.get_f64()?,
            max: r.get_f64()?,
            sketch: QuantileSketch::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SummaryStats;

    #[test]
    fn matches_exact_summary_on_a_big_stream() {
        // A deterministic pseudo-random-ish stream with a heavy tail.
        let samples: Vec<f64> = (0..50_000)
            .map(|i| 0.01 + ((i * 2_654_435_761_u64 % 10_000) as f64 / 100.0).powi(2) / 100.0)
            .collect();
        let exact = SummaryStats::from_samples(samples.clone()).unwrap();
        let mut s = StreamingSummary::new();
        for &x in &samples {
            s.push(x);
        }
        assert_eq!(s.count() as usize, exact.count());
        assert!((s.mean() - exact.mean()).abs() / exact.mean() < 1e-12);
        assert_eq!(s.min(), exact.min());
        assert_eq!(s.max(), exact.max());
        for q in [0.5, 0.9, 0.95, 0.99] {
            let (approx, truth) = (s.quantile(q), exact.percentile(q));
            assert!(
                (approx - truth).abs() / truth.max(1e-12) < 0.011,
                "q={q}: sketch {approx} vs exact {truth}"
            );
        }
    }

    #[test]
    fn merge_equals_single_stream() {
        let (mut a, mut b, mut whole) =
            (StreamingSummary::new(), StreamingSummary::new(), StreamingSummary::new());
        for i in 0..1_000 {
            let x = 0.1 + (i % 37) as f64 * 0.03;
            whole.push(x);
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.quantile(0.95), whole.quantile(0.95), "sketches merge exactly");
    }

    #[test]
    fn moments_merge_matches_streaming() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut whole = Moments::new();
        let (mut a, mut b) = (Moments::new(), Moments::new());
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            if i < 3 {
                a.push(x);
            } else {
                b.push(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        // Merging into an empty accumulator copies; merging empty is a no-op.
        let mut empty = Moments::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        whole.merge(&Moments::new());
        assert_eq!(whole.count(), 8);
    }

    #[test]
    fn empty_and_degenerate_cases() {
        let s = StreamingSummary::new();
        assert!(s.is_empty());
        assert_eq!((s.mean(), s.min(), s.max(), s.p95()), (0.0, 0.0, 0.0, 0.0));
        // A non-finite sample is ignored by every component at once:
        // count, mean, extrema, and quantiles stay consistent.
        let mut poisoned = StreamingSummary::new();
        poisoned.push(2.0);
        poisoned.push(f64::NAN);
        poisoned.push(f64::INFINITY);
        poisoned.push(4.0);
        assert_eq!(poisoned.count(), 2);
        assert!((poisoned.mean() - 3.0).abs() < 1e-12);
        assert_eq!((poisoned.min(), poisoned.max()), (2.0, 4.0));
        assert!(poisoned.p95().is_finite());
        let mut sk = QuantileSketch::new();
        assert_eq!(sk.quantile(0.5), 0.0);
        sk.push(f64::NAN); // ignored
        assert_eq!(sk.count(), 0);
        sk.push(0.0);
        sk.push(-1.0);
        assert_eq!(sk.count(), 2);
        assert_eq!(sk.quantile(0.5), 0.0, "non-positive samples report as 0");
        sk.push(10.0);
        assert!(sk.quantile(1.0) > 9.0);
    }

    #[test]
    fn precomputed_constants_match_their_formulas() {
        assert!((INV_LN_RATIO - 1.0 / BUCKET_RATIO.ln()).abs() < 1e-12);
        assert_eq!(MIN_SLOT, (MIN_TRACKED.ln() / BUCKET_RATIO.ln()).floor());
        // The dense array covers the top of the tracked range.
        assert_eq!(bucket_of(MAX_TRACKED), 4859);
        assert_eq!(bucket_of(MIN_TRACKED), 0);
        assert_eq!(bucket_of(1e20), bucket_of(MAX_TRACKED), "overflow clamps to the edge");
        assert_eq!(bucket_of(1e-20), 0, "underflow clamps to the edge");
    }

    #[test]
    fn from_parts_of_empty_parts_is_byte_identical_to_new() {
        let assembled = StreamingSummary::from_parts(ScalarSummary::new(), QuantileSketch::new());
        let fresh = StreamingSummary::new();
        assert_eq!(assembled, fresh);
        assert_eq!(assembled.min.to_bits(), fresh.min.to_bits());
        assert_eq!(assembled.max.to_bits(), fresh.max.to_bits());
    }

    #[test]
    fn scalar_summary_tracks_streaming_summary_exactly() {
        let (mut scalar, mut sketch, mut full) =
            (ScalarSummary::new(), QuantileSketch::new(), StreamingSummary::new());
        for i in 0..2_000 {
            let x = match i % 7 {
                0 => f64::NAN,
                1 => -0.5,
                _ => 0.01 + (i % 101) as f64 * 0.13,
            };
            scalar.push(x);
            sketch.push(x);
            full.push(x);
        }
        let assembled = StreamingSummary::from_parts(scalar, sketch);
        // `full` pushed into one accumulator; the split halves pushed the
        // identical float-op stream, so reassembly is byte-equal.
        assert_eq!(assembled, full);
        assert_eq!(scalar.count(), full.count());
        assert_eq!(scalar.mean().to_bits(), full.mean().to_bits());
        assert_eq!(scalar.variance().to_bits(), full.variance().to_bits());
        assert_eq!(scalar.min(), full.min());
        assert_eq!(scalar.max(), full.max());
    }

    #[test]
    fn scalar_merge_with_empty_is_a_byte_level_no_op() {
        let mut s = ScalarSummary::new();
        s.push(3.25);
        s.push(0.5);
        let before = s;
        s.merge(&ScalarSummary::new());
        assert_eq!(s.mean().to_bits(), before.mean().to_bits());
        assert_eq!(s.min.to_bits(), before.min.to_bits());
        assert_eq!(s.max.to_bits(), before.max.to_bits());
        // And merging *into* an empty one copies the bytes verbatim.
        let mut empty = ScalarSummary::new();
        empty.merge(&before);
        assert_eq!(empty.mean().to_bits(), before.mean().to_bits());
        assert_eq!(empty.count(), before.count());
    }

    #[test]
    fn quantile_honors_rank_semantics() {
        let mut s = StreamingSummary::new();
        for x in [1.0, 2.0, 3.0, 4.0, 100.0] {
            s.push(x);
        }
        // q=1 is the max; q=0 the min bucket (clamped to exact bounds).
        assert!((s.quantile(1.0) - 100.0).abs() / 100.0 < 0.011);
        assert!((s.quantile(0.0) - 1.0).abs() < 0.02);
    }
}
