//! The parametric families the moment fitter draws from: exponential,
//! deterministic, gamma, and two-phase hyperexponential.

use crate::error::{require_non_negative, require_positive, DistError};
use crate::traits::{unit_uniform, unit_uniform_open, Distribution};
use rand::RngCore;

/// The exponential distribution with rate `λ` — the memoryless
/// workhorse behind the paper's idealized M/M/1 workloads (Cv = 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// An exponential with rate `rate` (mean `1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`]/[`DistError::NonFinite`] for
    /// an invalid rate.
    pub fn new(rate: f64) -> Result<Exponential, DistError> {
        Ok(Exponential { rate: require_positive("rate", rate)? })
    }

    /// An exponential with mean `mean` (rate `1/mean`).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`]/[`DistError::NonFinite`] for
    /// an invalid mean.
    pub fn from_mean(mean: f64) -> Result<Exponential, DistError> {
        Ok(Exponential { rate: 1.0 / require_positive("mean", mean)? })
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        -unit_uniform_open(rng).ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn name(&self) -> &'static str {
        "exp"
    }

    fn cv(&self) -> f64 {
        1.0
    }
}

/// A point mass: every draw returns the same value (Cv = 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// A point mass at `value >= 0`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`]/[`DistError::NonFinite`] for
    /// a negative or non-finite value.
    pub fn new(value: f64) -> Result<Deterministic, DistError> {
        Ok(Deterministic { value: require_non_negative("value", value)? })
    }
}

impl Distribution for Deterministic {
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }

    fn variance(&self) -> f64 {
        0.0
    }

    fn name(&self) -> &'static str {
        "det"
    }

    fn cv(&self) -> f64 {
        0.0
    }
}

/// The gamma distribution with shape `k` and scale `θ`.
///
/// For `Cv < 1` the fitter uses `k = 1/Cv² > 1`, which matches the
/// target mean and Cv *exactly* (a continuous generalization of the
/// Erlang family — `k` need not be an integer, so any Cv in `(0, 1)` is
/// reachable, not just `1/√n`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// A gamma with shape `k` and scale `θ` (mean `kθ`, variance `kθ²`).
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`]/[`DistError::NonFinite`] for
    /// invalid parameters.
    pub fn new(shape: f64, scale: f64) -> Result<Gamma, DistError> {
        Ok(Gamma {
            shape: require_positive("shape", shape)?,
            scale: require_positive("scale", scale)?,
        })
    }

    /// The gamma matching `mean` and `cv` exactly: `k = 1/cv²`,
    /// `θ = mean·cv²`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`]/[`DistError::NonFinite`] for
    /// an invalid mean or a zero/non-finite Cv.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Gamma, DistError> {
        let mean = require_positive("mean", mean)?;
        let cv = require_positive("cv", cv)?;
        let cv2 = cv * cv;
        Gamma::new(1.0 / cv2, mean * cv2)
    }

    /// The shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// The scale parameter `θ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// A standard normal variate via Box–Muller.
    fn standard_normal(rng: &mut dyn RngCore) -> f64 {
        let u1 = unit_uniform_open(rng);
        let u2 = unit_uniform(rng);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Marsaglia–Tsang (2000) squeeze sampling for shape `k >= 1`.
    fn sample_shape_ge_one(shape: f64, rng: &mut dyn RngCore) -> f64 {
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Gamma::standard_normal(rng);
            let t = 1.0 + c * x;
            if t <= 0.0 {
                continue;
            }
            let v = t * t * t;
            let u = unit_uniform_open(rng);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                return d * v;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution for Gamma {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let unscaled = if self.shape >= 1.0 {
            Gamma::sample_shape_ge_one(self.shape, rng)
        } else {
            // Boost: X_k = X_{k+1} · U^{1/k} (Marsaglia–Tsang §6).
            let boosted = Gamma::sample_shape_ge_one(self.shape + 1.0, rng);
            boosted * unit_uniform_open(rng).powf(1.0 / self.shape)
        };
        unscaled * self.scale
    }

    fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    fn name(&self) -> &'static str {
        "gamma"
    }

    fn cv(&self) -> f64 {
        1.0 / self.shape.sqrt()
    }
}

/// A two-phase hyperexponential `H2`: with probability `p` draw from
/// `Exp(λ₁)`, otherwise from `Exp(λ₂)`.
///
/// This is the BigHouse-style heavy-tail family for `Cv > 1`; the
/// balanced-means fit reproduces a target mean and Cv exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hyperexp2 {
    p: f64,
    rate1: f64,
    rate2: f64,
}

impl Hyperexp2 {
    /// An `H2` with mixing probability `p ∈ (0, 1)` and phase rates
    /// `rate1`, `rate2`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError::NonPositive`]/[`DistError::NonFinite`] for
    /// invalid rates or a mixing probability outside `(0, 1)`.
    pub fn new(p: f64, rate1: f64, rate2: f64) -> Result<Hyperexp2, DistError> {
        if !p.is_finite() || p <= 0.0 || p >= 1.0 {
            return Err(DistError::InvalidProbability { value: p });
        }
        Ok(Hyperexp2 {
            p,
            rate1: require_positive("rate1", rate1)?,
            rate2: require_positive("rate2", rate2)?,
        })
    }

    /// The balanced-means fit to `(mean, cv)` with `cv > 1`: each phase
    /// contributes half the mean (`p₁/λ₁ = p₂/λ₂`), giving
    ///
    /// ```text
    /// p₁ = (1 + √((cv²−1)/(cv²+1))) / 2,   λᵢ = 2pᵢ/mean.
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`DistError::InvalidCv`] for `cv <= 1` and parameter
    /// errors for an invalid mean.
    pub fn fit_balanced(mean: f64, cv: f64) -> Result<Hyperexp2, DistError> {
        let mean = require_positive("mean", mean)?;
        if !cv.is_finite() || cv <= 1.0 {
            return Err(DistError::InvalidCv { value: cv });
        }
        let cv2 = cv * cv;
        let p1 = 0.5 * (1.0 + ((cv2 - 1.0) / (cv2 + 1.0)).sqrt());
        let rate1 = 2.0 * p1 / mean;
        let rate2 = 2.0 * (1.0 - p1) / mean;
        Hyperexp2::new(p1, rate1, rate2)
    }

    /// The mixing probability of phase 1.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The phase rates `(λ₁, λ₂)`.
    pub fn rates(&self) -> (f64, f64) {
        (self.rate1, self.rate2)
    }
}

impl Distribution for Hyperexp2 {
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let rate = if unit_uniform(rng) < self.p { self.rate1 } else { self.rate2 };
        -unit_uniform_open(rng).ln() / rate
    }

    fn mean(&self) -> f64 {
        self.p / self.rate1 + (1.0 - self.p) / self.rate2
    }

    fn variance(&self) -> f64 {
        self.second_moment() - self.mean() * self.mean()
    }

    fn name(&self) -> &'static str {
        "hyperexp2"
    }

    fn second_moment(&self) -> f64 {
        2.0 * (self.p / (self.rate1 * self.rate1) + (1.0 - self.p) / (self.rate2 * self.rate2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::moments::Moments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_moments(d: &dyn Distribution, n: usize, seed: u64) -> Moments {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Moments::new();
        for _ in 0..n {
            let x = d.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0, "{} produced {x}", d.name());
            m.push(x);
        }
        m
    }

    #[test]
    fn exponential_matches_its_moments() {
        let d = Exponential::from_mean(0.194).unwrap();
        assert!((d.mean() - 0.194).abs() < 1e-15);
        assert!((d.cv() - 1.0).abs() < 1e-15);
        let m = sample_moments(&d, 200_000, 1);
        assert!((m.mean() - 0.194).abs() / 0.194 < 0.01);
        assert!((m.cv() - 1.0).abs() < 0.02);
    }

    #[test]
    fn exponential_rejects_bad_rates() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-3.0).is_err());
        assert!(Exponential::new(f64::INFINITY).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn deterministic_is_a_point_mass() {
        let d = Deterministic::new(0.42).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.42);
        }
        assert_eq!(d.cv(), 0.0);
        assert_eq!(d.variance(), 0.0);
        assert!(Deterministic::new(-0.1).is_err());
        assert!(Deterministic::new(0.0).is_ok()); // zero-size jobs are legal
    }

    #[test]
    fn gamma_matches_target_moments_both_shape_regimes() {
        // Low Cv (shape > 1) and the boosted shape < 1 path.
        for (mean, cv, seed) in [(0.194, 0.5, 3), (2.0, 0.3, 4), (1.0, 1.4, 5)] {
            let d = Gamma::from_mean_cv(mean, cv).unwrap();
            assert!((d.mean() - mean).abs() / mean < 1e-12);
            assert!((d.cv() - cv).abs() < 1e-12);
            let m = sample_moments(&d, 200_000, seed);
            assert!((m.mean() - mean).abs() / mean < 0.02, "mean for cv={cv}");
            assert!((m.cv() - cv).abs() / cv < 0.03, "cv for cv={cv}");
        }
        // Direct shape < 1 construction.
        let d = Gamma::new(0.5, 2.0).unwrap();
        let m = sample_moments(&d, 200_000, 6);
        assert!((m.mean() - 1.0).abs() < 0.03);
    }

    #[test]
    fn hyperexp2_balanced_fit_is_exact() {
        for cv in [1.1, 1.9, 3.6, 10.0] {
            let d = Hyperexp2::fit_balanced(0.092, cv).unwrap();
            assert!((d.mean() - 0.092).abs() / 0.092 < 1e-12, "mean at cv={cv}");
            assert!((d.cv() - cv).abs() / cv < 1e-9, "cv at cv={cv}");
        }
    }

    #[test]
    fn hyperexp2_samples_converge_to_fit() {
        let d = Hyperexp2::fit_balanced(1.0, 2.0).unwrap();
        let m = sample_moments(&d, 400_000, 7);
        assert!((m.mean() - 1.0).abs() < 0.02);
        assert!((m.cv() - 2.0).abs() / 2.0 < 0.05);
    }

    #[test]
    fn hyperexp2_rejects_degenerate_parameters() {
        assert!(Hyperexp2::fit_balanced(1.0, 1.0).is_err());
        assert!(Hyperexp2::fit_balanced(1.0, 0.5).is_err());
        assert!(Hyperexp2::fit_balanced(0.0, 2.0).is_err());
        assert!(Hyperexp2::new(0.0, 1.0, 1.0).is_err());
        assert!(Hyperexp2::new(1.0, 1.0, 1.0).is_err());
        assert!(Hyperexp2::new(0.5, 0.0, 1.0).is_err());
    }
}
