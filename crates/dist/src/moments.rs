//! Streaming moment accumulation and order-statistic summaries.

use serde::{Deserialize, Serialize};

/// A streaming (Welford) accumulator for count, mean, and variance —
/// used wherever the harness measures a generator against Table 5.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Moments {
        Moments::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The running mean (0 with no observations).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation `σ/µ` (0 for a zero mean).
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean
        }
    }

    /// Second raw moment `E[X²]`.
    pub fn second_moment(&self) -> f64 {
        self.variance() + self.mean * self.mean
    }

    /// Folds another accumulator in (Chan et al.'s pairwise update), as
    /// if every observation of `other` had been pushed into `self`.
    /// Exact in the same sense as [`Moments::push`]: the combined count,
    /// mean, and M2 match the streaming result up to rounding.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let w = other.n as f64 / n as f64;
        self.mean += delta * w;
        self.m2 += other.m2 + delta * delta * w * self.n as f64;
        self.n = n;
    }
}

impl sleepscale_journal::Snapshot for Moments {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_u64(self.n);
        w.put_f64(self.mean);
        w.put_f64(self.m2);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Moments, sleepscale_journal::CodecError> {
        Ok(Moments { n: r.get_u64()?, mean: r.get_f64()?, m2: r.get_f64()? })
    }
}

/// Order statistics over a frozen set of samples: mean, percentiles,
/// and exceedance fractions.
///
/// This is the response-time summary every layer above the simulator
/// consumes — `E[R]`, the 95th percentile, and the paper's
/// `Pr(R ≥ d)` QoS checks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Samples in ascending order.
    sorted: Vec<f64>,
    mean: f64,
}

impl SummaryStats {
    /// Summarizes `samples`; returns `None` when the iterator is empty
    /// (no jobs ran — callers degrade to zeros).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Option<SummaryStats> {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not be NaN"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some(SummaryStats { sorted, mean })
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.sorted.len()
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The smallest sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// The largest sample.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), linearly interpolated between
    /// order statistics.
    pub fn percentile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// The empirical exceedance `Pr(X ≥ threshold)`.
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        let below = self.sorted.partition_point(|&x| x < threshold);
        (self.sorted.len() - below) as f64 / self.sorted.len() as f64
    }

    /// All samples in ascending order.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_results() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Two-pass sample variance: Σ(x−5)² / 7 = 32/7.
        assert!((m.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert!((m.cv() - (32.0f64 / 7.0).sqrt() / 5.0).abs() < 1e-12);
        assert!((m.second_moment() - (32.0 / 7.0 + 25.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_single_moment_edge_cases() {
        let m = Moments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.cv(), 0.0);
        let mut one = Moments::new();
        one.push(3.0);
        assert_eq!(one.variance(), 0.0);
        assert_eq!(one.mean(), 3.0);
    }

    #[test]
    fn summary_stats_order_statistics() {
        let s = SummaryStats::from_samples(vec![5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        assert_eq!(s.count(), 5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.percentile(0.5), 3.0);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(1.0), 5.0);
        // p95 interpolates between the 4th and 5th order statistics.
        assert!((s.p95() - 4.8).abs() < 1e-12);
        assert_eq!(s.sorted(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn exceedance_counts_inclusive_threshold() {
        let s = SummaryStats::from_samples(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.fraction_at_least(2.0), 0.75);
        assert_eq!(s.fraction_at_least(4.5), 0.0);
        assert_eq!(s.fraction_at_least(0.0), 1.0);
    }

    #[test]
    fn empty_samples_yield_none() {
        assert!(SummaryStats::from_samples(std::iter::empty()).is_none());
    }
}
