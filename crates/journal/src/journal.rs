//! The on-disk epoch-boundary journal.
//!
//! # Format (schema version 1)
//!
//! ```text
//! header  (32 bytes):
//!   magic              4 bytes   b"SSJ1"
//!   schema_version     u32 LE
//!   seed               u64 LE    scenario RNG seed
//!   config_fingerprint u64 LE    FNV-1a 64 of the scenario debug form
//!   header_checksum    u64 LE    FNV-1a 64 of the 24 bytes above
//! records (repeated):
//!   len                u32 LE    payload length in bytes
//!   payload_checksum   u64 LE    FNV-1a 64 of the payload
//!   payload            len bytes
//! ```
//!
//! The length + checksum frame *is* the seal: a record is committed
//! once its frame is fully on disk (`append` flushes and fsyncs before
//! returning), and a torn tail — a partial frame or a payload whose
//! checksum does not match — is detected on open and truncated away so
//! the run resumes from the last sealed record. Records are
//! self-contained full snapshots, so only the last good one matters.

use crate::codec::CodecError;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Journal magic bytes (`SSJ` + format generation).
pub const MAGIC: [u8; 4] = *b"SSJ1";

/// Bytes occupied by the fixed header.
pub const HEADER_LEN: u64 = 32;

/// Bytes of framing preceding each record payload (len + checksum).
pub const FRAME_LEN: u64 = 12;

/// FNV-1a 64-bit hash — the journal's checksum and the scenario
/// config fingerprint. Not cryptographic; it guards against torn
/// writes and bit rot, not adversaries.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Identity of a run: what must match for a resume to be legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalMeta {
    /// Snapshot schema version; bumped whenever any snapshot layout
    /// changes. Resume across versions is rejected, never guessed.
    pub schema_version: u32,
    /// The scenario's RNG seed.
    pub seed: u64,
    /// FNV-1a 64 fingerprint of the full scenario configuration.
    pub config_fingerprint: u64,
}

/// A journal failure, typed so callers can distinguish "wrong run"
/// from "damaged file" from plain I/O.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file is not a SleepScale journal (or its header is torn).
    BadMagic,
    /// The journal was written by a different snapshot schema.
    SchemaMismatch {
        /// Version recorded in the journal header.
        found: u32,
        /// Version this binary expects.
        expected: u32,
    },
    /// The journal belongs to a run with a different RNG seed.
    SeedMismatch {
        /// Seed recorded in the journal header.
        found: u64,
        /// Seed of the scenario attempting to resume.
        expected: u64,
    },
    /// The journal belongs to a different scenario configuration.
    ConfigMismatch {
        /// Fingerprint recorded in the journal header.
        found: u64,
        /// Fingerprint of the scenario attempting to resume.
        expected: u64,
    },
    /// Structural damage beyond what tail truncation can repair.
    Corrupt(String),
    /// A sealed payload failed to decode.
    Codec(CodecError),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::BadMagic => write!(f, "not a SleepScale journal (bad magic)"),
            JournalError::SchemaMismatch { found, expected } => {
                write!(f, "schema mismatch: journal v{found}, this binary expects v{expected}")
            }
            JournalError::SeedMismatch { found, expected } => {
                write!(f, "seed mismatch: journal seed {found}, scenario seed {expected}")
            }
            JournalError::ConfigMismatch { found, expected } => write!(
                f,
                "config mismatch: journal fingerprint {found:#018x}, \
                 scenario fingerprint {expected:#018x}"
            ),
            JournalError::Corrupt(reason) => write!(f, "corrupt journal: {reason}"),
            JournalError::Codec(e) => write!(f, "journal payload decode: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> JournalError {
        JournalError::Io(e)
    }
}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> JournalError {
        JournalError::Codec(e)
    }
}

fn encode_header(meta: &JournalMeta) -> [u8; HEADER_LEN as usize] {
    let mut header = [0u8; HEADER_LEN as usize];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..8].copy_from_slice(&meta.schema_version.to_le_bytes());
    header[8..16].copy_from_slice(&meta.seed.to_le_bytes());
    header[16..24].copy_from_slice(&meta.config_fingerprint.to_le_bytes());
    let checksum = fnv1a64(&header[0..24]);
    header[24..32].copy_from_slice(&checksum.to_le_bytes());
    header
}

/// An open, append-ready journal file.
#[derive(Debug)]
pub struct Journal {
    file: File,
    records: u64,
}

impl Journal {
    /// Creates (or truncates) a journal at `path` and writes its
    /// header durably.
    pub fn create(path: &Path, meta: &JournalMeta) -> Result<Journal, JournalError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.write_all(&encode_header(meta))?;
        file.sync_data()?;
        Ok(Journal { file, records: 0 })
    }

    /// Opens an existing journal for resume.
    ///
    /// Validates the header against `expected` (typed errors on any
    /// mismatch), then scans the record stream. The scan stops at the
    /// first torn or checksum-failing frame, the file is truncated to
    /// the end of the last good record, and that record's payload is
    /// returned — `None` when no record survived, meaning the run
    /// restarts from scratch under the same header.
    pub fn open_resume(
        path: &Path,
        expected: &JournalMeta,
    ) -> Result<(Journal, Option<Vec<u8>>), JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < HEADER_LEN as usize || bytes[0..4] != MAGIC {
            return Err(JournalError::BadMagic);
        }
        let stored_checksum = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        if stored_checksum != fnv1a64(&bytes[0..24]) {
            return Err(JournalError::Corrupt("header checksum mismatch".into()));
        }
        let found = JournalMeta {
            schema_version: u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            seed: u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
            config_fingerprint: u64::from_le_bytes(bytes[16..24].try_into().unwrap()),
        };
        if found.schema_version != expected.schema_version {
            return Err(JournalError::SchemaMismatch {
                found: found.schema_version,
                expected: expected.schema_version,
            });
        }
        if found.seed != expected.seed {
            return Err(JournalError::SeedMismatch { found: found.seed, expected: expected.seed });
        }
        if found.config_fingerprint != expected.config_fingerprint {
            return Err(JournalError::ConfigMismatch {
                found: found.config_fingerprint,
                expected: expected.config_fingerprint,
            });
        }

        // Scan sealed records; stop at the first damaged frame.
        let mut good_end = HEADER_LEN as usize;
        let mut last_payload = None;
        let mut records = 0u64;
        let mut pos = good_end;
        while bytes.len() - pos >= FRAME_LEN as usize {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
            let payload_start = pos + FRAME_LEN as usize;
            if bytes.len() - payload_start < len {
                break; // torn tail: frame promises more bytes than exist
            }
            let payload = &bytes[payload_start..payload_start + len];
            if fnv1a64(payload) != checksum {
                break; // bit rot or torn payload
            }
            pos = payload_start + len;
            good_end = pos;
            last_payload = Some(payload.to_vec());
            records += 1;
        }
        if good_end < bytes.len() {
            file.set_len(good_end as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(good_end as u64))?;
        Ok((Journal { file, records }, last_payload))
    }

    /// Appends one sealed record and makes it durable before
    /// returning: after `append` succeeds, a crash at any later point
    /// leaves this record recoverable.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        let len = u32::try_from(payload.len())
            .map_err(|_| JournalError::Corrupt("record exceeds u32 length frame".into()))?;
        let mut frame = Vec::with_capacity(FRAME_LEN as usize + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.file.sync_data()?;
        self.records += 1;
        Ok(())
    }

    /// Sealed records currently in the journal.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Deterministic fault-injection plan: at which epoch boundary (if
/// any) the run should abort after committing its record. Epochs are
/// 0-indexed; `after_epoch(k)` means "journal epoch k, then die".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KillPlan {
    kill_after: Option<usize>,
}

impl KillPlan {
    /// Never aborts — the run completes and stays journaled.
    pub fn never() -> KillPlan {
        KillPlan::default()
    }

    /// Aborts immediately after the record for epoch `k` commits.
    pub fn after_epoch(k: usize) -> KillPlan {
        KillPlan { kill_after: Some(k) }
    }

    /// Whether the run should abort after this epoch's record.
    pub fn should_kill(&self, epoch: usize) -> bool {
        self.kill_after == Some(epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sleepscale-journal-test-{}-{name}.ssj", std::process::id()));
        p
    }

    fn meta() -> JournalMeta {
        JournalMeta { schema_version: 1, seed: 42, config_fingerprint: 0xFEED }
    }

    #[test]
    fn create_append_resume_returns_last_record() {
        let path = temp_path("basic");
        let mut j = Journal::create(&path, &meta()).unwrap();
        j.append(b"epoch-0").unwrap();
        j.append(b"epoch-1").unwrap();
        j.append(b"epoch-2").unwrap();
        drop(j);
        let (j, last) = Journal::open_resume(&path, &meta()).unwrap();
        assert_eq!(j.records(), 3);
        assert_eq!(last.as_deref(), Some(&b"epoch-2"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_journal_resumes_from_scratch() {
        let path = temp_path("empty");
        Journal::create(&path, &meta()).unwrap();
        let (j, last) = Journal::open_resume(&path, &meta()).unwrap();
        assert_eq!(j.records(), 0);
        assert!(last.is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncates_to_last_sealed_record() {
        let path = temp_path("torn");
        let mut j = Journal::create(&path, &meta()).unwrap();
        j.append(b"epoch-0").unwrap();
        j.append(b"epoch-1-longer-payload").unwrap();
        drop(j);
        let full = std::fs::metadata(&path).unwrap().len();
        // Rip off the last few bytes of the second record.
        crate::fault::truncate_tail(&path, 5).unwrap();
        let (j, last) = Journal::open_resume(&path, &meta()).unwrap();
        assert_eq!(j.records(), 1);
        assert_eq!(last.as_deref(), Some(&b"epoch-0"[..]));
        assert!(std::fs::metadata(&path).unwrap().len() < full);
        // A resume after truncation can keep appending.
        let mut j = j;
        j.append(b"epoch-1-retry").unwrap();
        let (_, last) = Journal::open_resume(&path, &meta()).unwrap();
        assert_eq!(last.as_deref(), Some(&b"epoch-1-retry"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_byte_truncates() {
        let path = temp_path("flip");
        let mut j = Journal::create(&path, &meta()).unwrap();
        j.append(b"epoch-0").unwrap();
        j.append(b"epoch-1").unwrap();
        drop(j);
        // Flip a byte inside the final payload.
        crate::fault::corrupt_tail(&path, 2).unwrap();
        let (j, last) = Journal::open_resume(&path, &meta()).unwrap();
        assert_eq!(j.records(), 1);
        assert_eq!(last.as_deref(), Some(&b"epoch-0"[..]));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_mismatches_are_typed() {
        let path = temp_path("mismatch");
        Journal::create(&path, &meta()).unwrap();
        let wrong_seed = JournalMeta { seed: 43, ..meta() };
        assert!(matches!(
            Journal::open_resume(&path, &wrong_seed),
            Err(JournalError::SeedMismatch { found: 42, expected: 43 })
        ));
        let wrong_schema = JournalMeta { schema_version: 2, ..meta() };
        assert!(matches!(
            Journal::open_resume(&path, &wrong_schema),
            Err(JournalError::SchemaMismatch { found: 1, expected: 2 })
        ));
        let wrong_config = JournalMeta { config_fingerprint: 0xBEEF, ..meta() };
        assert!(matches!(
            Journal::open_resume(&path, &wrong_config),
            Err(JournalError::ConfigMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn damaged_header_is_rejected_not_truncated() {
        let path = temp_path("header");
        Journal::create(&path, &meta()).unwrap();
        // Corrupt a header byte (seed field).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(Journal::open_resume(&path, &meta()), Err(JournalError::Corrupt(_))));
        // A file shorter than the header, or with wrong magic, is BadMagic.
        std::fs::write(&path, b"nope").unwrap();
        assert!(matches!(Journal::open_resume(&path, &meta()), Err(JournalError::BadMagic)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kill_plan_semantics() {
        assert!(!KillPlan::never().should_kill(0));
        assert!(!KillPlan::never().should_kill(999));
        let plan = KillPlan::after_epoch(3);
        assert!(!plan.should_kill(2));
        assert!(plan.should_kill(3));
        assert!(!plan.should_kill(4));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
