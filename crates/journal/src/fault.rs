//! Torn-write injectors for the fault-injection harness.
//!
//! These simulate the two ways a crash damages an append-only file:
//! the tail never fully reached the disk (truncation), or a sector
//! was half-written (byte corruption). Both target the *tail* because
//! that is what a crash during `append` can actually produce; the
//! header-damage cases in the gate rewrite bytes directly.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Shortens the file by `bytes` (saturating at zero length),
/// simulating an append that never hit the platter.
pub fn truncate_tail(path: &Path, bytes: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    file.set_len(len.saturating_sub(bytes))?;
    file.sync_data()
}

/// Flips every bit of the byte `offset_from_end` positions before the
/// end of the file (0 = the last byte), simulating a half-written
/// sector. Returns an error if the file is too short.
pub fn corrupt_tail(path: &Path, offset_from_end: u64) -> std::io::Result<()> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    let len = file.metadata()?.len();
    if offset_from_end >= len {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("offset {offset_from_end} beyond file of {len} bytes"),
        ));
    }
    let pos = len - 1 - offset_from_end;
    file.seek(SeekFrom::Start(pos))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(pos))?;
    file.write_all(&byte)?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sleepscale-fault-test-{}-{name}.bin", std::process::id()));
        p
    }

    #[test]
    fn truncate_shortens_and_saturates() {
        let path = temp_path("trunc");
        std::fs::write(&path, [1u8, 2, 3, 4, 5]).unwrap();
        truncate_tail(&path, 2).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2, 3]);
        truncate_tail(&path, 100).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_flips_one_byte() {
        let path = temp_path("corrupt");
        std::fs::write(&path, [0u8, 0, 0]).unwrap();
        corrupt_tail(&path, 1).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), vec![0, 0xFF, 0]);
        assert!(corrupt_tail(&path, 3).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
