//! Little-endian binary codec used for every snapshot payload.
//!
//! The journal does not rely on an external serialization framework:
//! the workspace's `serde` stand-in is marker-only, so snapshot bytes
//! are produced by hand through [`ByteWriter`] and consumed through
//! [`ByteReader`]. Floats travel as IEEE-754 bit patterns
//! ([`f64::to_bits`]), which is what makes byte-identical resume
//! possible in the first place: `-0.0`, infinities and NaN payloads
//! all round-trip exactly.

use std::collections::VecDeque;
use std::fmt;

/// A decode failure. Restores never panic: malformed bytes surface as
/// one of these and the caller decides whether to truncate or abort.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the expected field.
    UnexpectedEof,
    /// The bytes decoded but violate an invariant of the target type.
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "snapshot payload ended unexpectedly"),
            CodecError::Invalid(reason) => write!(f, "invalid snapshot field: {reason}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `i64` little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends raw bytes with a length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over a snapshot payload.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a `usize` stored as a `u64`, rejecting values that do not
    /// fit the native word.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("usize overflow: {v}")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a bool, rejecting anything but 0 and 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::Invalid(format!("bool byte {other}"))),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| CodecError::Invalid(format!("non-UTF-8 string: {e}")))
    }

    /// Reads length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.get_usize()?;
        Ok(self.take(len)?.to_vec())
    }
}

/// A value whose full state can be written to and restored from the
/// journal codec, byte-exactly.
///
/// Implementations live next to the type they snapshot (field privacy
/// is module-scoped in Rust), and the contract is strict: for any
/// reachable value, `snapshot → restore → snapshot` must reproduce the
/// first byte string exactly, and `restore` must never panic on
/// arbitrary input — it returns [`CodecError`] instead.
pub trait Snapshot: Sized {
    /// Appends this value's state to `w`.
    fn snapshot(&self, w: &mut ByteWriter);

    /// Reconstructs a value from `r`, validating invariants.
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError>;
}

macro_rules! primitive_snapshot {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Snapshot for $ty {
            fn snapshot(&self, w: &mut ByteWriter) {
                w.$put(*self);
            }
            fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
                r.$get()
            }
        }
    };
}

primitive_snapshot!(u8, put_u8, get_u8);
primitive_snapshot!(u16, put_u16, get_u16);
primitive_snapshot!(u32, put_u32, get_u32);
primitive_snapshot!(u64, put_u64, get_u64);
primitive_snapshot!(usize, put_usize, get_usize);
primitive_snapshot!(i64, put_i64, get_i64);
primitive_snapshot!(f64, put_f64, get_f64);
primitive_snapshot!(bool, put_bool, get_bool);

impl Snapshot for String {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_str(self);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        r.get_string()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn snapshot(&self, w: &mut ByteWriter) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.snapshot(w);
            }
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        if r.get_bool()? {
            Ok(Some(T::restore(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snapshot(w);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_usize()?;
        // Guard capacity against hostile length prefixes: grow as we
        // successfully decode rather than pre-allocating `len` slots.
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn snapshot(&self, w: &mut ByteWriter) {
        w.put_usize(self.len());
        for v in self {
            v.snapshot(w);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let len = r.get_usize()?;
        let mut out = VecDeque::new();
        for _ in 0..len {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.0.snapshot(w);
        self.1.snapshot(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn snapshot(&self, w: &mut ByteWriter) {
        self.0.snapshot(w);
        self.1.snapshot(w);
        self.2.snapshot(w);
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok((A::restore(r)?, B::restore(r)?, C::restore(r)?))
    }
}

impl Snapshot for rand::rngs::StdRng {
    fn snapshot(&self, w: &mut ByteWriter) {
        for word in self.state_words() {
            w.put_u64(word);
        }
    }
    fn restore(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let words = [r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?];
        Ok(rand::rngs::StdRng::from_state_words(words))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snapshot + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = ByteWriter::new();
        v.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = T::restore(&mut r).expect("restore");
        assert!(r.is_empty(), "trailing bytes after restore");
        assert_eq!(&back, v);
        let mut w2 = ByteWriter::new();
        back.snapshot(&mut w2);
        assert_eq!(w2.as_bytes(), &bytes[..], "re-serialization drifted");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u16::MAX);
        round_trip(&0xDEAD_BEEFu32);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&(-42i64));
        round_trip(&true);
        round_trip(&String::from("épöch"));
    }

    #[test]
    fn float_bits_survive_exactly() {
        for v in [0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, 1.5e-300, f64::MIN_POSITIVE] {
            let mut w = ByteWriter::new();
            v.snapshot(&mut w);
            let bytes = w.into_bytes();
            let back = f64::restore(&mut ByteReader::new(&bytes)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payload bits are preserved too.
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = ByteWriter::new();
        nan.snapshot(&mut w);
        let back = f64::restore(&mut ByteReader::new(w.as_bytes())).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(&Some(7u64));
        round_trip(&Option::<f64>::None);
        round_trip(&vec![1u32, 2, 3]);
        round_trip(&Vec::<f64>::new());
        round_trip(&VecDeque::from(vec![0.25f64, -0.0]));
        round_trip(&(3u64, 0.5f64));
        round_trip(&(1u8, String::from("x"), vec![false, true]));
    }

    #[test]
    fn rng_round_trip_continues_stream() {
        use rand::{RngCore, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..17 {
            rng.next_u64();
        }
        let mut w = ByteWriter::new();
        rng.snapshot(&mut w);
        let bytes = w.into_bytes();
        let mut restored =
            rand::rngs::StdRng::restore(&mut ByteReader::new(&bytes)).expect("restore");
        for _ in 0..64 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
    }

    #[test]
    fn truncated_input_is_typed_eof() {
        let mut w = ByteWriter::new();
        vec![1u64, 2, 3].snapshot(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(Vec::<u64>::restore(&mut r).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 elements
        let mut r = ByteReader::new(w.as_bytes());
        assert!(Vec::<u64>::restore(&mut r).is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        let bytes = [2u8];
        assert!(bool::restore(&mut ByteReader::new(&bytes)).is_err());
    }
}
