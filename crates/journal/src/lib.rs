//! Crash-safe checkpoint/resume for SleepScale runs (PR 8).
//!
//! SleepScale is an online policy: Algorithm 1 runs every epoch,
//! forever, so long-horizon fleet runs must survive being killed.
//! This crate supplies the three pieces beneath that guarantee:
//!
//! * a hand-rolled little-endian [`codec`] and the [`Snapshot`] trait
//!   every piece of engine state implements (the workspace `serde`
//!   stand-in is marker-only, so snapshots carry their own bytes),
//! * the append-only, checksum-framed, fsync-per-record [`Journal`]
//!   with a versioned header that rejects mismatched resumes with a
//!   typed [`JournalError`] and truncates torn tails to the last
//!   sealed record instead of failing the run,
//! * the fault-injection primitives — [`KillPlan`],
//!   [`fault::truncate_tail`], [`fault::corrupt_tail`] — the `resume`
//!   gate uses to prove kill-at-every-epoch × resume ≡ uninterrupted,
//!   byte for byte.
//!
//! The crate is a leaf: it depends only on the workspace `rand`
//! stand-in (to snapshot RNG state) so every engine crate can depend
//! on it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod fault;
mod journal;

pub use codec::{ByteReader, ByteWriter, CodecError, Snapshot};
pub use journal::{
    fnv1a64, Journal, JournalError, JournalMeta, KillPlan, FRAME_LEN, HEADER_LEN, MAGIC,
};
