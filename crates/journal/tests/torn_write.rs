//! Torn-write fault-injection properties (PR 8): a journal cut or
//! bit-flipped at ANY byte must either reopen cleanly — recovering an
//! exact prefix of the sealed records — or fail with a typed
//! [`JournalError`]; it must never panic and never hand back a record
//! that was not written.

use proptest::prelude::*;
use sleepscale_journal::{fault, Journal, JournalError, JournalMeta, FRAME_LEN, HEADER_LEN};
use std::path::PathBuf;

fn journal_path(tag: u64) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sleepscale-torn-write-{}-{tag}.ssj", std::process::id()));
    p
}

/// Deterministic, distinguishable payloads: record `i` of length `n`.
fn payloads(lens: &[usize]) -> Vec<Vec<u8>> {
    lens.iter()
        .enumerate()
        .map(|(i, &n)| (0..n).map(|b| (b as u8) ^ (i as u8).wrapping_mul(31)).collect())
        .collect()
}

fn write_journal(path: &PathBuf, meta: &JournalMeta, records: &[Vec<u8>]) -> u64 {
    let _ = std::fs::remove_file(path);
    let mut journal = Journal::create(path, meta).expect("create journal");
    for record in records {
        journal.append(record).expect("append record");
    }
    std::fs::metadata(path).expect("stat journal").len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Truncation at an arbitrary byte: reopening recovers the longest
    /// sealed prefix (cutting the header is the one typed failure).
    #[test]
    fn truncation_at_any_byte_recovers_a_prefix_or_is_typed(
        lens in proptest::collection::vec(1usize..40, 1..6),
        keep_pick in 0u64..100_000,
        seed in 0u64..1_000,
    ) {
        let meta = JournalMeta { schema_version: 1, seed, config_fingerprint: 7 };
        let path = journal_path(1);
        let records = payloads(&lens);
        let full_len = write_journal(&path, &meta, &records);
        let keep = keep_pick % (full_len + 1);
        fault::truncate_tail(&path, full_len - keep).expect("truncate own temp file");

        match Journal::open_resume(&path, &meta) {
            Ok((journal, last)) => {
                // Whole frames survive the cut; partial ones vanish.
                let n = journal.records() as usize;
                prop_assert!(n <= records.len(), "recovered {} of {} records", n, records.len());
                let sealed: u64 =
                    records[..n].iter().map(|r| FRAME_LEN + r.len() as u64).sum::<u64>()
                        + HEADER_LEN;
                prop_assert!(sealed <= keep, "claimed more bytes sealed than kept");
                match last {
                    Some(payload) => prop_assert_eq!(&payload, &records[n - 1]),
                    None => prop_assert_eq!(n, 0),
                }
            }
            // Only a cut through the 32-byte header is unrecoverable.
            Err(JournalError::BadMagic) | Err(JournalError::Corrupt(_)) => {
                prop_assert!(
                    keep < HEADER_LEN,
                    "typed header failure but {} bytes were kept",
                    keep
                );
            }
            Err(e) => prop_assert!(false, "unexpected error variant: {e}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    /// A single flipped bit anywhere in the record region never panics
    /// and never corrupts a *delivered* record: the checksum quarantines
    /// the damaged frame, so recovery is again an exact prefix.
    #[test]
    fn bit_flip_in_records_recovers_an_exact_prefix(
        lens in proptest::collection::vec(1usize..40, 1..6),
        flip_pick in 0u64..100_000,
        seed in 0u64..1_000,
    ) {
        let meta = JournalMeta { schema_version: 1, seed, config_fingerprint: 7 };
        let path = journal_path(2);
        let records = payloads(&lens);
        let full_len = write_journal(&path, &meta, &records);
        // Flip strictly after the header, so the meta checks still pass.
        let record_bytes = full_len - HEADER_LEN;
        let offset_from_end = flip_pick % record_bytes;
        fault::corrupt_tail(&path, offset_from_end).expect("bit-flip own temp file");

        let (journal, last) = Journal::open_resume(&path, &meta).expect("flip inside the record region is always recoverable");
        let n = journal.records() as usize;
        prop_assert!(n < records.len(), "the flipped frame itself must not survive");
        match last {
            Some(payload) => prop_assert_eq!(&payload, &records[n - 1]),
            None => prop_assert_eq!(n, 0),
        }
        let _ = std::fs::remove_file(&path);
    }
}
