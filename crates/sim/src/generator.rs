//! Job-stream generation — step 1 of the paper's Algorithm 1.
//!
//! Streams are sampled with sizes at the `f = 1` scale; the engine applies
//! frequency stretching at evaluation time so one stream serves a whole
//! frequency sweep with common random numbers.

use crate::error::SimError;
use crate::job::{Job, JobStream};
use rand::RngCore;
use sleepscale_dist::Distribution;

/// Samples `n` jobs with inter-arrival gaps from `interarrival` and sizes
/// from `service`. The first job arrives after one inter-arrival gap
/// (the server idles from t = 0 until then, as in Algorithm 1).
///
/// # Errors
///
/// Returns [`SimError::InvalidJobStream`] if the distributions produce
/// invalid values (negative or non-finite).
pub fn generate(
    n: usize,
    interarrival: &dyn Distribution,
    service: &dyn Distribution,
    rng: &mut dyn RngCore,
) -> Result<JobStream, SimError> {
    let mut jobs = Vec::with_capacity(n);
    let mut t = 0.0;
    for id in 0..n as u64 {
        t += interarrival.sample(rng);
        jobs.push(Job { id, arrival: t, size: service.sample(rng) });
    }
    JobStream::new(jobs)
}

/// Samples jobs until the arrival clock passes `horizon` seconds.
///
/// # Errors
///
/// Returns [`SimError::InvalidHorizon`] for a non-positive horizon, or
/// [`SimError::InvalidJobStream`] on invalid samples.
pub fn generate_horizon(
    horizon: f64,
    interarrival: &dyn Distribution,
    service: &dyn Distribution,
    rng: &mut dyn RngCore,
) -> Result<JobStream, SimError> {
    if !horizon.is_finite() || horizon <= 0.0 {
        return Err(SimError::InvalidHorizon { value: horizon });
    }
    let mut jobs = Vec::new();
    let mut t = interarrival.sample(rng);
    let mut id = 0u64;
    while t < horizon {
        jobs.push(Job { id, arrival: t, size: service.sample(rng) });
        id += 1;
        t += interarrival.sample(rng);
    }
    JobStream::new(jobs)
}

/// Generates an M/M/1-style stream at utilization `rho` for a full-speed
/// mean service time `mean_service = 1/µ` — the idealized workload of
/// Section 4 (`λ = ρµ`).
///
/// # Errors
///
/// Returns [`SimError::InvalidJobStream`] for `rho` outside `(0, 1)` or a
/// non-positive `mean_service`.
pub fn generate_poisson_exp(
    n: usize,
    rho: f64,
    mean_service: f64,
    rng: &mut dyn RngCore,
) -> Result<JobStream, SimError> {
    if !rho.is_finite() || rho <= 0.0 || rho >= 1.0 {
        return Err(SimError::InvalidJobStream {
            reason: format!("utilization {rho} must be in (0, 1)"),
        });
    }
    if !mean_service.is_finite() || mean_service <= 0.0 {
        return Err(SimError::InvalidJobStream {
            reason: format!("mean service {mean_service} must be > 0"),
        });
    }
    let mu = 1.0 / mean_service;
    let ia = sleepscale_dist::Exponential::new(rho * mu)
        .map_err(|e| SimError::InvalidJobStream { reason: e.to_string() })?;
    let sv = sleepscale_dist::Exponential::new(mu)
        .map_err(|e| SimError::InvalidJobStream { reason: e.to_string() })?;
    generate(n, &ia, &sv, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sleepscale_dist::Exponential;

    #[test]
    fn generate_produces_sorted_positive_stream() {
        let mut rng = StdRng::seed_from_u64(5);
        let ia = Exponential::from_mean(1.0).unwrap();
        let sv = Exponential::from_mean(0.2).unwrap();
        let s = generate(1000, &ia, &sv, &mut rng).unwrap();
        assert_eq!(s.len(), 1000);
        let mut prev = 0.0;
        for j in s.jobs() {
            assert!(j.arrival >= prev);
            assert!(j.size >= 0.0);
            prev = j.arrival;
        }
        assert!((s.mean_interarrival() - 1.0).abs() < 0.15);
        assert!((s.mean_size() - 0.2).abs() < 0.03);
    }

    #[test]
    fn horizon_generation_stops_in_time() {
        let mut rng = StdRng::seed_from_u64(6);
        let ia = Exponential::from_mean(0.1).unwrap();
        let sv = Exponential::from_mean(0.05).unwrap();
        let s = generate_horizon(50.0, &ia, &sv, &mut rng).unwrap();
        assert!(s.last_arrival() < 50.0);
        assert!(s.len() > 300); // ~500 expected
        assert!(generate_horizon(0.0, &ia, &sv, &mut rng).is_err());
        assert!(generate_horizon(f64::NAN, &ia, &sv, &mut rng).is_err());
    }

    #[test]
    fn poisson_exp_hits_target_utilization() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = generate_poisson_exp(30_000, 0.3, 0.194, &mut rng).unwrap();
        assert!((s.offered_utilization() - 0.3).abs() < 0.02);
    }

    #[test]
    fn poisson_exp_validates() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!(generate_poisson_exp(10, 0.0, 1.0, &mut rng).is_err());
        assert!(generate_poisson_exp(10, 1.0, 1.0, &mut rng).is_err());
        assert!(generate_poisson_exp(10, 0.5, 0.0, &mut rng).is_err());
    }
}
