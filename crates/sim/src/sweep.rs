//! Parallel policy-grid evaluation.
//!
//! The policy manager characterizes *every* candidate (frequency, sleep
//! program) pair by simulation (Section 5.1.1); Section 4's figures sweep
//! fine frequency grids per program. Evaluations are independent, so they
//! fan out across threads with a shared work index.

use crate::engine::simulate;
use crate::env::SimEnv;
use crate::job::JobStream;
use crate::outcome::SimOutcome;
use serde::{Deserialize, Serialize};
use sleepscale_power::{FrequencyGrid, Policy, SleepProgram};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One evaluated policy: the policy and its simulated characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// The evaluated policy.
    pub policy: Policy,
    /// Its simulated outcome over the workload.
    pub outcome: SimOutcome,
}

/// Evaluates every policy over the same job stream, in parallel when
/// `policies` is large enough to amortize thread spawn.
pub fn evaluate_policies(
    jobs: &JobStream,
    policies: &[Policy],
    env: &SimEnv,
) -> Vec<PolicyEvaluation> {
    const SERIAL_THRESHOLD: usize = 8;
    if policies.len() <= SERIAL_THRESHOLD {
        return policies
            .iter()
            .map(|p| PolicyEvaluation { policy: p.clone(), outcome: simulate(jobs, p, env) })
            .collect();
    }

    let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(policies.len());
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<PolicyEvaluation>>> = Mutex::new(vec![None; policies.len()]);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= policies.len() {
                    break;
                }
                let policy = &policies[i];
                let outcome = simulate(jobs, policy, env);
                let eval = PolicyEvaluation { policy: policy.clone(), outcome };
                results.lock().expect("no panics hold the lock")[i] = Some(eval);
            });
        }
    });

    results
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|r| r.expect("every index was evaluated"))
        .collect()
}

/// Sweeps one sleep program across a frequency grid — one bowl curve of
/// Figure 1 (power and response at every `f` hash mark).
pub fn frequency_sweep(
    jobs: &JobStream,
    program: &SleepProgram,
    grid: &FrequencyGrid,
    env: &SimEnv,
) -> Vec<PolicyEvaluation> {
    let policies: Vec<Policy> = grid.iter().map(|f| Policy::new(f, program.clone())).collect();
    evaluate_policies(jobs, &policies, env)
}

/// Builds the full candidate grid (each program × each frequency) and
/// evaluates it — the policy manager's characterization step.
pub fn grid_sweep(
    jobs: &JobStream,
    programs: &[SleepProgram],
    grid: &FrequencyGrid,
    env: &SimEnv,
) -> Vec<PolicyEvaluation> {
    let policies: Vec<Policy> = programs
        .iter()
        .flat_map(|prog| grid.iter().map(move |f| Policy::new(f, prog.clone())))
        .collect();
    evaluate_policies(jobs, &policies, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sleepscale_power::presets;

    fn workload() -> JobStream {
        let mut rng = StdRng::seed_from_u64(11);
        generator::generate_poisson_exp(3000, 0.2, 0.194, &mut rng).unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.3, 1.0, 0.05).unwrap();
        let program = SleepProgram::immediate(presets::C6_S0I);
        let parallel = frequency_sweep(&jobs, &program, &grid, &env);
        // Serial reference.
        let serial: Vec<PolicyEvaluation> = grid
            .iter()
            .map(|f| {
                let p = Policy::new(f, program.clone());
                PolicyEvaluation { policy: p.clone(), outcome: simulate(&jobs, &p, &env) }
            })
            .collect();
        assert_eq!(parallel.len(), serial.len());
        for (a, b) in parallel.iter().zip(&serial) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    #[test]
    fn sweep_is_ordered_by_grid() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.25, 1.0, 0.25).unwrap();
        let evals = frequency_sweep(&jobs, &SleepProgram::immediate(presets::C0I_S0I), &grid, &env);
        let fs: Vec<f64> = evals.iter().map(|e| e.policy.frequency().get()).collect();
        assert_eq!(fs, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn higher_frequency_means_lower_response() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.25, 1.0, 0.75).unwrap();
        let evals = frequency_sweep(&jobs, &SleepProgram::immediate(presets::C0I_S0I), &grid, &env);
        assert!(evals[0].outcome.mean_response() > evals.last().unwrap().outcome.mean_response());
    }

    #[test]
    fn grid_sweep_covers_programs_times_frequencies() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.5, 1.0, 0.5).unwrap();
        let programs = presets::standard_programs();
        let evals = grid_sweep(&jobs, &programs, &grid, &env);
        assert_eq!(evals.len(), programs.len() * grid.len());
    }
}
