//! Parallel policy-grid evaluation.
//!
//! The policy manager characterizes *every* candidate (frequency, sleep
//! program) pair by simulation (Section 5.1.1); Section 4's figures sweep
//! fine frequency grids per program. Evaluations are independent, so they
//! fan out across scoped threads, each owning a disjoint `&mut` chunk of
//! the result slice — no result lock, no shared work counter — and each
//! reusing one [`SimScratch`] across every evaluation it performs (the
//! record-free [`simulate_summary_into`] path).
//!
//! Chunked ownership also makes the sweep's output independent of thread
//! count and scheduling: candidate `i` is always simulated exactly once,
//! by whichever worker owns chunk `i / chunk_len`, so repeated runs are
//! byte-identical (see the cross-crate determinism suite).

use crate::engine::{simulate_summary_into, SimScratch};
use crate::env::SimEnv;
use crate::job::JobStream;
use crate::outcome::SimOutcome;
use serde::{Deserialize, Serialize};
use sleepscale_power::{FrequencyGrid, Policy, SleepProgram};

/// One evaluated policy: the policy and its simulated characterization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyEvaluation {
    /// The evaluated policy.
    pub policy: Policy,
    /// Its simulated outcome over the workload.
    pub outcome: SimOutcome,
}

/// Evaluates every policy over the same job stream, in parallel when
/// `policies` is large enough to amortize thread spawn.
pub fn evaluate_policies(
    jobs: &JobStream,
    policies: &[Policy],
    env: &SimEnv,
) -> Vec<PolicyEvaluation> {
    const SERIAL_THRESHOLD: usize = 8;
    let threads = if policies.len() <= SERIAL_THRESHOLD {
        1
    } else {
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(policies.len())
    };
    evaluate_policies_with_threads(jobs, policies, env, threads)
}

/// [`evaluate_policies`] with an explicit worker count.
///
/// The result is identical for every `threads` value (the work partition
/// fixes which evaluation lands at which index and every evaluation is
/// independent); exposing the knob lets tests and benches pin the
/// parallelism while the production entry point sizes it to the machine.
pub fn evaluate_policies_with_threads(
    jobs: &JobStream,
    policies: &[Policy],
    env: &SimEnv,
    threads: usize,
) -> Vec<PolicyEvaluation> {
    if threads <= 1 || policies.len() <= 1 {
        let mut scratch = SimScratch::new();
        return policies
            .iter()
            .map(|p| PolicyEvaluation {
                policy: p.clone(),
                outcome: simulate_summary_into(jobs, p, env, &mut scratch),
            })
            .collect();
    }

    let mut results: Vec<Option<PolicyEvaluation>> = vec![None; policies.len()];
    // Per-worker sizing, not a uniform ceil: with `len/threads` per
    // worker and the remainder spread one-each over the first workers,
    // every worker gets work. (Uniform `ceil(len/threads)` chunks can
    // leave a trailing fraction of the pool idle — e.g. 17 candidates
    // over 16 workers makes nine 2-chunks and seven idle threads.)
    // The index→chunk map depends only on `len` and `threads`, and each
    // index is evaluated exactly once, so results stay byte-identical
    // for every worker count.
    let workers = threads.min(policies.len());
    let base = policies.len() / workers;
    let remainder = policies.len() % workers;
    std::thread::scope(|scope| {
        let mut rest_p = policies;
        let mut rest_r = &mut results[..];
        for w in 0..workers {
            let take = base + usize::from(w < remainder);
            let (policy_chunk, tail_p) = rest_p.split_at(take);
            let (result_chunk, tail_r) = rest_r.split_at_mut(take);
            rest_p = tail_p;
            rest_r = tail_r;
            scope.spawn(move || {
                let mut scratch = SimScratch::new();
                for (policy, slot) in policy_chunk.iter().zip(result_chunk.iter_mut()) {
                    *slot = Some(PolicyEvaluation {
                        policy: policy.clone(),
                        outcome: simulate_summary_into(jobs, policy, env, &mut scratch),
                    });
                }
            });
        }
    });

    results.into_iter().map(|r| r.expect("chunks cover every index")).collect()
}

/// Sweeps one sleep program across a frequency grid — one bowl curve of
/// Figure 1 (power and response at every `f` hash mark).
pub fn frequency_sweep(
    jobs: &JobStream,
    program: &SleepProgram,
    grid: &FrequencyGrid,
    env: &SimEnv,
) -> Vec<PolicyEvaluation> {
    let policies: Vec<Policy> = grid.iter().map(|f| Policy::new(f, program.clone())).collect();
    evaluate_policies(jobs, &policies, env)
}

/// Builds the full candidate grid (each program × each frequency) and
/// evaluates it — the policy manager's characterization step.
pub fn grid_sweep(
    jobs: &JobStream,
    programs: &[SleepProgram],
    grid: &FrequencyGrid,
    env: &SimEnv,
) -> Vec<PolicyEvaluation> {
    let policies: Vec<Policy> = programs
        .iter()
        .flat_map(|prog| grid.iter().map(move |f| Policy::new(f, prog.clone())))
        .collect();
    evaluate_policies(jobs, &policies, env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::generator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sleepscale_power::presets;

    fn workload() -> JobStream {
        let mut rng = StdRng::seed_from_u64(11);
        generator::generate_poisson_exp(3000, 0.2, 0.194, &mut rng).unwrap()
    }

    #[test]
    fn parallel_matches_serial() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.3, 1.0, 0.05).unwrap();
        let program = SleepProgram::immediate(presets::C6_S0I);
        let parallel = frequency_sweep(&jobs, &program, &grid, &env);
        // Serial reference.
        let serial: Vec<PolicyEvaluation> = grid
            .iter()
            .map(|f| {
                let p = Policy::new(f, program.clone());
                PolicyEvaluation { policy: p.clone(), outcome: simulate(&jobs, &p, &env) }
            })
            .collect();
        assert_eq!(parallel.len(), serial.len());
        for (a, b) in parallel.iter().zip(&serial) {
            assert_eq!(a.policy, b.policy);
            assert_eq!(a.outcome, b.outcome);
        }
    }

    /// The chunked sweep is thread-count invariant: any worker count
    /// produces byte-identical evaluations in grid order.
    #[test]
    fn thread_count_does_not_change_results() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.3, 1.0, 0.05).unwrap();
        let policies: Vec<Policy> = presets::standard_programs()
            .iter()
            .flat_map(|prog| grid.iter().map(move |f| Policy::new(f, prog.clone())))
            .collect();
        let reference = evaluate_policies_with_threads(&jobs, &policies, &env, 1);
        for threads in [2, 3, 7, 16] {
            let run = evaluate_policies_with_threads(&jobs, &policies, &env, threads);
            assert_eq!(run, reference, "threads={threads} diverged");
        }
    }

    /// Satellite regression: candidate counts that sit awkwardly
    /// against the worker count (prime sizes, counts just above the
    /// worker count, fewer candidates than workers) still produce
    /// thread-count-invariant bytes under the base+remainder split.
    #[test]
    fn skewed_candidate_counts_stay_thread_count_invariant() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let programs = presets::standard_programs();
        for n_policies in [2usize, 5, 17, 23] {
            let policies: Vec<Policy> = (0..n_policies)
                .map(|i| {
                    let f = 0.3 + 0.7 * i as f64 / n_policies as f64;
                    Policy::new(
                        sleepscale_power::Frequency::new(f).unwrap(),
                        programs[i % programs.len()].clone(),
                    )
                })
                .collect();
            let reference = evaluate_policies_with_threads(&jobs, &policies, &env, 1);
            for threads in [2, 3, 16, 40] {
                let run = evaluate_policies_with_threads(&jobs, &policies, &env, threads);
                assert_eq!(run, reference, "{n_policies} candidates × {threads} threads diverged");
            }
        }
    }

    #[test]
    fn sweep_is_ordered_by_grid() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.25, 1.0, 0.25).unwrap();
        let evals = frequency_sweep(&jobs, &SleepProgram::immediate(presets::C0I_S0I), &grid, &env);
        let fs: Vec<f64> = evals.iter().map(|e| e.policy.frequency().get()).collect();
        assert_eq!(fs, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn higher_frequency_means_lower_response() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.25, 1.0, 0.75).unwrap();
        let evals = frequency_sweep(&jobs, &SleepProgram::immediate(presets::C0I_S0I), &grid, &env);
        assert!(evals[0].outcome.mean_response() > evals.last().unwrap().outcome.mean_response());
    }

    #[test]
    fn grid_sweep_covers_programs_times_frequencies() {
        let jobs = workload();
        let env = SimEnv::xeon_cpu_bound();
        let grid = FrequencyGrid::new(0.5, 1.0, 0.5).unwrap();
        let programs = presets::standard_programs();
        let evals = grid_sweep(&jobs, &programs, &grid, &env);
        assert_eq!(evals.len(), programs.len() * grid.len());
    }
}
