use crate::env::SimEnv;
use crate::job::{Job, JobRecord, JobStream};
use crate::ledger::EnergyLedger;
use crate::outcome::{EpochOutcome, Residency, SimOutcome};
use sleepscale_dist::SummaryStats;
use sleepscale_power::{Frequency, Policy, SleepProgram, SystemState, Watts};
use sleepscale_telemetry::{TraceBuffer, TraceEvent};

/// The server's condition carried between epochs: when its committed work
/// finishes and which sleep program/frequency governs the idle interval
/// that began (or will begin) at that instant.
#[derive(Debug, Clone, PartialEq)]
pub struct CarryState {
    free_time: f64,
    idle: Option<(SleepProgram, Frequency)>,
}

impl Default for CarryState {
    fn default() -> CarryState {
        CarryState::new()
    }
}

impl CarryState {
    /// A server idle since t = 0 whose idle behaviour defaults to the
    /// first policy it is given.
    pub fn new() -> CarryState {
        CarryState { free_time: 0.0, idle: None }
    }

    /// When the server's committed work completes (equivalently, when its
    /// current idle period began if in the past).
    pub fn free_time(&self) -> f64 {
        self.free_time
    }
}

impl sleepscale_journal::Snapshot for CarryState {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_f64(self.free_time);
        self.idle.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<CarryState, sleepscale_journal::CodecError> {
        Ok(CarryState { free_time: r.get_f64()?, idle: Option::restore(r)? })
    }
}

/// Incremental FCFS + sleep-states simulator (the paper's Algorithm 1,
/// exact-event version).
///
/// Feed it one epoch at a time with [`OnlineSim::run_epoch`]; policies may
/// change between epochs and energy is attributed exactly to per-epoch
/// buckets via the internal [`EnergyLedger`]. Call [`OnlineSim::finish`]
/// at the end of the trace to close the final idle interval.
///
/// # Model semantics
///
/// * An arrival into a non-empty system queues (FCFS).
/// * An arrival into an idle system triggers wake-up *immediately*; it
///   pays the wake latency of whichever sleep stage the server occupies
///   at that instant (none, if still in pre-`τ_1` active idle).
/// * Wake-up time is charged at active power (paper's conservative rule),
///   as is pre-`τ_1` idle (matching the appendix's `P_0` term).
/// * A job is served at the frequency of the epoch in which it *arrives*;
///   an idle interval follows the sleep program of the policy under which
///   the preceding busy period ran (re-programming a sleeping server
///   retroactively is physically meaningless).
pub struct OnlineSim {
    env: SimEnv,
    ledger: EnergyLedger,
    state: CarryState,
    residency: Residency,
    wakes_from: Vec<(SystemState, u64)>,
    wakes_without_sleep: u64,
    jobs_done: usize,
    // `None` (the default) keeps every code path byte-identical to the
    // untraced engine: each emit site pays exactly one `Option` check.
    trace: Option<TraceBuffer>,
}

impl OnlineSim {
    /// A fresh simulator whose energy ledger buckets time every
    /// `bucket_width` seconds (use the epoch length to get per-epoch
    /// power).
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive and finite.
    pub fn new(env: SimEnv, bucket_width: f64) -> OnlineSim {
        OnlineSim {
            env,
            ledger: EnergyLedger::new(bucket_width),
            state: CarryState::new(),
            residency: Residency::new(),
            wakes_from: Vec::new(),
            wakes_without_sleep: 0,
            jobs_done: 0,
            trace: None,
        }
    }

    /// Turns on structured event tracing, attributing events to slot
    /// `server`. Events accumulate in an internal [`TraceBuffer`] and
    /// come back from [`OnlineSim::finish_traced`]; the buffer is not
    /// part of the checkpoint state (checkpointed runs reject
    /// telemetry upstream).
    pub fn enable_trace(&mut self, server: u32) {
        self.trace = Some(TraceBuffer::new(server));
    }

    /// Whether event tracing is on.
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Simulates one epoch's arrivals under `policy`.
    ///
    /// `jobs` must be sorted by arrival and arrive at or after any
    /// previously processed job (the engine is single-pass). `epoch_end`
    /// is used only to report how far committed work overhangs the epoch.
    pub fn run_epoch(&mut self, jobs: &[Job], policy: &Policy, epoch_end: f64) -> EpochOutcome {
        let mut records = Vec::with_capacity(jobs.len());
        let backlog = self.run_epoch_with(jobs, policy, epoch_end, |r| records.push(*r));
        EpochOutcome::new(records, backlog)
    }

    /// Simulates one epoch's arrivals, streaming each completed
    /// [`JobRecord`] to `on_record` instead of materializing a vector.
    /// Returns the backlog (committed work overhanging `epoch_end`).
    ///
    /// This is the engine's record-free fast path: batch
    /// characterization ([`simulate_summary`]) folds each record into
    /// summary statistics on the fly, so candidate evaluation performs
    /// no per-job record allocation.
    pub fn run_epoch_with(
        &mut self,
        jobs: &[Job],
        policy: &Policy,
        epoch_end: f64,
        mut on_record: impl FnMut(&JobRecord),
    ) -> f64 {
        for job in jobs {
            let record = self.process_job(job, policy);
            on_record(&record);
        }
        (self.state.free_time - epoch_end).max(0.0)
    }

    fn process_job(&mut self, job: &Job, policy: &Policy) -> JobRecord {
        let f = policy.frequency();
        let active_watts = self.env.power().active_power(f);
        let mut wake = 0.0;

        let start = if job.arrival >= self.state.free_time {
            // The queue emptied at free_time; the server has been walking
            // the sleep ladder of the policy in effect back then.
            let gap_start = self.state.free_time;
            let gap = job.arrival - gap_start;
            // Move the installed idle program out rather than cloning
            // it: idle arrivals dominate low-ρ fleets, and a per-job
            // `SleepProgram` clone (a heap `Vec`) is the dispatch
            // engine's hottest allocation. The program is restored
            // untouched below.
            let installed = self.state.idle.take();
            let (program, idle_freq) = match &installed {
                Some((p, fr)) => (p, *fr),
                None => (policy.program(), f),
            };
            self.emit_idle(gap_start, gap, program, idle_freq);
            let woke_from = match program.stage_at(gap) {
                Some(stage) => {
                    wake = stage.wake_latency();
                    let state = stage.state();
                    self.count_wake(state);
                    Some(state)
                }
                None => {
                    self.wakes_without_sleep += 1;
                    None
                }
            };
            self.state.idle = installed;
            // Wake-up runs at the *new* policy's active power.
            self.ledger.add_segment(job.arrival, job.arrival + wake, active_watts);
            self.residency.add_waking(wake);
            if let Some(buf) = self.trace.as_mut() {
                buf.push(TraceEvent::Wake {
                    server: buf.server(),
                    at: job.arrival,
                    from: woke_from,
                    latency: wake,
                    watts: active_watts.as_watts(),
                });
            }
            job.arrival + wake
        } else {
            self.state.free_time
        };

        let service = job.size * self.env.scaling().service_multiplier(f);
        let departure = start + service;
        // Serving time is the only energy a job owns: the segment is
        // tagged with its class (tag 0 for untagged streams), while
        // wake-up above and idle gaps stay untagged idle-side energy.
        self.ledger.add_active_segment(start, departure, active_watts, job.class());
        self.residency.add_serving(service);
        self.state.free_time = departure;
        // The idle program is the serving policy's; skip the clone when
        // it is already installed (the common case — policies change at
        // epoch boundaries, not per job, and the one-at-a-time fleet
        // dispatch path calls this once per job).
        match &self.state.idle {
            Some((program, freq)) if *freq == f && program == policy.program() => {}
            _ => self.state.idle = Some((policy.program().clone(), f)),
        }
        self.jobs_done += 1;

        JobRecord {
            id: job.id,
            arrival: job.arrival,
            start,
            departure,
            size: job.size,
            service,
            wake,
        }
    }

    /// Parks a drained server at `now`: the idle interval accumulated
    /// since the queue emptied is integrated under the program that was
    /// walking it, and `program` (typically a single immediate deep
    /// stage) takes over from `now` with the idle clock re-based there.
    /// Until [`OnlineSim::wake`] is called, any further idle time is
    /// charged at the parked program's ladder.
    ///
    /// The caller must only park a drained server (`now` at or past the
    /// carried free time); parking a busy server would rewrite history.
    pub fn park(&mut self, now: f64, program: SleepProgram, freq: Frequency) {
        assert!(now >= self.state.free_time, "park requires a drained server");
        let gap_start = self.state.free_time;
        let installed = self.state.idle.take();
        let (walking, idle_freq) = match &installed {
            Some((p, fr)) => (p.clone(), *fr),
            None => (SleepProgram::never_sleep(), Frequency::MAX),
        };
        self.emit_idle(gap_start, now - gap_start, &walking, idle_freq);
        self.state.free_time = now;
        self.state.idle = Some((program, freq));
    }

    /// Wakes a parked server at `now`: charges the parked interval under
    /// the parked program, counts the wake transition from its deepest
    /// stage, charges the wake-up latency at `active_watts`, and leaves
    /// the server free at `now + wake_latency` with `next_idle` (the
    /// resuming policy's program) installed for subsequent idle gaps.
    /// Returns the wake latency paid.
    pub fn wake(
        &mut self,
        now: f64,
        active_watts: Watts,
        next_idle: (SleepProgram, Frequency),
    ) -> f64 {
        assert!(now >= self.state.free_time, "wake requires a parked (drained) server");
        let gap_start = self.state.free_time;
        let gap = now - gap_start;
        let installed = self.state.idle.take();
        let (program, idle_freq) = match &installed {
            Some((p, fr)) => (p.clone(), *fr),
            None => (SleepProgram::never_sleep(), Frequency::MAX),
        };
        self.emit_idle(gap_start, gap, &program, idle_freq);
        let (wake, woke_from) = match program.stage_at(gap) {
            Some(stage) => {
                let state = stage.state();
                self.count_wake(state);
                (stage.wake_latency(), Some(state))
            }
            None => {
                self.wakes_without_sleep += 1;
                (0.0, None)
            }
        };
        self.ledger.add_segment(now, now + wake, active_watts);
        self.residency.add_waking(wake);
        if let Some(buf) = self.trace.as_mut() {
            buf.push(TraceEvent::Wake {
                server: buf.server(),
                at: now,
                from: woke_from,
                latency: wake,
                watts: active_watts.as_watts(),
            });
        }
        self.state.free_time = now + wake;
        self.state.idle = Some(next_idle);
        wake
    }

    /// Integrates the idle interval `[gap_start, gap_start + gap)` across
    /// the sleep ladder: active power before `τ_1`, then each stage's
    /// power until the next stage begins or the gap ends.
    fn emit_idle(
        &mut self,
        gap_start: f64,
        gap: f64,
        program: &SleepProgram,
        idle_freq: Frequency,
    ) {
        if gap <= 0.0 {
            return;
        }
        let stages = program.stages();
        let first_tau = stages.first().map_or(gap, |s| s.enter_after().min(gap));
        if first_tau > 0.0 {
            let watts = self.env.power().active_power(idle_freq);
            self.ledger.add_segment(gap_start, gap_start + first_tau, watts);
            self.residency.add_active_idle(first_tau);
            if let Some(buf) = self.trace.as_mut() {
                buf.push(TraceEvent::ActiveIdle {
                    server: buf.server(),
                    start: gap_start,
                    seconds: first_tau,
                    watts: watts.as_watts(),
                });
            }
        }
        for (i, stage) in stages.iter().enumerate() {
            let begin = stage.enter_after();
            if begin >= gap {
                break;
            }
            let end = stages.get(i + 1).map_or(gap, |next| next.enter_after().min(gap));
            let watts = self.env.power().power(stage.state(), idle_freq);
            self.ledger.add_segment(gap_start + begin, gap_start + end, watts);
            self.residency.add_state(stage.state(), end - begin);
            if let Some(buf) = self.trace.as_mut() {
                buf.push(TraceEvent::CState {
                    server: buf.server(),
                    start: gap_start + begin,
                    seconds: end - begin,
                    state: stage.state(),
                    watts: watts.as_watts(),
                });
            }
        }
    }

    fn count_wake(&mut self, state: SystemState) {
        if let Some(entry) = self.wakes_from.iter_mut().find(|(s, _)| *s == state) {
            entry.1 += 1;
        } else {
            self.wakes_from.push((state, 1));
        }
    }

    /// Closes the trace: integrates the trailing idle interval up to
    /// `horizon` (if the server went idle before it) and returns the
    /// overall outcome. Response statistics are not kept by the online
    /// engine (each epoch already returned its records); pass them in via
    /// [`simulate`] for batch use.
    pub fn finish(self, horizon: f64) -> (EnergyLedger, Residency, Vec<(SystemState, u64)>, u64) {
        let (ledger, residency, wakes_from, wakes_without_sleep, _) = self.finish_traced(horizon);
        (ledger, residency, wakes_from, wakes_without_sleep)
    }

    /// [`OnlineSim::finish`] plus the traced event stream (empty when
    /// tracing was never enabled).
    #[allow(clippy::type_complexity)]
    pub fn finish_traced(
        mut self,
        horizon: f64,
    ) -> (EnergyLedger, Residency, Vec<(SystemState, u64)>, u64, Vec<TraceEvent>) {
        let end = horizon.max(self.state.free_time);
        if end > self.state.free_time {
            let (program, freq) = match &self.state.idle {
                Some((p, fr)) => (p.clone(), *fr),
                None => (SleepProgram::never_sleep(), Frequency::MAX),
            };
            let gap_start = self.state.free_time;
            self.emit_idle(gap_start, end - gap_start, &program, freq);
        }
        let events = self.trace.take().map(TraceBuffer::into_events).unwrap_or_default();
        (self.ledger, self.residency, self.wakes_from, self.wakes_without_sleep, events)
    }

    /// Pushes an externally produced event (an epoch decision, a
    /// frequency change) into this server's trace, in program order
    /// with the engine's own events. No-op when tracing is off.
    pub fn trace_push(&mut self, event: TraceEvent) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(event);
        }
    }

    /// The traced slot index, if tracing is on.
    pub fn trace_server(&self) -> Option<u32> {
        self.trace.as_ref().map(TraceBuffer::server)
    }

    /// The server's carry state (free time and pending idle program).
    pub fn state(&self) -> &CarryState {
        &self.state
    }

    /// The per-bucket energy ledger accumulated so far.
    pub fn ledger(&self) -> &EnergyLedger {
        &self.ledger
    }

    /// Time-in-state accounting so far.
    pub fn residency(&self) -> &Residency {
        &self.residency
    }

    /// Jobs completed so far.
    pub fn jobs_done(&self) -> usize {
        self.jobs_done
    }

    /// Serializes the full mid-run state — ledger, carry state, residency,
    /// and wake counters — for checkpointing. The environment is *not*
    /// written; resumes rebuild it from configuration and pass it to
    /// [`OnlineSim::restore_state`].
    pub fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        use sleepscale_journal::Snapshot;
        self.ledger.snapshot(w);
        self.state.snapshot(w);
        self.residency.snapshot(w);
        self.wakes_from.snapshot(w);
        w.put_u64(self.wakes_without_sleep);
        w.put_usize(self.jobs_done);
    }

    /// Rebuilds a simulator from a [`OnlineSim::snapshot_state`] record
    /// and a freshly constructed environment. Draws from the same codec
    /// error discipline as every [`sleepscale_journal::Snapshot`] impl:
    /// corrupt input yields a typed error, never a panic.
    pub fn restore_state(
        env: SimEnv,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<OnlineSim, sleepscale_journal::CodecError> {
        use sleepscale_journal::Snapshot;
        Ok(OnlineSim {
            env,
            ledger: EnergyLedger::restore(r)?,
            state: CarryState::restore(r)?,
            residency: Residency::restore(r)?,
            wakes_from: Vec::restore(r)?,
            wakes_without_sleep: r.get_u64()?,
            jobs_done: r.get_usize()?,
            trace: None,
        })
    }
}

/// Batch policy evaluation — the paper's Algorithm 1.
///
/// Runs the whole `jobs` stream under one fixed `policy` and reports mean
/// response time, average power, residency, and wake statistics. The
/// horizon runs from the stream origin (t = 0) to the last departure,
/// matching Algorithm 1's power accounting by the ratio of active and
/// idle periods.
pub fn simulate(jobs: &JobStream, policy: &Policy, env: &SimEnv) -> SimOutcome {
    let mut sim = OnlineSim::new(env.clone(), 3600.0);
    let epoch = sim.run_epoch(jobs.jobs(), policy, f64::INFINITY);
    let horizon = sim.state.free_time;
    let n = epoch.records().len();
    let responses = SummaryStats::from_samples(epoch.records().iter().map(JobRecord::response));
    let (ledger, residency, wakes_from, wakes_without_sleep) = sim.finish(horizon);
    SimOutcome::new(
        n,
        horizon,
        responses,
        ledger.total_energy(),
        residency,
        wakes_from,
        wakes_without_sleep,
    )
}

/// Reusable per-worker buffers for [`simulate_summary_into`].
///
/// A policy sweep evaluates dozens of candidates over the same stream;
/// giving each worker one scratch amortizes the response-sample buffer
/// across every evaluation it performs.
#[derive(Debug, Default)]
pub struct SimScratch {
    responses: Vec<f64>,
}

impl SimScratch {
    /// An empty scratch; buffers grow to the workload size on first use.
    pub fn new() -> SimScratch {
        SimScratch::default()
    }
}

/// Record-free batch policy evaluation: identical results to
/// [`simulate`] (same responses, energy, residency, and wake counts,
/// bit for bit) without materializing a `Vec<JobRecord>` per call.
///
/// This is what the characterization sweep runs per candidate — the
/// hot inner loop of the paper's Algorithm 1.
pub fn simulate_summary(jobs: &JobStream, policy: &Policy, env: &SimEnv) -> SimOutcome {
    simulate_summary_into(jobs, policy, env, &mut SimScratch::new())
}

/// [`simulate_summary`] with caller-owned scratch buffers, for tight
/// sweep loops that evaluate many policies back to back.
pub fn simulate_summary_into(
    jobs: &JobStream,
    policy: &Policy,
    env: &SimEnv,
    scratch: &mut SimScratch,
) -> SimOutcome {
    let mut sim = OnlineSim::new(env.clone(), 3600.0);
    scratch.responses.clear();
    let responses = &mut scratch.responses;
    sim.run_epoch_with(jobs.jobs(), policy, f64::INFINITY, |r| responses.push(r.response()));
    let horizon = sim.state.free_time;
    let n = responses.len();
    let stats = SummaryStats::from_samples(responses.iter().copied());
    let (ledger, residency, wakes_from, wakes_without_sleep) = sim.finish(horizon);
    SimOutcome::new(
        n,
        horizon,
        stats,
        ledger.total_energy(),
        residency,
        wakes_from,
        wakes_without_sleep,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepscale_power::{presets, FrequencyScaling, SleepStage};

    fn env() -> SimEnv {
        SimEnv::xeon_cpu_bound()
    }

    fn stream(pairs: &[(f64, f64)]) -> JobStream {
        JobStream::from_log(pairs.iter().copied()).unwrap()
    }

    /// Two well-separated jobs under immediate C6S3: the first pays the
    /// 1 s wake (server "asleep" since t = 0), the second arrives long
    /// after the queue empties and pays it again.
    #[test]
    fn wake_latency_charged_per_cycle() {
        let jobs = stream(&[(10.0, 1.0), (100.0, 1.0)]);
        let policy = Policy::new(Frequency::MAX, SleepProgram::immediate(presets::C6_S3));
        let out = simulate(&jobs, &policy, &env());
        assert_eq!(out.n_jobs(), 2);
        // Each response = wake 1 s + service 1 s.
        assert!((out.mean_response() - 2.0).abs() < 1e-9);
        assert_eq!(out.wakes_from().len(), 1);
        assert_eq!(out.wakes_from()[0], (SystemState::C6_S3, 2));
        assert_eq!(out.wakes_without_sleep(), 0);
    }

    /// A job arriving during a busy period queues and pays no wake.
    #[test]
    fn queued_job_pays_no_wake() {
        let jobs = stream(&[(0.0, 1.0), (1.5, 1.0), (1.6, 1.0)]);
        let policy = Policy::new(Frequency::MAX, SleepProgram::immediate(presets::C6_S3));
        let out = simulate(&jobs, &policy, &env());
        // Job 0: wake 1 (asleep since t=0), start 1, dep 2.
        // Job 1 (t=1.5): queued, start 2, dep 3. Response 1.5.
        // Job 2 (t=1.6): queued, start 3, dep 4. Response 2.4.
        assert!((out.mean_response() - (2.0 + 1.5 + 2.4) / 3.0).abs() < 1e-9);
        assert_eq!(out.wakes_from()[0].1, 1);
        assert!((out.horizon() - 4.0).abs() < 1e-12);
    }

    /// Frequency stretches service times through the scaling law.
    #[test]
    fn frequency_scales_service_time() {
        let jobs = stream(&[(0.0, 1.0)]);
        let half = Frequency::new(0.5).unwrap();
        let cpu = Policy::new(half, SleepProgram::immediate(presets::C0I_S0I));
        let out = simulate(&jobs, &cpu, &env());
        assert!((out.residency().serving() - 2.0).abs() < 1e-12);
        let mem_env = env().with_scaling(FrequencyScaling::MemoryBound);
        let out = simulate(&jobs, &cpu, &mem_env);
        assert!((out.residency().serving() - 1.0).abs() < 1e-12);
    }

    /// Exact energy bookkeeping for a hand-computable scenario.
    #[test]
    fn energy_integrates_exactly() {
        // One job arriving at t=10, size 2, f=1, immediate C6S3 (28.1 W,
        // wake 1 s). Idle [0,10) at 28.1 W, wake [10,11) at 250 W,
        // serve [11,13) at 250 W. Horizon 13.
        let jobs = stream(&[(10.0, 2.0)]);
        let policy = Policy::new(Frequency::MAX, SleepProgram::immediate(presets::C6_S3));
        let out = simulate(&jobs, &policy, &env());
        let expect = 10.0 * 28.1 + 3.0 * 250.0;
        assert!((out.energy().as_joules() - expect).abs() < 1e-6);
        assert!((out.horizon() - 13.0).abs() < 1e-12);
        assert!((out.avg_power().as_watts() - expect / 13.0).abs() < 1e-9);
        assert!((out.residency().state_time(SystemState::C6_S3) - 10.0).abs() < 1e-12);
        assert!((out.residency().waking() - 1.0).abs() < 1e-12);
        assert!((out.residency().serving() - 2.0).abs() < 1e-12);
        assert!((out.residency().total() - 13.0).abs() < 1e-9);
    }

    /// Pre-τ1 idle is charged at active power; the stage only begins at τ1.
    #[test]
    fn delayed_entry_charges_active_idle_first() {
        // Sleep program: C6S3 after τ=4 s. Job at t=10: idle [0,4) active,
        // [4,10) C6S3, then wake 1 s.
        let jobs = stream(&[(10.0, 1.0)]);
        let stage = SleepStage::new(SystemState::C6_S3, 4.0, 1.0).unwrap();
        let policy = Policy::new(Frequency::MAX, SleepProgram::new(vec![stage]).unwrap());
        let out = simulate(&jobs, &policy, &env());
        assert!((out.residency().active_idle() - 4.0).abs() < 1e-12);
        assert!((out.residency().state_time(SystemState::C6_S3) - 6.0).abs() < 1e-12);
        let expect = 4.0 * 250.0 + 6.0 * 28.1 + 2.0 * 250.0;
        assert!((out.energy().as_joules() - expect).abs() < 1e-6);
    }

    /// An arrival inside the pre-τ1 window pays no wake latency.
    #[test]
    fn arrival_before_first_stage_wakes_free() {
        let jobs = stream(&[(2.0, 1.0)]);
        let stage = SleepStage::new(SystemState::C6_S3, 4.0, 1.0).unwrap();
        let policy = Policy::new(Frequency::MAX, SleepProgram::new(vec![stage]).unwrap());
        let out = simulate(&jobs, &policy, &env());
        assert!((out.mean_response() - 1.0).abs() < 1e-12);
        assert_eq!(out.wakes_without_sleep(), 1);
        assert!(out.wakes_from().is_empty());
    }

    /// Two-stage ladder: the wake cost depends on which rung the arrival
    /// catches (Figure 3's C0(i)S0(i) → C6S3 program).
    #[test]
    fn two_stage_ladder_wake_depends_on_gap() {
        let program = SleepProgram::new(vec![
            SleepStage::new(SystemState::C0I_S0I, 0.0, 0.0).unwrap(),
            SleepStage::new(SystemState::C6_S3, 5.0, 1.0).unwrap(),
        ])
        .unwrap();
        let policy = Policy::new(Frequency::MAX, program);
        // First job: gap 2 (catches C0(i), no wake). Second: gap 10
        // (catches C6S3, 1 s wake).
        let jobs = stream(&[(2.0, 1.0), (13.0, 1.0)]);
        let out = simulate(&jobs, &policy, &env());
        assert!((out.mean_response() - (1.0 + 2.0) / 2.0).abs() < 1e-9);
        assert_eq!(out.wakes_from().len(), 2);
        assert!(out.wakes_from().contains(&(SystemState::C0I_S0I, 1)));
        assert!(out.wakes_from().contains(&(SystemState::C6_S3, 1)));
        // Idle accounting: [0,2) C0(i) (gap<τ2) then [3,8) C0(i), [8,13) C6S3.
        assert!((out.residency().state_time(SystemState::C0I_S0I) - 7.0).abs() < 1e-9);
        assert!((out.residency().state_time(SystemState::C6_S3) - 5.0).abs() < 1e-9);
    }

    /// never_sleep idles at active power (the f³-scaled C0(a) draw).
    #[test]
    fn never_sleep_idles_at_active_power() {
        let jobs = stream(&[(10.0, 1.0)]);
        let f = Frequency::new(0.5).unwrap();
        let policy = Policy::new(f, SleepProgram::never_sleep());
        let out = simulate(&jobs, &policy, &env());
        let active = 130.0 * 0.125 + 120.0;
        // Idle [0,10) + serve [10,12): all at the same active power.
        assert!((out.energy().as_joules() - active * 12.0).abs() < 1e-6);
        assert_eq!(out.wakes_without_sleep(), 1);
    }

    /// Epoch-sliced online execution matches one-shot batch execution
    /// when the policy never changes.
    #[test]
    fn online_epochs_match_batch() {
        let pairs: Vec<(f64, f64)> =
            (0..200).map(|i| (i as f64 * 0.37, 0.05 + 0.001 * (i % 7) as f64)).collect();
        let jobs = stream(&pairs);
        let policy =
            Policy::new(Frequency::new(0.7).unwrap(), SleepProgram::immediate(presets::C6_S0I));
        let batch = simulate(&jobs, &policy, &env());

        let mut online = OnlineSim::new(env(), 10.0);
        let mut responses = Vec::new();
        let epoch_len = 10.0;
        let mut t = 0.0;
        let mut remaining = jobs.clone();
        while !remaining.is_empty() {
            let (now, later) = remaining.split_at_time(t + epoch_len);
            let out = online.run_epoch(now.jobs(), &policy, t + epoch_len);
            responses.extend(out.records().iter().map(JobRecord::response));
            remaining = later;
            t += epoch_len;
        }
        let horizon = online.state().free_time();
        let (ledger, residency, _, _) = online.finish(horizon);
        assert!((ledger.total_energy().as_joules() - batch.energy().as_joules()).abs() < 1e-6);
        assert!((residency.total() - batch.residency().total()).abs() < 1e-9);
        let mean = responses.iter().sum::<f64>() / responses.len() as f64;
        assert!((mean - batch.mean_response()).abs() < 1e-12);
    }

    /// Energy ledger buckets sum to the total across epoch boundaries.
    #[test]
    fn ledger_buckets_sum_to_total() {
        let pairs: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 * 1.1, 0.4)).collect();
        let jobs = stream(&pairs);
        let policy = Policy::new(Frequency::MAX, SleepProgram::immediate(presets::C6_S3));
        let mut online = OnlineSim::new(env(), 5.0);
        online.run_epoch(jobs.jobs(), &policy, f64::INFINITY);
        let horizon = online.state().free_time();
        let (ledger, ..) = online.finish(horizon);
        let sum: f64 =
            (0..ledger.bucket_count()).map(|i| ledger.bucket_energy(i).as_joules()).sum();
        assert!((sum - ledger.total_energy().as_joules()).abs() < 1e-6);
    }

    /// Responses are always at least the stretched service time.
    #[test]
    fn response_at_least_service() {
        let pairs: Vec<(f64, f64)> = (0..500).map(|i| ((i as f64) * 0.21, 0.2)).collect();
        let jobs = stream(&pairs);
        let f = Frequency::new(0.8).unwrap();
        let policy = Policy::new(f, SleepProgram::immediate(presets::C6_S0I));
        let mut online = OnlineSim::new(env(), 60.0);
        let out = online.run_epoch(jobs.jobs(), &policy, f64::INFINITY);
        for r in out.records() {
            assert!(r.response() >= r.service - 1e-12);
            assert!(r.service >= r.size); // f < 1 stretches
            assert!(r.departure > r.arrival);
        }
    }

    #[test]
    fn empty_stream_is_zeroes() {
        let out = simulate(&JobStream::default(), &Policy::full_speed_no_sleep(), &env());
        assert_eq!(out.n_jobs(), 0);
        assert_eq!(out.horizon(), 0.0);
        assert_eq!(out.energy().as_joules(), 0.0);
        let summary =
            simulate_summary(&JobStream::default(), &Policy::full_speed_no_sleep(), &env());
        assert_eq!(summary, out);
    }

    /// The record-free path is bit-identical to the record path, and
    /// scratch reuse across different policies does not leak state.
    #[test]
    fn summary_path_matches_record_path() {
        let pairs: Vec<(f64, f64)> =
            (0..500).map(|i| (i as f64 * 0.41, 0.05 + 0.002 * (i % 11) as f64)).collect();
        let jobs = stream(&pairs);
        let mut scratch = SimScratch::new();
        for (f, stage) in [(1.0, presets::C6_S3), (0.6, presets::C3_S0I), (0.4, presets::C6_S0I)] {
            let policy = Policy::new(Frequency::new(f).unwrap(), SleepProgram::immediate(stage));
            let record = simulate(&jobs, &policy, &env());
            assert_eq!(simulate_summary(&jobs, &policy, &env()), record);
            assert_eq!(simulate_summary_into(&jobs, &policy, &env(), &mut scratch), record);
        }
    }

    /// M/M/1 sanity: at f=1 with zero-latency sleep, the measured busy
    /// fraction approaches ρ and normalized mean response 1/(1−ρ).
    #[test]
    fn mm1_sanity() {
        use rand::SeedableRng;
        use sleepscale_dist::{Distribution, Exponential};
        let mu = 1.0 / 0.194;
        let rho = 0.5;
        let ia = Exponential::new(rho * mu).unwrap();
        let sv = Exponential::new(mu).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut t = 0.0;
        let mut jobs = Vec::new();
        for id in 0..40_000u64 {
            t += ia.sample(&mut rng);
            jobs.push(Job { id, arrival: t, size: sv.sample(&mut rng) });
        }
        let jobs = JobStream::new(jobs).unwrap();
        let policy = Policy::new(Frequency::MAX, SleepProgram::immediate(presets::C0I_S0I));
        let out = simulate(&jobs, &policy, &env());
        assert!((out.busy_fraction() - rho).abs() < 0.02, "busy {}", out.busy_fraction());
        let norm = out.normalized_mean_response(0.194);
        assert!((norm - 2.0).abs() < 0.15, "µE[R] {} vs 2.0", norm);
    }
}
