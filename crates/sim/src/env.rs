use serde::{Deserialize, Serialize};
use sleepscale_power::{FrequencyScaling, SystemPowerModel};

/// The fixed physical environment of a simulation: the machine's power
/// model and the workload's service-time/frequency coupling.
///
/// Policies vary per evaluation; the environment stays constant across a
/// sweep, so it is shared by reference (it is also cheap to clone).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimEnv {
    power: SystemPowerModel,
    scaling: FrequencyScaling,
}

impl SimEnv {
    /// Pairs a power model with a scaling law.
    pub fn new(power: SystemPowerModel, scaling: FrequencyScaling) -> SimEnv {
        SimEnv { power, scaling }
    }

    /// The Xeon Table-2 machine with CPU-bound scaling — the paper's
    /// default configuration.
    pub fn xeon_cpu_bound() -> SimEnv {
        SimEnv::new(sleepscale_power::presets::xeon(), FrequencyScaling::CpuBound)
    }

    /// The machine's power model.
    pub fn power(&self) -> &SystemPowerModel {
        &self.power
    }

    /// The service-time scaling law.
    pub fn scaling(&self) -> FrequencyScaling {
        self.scaling
    }

    /// Returns a copy with a different scaling law (Figure 4 sweeps β
    /// while keeping the machine fixed).
    pub fn with_scaling(&self, scaling: FrequencyScaling) -> SimEnv {
        SimEnv { power: self.power.clone(), scaling }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepscale_power::Frequency;

    #[test]
    fn default_env_is_xeon_cpu_bound() {
        let env = SimEnv::xeon_cpu_bound();
        assert_eq!(env.scaling(), FrequencyScaling::CpuBound);
        assert_eq!(env.power().active_power(Frequency::MAX).as_watts(), 250.0);
    }

    #[test]
    fn with_scaling_swaps_law_only() {
        let env = SimEnv::xeon_cpu_bound();
        let mem = env.with_scaling(FrequencyScaling::MemoryBound);
        assert_eq!(mem.scaling(), FrequencyScaling::MemoryBound);
        assert_eq!(mem.power(), env.power());
    }
}
