//! FCFS queueing simulator with sleep states and power integration —
//! the paper's Algorithm 1, generalized.
//!
//! The paper evaluates every candidate policy by simulating a single-server
//! first-come-first-serve queue whose server:
//!
//! * serves jobs at a DVFS-scaled rate (service time stretches by
//!   `1/f^β`, see [`sleepscale_power::FrequencyScaling`]),
//! * walks down a ladder of low-power states whenever its queue empties
//!   (a [`sleepscale_power::SleepProgram`]), and
//! * pays the wake-up latency of whichever rung it occupies when the next
//!   job arrives, charging wake time at active power (the paper's
//!   conservative assumption).
//!
//! Three layers are exposed:
//!
//! * [`JobStream`]/[`generator`] — job traces, either sampled from
//!   distributions (Algorithm 1 step 1) or replayed from logs.
//! * [`OnlineSim`] — an *incremental* simulator that the SleepScale
//!   runtime feeds epoch by epoch (policies change between epochs); energy
//!   is integrated exactly across epoch boundaries via [`EnergyLedger`].
//! * [`simulate`]/[`simulate_summary`]/[`sweep`] — batch evaluation of
//!   one policy or a whole frequency×program grid (parallelized) over a
//!   fixed job stream; this is what the policy manager runs online and
//!   what the figure harness uses for the Section 4 studies.
//!   [`simulate_summary`] is the record-free fast path (identical
//!   results, no per-job `JobRecord` materialization); [`JobCursor`]
//!   lets epoch loops walk a stream without cloning the remainder.
//!
//! # Example
//!
//! ```
//! use sleepscale_sim::prelude::*;
//! use sleepscale_power::prelude::*;
//! use sleepscale_dist::Exponential;
//! use rand::SeedableRng;
//!
//! // M/M/1, DNS-like job size (1/µ = 194 ms), utilization 0.1.
//! let mu = 1.0 / 0.194;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let jobs = generator::generate(
//!     10_000,
//!     &Exponential::new(0.1 * mu)?,
//!     &Exponential::new(mu)?,
//!     &mut rng,
//! )?;
//! let env = SimEnv::new(presets::xeon(), FrequencyScaling::CpuBound);
//! let policy = Policy::new(Frequency::new(0.42)?, SleepProgram::immediate(presets::C6_S3));
//! let out = simulate(&jobs, &policy, &env);
//! assert!(out.avg_power().as_watts() < 130.0); // far below the 250 W peak
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod env;
mod error;
pub mod generator;
mod job;
mod ledger;
mod outcome;
mod split;
pub mod sweep;

pub use engine::{
    simulate, simulate_summary, simulate_summary_into, CarryState, OnlineSim, SimScratch,
};
pub use env::SimEnv;
pub use error::SimError;
pub use job::{pack_id, try_pack_id, ClassId, Job, JobCursor, JobRecord, JobStream, SEQUENCE_BITS};
pub use ledger::EnergyLedger;
pub use outcome::{EpochOutcome, Residency, SimOutcome};
pub use split::StreamSplit;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::generator;
    pub use crate::sweep;
    pub use crate::{
        simulate, simulate_summary, simulate_summary_into, CarryState, ClassId, EnergyLedger,
        EpochOutcome, Job, JobCursor, JobRecord, JobStream, OnlineSim, Residency, SimEnv, SimError,
        SimOutcome, SimScratch, StreamSplit,
    };
}
