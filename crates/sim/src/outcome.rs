use crate::job::JobRecord;
use serde::{Deserialize, Serialize};
use sleepscale_dist::SummaryStats;
use sleepscale_power::{Joules, SystemState, Watts};

/// Time-in-state accounting over a simulation.
///
/// Four kinds of time exist in the model: serving, waking (charged at
/// active power), idling *before* the first sleep stage (`t < τ_1`, also
/// at active power, matching the appendix's `P_0` term), and idling inside
/// each low-power state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Residency {
    serving: f64,
    waking: f64,
    active_idle: f64,
    states: Vec<(SystemState, f64)>,
}

impl Residency {
    /// An empty accumulator.
    pub fn new() -> Residency {
        Residency::default()
    }

    pub(crate) fn add_serving(&mut self, dt: f64) {
        self.serving += dt;
    }

    pub(crate) fn add_waking(&mut self, dt: f64) {
        self.waking += dt;
    }

    pub(crate) fn add_active_idle(&mut self, dt: f64) {
        self.active_idle += dt;
    }

    pub(crate) fn add_state(&mut self, state: SystemState, dt: f64) {
        if let Some(entry) = self.states.iter_mut().find(|(s, _)| *s == state) {
            entry.1 += dt;
        } else {
            self.states.push((state, dt));
        }
    }

    /// Seconds spent serving jobs.
    pub fn serving(&self) -> f64 {
        self.serving
    }

    /// Seconds spent in wake-up transitions.
    pub fn waking(&self) -> f64 {
        self.waking
    }

    /// Seconds idle at active power before the first sleep stage.
    pub fn active_idle(&self) -> f64 {
        self.active_idle
    }

    /// Seconds spent in `state` (0 if never entered).
    pub fn state_time(&self, state: SystemState) -> f64 {
        self.states.iter().find(|(s, _)| *s == state).map_or(0.0, |(_, t)| *t)
    }

    /// All (state, seconds) pairs in first-entered order.
    pub fn states(&self) -> &[(SystemState, f64)] {
        &self.states
    }

    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.serving
            + self.waking
            + self.active_idle
            + self.states.iter().map(|(_, t)| t).sum::<f64>()
    }
}

impl sleepscale_journal::Snapshot for Residency {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_f64(self.serving);
        w.put_f64(self.waking);
        w.put_f64(self.active_idle);
        self.states.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Residency, sleepscale_journal::CodecError> {
        Ok(Residency {
            serving: r.get_f64()?,
            waking: r.get_f64()?,
            active_idle: r.get_f64()?,
            states: Vec::restore(r)?,
        })
    }
}

/// The result of a batch policy evaluation ([`crate::simulate`]):
/// the joint power/QoS characterization the policy manager ranks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimOutcome {
    n_jobs: usize,
    horizon: f64,
    responses: Option<SummaryStats>,
    energy: Joules,
    residency: Residency,
    wakes_from: Vec<(SystemState, u64)>,
    wakes_without_sleep: u64,
}

impl SimOutcome {
    pub(crate) fn new(
        n_jobs: usize,
        horizon: f64,
        responses: Option<SummaryStats>,
        energy: Joules,
        residency: Residency,
        wakes_from: Vec<(SystemState, u64)>,
        wakes_without_sleep: u64,
    ) -> SimOutcome {
        SimOutcome {
            n_jobs,
            horizon,
            responses,
            energy,
            residency,
            wakes_from,
            wakes_without_sleep,
        }
    }

    /// Number of jobs completed.
    pub fn n_jobs(&self) -> usize {
        self.n_jobs
    }

    /// Simulated horizon in seconds (first arrival is at stream time 0's
    /// origin; the horizon ends at the last departure).
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// Mean response time `E[R]` in seconds (0 when no jobs ran).
    pub fn mean_response(&self) -> f64 {
        self.responses.as_ref().map_or(0.0, |r| r.mean())
    }

    /// The paper's normalized mean response time `µ·E[R]`, given the
    /// full-speed mean service time `1/µ`.
    pub fn normalized_mean_response(&self, mean_service: f64) -> f64 {
        self.mean_response() / mean_service
    }

    /// 95th-percentile response time (0 when no jobs ran).
    pub fn p95_response(&self) -> f64 {
        self.responses.as_ref().map_or(0.0, |r| r.p95())
    }

    /// Empirical `Pr(R ≥ d)`.
    pub fn fraction_exceeding(&self, deadline: f64) -> f64 {
        self.responses.as_ref().map_or(0.0, |r| r.fraction_at_least(deadline))
    }

    /// Full response-time order statistics, when any job ran.
    pub fn responses(&self) -> Option<&SummaryStats> {
        self.responses.as_ref()
    }

    /// Total energy drawn.
    pub fn energy(&self) -> Joules {
        self.energy
    }

    /// Average power `E[P]` over the horizon.
    pub fn avg_power(&self) -> Watts {
        self.energy.average_over(self.horizon)
    }

    /// Time-in-state breakdown.
    pub fn residency(&self) -> &Residency {
        &self.residency
    }

    /// Fraction of the horizon spent serving (the measured utilization at
    /// the operating frequency, `≈ ρ/f^β`).
    pub fn busy_fraction(&self) -> f64 {
        if self.horizon == 0.0 {
            0.0
        } else {
            self.residency.serving() / self.horizon
        }
    }

    /// Wake-up events per sleep state.
    pub fn wakes_from(&self) -> &[(SystemState, u64)] {
        &self.wakes_from
    }

    /// Busy cycles that began before any sleep stage was entered
    /// (zero-latency wake from active idle).
    pub fn wakes_without_sleep(&self) -> u64 {
        self.wakes_without_sleep
    }
}

/// Per-epoch result emitted by [`crate::OnlineSim::run_epoch`].
///
/// Response statistics cover the jobs that *arrived* in the epoch
/// (matching how the runtime attributes delay to planning periods);
/// energy per epoch lives in the simulator's [`crate::EnergyLedger`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochOutcome {
    records: Vec<JobRecord>,
    backlog_seconds: f64,
}

impl EpochOutcome {
    pub(crate) fn new(records: Vec<JobRecord>, backlog_seconds: f64) -> EpochOutcome {
        EpochOutcome { records, backlog_seconds }
    }

    /// Completed-job records for arrivals in this epoch.
    pub fn records(&self) -> &[JobRecord] {
        &self.records
    }

    /// Number of arrivals in the epoch.
    pub fn arrivals(&self) -> usize {
        self.records.len()
    }

    /// Mean response time of this epoch's arrivals (0 when none).
    pub fn mean_response(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.records.iter().map(JobRecord::response).sum::<f64>() / self.records.len() as f64
        }
    }

    /// Response-time order statistics for this epoch's arrivals.
    pub fn response_stats(&self) -> Option<SummaryStats> {
        SummaryStats::from_samples(self.records.iter().map(JobRecord::response))
    }

    /// Committed work extending past the epoch boundary, in seconds
    /// (how far the server's busy horizon overhangs the epoch end).
    pub fn backlog_seconds(&self) -> f64 {
        self.backlog_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residency_accumulates_and_totals() {
        let mut r = Residency::new();
        r.add_serving(2.0);
        r.add_waking(0.5);
        r.add_active_idle(1.0);
        r.add_state(SystemState::C6_S3, 3.0);
        r.add_state(SystemState::C6_S3, 1.0);
        r.add_state(SystemState::C0I_S0I, 0.25);
        assert_eq!(r.state_time(SystemState::C6_S3), 4.0);
        assert_eq!(r.state_time(SystemState::C1_S0I), 0.0);
        assert!((r.total() - 7.75).abs() < 1e-12);
        assert_eq!(r.states().len(), 2);
    }

    #[test]
    fn empty_outcome_degrades_gracefully() {
        let o = SimOutcome::new(0, 0.0, None, Joules::ZERO, Residency::new(), vec![], 0);
        assert_eq!(o.mean_response(), 0.0);
        assert_eq!(o.avg_power(), Watts::ZERO);
        assert_eq!(o.busy_fraction(), 0.0);
        assert_eq!(o.p95_response(), 0.0);
        assert_eq!(o.fraction_exceeding(1.0), 0.0);
    }

    #[test]
    fn epoch_outcome_statistics() {
        let rec = |arrival: f64, departure: f64| JobRecord {
            id: 0,
            arrival,
            start: arrival,
            departure,
            size: 0.1,
            service: 0.1,
            wake: 0.0,
        };
        let e = EpochOutcome::new(vec![rec(0.0, 1.0), rec(1.0, 4.0)], 2.5);
        assert_eq!(e.arrivals(), 2);
        assert!((e.mean_response() - 2.0).abs() < 1e-12);
        assert_eq!(e.backlog_seconds(), 2.5);
        assert!(e.response_stats().is_some());
        let empty = EpochOutcome::new(vec![], 0.0);
        assert_eq!(empty.mean_response(), 0.0);
        assert!(empty.response_stats().is_none());
    }
}
