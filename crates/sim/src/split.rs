//! Deterministic arrival-stream splitting for sharded fleet engines.
//!
//! A sharded cluster simulates disjoint server partitions concurrently,
//! so the cluster-wide arrival stream must be divided *before* any
//! simulation runs — and the division must be a pure function of the
//! scenario seed and each job's identity, never of timing, thread
//! scheduling, or shard count bookkeeping. [`StreamSplit`] is that
//! function: a seeded [SplitMix64] hash of the job's *sequence number*
//! (not the full id, so re-tagging a stream with traffic classes cannot
//! move any job between shards) mapped onto `lanes` shards by a
//! multiply-shift. The induced split is a partition — every job lands
//! in exactly one lane, and walking the stream forward preserves
//! arrival order within each lane — which is what makes per-shard
//! simulation equivalent to one shard-local arrival process.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use crate::job::Job;

/// A seeded, pure-function router from jobs to shard lanes.
///
/// ```
/// use sleepscale_sim::{Job, StreamSplit};
/// let split = StreamSplit::new(42);
/// let job = Job { id: 7, arrival: 1.0, size: 0.1 };
/// let lane = split.lane_of(&job, 4);
/// assert!(lane < 4);
/// // The lane is a function of (seed, sequence) only.
/// assert_eq!(lane, split.lane(7, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamSplit {
    seed: u64,
}

/// The SplitMix64 output function over `seed ⊕ (sequence · φ)`: a full
/// 64-bit avalanche, so consecutive sequence numbers land on
/// uncorrelated lanes and distinct seeds induce independent splits.
fn mix(seed: u64, sequence: u64) -> u64 {
    let mut z = seed ^ sequence.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StreamSplit {
    /// A splitter for the given scenario seed.
    pub fn new(seed: u64) -> StreamSplit {
        StreamSplit { seed }
    }

    /// The seed this splitter routes with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The lane (`< lanes`) for a job sequence number. `lanes` is
    /// clamped to at least 1; with one lane every job routes to lane 0.
    pub fn lane(&self, sequence: u64, lanes: usize) -> usize {
        let lanes = lanes.max(1);
        // Multiply-shift range reduction: uniform over [0, lanes) and
        // strictly less than `lanes` by construction (no modulo bias
        // worth caring about at fleet-sized lane counts).
        ((mix(self.seed, sequence) as u128 * lanes as u128) >> 64) as usize
    }

    /// The lane for a job — routes on [`Job::sequence`], so the class
    /// tag in the id's high bits never influences placement.
    pub fn lane_of(&self, job: &Job, lanes: usize) -> usize {
        self.lane(job.sequence(), lanes)
    }

    /// Partitions `jobs` into `lanes` index lists: `result[l]` holds the
    /// positions (into `jobs`) of every job routed to lane `l`, in
    /// arrival order. One forward pass, so each index appears in exactly
    /// one list and within-lane order is the stream order.
    ///
    /// Indices are `u32` to halve the footprint of fleet-day splits
    /// (a 100k-server day is tens of millions of jobs).
    ///
    /// # Panics
    ///
    /// Panics if `jobs` has more than `u32::MAX` entries.
    pub fn partition(&self, jobs: &[Job], lanes: usize) -> Vec<Vec<u32>> {
        assert!(
            jobs.len() <= u32::MAX as usize,
            "stream of {} jobs overflows u32 shard indices",
            jobs.len()
        );
        let lanes = lanes.max(1);
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); lanes];
        if lanes == 1 {
            out[0] = (0..jobs.len() as u32).collect();
            return out;
        }
        // Pre-size each lane near its expected share to avoid the
        // doubling churn of tens of millions of pushes.
        let hint = jobs.len() / lanes + jobs.len() / (lanes * 8) + 16;
        for lane in &mut out {
            lane.reserve(hint);
        }
        for (i, job) in jobs.iter().enumerate() {
            out[self.lane_of(job, lanes)].push(i as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::ClassId;

    fn jobs(n: usize) -> Vec<Job> {
        (0..n).map(|i| Job { id: i as u64, arrival: i as f64 * 0.01, size: 0.1 }).collect()
    }

    #[test]
    fn partition_covers_every_job_exactly_once_in_order() {
        let stream = jobs(10_000);
        for lanes in [1, 2, 4, 7, 64] {
            let split = StreamSplit::new(2203);
            let parts = split.partition(&stream, lanes);
            assert_eq!(parts.len(), lanes);
            let mut seen = vec![false; stream.len()];
            for part in &parts {
                let mut prev = None;
                for &i in part {
                    assert!(!seen[i as usize], "job {i} in two lanes");
                    seen[i as usize] = true;
                    assert!(prev.is_none_or(|p| p < i), "lane order broken at {i}");
                    prev = Some(i);
                }
            }
            assert!(seen.iter().all(|&s| s), "a job fell through the split");
        }
    }

    #[test]
    fn one_lane_is_the_identity_stream() {
        let stream = jobs(100);
        let parts = StreamSplit::new(7).partition(&stream, 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], (0..100).collect::<Vec<u32>>());
        // lanes = 0 clamps to 1.
        assert_eq!(StreamSplit::new(7).partition(&stream, 0).len(), 1);
        assert_eq!(StreamSplit::new(7).lane(99, 0), 0);
    }

    #[test]
    fn class_tags_never_move_a_job() {
        let split = StreamSplit::new(99);
        for seq in 0..5_000u64 {
            let plain = Job { id: seq, arrival: 0.0, size: 0.1 };
            let tagged = plain.with_class(ClassId(7));
            assert_eq!(split.lane_of(&plain, 13), split.lane_of(&tagged, 13));
        }
    }

    #[test]
    fn lanes_are_reasonably_balanced() {
        let stream = jobs(100_000);
        let parts = StreamSplit::new(1).partition(&stream, 8);
        let expected = stream.len() / 8;
        for part in &parts {
            let dev = (part.len() as f64 - expected as f64).abs() / expected as f64;
            assert!(dev < 0.05, "lane holds {} jobs, expected ~{expected}", part.len());
        }
    }

    #[test]
    fn split_is_a_pure_function_of_the_seed() {
        let stream = jobs(1_000);
        let a = StreamSplit::new(5).partition(&stream, 4);
        let b = StreamSplit::new(5).partition(&stream, 4);
        assert_eq!(a, b);
        let c = StreamSplit::new(6).partition(&stream, 4);
        assert_ne!(a, c, "distinct seeds should induce distinct splits");
    }
}
