use serde::{Deserialize, Serialize};
use sleepscale_power::{Joules, Watts};

/// Integrates piecewise-constant power segments into fixed-width time
/// buckets.
///
/// The SleepScale runtime changes policy every epoch, and service or idle
/// intervals routinely straddle epoch boundaries. The engine emits
/// `(start, end, watts)` segments as it discovers them (idle gaps are only
/// known once the *next* arrival appears, possibly epochs later); the
/// ledger splits each segment exactly across the buckets it covers, so
/// per-epoch average power is exact regardless of emission order.
///
/// ```
/// use sleepscale_sim::EnergyLedger;
/// use sleepscale_power::Watts;
/// let mut ledger = EnergyLedger::new(60.0);
/// ledger.add_segment(30.0, 90.0, Watts::new(100.0)); // straddles the boundary
/// assert!((ledger.bucket_energy(0).as_joules() - 3000.0).abs() < 1e-9);
/// assert!((ledger.bucket_energy(1).as_joules() - 3000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    bucket_width: f64,
    buckets: Vec<f64>,
    total: f64,
    end_of_time: f64,
}

impl EnergyLedger {
    /// A ledger with buckets of `bucket_width` seconds starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive and finite.
    pub fn new(bucket_width: f64) -> EnergyLedger {
        assert!(
            bucket_width.is_finite() && bucket_width > 0.0,
            "bucket width must be finite and > 0"
        );
        EnergyLedger { bucket_width, buckets: Vec::new(), total: 0.0, end_of_time: 0.0 }
    }

    /// Adds a constant-power segment `[start, end)`.
    ///
    /// Zero- or negative-length segments are ignored.
    pub fn add_segment(&mut self, start: f64, end: f64, watts: Watts) {
        let duration = end - start;
        if duration.is_nan() || duration <= 0.0 {
            return;
        }
        let p = watts.as_watts();
        self.total += p * (end - start);
        self.end_of_time = self.end_of_time.max(end);
        let first = (start / self.bucket_width).floor() as usize;
        let last = (end / self.bucket_width).ceil() as usize;
        if self.buckets.len() < last {
            self.buckets.resize(last, 0.0);
        }
        for b in first..last {
            let b_start = b as f64 * self.bucket_width;
            let b_end = b_start + self.bucket_width;
            let overlap = end.min(b_end) - start.max(b_start);
            if overlap > 0.0 {
                self.buckets[b] += p * overlap;
            }
        }
    }

    /// Energy accumulated in bucket `i` (zero for untouched buckets).
    pub fn bucket_energy(&self, i: usize) -> Joules {
        Joules::new(self.buckets.get(i).copied().unwrap_or(0.0))
    }

    /// Average power over bucket `i`.
    pub fn bucket_power(&self, i: usize) -> Watts {
        self.bucket_energy(i).average_over(self.bucket_width)
    }

    /// Total energy across all segments.
    pub fn total_energy(&self) -> Joules {
        Joules::new(self.total)
    }

    /// Latest segment end seen.
    pub fn end_of_time(&self) -> f64 {
        self.end_of_time
    }

    /// Number of buckets touched so far.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket width in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exact() {
        let mut l = EnergyLedger::new(10.0);
        l.add_segment(5.0, 25.0, Watts::new(10.0));
        assert!((l.bucket_energy(0).as_joules() - 50.0).abs() < 1e-9);
        assert!((l.bucket_energy(1).as_joules() - 100.0).abs() < 1e-9);
        assert!((l.bucket_energy(2).as_joules() - 50.0).abs() < 1e-9);
        assert!((l.total_energy().as_joules() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_sum_to_total() {
        let mut l = EnergyLedger::new(7.0);
        l.add_segment(0.0, 3.0, Watts::new(5.0));
        l.add_segment(3.0, 50.0, Watts::new(2.0));
        l.add_segment(10.0, 20.0, Watts::new(1.0)); // overlapping in time is fine
        let sum: f64 = (0..l.bucket_count()).map(|i| l.bucket_energy(i).as_joules()).sum();
        assert!((sum - l.total_energy().as_joules()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_segments_ignored() {
        let mut l = EnergyLedger::new(1.0);
        l.add_segment(5.0, 5.0, Watts::new(100.0));
        l.add_segment(5.0, 4.0, Watts::new(100.0));
        assert_eq!(l.total_energy(), Joules::ZERO);
        assert_eq!(l.bucket_count(), 0);
    }

    #[test]
    fn bucket_power_averages() {
        let mut l = EnergyLedger::new(2.0);
        l.add_segment(0.0, 1.0, Watts::new(10.0));
        assert!((l.bucket_power(0).as_watts() - 5.0).abs() < 1e-12);
        assert_eq!(l.bucket_power(5).as_watts(), 0.0);
    }

    #[test]
    fn end_of_time_tracks_latest() {
        let mut l = EnergyLedger::new(1.0);
        l.add_segment(0.0, 4.0, Watts::new(1.0));
        l.add_segment(1.0, 2.0, Watts::new(1.0));
        assert_eq!(l.end_of_time(), 4.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        EnergyLedger::new(0.0);
    }
}
