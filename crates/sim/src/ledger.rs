use crate::job::ClassId;
use serde::{Deserialize, Serialize};
use sleepscale_power::{ep::PowerSample, Joules, Watts};

/// Integrates piecewise-constant power segments into fixed-width time
/// buckets.
///
/// The SleepScale runtime changes policy every epoch, and service or idle
/// intervals routinely straddle epoch boundaries. The engine emits
/// `(start, end, watts)` segments as it discovers them (idle gaps are only
/// known once the *next* arrival appears, possibly epochs later); the
/// ledger splits each segment exactly across the buckets it covers, so
/// per-epoch average power is exact regardless of emission order.
///
/// Segments come in two flavours. *Active* segments
/// ([`EnergyLedger::add_active_segment`]) are service intervals tagged
/// with the running job's [`ClassId`]; the ledger additionally
/// attributes their energy to a per-class total and their duration to
/// per-bucket busy-seconds (the utilization axis of the
/// energy-proportionality curve). Untagged segments
/// ([`EnergyLedger::add_segment`]) cover idle, sleep, and wake-up
/// intervals that belong to no class; their energy lands only in the
/// shared total and buckets, and is reported as the idle line item
/// ([`EnergyLedger::idle_energy`]). Both flavours feed `total` and the
/// buckets through the identical arithmetic, so tagging never changes
/// the total-energy bytes.
///
/// ```
/// use sleepscale_sim::EnergyLedger;
/// use sleepscale_power::Watts;
/// let mut ledger = EnergyLedger::new(60.0);
/// ledger.add_segment(30.0, 90.0, Watts::new(100.0)); // straddles the boundary
/// assert!((ledger.bucket_energy(0).as_joules() - 3000.0).abs() < 1e-9);
/// assert!((ledger.bucket_energy(1).as_joules() - 3000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyLedger {
    bucket_width: f64,
    buckets: Vec<f64>,
    total: f64,
    end_of_time: f64,
    /// Seconds of each bucket spent serving jobs (active segments only).
    busy_buckets: Vec<f64>,
    /// Active (serving) energy per class tag, indexed by `ClassId`.
    active_by_class: Vec<f64>,
    /// Total active (serving) energy across all classes.
    active_total: f64,
}

impl EnergyLedger {
    /// A ledger with buckets of `bucket_width` seconds starting at t = 0.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_width` is not positive and finite.
    pub fn new(bucket_width: f64) -> EnergyLedger {
        assert!(
            bucket_width.is_finite() && bucket_width > 0.0,
            "bucket width must be finite and > 0"
        );
        EnergyLedger {
            bucket_width,
            buckets: Vec::new(),
            total: 0.0,
            end_of_time: 0.0,
            busy_buckets: Vec::new(),
            active_by_class: Vec::new(),
            active_total: 0.0,
        }
    }

    /// Adds an untagged constant-power segment `[start, end)` — idle,
    /// sleep, or wake-up time that belongs to no job class.
    ///
    /// Zero- or negative-length segments are ignored.
    pub fn add_segment(&mut self, start: f64, end: f64, watts: Watts) {
        self.integrate(start, end, watts);
    }

    /// Adds an *active* (serving) segment `[start, end)` attributed to
    /// `class`: besides the shared total/bucket accounting — identical,
    /// operation for operation, to [`EnergyLedger::add_segment`] — the
    /// energy is credited to the class's active total and the duration
    /// to per-bucket busy-seconds.
    ///
    /// Zero- or negative-length segments are ignored.
    pub fn add_active_segment(&mut self, start: f64, end: f64, watts: Watts, class: ClassId) {
        let Some(p) = self.integrate(start, end, watts) else {
            return;
        };
        self.active_total += p * (end - start);
        let index = class.as_index();
        if self.active_by_class.len() <= index {
            self.active_by_class.resize(index + 1, 0.0);
        }
        self.active_by_class[index] += p * (end - start);
        let first = (start / self.bucket_width).floor() as usize;
        let last = (end / self.bucket_width).ceil() as usize;
        if self.busy_buckets.len() < last {
            self.busy_buckets.resize(last, 0.0);
        }
        for b in first..last {
            let b_start = b as f64 * self.bucket_width;
            let b_end = b_start + self.bucket_width;
            let overlap = end.min(b_end) - start.max(b_start);
            if overlap > 0.0 {
                self.busy_buckets[b] += overlap;
            }
        }
    }

    /// The shared total/bucket integration both segment flavours run.
    /// Returns the power in watts when the segment was accepted, `None`
    /// for degenerate segments. The float-operation stream on `total`,
    /// `end_of_time`, and `buckets` is the byte-determinism contract:
    /// tagged and untagged paths must produce identical totals.
    fn integrate(&mut self, start: f64, end: f64, watts: Watts) -> Option<f64> {
        let duration = end - start;
        if duration.is_nan() || duration <= 0.0 {
            return None;
        }
        let p = watts.as_watts();
        self.total += p * (end - start);
        self.end_of_time = self.end_of_time.max(end);
        let first = (start / self.bucket_width).floor() as usize;
        let last = (end / self.bucket_width).ceil() as usize;
        if self.buckets.len() < last {
            self.buckets.resize(last, 0.0);
        }
        for b in first..last {
            let b_start = b as f64 * self.bucket_width;
            let b_end = b_start + self.bucket_width;
            let overlap = end.min(b_end) - start.max(b_start);
            if overlap > 0.0 {
                self.buckets[b] += p * overlap;
            }
        }
        Some(p)
    }

    /// Energy accumulated in bucket `i` (zero for untouched buckets).
    pub fn bucket_energy(&self, i: usize) -> Joules {
        Joules::new(self.buckets.get(i).copied().unwrap_or(0.0))
    }

    /// Average power over bucket `i`.
    pub fn bucket_power(&self, i: usize) -> Watts {
        self.bucket_energy(i).average_over(self.bucket_width)
    }

    /// Total energy across all segments.
    pub fn total_energy(&self) -> Joules {
        Joules::new(self.total)
    }

    /// Latest segment end seen.
    pub fn end_of_time(&self) -> f64 {
        self.end_of_time
    }

    /// Number of buckets touched so far.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The bucket width in seconds.
    pub fn bucket_width(&self) -> f64 {
        self.bucket_width
    }

    /// Total active (serving) energy across all classes.
    pub fn active_energy(&self) -> Joules {
        Joules::new(self.active_total)
    }

    /// Energy not attributable to any job: idle, sleep, and wake-up
    /// segments. Defined as `total − active`, so
    /// `active_energy() + idle_energy()` reproduces
    /// [`EnergyLedger::total_energy`] up to one rounding step.
    pub fn idle_energy(&self) -> Joules {
        Joules::new(self.total - self.active_total)
    }

    /// Active energy credited to class `class` (zero for untouched
    /// tags).
    pub fn class_active_energy(&self, class: ClassId) -> Joules {
        Joules::new(self.active_by_class.get(class.as_index()).copied().unwrap_or(0.0))
    }

    /// Per-class active energy in joules, indexed by class tag. The
    /// length is one past the highest tag that served a job (empty if
    /// none did).
    pub fn active_energy_by_class(&self) -> &[f64] {
        &self.active_by_class
    }

    /// Seconds of bucket `i` spent serving jobs (zero for untouched
    /// buckets). Wake-up and pre-`τ_1` active idle are *not* busy time —
    /// they draw active power without doing work, which is exactly the
    /// non-proportionality the EP analytics measure.
    pub fn bucket_busy_seconds(&self, i: usize) -> f64 {
        self.busy_buckets.get(i).copied().unwrap_or(0.0)
    }

    /// Busy fraction of bucket `i`, in `[0, 1]`.
    pub fn bucket_utilization(&self, i: usize) -> f64 {
        (self.bucket_busy_seconds(i) / self.bucket_width).clamp(0.0, 1.0)
    }

    /// One `(utilization, average power)` sample per bucket — the raw
    /// material for [`sleepscale_power::ep::analyze`] and the
    /// utilization→power curve. The final bucket may extend past the
    /// last segment; its utilization and power are both averaged over
    /// the full width, so the sample stays self-consistent.
    pub fn power_samples(&self) -> Vec<PowerSample> {
        (0..self.buckets.len())
            .map(|i| PowerSample {
                utilization: self.bucket_utilization(i),
                watts: self.bucket_power(i).as_watts(),
            })
            .collect()
    }
}

impl sleepscale_journal::Snapshot for EnergyLedger {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_f64(self.bucket_width);
        self.buckets.snapshot(w);
        w.put_f64(self.total);
        w.put_f64(self.end_of_time);
        self.busy_buckets.snapshot(w);
        self.active_by_class.snapshot(w);
        w.put_f64(self.active_total);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<EnergyLedger, sleepscale_journal::CodecError> {
        let bucket_width = r.get_f64()?;
        if !bucket_width.is_finite() || bucket_width <= 0.0 {
            return Err(sleepscale_journal::CodecError::Invalid(format!(
                "ledger bucket width {bucket_width} must be finite and > 0"
            )));
        }
        Ok(EnergyLedger {
            bucket_width,
            buckets: Vec::restore(r)?,
            total: r.get_f64()?,
            end_of_time: r.get_f64()?,
            busy_buckets: Vec::restore(r)?,
            active_by_class: Vec::restore(r)?,
            active_total: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exact() {
        let mut l = EnergyLedger::new(10.0);
        l.add_segment(5.0, 25.0, Watts::new(10.0));
        assert!((l.bucket_energy(0).as_joules() - 50.0).abs() < 1e-9);
        assert!((l.bucket_energy(1).as_joules() - 100.0).abs() < 1e-9);
        assert!((l.bucket_energy(2).as_joules() - 50.0).abs() < 1e-9);
        assert!((l.total_energy().as_joules() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn buckets_sum_to_total() {
        let mut l = EnergyLedger::new(7.0);
        l.add_segment(0.0, 3.0, Watts::new(5.0));
        l.add_segment(3.0, 50.0, Watts::new(2.0));
        l.add_segment(10.0, 20.0, Watts::new(1.0)); // overlapping in time is fine
        let sum: f64 = (0..l.bucket_count()).map(|i| l.bucket_energy(i).as_joules()).sum();
        assert!((sum - l.total_energy().as_joules()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_segments_ignored() {
        let mut l = EnergyLedger::new(1.0);
        l.add_segment(5.0, 5.0, Watts::new(100.0));
        l.add_segment(5.0, 4.0, Watts::new(100.0));
        assert_eq!(l.total_energy(), Joules::ZERO);
        assert_eq!(l.bucket_count(), 0);
    }

    #[test]
    fn bucket_power_averages() {
        let mut l = EnergyLedger::new(2.0);
        l.add_segment(0.0, 1.0, Watts::new(10.0));
        assert!((l.bucket_power(0).as_watts() - 5.0).abs() < 1e-12);
        assert_eq!(l.bucket_power(5).as_watts(), 0.0);
    }

    #[test]
    fn end_of_time_tracks_latest() {
        let mut l = EnergyLedger::new(1.0);
        l.add_segment(0.0, 4.0, Watts::new(1.0));
        l.add_segment(1.0, 2.0, Watts::new(1.0));
        assert_eq!(l.end_of_time(), 4.0);
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_panics() {
        EnergyLedger::new(0.0);
    }

    /// Tagged and untagged segments feed `total`/buckets through the
    /// identical arithmetic: interleaving them in either flavour gives
    /// byte-identical totals.
    #[test]
    fn active_segments_do_not_change_total_bytes() {
        let segments = [(0.0, 3.3, 250.0), (3.3, 9.1, 28.1), (9.1, 14.0, 213.5)];
        let mut untagged = EnergyLedger::new(5.0);
        let mut tagged = EnergyLedger::new(5.0);
        for &(s, e, w) in &segments {
            untagged.add_segment(s, e, Watts::new(w));
            tagged.add_active_segment(s, e, Watts::new(w), ClassId(3));
        }
        assert_eq!(untagged.total_energy(), tagged.total_energy());
        assert_eq!(untagged.end_of_time(), tagged.end_of_time());
        for i in 0..untagged.bucket_count() {
            assert_eq!(untagged.bucket_energy(i), tagged.bucket_energy(i));
        }
    }

    #[test]
    fn active_energy_splits_by_class() {
        let mut l = EnergyLedger::new(10.0);
        l.add_active_segment(0.0, 2.0, Watts::new(100.0), ClassId(0));
        l.add_active_segment(2.0, 3.0, Watts::new(100.0), ClassId(2));
        l.add_segment(3.0, 10.0, Watts::new(10.0)); // idle: no class
        assert!((l.active_energy().as_joules() - 300.0).abs() < 1e-9);
        assert!((l.idle_energy().as_joules() - 70.0).abs() < 1e-9);
        assert!((l.class_active_energy(ClassId(0)).as_joules() - 200.0).abs() < 1e-9);
        assert_eq!(l.class_active_energy(ClassId(1)), Joules::ZERO);
        assert!((l.class_active_energy(ClassId(2)).as_joules() - 100.0).abs() < 1e-9);
        assert_eq!(l.class_active_energy(ClassId(7)), Joules::ZERO);
        assert_eq!(l.active_energy_by_class().len(), 3);
        let by_class: f64 = l.active_energy_by_class().iter().sum();
        assert!((by_class - l.active_energy().as_joules()).abs() < 1e-9);
    }

    #[test]
    fn busy_seconds_track_serving_only() {
        let mut l = EnergyLedger::new(10.0);
        l.add_active_segment(5.0, 15.0, Watts::new(250.0), ClassId(0));
        l.add_segment(15.0, 30.0, Watts::new(28.1)); // idle: not busy
        assert!((l.bucket_busy_seconds(0) - 5.0).abs() < 1e-12);
        assert!((l.bucket_busy_seconds(1) - 5.0).abs() < 1e-12);
        assert_eq!(l.bucket_busy_seconds(2), 0.0);
        assert!((l.bucket_utilization(0) - 0.5).abs() < 1e-12);
        let samples = l.power_samples();
        assert_eq!(samples.len(), l.bucket_count());
        assert!((samples[0].utilization - 0.5).abs() < 1e-12);
        assert!((samples[0].watts - l.bucket_power(0).as_watts()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_active_segments_ignored() {
        let mut l = EnergyLedger::new(1.0);
        l.add_active_segment(5.0, 5.0, Watts::new(100.0), ClassId(1));
        l.add_active_segment(5.0, 4.0, Watts::new(100.0), ClassId(1));
        assert_eq!(l.total_energy(), Joules::ZERO);
        assert_eq!(l.active_energy(), Joules::ZERO);
        assert!(l.active_energy_by_class().is_empty());
    }
}
