use crate::error::SimError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A traffic-class tag: which request population a job belongs to
/// (interactive vs batch, DNS vs Mail, …).
///
/// Class 0 is the *default* class — the untagged world every
/// single-population stream lives in. Tags ride in the high 16 bits of
/// [`Job::id`] ([`Job::with_class`]), so tagging costs the simulator
/// nothing: the engine never looks at the tag, records inherit it
/// through the id, and an untagged stream (all ids below 2⁴⁸) is
/// bit-for-bit the same data it always was.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClassId(pub u16);

impl ClassId {
    /// The default (untagged) class.
    pub const DEFAULT: ClassId = ClassId(0);

    /// The class as a slice index.
    pub fn as_index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class{}", self.0)
    }
}

/// Bits of [`Job::id`] reserved for the sequence number; the class tag
/// occupies the 16 bits above them.
pub const SEQUENCE_BITS: u32 = 48;
const SEQUENCE_MASK: u64 = (1 << SEQUENCE_BITS) - 1;

/// One job: its arrival instant and its *size* — the service time it
/// would need at full speed (`f = 1`).
///
/// Sizes are stored at the `f = 1` scale; the engine stretches them by the
/// policy's frequency through the configured
/// [`sleepscale_power::FrequencyScaling`] law, which keeps a single job
/// stream reusable across the whole frequency sweep (common random
/// numbers, as the paper's smooth bowls require).
///
/// `id` packs a stream sequence number (low 48 bits) with an optional
/// traffic-class tag (high 16 bits, see [`ClassId`]); untagged streams
/// simply use sequence numbers as ids, exactly as before tags existed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Sequence number within the stream (low 48 bits), plus the
    /// traffic-class tag (high 16 bits).
    pub id: u64,
    /// Arrival time in seconds from the stream origin.
    pub arrival: f64,
    /// Full-speed service requirement in seconds.
    pub size: f64,
}

impl Job {
    /// The job's traffic class (0 for untagged jobs).
    pub fn class(&self) -> ClassId {
        ClassId((self.id >> SEQUENCE_BITS) as u16)
    }

    /// The job's sequence number within its stream.
    pub fn sequence(&self) -> u64 {
        self.id & SEQUENCE_MASK
    }

    /// The same job re-tagged with `class` (the sequence number is
    /// preserved).
    pub fn with_class(self, class: ClassId) -> Job {
        Job { id: (self.id & SEQUENCE_MASK) | ((class.0 as u64) << SEQUENCE_BITS), ..self }
    }
}

/// Packs a sequence number and class tag into a [`Job::id`].
///
/// # Panics
///
/// Panics if `sequence` does not fit in the 48-bit sequence space — a
/// release-mode silent wrap would bleed sequence bits into the class
/// tag and misattribute every per-class statistic downstream. Streams
/// that might exceed 2^48 jobs must use [`try_pack_id`].
pub fn pack_id(sequence: u64, class: ClassId) -> u64 {
    assert!(sequence <= SEQUENCE_MASK, "sequence {sequence} overflows 48 bits");
    (sequence & SEQUENCE_MASK) | ((class.0 as u64) << SEQUENCE_BITS)
}

/// Checked [`pack_id`]: `None` when `sequence` overflows the 48-bit
/// sequence space instead of panicking.
pub fn try_pack_id(sequence: u64, class: ClassId) -> Option<u64> {
    (sequence <= SEQUENCE_MASK).then_some(sequence | ((class.0 as u64) << SEQUENCE_BITS))
}

/// The completed-job record the engine emits: everything needed for
/// response-time statistics and for the runtime's job logs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// The originating job id.
    pub id: u64,
    /// Arrival time.
    pub arrival: f64,
    /// Instant service began (after any queueing and wake-up).
    pub start: f64,
    /// Departure (completion) time.
    pub departure: f64,
    /// Full-speed size (frequency-independent).
    pub size: f64,
    /// Actual stretched service duration.
    pub service: f64,
    /// Wake-up latency this job triggered (zero unless it opened a busy
    /// cycle from a sleep stage).
    pub wake: f64,
}

impl JobRecord {
    /// Response (sojourn) time: departure − arrival.
    pub fn response(&self) -> f64 {
        self.departure - self.arrival
    }

    /// Time spent waiting before service began.
    pub fn waiting(&self) -> f64 {
        self.start - self.arrival
    }

    /// The originating job's traffic class (0 for untagged jobs) — the
    /// tag rides through the engine inside the id, so per-class
    /// response accounting costs the simulation itself nothing.
    pub fn class(&self) -> ClassId {
        ClassId((self.id >> SEQUENCE_BITS) as u16)
    }
}

/// A validated, arrival-ordered sequence of jobs.
///
/// ```
/// use sleepscale_sim::{Job, JobStream};
/// let s = JobStream::new(vec![
///     Job { id: 0, arrival: 0.0, size: 0.1 },
///     Job { id: 1, arrival: 0.5, size: 0.2 },
/// ])?;
/// assert_eq!(s.len(), 2);
/// assert!((s.mean_size() - 0.15).abs() < 1e-12);
/// # Ok::<(), sleepscale_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct JobStream {
    jobs: Vec<Job>,
}

impl JobStream {
    /// Validates ordering and field sanity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidJobStream`] if arrivals are unsorted or
    /// any field is negative/non-finite.
    pub fn new(jobs: Vec<Job>) -> Result<JobStream, SimError> {
        validate(&jobs)?;
        Ok(JobStream { jobs })
    }

    /// Builds from `(arrival, size)` pairs — the runtime's job-log replay
    /// path (Section 5.2.1 re-simulates logged jobs instead of sampling).
    ///
    /// # Errors
    ///
    /// Same as [`JobStream::new`].
    pub fn from_log(pairs: impl IntoIterator<Item = (f64, f64)>) -> Result<JobStream, SimError> {
        // `pack_id(i, ClassId::DEFAULT) == i`, so delegating to the
        // tagged form keeps untagged ids plain sequence numbers —
        // one stream-assembly implementation, not two.
        JobStream::from_tagged_log(pairs.into_iter().map(|(a, s)| (a, s, ClassId::DEFAULT)))
    }

    /// Builds from `(arrival, size, class)` triples — the class-tagged
    /// form of [`JobStream::from_log`]: sequence numbers are assigned in
    /// order and the tag is packed into the id's high bits. A stream
    /// whose triples all carry [`ClassId::DEFAULT`] is byte-identical to
    /// the untagged `from_log` stream of the same pairs.
    ///
    /// # Errors
    ///
    /// Same as [`JobStream::new`].
    pub fn from_tagged_log(
        triples: impl IntoIterator<Item = (f64, f64, ClassId)>,
    ) -> Result<JobStream, SimError> {
        let jobs = triples
            .into_iter()
            .enumerate()
            .map(|(i, (arrival, size, class))| Job { id: pack_id(i as u64, class), arrival, size })
            .collect();
        JobStream::new(jobs)
    }

    /// The jobs in arrival order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Mean full-speed size (0 when empty).
    pub fn mean_size(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.jobs.iter().map(|j| j.size).sum::<f64>() / self.jobs.len() as f64
        }
    }

    /// Mean inter-arrival time over the stream (0 with fewer than 2 jobs).
    pub fn mean_interarrival(&self) -> f64 {
        if self.jobs.len() < 2 {
            0.0
        } else {
            let span = self.jobs.last().unwrap().arrival - self.jobs[0].arrival;
            span / (self.jobs.len() - 1) as f64
        }
    }

    /// Offered utilization `ρ = mean_size / mean_interarrival`
    /// (0 with fewer than 2 jobs).
    pub fn offered_utilization(&self) -> f64 {
        let ia = self.mean_interarrival();
        if ia == 0.0 {
            0.0
        } else {
            self.mean_size() / ia
        }
    }

    /// Last arrival instant (0 when empty).
    pub fn last_arrival(&self) -> f64 {
        self.jobs.last().map_or(0.0, |j| j.arrival)
    }

    /// The highest traffic-class tag in the stream
    /// ([`ClassId::DEFAULT`] when empty or untagged). One scan; run
    /// loops call this once up front and skip per-class accounting
    /// entirely when it returns the default class, which is what keeps
    /// the untagged hot path untouched.
    pub fn max_class(&self) -> ClassId {
        self.jobs.iter().map(Job::class).max().unwrap_or(ClassId::DEFAULT)
    }

    /// True when any job carries a non-default class tag
    /// (short-circuits on the first tagged job, so checking a tagged
    /// stream is O(1)).
    pub fn is_tagged(&self) -> bool {
        self.jobs.iter().any(|j| j.class() != ClassId::DEFAULT)
    }

    /// Returns a copy with every inter-arrival gap multiplied by `factor`
    /// (arrival times rescale around the first arrival). This is the
    /// paper's log-rescaling step: stretching or compressing arrivals to
    /// match a predicted utilization.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidJobStream`] if `factor` is not positive
    /// and finite.
    pub fn with_interarrivals_scaled(&self, factor: f64) -> Result<JobStream, SimError> {
        if !factor.is_finite() || factor <= 0.0 {
            return Err(SimError::InvalidJobStream {
                reason: format!("scale factor {factor} must be finite and > 0"),
            });
        }
        if self.jobs.is_empty() {
            return Ok(self.clone());
        }
        let origin = self.jobs[0].arrival;
        let jobs = self
            .jobs
            .iter()
            .map(|j| Job { arrival: origin + (j.arrival - origin) * factor, ..*j })
            .collect();
        JobStream::new(jobs)
    }

    /// Splits the stream at `t`: jobs arriving strictly before `t` and the
    /// rest. Allocates both halves; epoch loops that only need to *walk*
    /// the stream should use [`JobStream::cursor`] instead, which borrows.
    pub fn split_at_time(&self, t: f64) -> (JobStream, JobStream) {
        let idx = self.jobs.partition_point(|j| j.arrival < t);
        let (a, b) = self.jobs.split_at(idx);
        (JobStream { jobs: a.to_vec() }, JobStream { jobs: b.to_vec() })
    }

    /// A borrowed cursor over the stream, for epoch loops that consume
    /// arrivals in time order without cloning the remainder each epoch.
    pub fn cursor(&self) -> JobCursor<'_> {
        JobCursor { jobs: &self.jobs, pos: 0 }
    }

    /// Clears this stream and refills it from `(arrival, size)` pairs,
    /// reusing the existing allocation — the policy manager's per-epoch
    /// log replay calls this with one long-lived buffer instead of
    /// building a fresh stream every selection.
    ///
    /// # Errors
    ///
    /// Same as [`JobStream::new`]; on error the stream is left empty.
    pub fn refill_from_log(
        &mut self,
        pairs: impl IntoIterator<Item = (f64, f64)>,
    ) -> Result<(), SimError> {
        self.refill_from_tagged_log(pairs.into_iter().map(|(a, s)| (a, s, ClassId::DEFAULT)))
    }

    /// [`JobStream::refill_from_log`] over `(arrival, size, class)`
    /// triples — the tagged replay path. All-default-class input
    /// produces exactly the untagged refill.
    ///
    /// # Errors
    ///
    /// Same as [`JobStream::new`]; on error the stream is left empty.
    pub fn refill_from_tagged_log(
        &mut self,
        triples: impl IntoIterator<Item = (f64, f64, ClassId)>,
    ) -> Result<(), SimError> {
        self.jobs.clear();
        self.jobs.extend(triples.into_iter().enumerate().map(|(i, (arrival, size, class))| Job {
            id: pack_id(i as u64, class),
            arrival,
            size,
        }));
        if let Err(e) = validate(&self.jobs) {
            self.jobs.clear();
            return Err(e);
        }
        Ok(())
    }
}

fn validate(jobs: &[Job]) -> Result<(), SimError> {
    let mut prev = 0.0_f64;
    for (i, j) in jobs.iter().enumerate() {
        if !j.arrival.is_finite() || j.arrival < 0.0 {
            return Err(SimError::InvalidJobStream {
                reason: format!("job {i} arrival {} must be finite and >= 0", j.arrival),
            });
        }
        if !j.size.is_finite() || j.size < 0.0 {
            return Err(SimError::InvalidJobStream {
                reason: format!("job {i} size {} must be finite and >= 0", j.size),
            });
        }
        if j.arrival < prev {
            return Err(SimError::InvalidJobStream {
                reason: format!("arrivals not sorted at index {i}"),
            });
        }
        prev = j.arrival;
    }
    Ok(())
}

/// A borrowed, forward-only view of a [`JobStream`] that hands out epoch
/// batches as slices of the underlying storage.
///
/// This replaces the clone-the-remainder pattern
/// (`remaining.split_at_time(t)` re-allocating the whole tail every
/// epoch) in the runtime and cluster loops: the cursor only advances an
/// index, so walking a day-long trace performs no per-epoch allocation.
///
/// ```
/// use sleepscale_sim::JobStream;
/// let s = JobStream::from_log([(0.5, 0.1), (1.5, 0.1), (2.5, 0.1)])?;
/// let mut cursor = s.cursor();
/// assert_eq!(cursor.take_before(2.0).len(), 2);
/// assert_eq!(cursor.take_before(2.0).len(), 0); // already consumed
/// assert_eq!(cursor.remaining().len(), 1);
/// # Ok::<(), sleepscale_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct JobCursor<'a> {
    jobs: &'a [Job],
    pos: usize,
}

impl<'a> JobCursor<'a> {
    /// Consumes and returns every not-yet-taken job arriving strictly
    /// before `t`, as a borrowed slice in arrival order.
    pub fn take_before(&mut self, t: f64) -> &'a [Job] {
        let end = self.pos + self.jobs[self.pos..].partition_point(|j| j.arrival < t);
        let batch = &self.jobs[self.pos..end];
        self.pos = end;
        batch
    }

    /// Consumes and returns the next job if it arrives strictly before
    /// `t` — the one-at-a-time form dispatch loops use.
    pub fn next_before(&mut self, t: f64) -> Option<Job> {
        let job = *self.jobs.get(self.pos)?;
        if job.arrival < t {
            self.pos += 1;
            Some(job)
        } else {
            None
        }
    }

    /// The jobs not yet consumed.
    pub fn remaining(&self) -> &'a [Job] {
        &self.jobs[self.pos..]
    }

    /// True when every job has been consumed.
    pub fn is_finished(&self) -> bool {
        self.pos == self.jobs.len()
    }

    /// Number of jobs consumed so far — the cursor's resume point for
    /// checkpointing.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Fast-forwards (or rewinds) the cursor to `pos` consumed jobs,
    /// clamped to the stream length.
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.jobs.len());
    }
}

impl IntoIterator for JobStream {
    type Item = Job;
    type IntoIter = std::vec::IntoIter<Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.into_iter()
    }
}

impl<'a> IntoIterator for &'a JobStream {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival: f64, size: f64) -> Job {
        Job { id: 0, arrival, size }
    }

    #[test]
    fn validates_ordering_and_fields() {
        assert!(JobStream::new(vec![job(1.0, 0.1), job(0.5, 0.1)]).is_err());
        assert!(JobStream::new(vec![job(-0.1, 0.1)]).is_err());
        assert!(JobStream::new(vec![job(0.0, -0.1)]).is_err());
        assert!(JobStream::new(vec![job(0.0, f64::NAN)]).is_err());
        assert!(JobStream::new(vec![job(0.0, 0.1), job(0.0, 0.2)]).is_ok());
    }

    #[test]
    fn from_log_assigns_ids() {
        let s = JobStream::from_log([(0.0, 0.1), (1.0, 0.2)]).unwrap();
        assert_eq!(s.jobs()[1].id, 1);
    }

    #[test]
    fn summary_statistics() {
        let s = JobStream::from_log([(0.0, 0.2), (1.0, 0.4), (2.0, 0.6)]).unwrap();
        assert!((s.mean_size() - 0.4).abs() < 1e-12);
        assert!((s.mean_interarrival() - 1.0).abs() < 1e-12);
        assert!((s.offered_utilization() - 0.4).abs() < 1e-12);
        assert_eq!(s.last_arrival(), 2.0);
    }

    #[test]
    fn empty_stream_statistics() {
        let s = JobStream::default();
        assert!(s.is_empty());
        assert_eq!(s.mean_size(), 0.0);
        assert_eq!(s.offered_utilization(), 0.0);
    }

    #[test]
    fn interarrival_scaling_halves_utilization() {
        let s = JobStream::from_log([(10.0, 0.2), (11.0, 0.2), (12.0, 0.2)]).unwrap();
        let stretched = s.with_interarrivals_scaled(2.0).unwrap();
        assert_eq!(stretched.jobs()[0].arrival, 10.0);
        assert_eq!(stretched.jobs()[2].arrival, 14.0);
        assert!((stretched.offered_utilization() - s.offered_utilization() / 2.0).abs() < 1e-12);
        assert!(s.with_interarrivals_scaled(0.0).is_err());
    }

    #[test]
    fn split_at_time() {
        let s = JobStream::from_log([(0.0, 0.1), (1.0, 0.1), (2.0, 0.1)]).unwrap();
        let (a, b) = s.split_at_time(1.0);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.jobs()[0].arrival, 1.0);
    }

    #[test]
    fn cursor_walks_stream_in_epoch_batches() {
        let s = JobStream::from_log([(0.0, 0.1), (1.0, 0.1), (2.0, 0.1), (5.0, 0.1)]).unwrap();
        let mut c = s.cursor();
        assert_eq!(c.take_before(1.0).len(), 1);
        assert_eq!(c.take_before(3.0).len(), 2);
        assert!(!c.is_finished());
        assert_eq!(c.remaining().len(), 1);
        assert_eq!(c.take_before(10.0).len(), 1);
        assert!(c.is_finished());
        assert!(c.take_before(f64::INFINITY).is_empty());
    }

    #[test]
    fn cursor_batches_match_split_at_time() {
        let s = JobStream::from_log((0..50).map(|i| (i as f64 * 0.7, 0.1))).unwrap();
        let (a, b) = s.split_at_time(10.0);
        let mut c = s.cursor();
        assert_eq!(c.take_before(10.0), a.jobs());
        assert_eq!(c.remaining(), b.jobs());
    }

    #[test]
    fn cursor_next_before_respects_boundary() {
        let s = JobStream::from_log([(1.0, 0.1), (2.0, 0.1)]).unwrap();
        let mut c = s.cursor();
        assert!(c.next_before(1.0).is_none()); // strict boundary
        assert_eq!(c.next_before(1.5).unwrap().arrival, 1.0);
        assert_eq!(c.next_before(5.0).unwrap().arrival, 2.0);
        assert!(c.next_before(5.0).is_none());
    }

    #[test]
    fn refill_reuses_buffer_and_validates() {
        let mut s = JobStream::from_log([(0.0, 0.1)]).unwrap();
        s.refill_from_log([(1.0, 0.2), (2.0, 0.3)]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.jobs()[1].id, 1);
        // Invalid input empties the stream rather than leaving stale jobs.
        assert!(s.refill_from_log([(2.0, 0.1), (1.0, 0.1)]).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn class_tags_pack_into_ids() {
        let j = Job { id: 5, arrival: 1.0, size: 0.1 };
        assert_eq!(j.class(), ClassId::DEFAULT);
        assert_eq!(j.sequence(), 5);
        let tagged = j.with_class(ClassId(3));
        assert_eq!(tagged.class(), ClassId(3));
        assert_eq!(tagged.sequence(), 5);
        assert_eq!(tagged.arrival, j.arrival);
        // Re-tagging with the default class restores the original id.
        assert_eq!(tagged.with_class(ClassId::DEFAULT), j);
        assert_eq!(pack_id(7, ClassId(2)), (2 << SEQUENCE_BITS) | 7);
    }

    /// A sequence past 2^48 would bleed into the class bits; packing it
    /// is a hard error in every build profile, and the checked variant
    /// reports it as `None`.
    #[test]
    #[should_panic(expected = "overflows 48 bits")]
    fn pack_id_overflow_is_a_hard_error() {
        pack_id(SEQUENCE_MASK + 1, ClassId(1));
    }

    #[test]
    fn try_pack_id_checks_the_sequence_space() {
        assert_eq!(try_pack_id(7, ClassId(2)), Some(pack_id(7, ClassId(2))));
        assert_eq!(try_pack_id(SEQUENCE_MASK, ClassId(0)), Some(SEQUENCE_MASK));
        assert_eq!(try_pack_id(SEQUENCE_MASK + 1, ClassId(0)), None);
        assert_eq!(try_pack_id(u64::MAX, ClassId(9)), None);
    }

    #[test]
    fn tagged_log_round_trips_and_default_matches_untagged() {
        let untagged = JobStream::from_log([(0.0, 0.1), (1.0, 0.2)]).unwrap();
        let default_tagged = JobStream::from_tagged_log([
            (0.0, 0.1, ClassId::DEFAULT),
            (1.0, 0.2, ClassId::DEFAULT),
        ])
        .unwrap();
        assert_eq!(untagged, default_tagged, "default-class tagging is the identity");
        assert_eq!(untagged.max_class(), ClassId::DEFAULT);
        assert!(!untagged.is_tagged());

        let mixed = JobStream::from_tagged_log([
            (0.0, 0.1, ClassId(1)),
            (1.0, 0.2, ClassId::DEFAULT),
            (2.0, 0.3, ClassId(4)),
        ])
        .unwrap();
        assert!(mixed.is_tagged());
        assert_eq!(mixed.max_class(), ClassId(4));
        assert_eq!(mixed.jobs()[0].class(), ClassId(1));
        assert_eq!(mixed.jobs()[0].sequence(), 0);
        assert_eq!(mixed.jobs()[2].sequence(), 2);

        let mut reused = JobStream::default();
        reused.refill_from_tagged_log([(0.0, 0.1, ClassId(1)), (1.0, 0.2, ClassId(2))]).unwrap();
        assert_eq!(reused.jobs()[1].class(), ClassId(2));
        // Invalid input empties the stream, as with the untagged refill.
        assert!(reused.refill_from_tagged_log([(2.0, 0.1, ClassId(1))]).is_ok());
        assert!(reused
            .refill_from_tagged_log([(2.0, 0.1, ClassId(1)), (1.0, 0.1, ClassId(1))])
            .is_err());
        assert!(reused.is_empty());
    }

    #[test]
    fn record_class_follows_job_id() {
        let r = JobRecord {
            id: pack_id(12, ClassId(9)),
            arrival: 0.0,
            start: 0.0,
            departure: 1.0,
            size: 1.0,
            service: 1.0,
            wake: 0.0,
        };
        assert_eq!(r.class(), ClassId(9));
        assert_eq!(ClassId(9).as_index(), 9);
        assert_eq!(ClassId(9).to_string(), "class9");
    }

    #[test]
    fn record_accessors() {
        let r = JobRecord {
            id: 0,
            arrival: 1.0,
            start: 2.0,
            departure: 3.5,
            size: 1.0,
            service: 1.5,
            wake: 0.5,
        };
        assert!((r.response() - 2.5).abs() < 1e-12);
        assert!((r.waiting() - 1.0).abs() < 1e-12);
    }
}
