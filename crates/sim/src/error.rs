use std::error::Error;
use std::fmt;

/// Errors from building job streams or configuring simulations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A job stream whose arrivals are not sorted, or whose fields are
    /// negative/non-finite.
    InvalidJobStream {
        /// Human-readable reason.
        reason: String,
    },
    /// A non-positive or non-finite epoch length / horizon.
    InvalidHorizon {
        /// The offending value in seconds.
        value: f64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidJobStream { reason } => write!(f, "invalid job stream: {reason}"),
            SimError::InvalidHorizon { value } => {
                write!(f, "horizon {value} must be finite and > 0")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::InvalidJobStream { reason: "unsorted".into() };
        assert!(e.to_string().contains("unsorted"));
        assert!(SimError::InvalidHorizon { value: -1.0 }.to_string().contains("-1"));
    }
}
