//! Serde round-trip properties for the [`EnergyLedger`] snapshot
//! (PR 8): a ledger built from an arbitrary mix of plain and
//! class-tagged segments must re-serialize byte-for-byte after
//! restore, carry its per-class attribution across exactly, and turn
//! truncated snapshot bytes into a typed error rather than a panic.

use proptest::prelude::*;
use sleepscale_journal::{ByteReader, ByteWriter, Snapshot};
use sleepscale_power::Watts;
use sleepscale_sim::{ClassId, EnergyLedger};
use std::ops::Range;

fn snapshot_bytes(ledger: &EnergyLedger) -> Vec<u8> {
    let mut w = ByteWriter::new();
    ledger.snapshot(&mut w);
    w.into_bytes()
}

/// A (start offset, duration, watts, class) segment tuple; class 0
/// means an untagged idle/overhead segment, 1.. are tagged active.
type SegmentStrategy = (Range<f64>, Range<f64>, Range<f64>, Range<u16>);

fn segment_strategy() -> proptest::collection::VecStrategy<SegmentStrategy> {
    proptest::collection::vec((0.0f64..500.0, 0.01f64..30.0, 1.0f64..250.0, 0u16..4), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// snapshot → restore → snapshot is byte-equal, and the restored
    /// ledger's totals and per-class split agree to the bit.
    #[test]
    fn energy_ledger_round_trip_is_byte_equal(
        segments in segment_strategy(),
        bucket_width in 1.0f64..600.0,
    ) {
        let mut ledger = EnergyLedger::new(bucket_width);
        for &(start, duration, watts, class) in &segments {
            let (end, watts) = (start + duration, Watts::new(watts));
            if class == 0 {
                ledger.add_segment(start, end, watts);
            } else {
                ledger.add_active_segment(start, end, watts, ClassId(class - 1));
            }
        }
        let bytes = snapshot_bytes(&ledger);
        let restored = EnergyLedger::restore(&mut ByteReader::new(&bytes))
            .expect("snapshot bytes decode");
        prop_assert_eq!(&bytes, &snapshot_bytes(&restored));
        prop_assert_eq!(
            restored.total_energy().as_joules().to_bits(),
            ledger.total_energy().as_joules().to_bits()
        );
        prop_assert_eq!(
            restored.active_energy().as_joules().to_bits(),
            ledger.active_energy().as_joules().to_bits()
        );
        prop_assert_eq!(restored.bucket_count(), ledger.bucket_count());
        for class in 0..3 {
            prop_assert_eq!(
                restored.class_active_energy(ClassId(class)).as_joules().to_bits(),
                ledger.class_active_energy(ClassId(class)).as_joules().to_bits()
            );
        }
    }

    /// Truncating the snapshot at ANY byte is a typed [`CodecError`] —
    /// a half-written ledger never decodes and never panics.
    #[test]
    fn truncated_ledger_snapshot_is_an_error_not_a_panic(
        segments in segment_strategy(),
        cut in 0usize..100_000,
    ) {
        let mut ledger = EnergyLedger::new(60.0);
        for &(start, duration, watts, class) in &segments {
            ledger.add_active_segment(start, start + duration, Watts::new(watts), ClassId(class));
        }
        let bytes = snapshot_bytes(&ledger);
        let cut = cut % bytes.len();
        prop_assert!(EnergyLedger::restore(&mut ByteReader::new(&bytes[..cut])).is_err());
    }
}
