//! Property tests for the deterministic arrival-stream splitter: the
//! sharded engine's correctness rests on the split being a partition
//! (every job in exactly one lane, arrival order preserved within each
//! lane) for arbitrary streams — tagged or untagged — and lane counts.

use proptest::prelude::*;
use rand::SeedableRng;
use sleepscale_sim::{generator, ClassId, Job, JobStream, StreamSplit};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The split is a partition: indices across lanes are disjoint,
    /// cover the whole stream, and are strictly increasing within each
    /// lane (stream order). Holds for any seed, lane count, and stream.
    #[test]
    fn split_is_a_partition_preserving_order(
        n_jobs in 0usize..2_000,
        lanes in 1usize..16,
        split_seed in 0u64..1_000_000,
        stream_seed in 0u64..100_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(stream_seed);
        let jobs = generator::generate_poisson_exp(n_jobs.max(1), 0.3, 0.194, &mut rng).unwrap();
        let jobs = &jobs.jobs()[..n_jobs.min(jobs.len())];
        let split = StreamSplit::new(split_seed);
        let parts = split.partition(jobs, lanes);
        prop_assert_eq!(parts.len(), lanes);

        let mut seen = vec![0u32; jobs.len()];
        for part in &parts {
            let mut prev: Option<u32> = None;
            for &i in part {
                seen[i as usize] += 1;
                prop_assert!(prev.is_none_or(|p| p < i), "within-lane order broken");
                prev = Some(i);
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "not a partition");

        // And each index's lane agrees with the pure routing function.
        for (lane, part) in parts.iter().enumerate() {
            for &i in part {
                prop_assert_eq!(split.lane_of(&jobs[i as usize], lanes), lane);
            }
        }
    }

    /// Tagging a stream with arbitrary traffic classes changes no job's
    /// lane: the router reads the sequence number, not the id.
    #[test]
    fn class_tags_are_invisible_to_the_split(
        n_jobs in 1usize..500,
        lanes in 1usize..12,
        split_seed in 0u64..1_000_000,
        classes in proptest::collection::vec(0u16..8, 1..500),
    ) {
        let untagged: Vec<Job> =
            (0..n_jobs).map(|i| Job { id: i as u64, arrival: i as f64, size: 0.1 }).collect();
        let tagged: Vec<Job> = untagged
            .iter()
            .enumerate()
            .map(|(i, j)| j.with_class(ClassId(classes[i % classes.len()])))
            .collect();
        let split = StreamSplit::new(split_seed);
        prop_assert_eq!(split.partition(&untagged, lanes), split.partition(&tagged, lanes));
        let s = JobStream::new(tagged).unwrap();
        prop_assert!(s.len() == n_jobs); // keep the stream constructor exercised
    }
}
