//! Property tests for the simulation engine beyond the in-module unit
//! tests: conservation laws and ordering invariants under arbitrary
//! (seeded) workloads and sleep programs.

use proptest::prelude::*;
use rand::SeedableRng;
use sleepscale_power::{presets, Frequency, Policy, SleepProgram, SleepStage, SystemState};
use sleepscale_sim::{
    generator, simulate, simulate_summary, simulate_summary_into, JobStream, OnlineSim, SimEnv,
    SimScratch,
};

fn arbitrary_program(taus: Vec<f64>) -> SleepProgram {
    let mut taus = taus;
    taus.sort_by(|a, b| a.partial_cmp(b).unwrap());
    taus.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
    let states = SystemState::LOW_POWER_LADDER;
    let stages: Vec<SleepStage> = taus
        .iter()
        .enumerate()
        .take(5)
        .map(|(i, tau)| {
            SleepStage::new(states[i], *tau, presets::default_wake_latency(states[i]))
                .expect("valid stage")
        })
        .collect();
    SleepProgram::new(stages).expect("strictly increasing")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: residency partitions the horizon; energy equals the
    /// integral of a power function bounded by [deepest sleep, active];
    /// departures are FCFS-ordered; wake latencies match the program.
    #[test]
    fn conservation_and_ordering(
        rho in 0.05f64..0.7,
        f_margin in 0.05f64..0.5,
        taus in proptest::collection::vec(0.0f64..2.0, 1..5),
        seed in 0u64..100_000,
    ) {
        let mean_service = 0.194;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(800, rho, mean_service, &mut rng).unwrap();
        let f = Frequency::new((rho + f_margin).min(1.0)).unwrap();
        let policy = Policy::new(f, arbitrary_program(taus));
        let env = SimEnv::xeon_cpu_bound();
        let out = simulate(&jobs, &policy, &env);

        // Residency partitions the horizon exactly.
        prop_assert!((out.residency().total() - out.horizon()).abs() < 1e-6);

        // Energy bounds from the power ladder.
        let active = env.power().active_power(f).as_watts();
        let floor = 28.1_f64.min(env.power().power(SystemState::C6_S3, f).as_watts());
        let e = out.energy().as_joules();
        prop_assert!(e <= active * out.horizon() + 1e-6);
        prop_assert!(e >= floor * out.horizon() - 1e-6);

        // Per-record invariants via the online engine (records exposed).
        let mut online = OnlineSim::new(env.clone(), 60.0);
        let epoch = online.run_epoch(jobs.jobs(), &policy, f64::INFINITY);
        let mut prev_departure = 0.0;
        for r in epoch.records() {
            prop_assert!(r.departure >= prev_departure - 1e-12, "FCFS order violated");
            prev_departure = r.departure;
            prop_assert!(r.start >= r.arrival);
            prop_assert!((r.service - r.size * (1.0 / f.get())).abs() < 1e-9);
            // Wake latency is one of the program's (or zero).
            let allowed = policy
                .program()
                .stages()
                .iter()
                .any(|s| (s.wake_latency() - r.wake).abs() < 1e-12)
                || r.wake == 0.0;
            prop_assert!(allowed, "unexpected wake latency {}", r.wake);
        }
    }

    /// Common-random-numbers monotonicity: on the *same* job stream,
    /// raising the frequency never increases any job's departure time.
    #[test]
    fn higher_frequency_departures_dominate(
        rho in 0.05f64..0.5,
        seed in 0u64..100_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(400, rho, 0.194, &mut rng).unwrap();
        let env = SimEnv::xeon_cpu_bound();
        let program = SleepProgram::immediate(presets::C6_S0I);
        let slow = Frequency::new((rho + 0.1).min(1.0)).unwrap();
        let fast = Frequency::new((rho + 0.4).min(1.0)).unwrap();
        let run = |f: Frequency| {
            let mut online = OnlineSim::new(env.clone(), 60.0);
            online
                .run_epoch(jobs.jobs(), &Policy::new(f, program.clone()), f64::INFINITY)
                .records()
                .iter()
                .map(|r| r.departure)
                .collect::<Vec<f64>>()
        };
        for (s, q) in run(slow).iter().zip(run(fast)) {
            prop_assert!(q <= s + 1e-9, "faster clock delayed a departure");
        }
    }

    /// The record-free fast path is *exactly* the record path: same
    /// response statistics, energy, residency, and wake accounting on
    /// arbitrary streams, policies, and multi-stage sleep programs —
    /// with and without scratch reuse.
    #[test]
    fn summary_fast_path_matches_simulate_exactly(
        rho in 0.05f64..0.7,
        f_margin in 0.05f64..0.5,
        taus in proptest::collection::vec(0.0f64..2.0, 1..5),
        seed in 0u64..100_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(700, rho, 0.194, &mut rng).unwrap();
        let f = Frequency::new((rho + f_margin).min(1.0)).unwrap();
        let policy = Policy::new(f, arbitrary_program(taus));
        let env = SimEnv::xeon_cpu_bound();

        let record_path = simulate(&jobs, &policy, &env);
        prop_assert_eq!(&simulate_summary(&jobs, &policy, &env), &record_path);

        // Scratch reuse across two different policies must not leak
        // state between evaluations.
        let mut scratch = SimScratch::new();
        let other = Policy::new(Frequency::MAX, SleepProgram::immediate(presets::C6_S3));
        let _warm = simulate_summary_into(&jobs, &other, &env, &mut scratch);
        prop_assert_eq!(&simulate_summary_into(&jobs, &policy, &env, &mut scratch), &record_path);
    }

    /// The borrowed cursor yields exactly the batches `split_at_time`
    /// would allocate, over arbitrary epoch boundaries.
    #[test]
    fn cursor_batches_equal_split_at_time(
        rho in 0.05f64..0.6,
        epoch_len in 5.0f64..60.0,
        seed in 0u64..100_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(400, rho, 0.194, &mut rng).unwrap();
        let mut cursor = jobs.cursor();
        let mut remaining = jobs.clone();
        let mut t = 0.0;
        while !remaining.is_empty() {
            t += epoch_len;
            let (now, later) = remaining.split_at_time(t);
            prop_assert_eq!(cursor.take_before(t), now.jobs());
            remaining = later;
        }
        prop_assert!(cursor.is_finished());
        prop_assert!(cursor.remaining().is_empty());
    }

    /// Splitting a stream at an arbitrary time and replaying the halves
    /// through one engine matches the unsplit batch run exactly.
    #[test]
    fn split_replay_is_exact(
        rho in 0.1f64..0.6,
        split_frac in 0.1f64..0.9,
        seed in 0u64..100_000,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(600, rho, 0.194, &mut rng).unwrap();
        let env = SimEnv::xeon_cpu_bound();
        let policy = Policy::new(
            Frequency::new((rho + 0.2).min(1.0)).unwrap(),
            SleepProgram::immediate(presets::C6_S3),
        );
        let batch = simulate(&jobs, &policy, &env);

        let t_split = jobs.last_arrival() * split_frac;
        let (a, b) = jobs.split_at_time(t_split);
        let mut online = OnlineSim::new(env.clone(), 3600.0);
        let out_a = online.run_epoch(a.jobs(), &policy, t_split);
        let out_b = online.run_epoch(b.jobs(), &policy, f64::INFINITY);
        let horizon = online.state().free_time();
        let (ledger, residency, ..) = online.finish(horizon);

        prop_assert!((ledger.total_energy().as_joules() - batch.energy().as_joules()).abs() < 1e-6);
        prop_assert!((residency.total() - batch.residency().total()).abs() < 1e-6);
        prop_assert_eq!(out_a.records().len() + out_b.records().len(), batch.n_jobs());
        let n = JobStream::default();
        prop_assert!(n.is_empty()); // keep the import exercised
    }
}
