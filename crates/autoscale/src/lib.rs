//! Closed-loop fleet autoscaling — the control plane over SleepScale's
//! Section 7 scale-out. Per-server SleepScale managers pick the best
//! (frequency, sleep program) for the load each server *sees*; nothing
//! in the paper's loop ever decides that a server should see no load at
//! all. This crate adds that layer: an epoch-granularity controller
//! that watches fleet utilization and per-class p95 headroom, parks
//! trailing servers of a group in a deep C-state off-peak (drained and
//! excluded from dispatch), and wakes them — paying a modeled wake-up
//! latency — when headroom shrinks.
//!
//! The controller is deliberately a *pure function of epoch-boundary
//! state*: its inputs are the per-group busy/backlog seconds of the
//! epoch that just closed plus a QoS-pressure flag, and its state is
//! three scalars' worth of bookkeeping. That is what preserves the
//! engine's byte-determinism across worker and shard counts, and what
//! makes the controller checkpointable in a handful of bytes (the
//! [`sleepscale_journal::Snapshot`] impl round-trips it exactly).
//!
//! Two invariants the cluster engine relies on:
//!
//! * **Active prefix** — within each group, the active servers are
//!   always the first `active[g]` slots of the group's range; parking
//!   takes from the tail, waking refills from the lowest parked index.
//! * **Floor** — every group keeps at least
//!   [`AutoscalerSpec::min_active_per_group`] servers active, so
//!   dispatch always has a target.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use sleepscale_journal::{ByteReader, ByteWriter, CodecError, Snapshot};
use sleepscale_power::{presets, SystemState};

/// Declarative autoscaler configuration — the knobs of the control law
/// (see [`AutoscaleController::plan_epoch`] for the law itself).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscalerSpec {
    /// Desired utilization of each *active* server — the controller
    /// sizes the active set so realized utilization lands here.
    pub target_utilization: f64,
    /// Hysteresis low-water mark: parking is only considered while the
    /// active-set utilization is strictly below this.
    pub park_below: f64,
    /// Hysteresis high-water mark: waking is triggered when the
    /// active-set utilization exceeds this. The band
    /// `[park_below, wake_above]` is where the controller holds still.
    pub wake_above: f64,
    /// Every group keeps at least this many servers active (≥ 1).
    pub min_active_per_group: usize,
    /// At most this many servers park per group per epoch — parking is
    /// gradual so a transient lull cannot empty a group; waking jumps
    /// straight to the computed need (scale-up is urgent).
    pub park_step: usize,
    /// The deep state parked servers sit in (their whole parked
    /// interval is charged at this state's power draw).
    pub park_state: SystemState,
    /// The wake-up latency a woken server pays (charged at active
    /// power) before it can serve again.
    pub wake_latency_seconds: f64,
    /// Per-class p95 guard in absolute seconds: while any class's
    /// running p95 exceeds its guard, the controller wakes the whole
    /// fleet and inhibits parking. Entries ≤ 0 (and classes beyond the
    /// table) are unguarded; an empty table disables the guard.
    pub class_p95_guards_seconds: Vec<f64>,
}

impl AutoscalerSpec {
    /// A conservative default: 60 % utilization target inside a
    /// 40–75 % hysteresis band, parking at most two servers per group
    /// per epoch into `C6S3` (1 s wake), no per-class guards.
    pub fn new() -> AutoscalerSpec {
        AutoscalerSpec {
            target_utilization: 0.6,
            park_below: 0.4,
            wake_above: 0.75,
            min_active_per_group: 1,
            park_step: 2,
            park_state: SystemState::C6_S3,
            wake_latency_seconds: presets::WAKE_C6_S3,
            class_p95_guards_seconds: Vec::new(),
        }
    }

    /// Sets the per-class p95 guards (absolute seconds).
    pub fn with_class_guards(mut self, guards: Vec<f64>) -> AutoscalerSpec {
        self.class_p95_guards_seconds = guards;
        self
    }

    /// Checks the control law's preconditions: thresholds in `(0, 1)`
    /// ordered `park_below < target_utilization ≤ wake_above` (the
    /// ordering is what makes the hysteresis band non-flapping), a
    /// positive floor and park step, and finite non-negative latency
    /// and guards.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("target_utilization", self.target_utilization),
            ("park_below", self.park_below),
            ("wake_above", self.wake_above),
        ] {
            if !(v > 0.0 && v < 1.0) {
                return Err(format!("autoscaler {name} must be in (0, 1), got {v}"));
            }
        }
        if self.park_below >= self.target_utilization {
            return Err(format!(
                "autoscaler park_below ({}) must be below target_utilization ({})",
                self.park_below, self.target_utilization
            ));
        }
        if self.wake_above < self.target_utilization {
            return Err(format!(
                "autoscaler wake_above ({}) must be at or above target_utilization ({})",
                self.wake_above, self.target_utilization
            ));
        }
        if self.min_active_per_group == 0 {
            return Err("autoscaler min_active_per_group must be >= 1".into());
        }
        if self.park_step == 0 {
            return Err("autoscaler park_step must be >= 1".into());
        }
        if !self.wake_latency_seconds.is_finite() || self.wake_latency_seconds < 0.0 {
            return Err(format!(
                "autoscaler wake_latency_seconds must be finite and >= 0, got {}",
                self.wake_latency_seconds
            ));
        }
        if self.class_p95_guards_seconds.iter().any(|g| !g.is_finite()) {
            return Err("autoscaler class p95 guards must be finite".into());
        }
        Ok(())
    }

    /// Whether the running per-class p95s (seconds, indexed by class)
    /// breach any configured guard — the QoS-pressure input to
    /// [`AutoscaleController::plan_epoch`]. Classes without samples
    /// report `NaN` p95s upstream; those never trip the guard.
    pub fn qos_pressure(&self, class_p95_seconds: &[f64]) -> bool {
        self.class_p95_guards_seconds
            .iter()
            .zip(class_p95_seconds)
            .any(|(&guard, &p95)| guard > 0.0 && p95 > guard)
    }
}

impl Default for AutoscalerSpec {
    fn default() -> AutoscalerSpec {
        AutoscalerSpec::new()
    }
}

/// One group's load over the epoch that just closed, summed over its
/// *active* servers: seconds of work served plus seconds of committed
/// backlog overhanging the epoch boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GroupLoad {
    /// Seconds of service performed inside the epoch.
    pub busy_seconds: f64,
    /// Seconds of committed work overhanging the epoch boundary.
    pub backlog_seconds: f64,
}

/// Which branch of the control law a tick took for a group — the
/// triggering reason telemetry attaches to park/wake events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaleReason {
    /// Active-set utilization fell below `park_below`.
    LowUtilization {
        /// The realized active-set utilization that tripped the branch.
        utilization: f64,
    },
    /// Active-set utilization exceeded `wake_above`.
    HighUtilization {
        /// The realized active-set utilization that tripped the branch.
        utilization: f64,
    },
    /// The per-class p95 guard forced the group to full size.
    QosPressure,
}

/// One group's outcome from a control tick: the active count before
/// and after, and which branch of the law produced it (`None` = the
/// hold branch inside the hysteresis band).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupDecision {
    /// The group index.
    pub group: usize,
    /// Active count entering the tick.
    pub from: usize,
    /// Planned active count leaving the tick.
    pub to: usize,
    /// The branch taken (`None` for the in-band hold).
    pub reason: Option<ScaleReason>,
}

/// The closed-loop controller: owns the per-group active counts and the
/// parked-time bookkeeping, and advances one tick per epoch boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleController {
    spec: AutoscalerSpec,
    group_sizes: Vec<usize>,
    /// Per-group active-prefix length.
    active: Vec<usize>,
    /// Accumulated `parked servers × seconds` over closed epochs.
    parked_seconds: f64,
    /// Fleet-wide active count per closed epoch.
    trace: Vec<usize>,
}

impl AutoscaleController {
    /// A controller over a fleet with the given per-group sizes; every
    /// server starts active (the fleet parks down from cold, it never
    /// boots parked).
    pub fn new(spec: AutoscalerSpec, group_sizes: Vec<usize>) -> AutoscaleController {
        let active = group_sizes.clone();
        AutoscaleController { spec, group_sizes, active, parked_seconds: 0.0, trace: Vec::new() }
    }

    /// The configured control-law knobs.
    pub fn spec(&self) -> &AutoscalerSpec {
        &self.spec
    }

    /// Per-group active-prefix lengths.
    pub fn active(&self) -> &[usize] {
        &self.active
    }

    /// Fleet-wide active server count.
    pub fn active_total(&self) -> usize {
        self.active.iter().sum()
    }

    /// Accumulated parked `server × seconds` over all closed epochs.
    pub fn parked_server_seconds(&self) -> f64 {
        self.parked_seconds
    }

    /// Fleet-wide active count for each closed epoch, in epoch order.
    pub fn fleet_size_trace(&self) -> &[usize] {
        &self.trace
    }

    /// Group `g`'s floor: `min_active_per_group` clamped to the group
    /// size (a group can never have more active servers than it has).
    fn floor(&self, g: usize) -> usize {
        self.spec.min_active_per_group.min(self.group_sizes[g]).max(1)
    }

    /// One control tick at an epoch boundary. `loads[g]` describes the
    /// epoch that just closed; the updated [`AutoscaleController::active`]
    /// counts govern the next epoch.
    ///
    /// The law, per group with `m` active of `size` servers and
    /// realized active-set utilization
    /// `u = (busy + backlog) / (m · epoch_seconds)`:
    ///
    /// * QoS pressure ⇒ `m' = size` (wake everything, park nothing);
    /// * `u > wake_above` ⇒ `m' = clamp(⌈u · m / target⌉, m + 1, size)`;
    /// * `u < park_below` ⇒ `m' = max(⌈u · m / target⌉, floor,
    ///   m − park_step)`;
    /// * otherwise (inside the band) ⇒ `m' = m`.
    ///
    /// Every branch is a pure function of the inputs — no clocks, no
    /// randomness — which is what keeps autoscaled runs byte-identical
    /// across worker and shard counts.
    ///
    /// Returns one [`GroupDecision`] per group recording the branch
    /// taken, so callers can attribute the resulting park/wake
    /// transitions without re-deriving the law.
    pub fn plan_epoch(
        &mut self,
        loads: &[GroupLoad],
        epoch_seconds: f64,
        qos_pressure: bool,
    ) -> Vec<GroupDecision> {
        assert_eq!(loads.len(), self.group_sizes.len(), "one load entry per group");
        assert!(epoch_seconds > 0.0, "epochs have positive length");
        // Account the epoch that just closed before re-planning.
        self.trace.push(self.active_total());
        let total: usize = self.group_sizes.iter().sum();
        self.parked_seconds += (total - self.active_total()) as f64 * epoch_seconds;

        let mut decisions = Vec::with_capacity(loads.len());
        for (g, load) in loads.iter().enumerate() {
            let m = self.active[g];
            let size = self.group_sizes[g];
            let floor = self.floor(g);
            if qos_pressure {
                self.active[g] = size;
                decisions.push(GroupDecision {
                    group: g,
                    from: m,
                    to: size,
                    reason: Some(ScaleReason::QosPressure),
                });
                continue;
            }
            let u = (load.busy_seconds + load.backlog_seconds) / (m as f64 * epoch_seconds);
            let need = (u * m as f64 / self.spec.target_utilization).ceil() as usize;
            let (to, reason) = if u > self.spec.wake_above {
                (
                    need.clamp((m + 1).min(size), size),
                    Some(ScaleReason::HighUtilization { utilization: u }),
                )
            } else if u < self.spec.park_below {
                (
                    need.max(floor).max(m.saturating_sub(self.spec.park_step)).min(m),
                    Some(ScaleReason::LowUtilization { utilization: u }),
                )
            } else {
                (m, None)
            };
            self.active[g] = to;
            decisions.push(GroupDecision { group: g, from: m, to, reason });
        }
        decisions
    }

    /// Overrides group `g`'s planned active count with what the engine
    /// actually achieved. Parking is constrained to *drained* servers
    /// (a server still carrying committed work past the boundary cannot
    /// be parked without rewriting history), so an epoch with stragglers
    /// may park fewer servers than the plan asked for; the engine
    /// settles the difference here so the controller's state always
    /// matches the fleet. The achieved count is itself a pure function
    /// of epoch-boundary state, so determinism is unaffected.
    pub fn settle_active(&mut self, g: usize, achieved: usize) {
        assert!(
            achieved >= 1 && achieved <= self.group_sizes[g],
            "achieved active count must fit the group"
        );
        self.active[g] = achieved;
    }

    /// Serializes the controller's mutable state (active counts, parked
    /// seconds, trace). The spec and group sizes come from configuration
    /// and are *not* written — [`AutoscaleController::restore_state`]
    /// takes a freshly configured controller's shape and refuses counts
    /// that don't fit it.
    pub fn snapshot_state(&self, w: &mut ByteWriter) {
        self.active.snapshot(w);
        w.put_f64(self.parked_seconds);
        self.trace.snapshot(w);
    }

    /// Restores state written by [`AutoscaleController::snapshot_state`]
    /// into a controller configured with `spec` and `group_sizes`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed bytes, or when
    /// the recorded active counts don't fit the configured fleet shape.
    pub fn restore_state(
        spec: AutoscalerSpec,
        group_sizes: Vec<usize>,
        r: &mut ByteReader<'_>,
    ) -> Result<AutoscaleController, CodecError> {
        let active = Vec::<usize>::restore(r)?;
        if active.len() != group_sizes.len()
            || active.iter().zip(&group_sizes).any(|(&a, &size)| a == 0 || a > size)
        {
            return Err(CodecError::Invalid("autoscaler active counts don't fit the fleet".into()));
        }
        let parked_seconds = r.get_f64()?;
        if !(parked_seconds.is_finite() && parked_seconds >= 0.0) {
            return Err(CodecError::Invalid("autoscaler parked seconds out of range".into()));
        }
        let trace = Vec::<usize>::restore(r)?;
        Ok(AutoscaleController { spec, group_sizes, active, parked_seconds, trace })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec() -> AutoscalerSpec {
        AutoscalerSpec::new()
    }

    #[test]
    fn default_spec_validates() {
        spec().validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        for bad in [
            AutoscalerSpec { target_utilization: 0.0, ..spec() },
            AutoscalerSpec { park_below: 0.7, ..spec() },
            AutoscalerSpec { wake_above: 0.5, ..spec() },
            AutoscalerSpec { min_active_per_group: 0, ..spec() },
            AutoscalerSpec { park_step: 0, ..spec() },
            AutoscalerSpec { wake_latency_seconds: f64::NAN, ..spec() },
            AutoscalerSpec { class_p95_guards_seconds: vec![f64::INFINITY], ..spec() },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should not validate");
        }
    }

    #[test]
    fn parks_off_peak_and_wakes_on_load() {
        let mut c = AutoscaleController::new(spec(), vec![8]);
        let epoch = 300.0;
        // Dead quiet: park down, gradually (park_step = 2), to the floor.
        for expect in [6, 4, 2, 1, 1] {
            c.plan_epoch(&[GroupLoad::default()], epoch, false);
            assert_eq!(c.active(), &[expect]);
        }
        // Load returns at 90 % of one server: wake straight to need
        // (ceil(0.9 * 1 / 0.6) = 2).
        c.plan_epoch(
            &[GroupLoad { busy_seconds: 0.9 * epoch, backlog_seconds: 0.0 }],
            epoch,
            false,
        );
        assert_eq!(c.active(), &[2]);
        // Inside the band: hold still.
        let u_mid = 0.5 * 2.0 * epoch;
        c.plan_epoch(&[GroupLoad { busy_seconds: u_mid, backlog_seconds: 0.0 }], epoch, false);
        assert_eq!(c.active(), &[2]);
        // QoS pressure overrides everything: the whole group wakes.
        c.plan_epoch(&[GroupLoad::default()], epoch, true);
        assert_eq!(c.active(), &[8]);
        // Bookkeeping: 8 epochs closed, parked seconds accumulated.
        assert_eq!(c.fleet_size_trace(), &[8, 6, 4, 2, 1, 1, 2, 2]);
        let parked: usize = c.fleet_size_trace().iter().map(|&a| 8 - a).sum();
        assert_eq!(c.parked_server_seconds(), parked as f64 * epoch);
    }

    #[test]
    fn backlog_counts_toward_utilization() {
        let mut c = AutoscaleController::new(spec(), vec![4]);
        let epoch = 300.0;
        // Barely busy but deeply backlogged: the overhang keeps the
        // group out of the park branch.
        let load = GroupLoad { busy_seconds: 0.1 * 4.0 * epoch, backlog_seconds: 2.0 * epoch };
        c.plan_epoch(&[load], epoch, false);
        assert_eq!(c.active(), &[4]);
    }

    #[test]
    fn qos_guard_trips_on_breach_only() {
        let s = spec().with_class_guards(vec![0.05, 0.0]);
        assert!(!s.qos_pressure(&[0.04, 99.0]));
        assert!(s.qos_pressure(&[0.06, 0.0]));
        assert!(!s.qos_pressure(&[f64::NAN, 1.0]), "empty classes never trip the guard");
    }

    #[test]
    fn restore_rejects_misshapen_state() {
        let c = AutoscaleController::new(spec(), vec![4, 2]);
        let mut w = ByteWriter::new();
        c.snapshot_state(&mut w);
        let bytes = w.into_bytes();
        // Wrong fleet shape: group count mismatch.
        let mut r = ByteReader::new(&bytes);
        assert!(AutoscaleController::restore_state(spec(), vec![4], &mut r).is_err());
        // Truncated payload.
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(AutoscaleController::restore_state(spec(), vec![4, 2], &mut r).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Controller state round-trips byte-exactly through its
        /// snapshot — the property that keeps `resume` byte-identical
        /// for autoscaled runs.
        #[test]
        fn controller_state_roundtrips(
            sizes in proptest::collection::vec(1_usize..12, 1..5),
            ticks in proptest::collection::vec((0.0_f64..2.0, 0.0_f64..1.0, 0_u8..2), 0..20),
        ) {
            let mut c = AutoscaleController::new(spec(), sizes.clone());
            let epoch = 300.0;
            for (u, overhang, qos) in ticks {
                let qos = qos == 1;
                let loads: Vec<GroupLoad> = c
                    .active()
                    .iter()
                    .map(|&m| GroupLoad {
                        busy_seconds: u * m as f64 * epoch,
                        backlog_seconds: overhang * epoch,
                    })
                    .collect();
                c.plan_epoch(&loads, epoch, qos);
            }
            let mut w = ByteWriter::new();
            c.snapshot_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let restored =
                AutoscaleController::restore_state(spec(), sizes, &mut r).unwrap();
            prop_assert!(r.is_empty(), "restore must consume the whole record");
            prop_assert_eq!(&restored, &c);
            // And the restored controller plans identically.
            let mut a = c.clone();
            let mut b = restored;
            let loads: Vec<GroupLoad> =
                a.active().iter().map(|_| GroupLoad::default()).collect();
            a.plan_epoch(&loads, epoch, false);
            b.plan_epoch(&loads, epoch, false);
            prop_assert_eq!(a, b);
        }

        /// The active counts always respect the floor and the group
        /// size, whatever load sequence the controller sees.
        #[test]
        fn active_counts_stay_in_bounds(
            sizes in proptest::collection::vec(1_usize..10, 1..4),
            ticks in proptest::collection::vec((0.0_f64..3.0, 0_u8..2), 1..30),
        ) {
            let mut c = AutoscaleController::new(spec(), sizes.clone());
            let epoch = 60.0;
            for (u, qos) in ticks {
                let qos = qos == 1;
                let loads: Vec<GroupLoad> = c
                    .active()
                    .iter()
                    .map(|&m| GroupLoad { busy_seconds: u * m as f64 * epoch, backlog_seconds: 0.0 })
                    .collect();
                c.plan_epoch(&loads, epoch, qos);
                for (g, &a) in c.active().iter().enumerate() {
                    prop_assert!(a >= 1 && a <= sizes[g]);
                }
            }
        }
    }
}
