//! Closed-form evaluation cost: the idealized model scores a policy in
//! nanoseconds, which is why the paper suggests (future work, Section
//! 5.1.2 observation 3) using it instead of re-simulation when it is
//! accurate enough. Compare against `policy_eval`'s simulation numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepscale_analytic::PolicyAnalyzer;
use sleepscale_power::{presets, Frequency, FrequencyScaling, Policy, SleepProgram};

fn closed_form_single_policy(c: &mut Criterion) {
    let power = presets::xeon();
    let analyzer =
        PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, 1.0 / 0.194, 0.3)
            .expect("valid");
    let policy =
        Policy::new(Frequency::new(0.6).expect("valid"), SleepProgram::immediate(presets::C6_S0I));
    c.bench_function("analytic_analyze_one_policy", |b| {
        b.iter(|| analyzer.analyze(std::hint::black_box(&policy)).expect("stable"))
    });
}

fn closed_form_full_grid(c: &mut Criterion) {
    let power = presets::xeon();
    let analyzer =
        PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, 1.0 / 0.194, 0.3)
            .expect("valid");
    let programs = presets::standard_programs();
    let grid = sleepscale_power::FrequencyGrid::new(0.35, 1.0, 0.01).expect("valid");
    c.bench_function("analytic_min_power_policy_full_grid", |b| {
        b.iter(|| analyzer.min_power_policy(std::hint::black_box(&programs), &grid, 5.0))
    });
}

criterion_group!(benches, closed_form_single_policy, closed_form_full_grid);
criterion_main!(benches);
