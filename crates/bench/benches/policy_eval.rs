//! The paper's overhead claim (Section 5.1.1): evaluating one candidate
//! policy over a 10 000-job log took 6.3 ms in Matlab on an i5; the
//! policy manager's per-epoch cost is (candidates × that). These benches
//! measure the same quantities for this implementation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sleepscale_bench::ideal_stream;
use sleepscale_power::{presets, Frequency, Policy, SleepProgram};
use sleepscale_sim::{simulate, sweep, SimEnv};
use sleepscale_workloads::WorkloadSpec;

fn single_policy_10k_jobs(c: &mut Criterion) {
    let spec = WorkloadSpec::dns();
    let jobs = ideal_stream(&spec, 0.3, 10_000, 1);
    let env = SimEnv::xeon_cpu_bound();
    let policy =
        Policy::new(Frequency::new(0.6).expect("valid"), SleepProgram::immediate(presets::C6_S0I));
    c.bench_function("simulate_one_policy_10k_jobs", |b| {
        b.iter(|| simulate(std::hint::black_box(&jobs), &policy, &env))
    });
}

fn full_candidate_grid(c: &mut Criterion) {
    // 5 programs × ~14 frequencies over a 2000-job log: one epoch's
    // policy-manager characterization.
    let spec = WorkloadSpec::dns();
    let jobs = ideal_stream(&spec, 0.3, 2_000, 2);
    let env = SimEnv::xeon_cpu_bound();
    let programs = presets::standard_programs();
    let grid = sleepscale_power::FrequencyGrid::new(0.35, 1.0, 0.05).expect("valid");
    c.bench_function("grid_sweep_epoch_characterization", |b| {
        b.iter_batched(
            || (),
            |()| sweep::grid_sweep(std::hint::black_box(&jobs), &programs, &grid, &env),
            BatchSize::SmallInput,
        )
    });
}

fn two_stage_ladder(c: &mut Criterion) {
    let spec = WorkloadSpec::google();
    let jobs = ideal_stream(&spec, 0.1, 10_000, 3);
    let env = SimEnv::xeon_cpu_bound();
    let program = SleepProgram::new(vec![
        presets::C0I_S0I,
        sleepscale_power::SleepStage::new(
            sleepscale_power::SystemState::C6_S3,
            0.126,
            presets::WAKE_C6_S3,
        )
        .expect("valid"),
    ])
    .expect("valid");
    let policy = Policy::new(Frequency::new(0.5).expect("valid"), program);
    c.bench_function("simulate_two_stage_ladder_10k_jobs", |b| {
        b.iter(|| simulate(std::hint::black_box(&jobs), &policy, &env))
    });
}

criterion_group!(benches, single_policy_10k_jobs, full_candidate_grid, two_stage_ladder);
criterion_main!(benches);
