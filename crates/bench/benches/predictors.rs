//! Predictor update throughput: the runtime observes one sample per
//! minute, so anything above ~kHz is free; these benches document the
//! actual costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sleepscale_predict::{Lms, LmsCusum, NaivePrevious, Predictor};

fn series(n: usize) -> Vec<f64> {
    (0..n).map(|i| (0.4 + 0.3 * ((i as f64) / 120.0).sin()).clamp(0.0, 1.0)).collect()
}

fn predictor_throughput(c: &mut Criterion) {
    let data = series(10_000);
    let mut group = c.benchmark_group("predictor_observe_predict");
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("lms_cusum_p10", |b| {
        b.iter(|| {
            let mut p = LmsCusum::new(10);
            let mut acc = 0.0;
            for &x in &data {
                acc += p.predict();
                p.observe(x);
            }
            acc
        })
    });
    group.bench_function("lms_p10", |b| {
        b.iter(|| {
            let mut p = Lms::new(10);
            let mut acc = 0.0;
            for &x in &data {
                acc += p.predict();
                p.observe(x);
            }
            acc
        })
    });
    group.bench_function("naive_previous", |b| {
        b.iter(|| {
            let mut p = NaivePrevious::new();
            let mut acc = 0.0;
            for &x in &data {
                acc += p.predict();
                p.observe(x);
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, predictor_throughput);
criterion_main!(benches);
