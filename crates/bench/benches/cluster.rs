//! Benchmarks for the scale-out cluster engine: the O(log N) dispatch
//! index against the O(N) snapshot scan it replaced, the streaming
//! fleet statistics against vector collection, a small fleet epoch end
//! to end, and the PR-7 sharded engine against the central loop it
//! byte-matches.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use sleepscale::{QosConstraint, RuntimeConfig, StrategySpec};
use sleepscale_cluster::{
    Cluster, ClusterConfig, DispatchIndex, JoinShortestBacklog, ServerGroup, SplitUniform,
};
use sleepscale_dist::{StreamingSummary, SummaryStats};
use sleepscale_sim::StreamSplit;
use sleepscale_workloads::{
    replay_trace, ReplayConfig, UtilizationTrace, WorkloadDistributions, WorkloadSpec,
};

/// A deterministic arrival/commit walk the routing benches share.
fn routing_walk(n: usize, steps: usize) -> Vec<(f64, f64)> {
    let mut walk = Vec::with_capacity(steps);
    let mut now = 0.0;
    let mut x = 88172645463325252_u64;
    let mut unit = move || {
        // xorshift64 — cheap, fixed, and independent of the rand crate.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x >> 11) as f64 / (1u64 << 53) as f64
    };
    for _ in 0..steps {
        now += unit() * 0.3 / n as f64;
        walk.push((now, unit() * 0.4));
    }
    walk
}

fn dispatch_index_vs_linear(c: &mut Criterion) {
    for &n in &[64_usize, 256] {
        let walk = routing_walk(n, 20_000);
        let mut group = c.benchmark_group(format!("route_20k_jobs_{n}_servers"));
        group.bench_function("index_olog_n", |b| {
            b.iter(|| {
                let mut index = DispatchIndex::new(n);
                let mut acc = 0_usize;
                for &(now, commit) in &walk {
                    let target = index.shortest_backlog_server(now);
                    acc += target;
                    index.update(target, index.free_time(target).max(now) + commit);
                }
                acc
            })
        });
        group.bench_function("linear_scan_on", |b| {
            b.iter(|| {
                let mut free = vec![0.0_f64; n];
                let mut acc = 0_usize;
                for &(now, commit) in &walk {
                    let target = free
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| (i, (t - now).max(0.0)))
                        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    acc += target;
                    free[target] = free[target].max(now) + commit;
                }
                acc
            })
        });
        group.finish();
    }
}

fn streaming_vs_collected(c: &mut Criterion) {
    let samples: Vec<f64> = routing_walk(8, 100_000).into_iter().map(|(_, s)| s + 0.05).collect();
    let mut group = c.benchmark_group("fleet_stats_100k_samples");
    group.bench_function("streaming_summary", |b| {
        b.iter(|| {
            let mut s = StreamingSummary::new();
            for &x in &samples {
                s.push(x);
            }
            (s.mean(), s.p95())
        })
    });
    group.bench_function("collect_then_sort", |b| {
        b.iter(|| {
            let s = SummaryStats::from_samples(samples.iter().copied()).expect("non-empty");
            (s.mean(), s.p95())
        })
    });
    group.finish();
}

fn fleet_epoch(c: &mut Criterion) {
    let n = 8;
    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).expect("spec fits");
    let trace = UtilizationTrace::constant(0.3, 30).expect("valid trace");
    let jobs =
        replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).expect("valid replay");
    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).expect("valid"))
        .epoch_minutes(5)
        .eval_jobs(200)
        .build()
        .expect("valid config");
    let config = ClusterConfig::homogeneous(n, runtime).expect("valid fleet");
    c.bench_function("fleet_8_servers_30_min", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(config.clone());
            cluster.run(&trace, &jobs, &mut JoinShortestBacklog::new()).expect("run succeeds")
        })
    });
}

fn sharded_fleet(c: &mut Criterion) {
    let n = 32;
    let seed = 64;
    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).expect("spec fits");
    let trace = UtilizationTrace::constant(0.2, 30).expect("valid trace");
    let jobs =
        replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).expect("valid replay");
    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).expect("valid"))
        .epoch_minutes(5)
        .eval_jobs(100)
        .build()
        .expect("valid config");
    let groups = vec![ServerGroup::new("race", n, StrategySpec::race_to_halt_c6())];
    let config = ClusterConfig::new(&runtime, groups).expect("valid fleet");
    let mut group = c.benchmark_group(format!("split_fleet_{n}_servers_30_min"));
    group.bench_function("central_split_uniform", |b| {
        b.iter(|| {
            let mut cluster = Cluster::new(config.clone());
            cluster.run(&trace, &jobs, &mut SplitUniform::new(seed)).expect("run succeeds")
        })
    });
    for shards in [1_usize, 8] {
        group.bench_function(format!("sharded_{shards}"), |b| {
            b.iter(|| {
                let mut cluster = Cluster::new(config.clone());
                cluster
                    .run_sharded(&trace, &jobs, StreamSplit::new(seed), shards)
                    .expect("run succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    dispatch_index_vs_linear,
    streaming_vs_collected,
    fleet_epoch,
    sharded_fleet
);
criterion_main!(benches);
