//! Simulator-core throughput: jobs per second through the FCFS + sleep
//! engine, and job-stream generation cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use sleepscale_bench::ideal_stream;
use sleepscale_power::{presets, Frequency, Policy, SleepProgram};
use sleepscale_sim::{generator, simulate, SimEnv};
use sleepscale_workloads::WorkloadSpec;

fn engine_throughput(c: &mut Criterion) {
    let spec = WorkloadSpec::dns();
    let env = SimEnv::xeon_cpu_bound();
    let policy =
        Policy::new(Frequency::new(0.7).expect("valid"), SleepProgram::immediate(presets::C6_S3));
    let mut group = c.benchmark_group("engine_throughput");
    for n in [1_000usize, 10_000, 100_000] {
        let jobs = ideal_stream(&spec, 0.4, n, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(format!("{n}_jobs"), |b| {
            b.iter(|| simulate(std::hint::black_box(&jobs), &policy, &env))
        });
    }
    group.finish();
}

fn stream_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream_generation");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("poisson_exp_10k", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        b.iter(|| generator::generate_poisson_exp(10_000, 0.3, 0.194, &mut rng).expect("valid"))
    });
    group.finish();
}

criterion_group!(benches, engine_throughput, stream_generation);
criterion_main!(benches);
