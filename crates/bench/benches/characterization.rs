//! Benchmarks for the characterization-engine overhaul: the record-free
//! simulation fast path, the lock-free chunked sweep, and the pruned +
//! cached policy selection, each against its baseline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sleepscale::{CandidateSet, PolicyManager, QosConstraint, SearchMode};
use sleepscale_bench::ideal_stream;
use sleepscale_power::{presets, Frequency, Policy, SleepProgram};
use sleepscale_sim::{
    simulate, simulate_summary, simulate_summary_into, sweep, SimEnv, SimScratch,
};
use sleepscale_workloads::{JobLog, WorkloadSpec};

fn record_vs_summary(c: &mut Criterion) {
    let spec = WorkloadSpec::dns();
    let jobs = ideal_stream(&spec, 0.3, 10_000, 1);
    let env = SimEnv::xeon_cpu_bound();
    let policy =
        Policy::new(Frequency::new(0.6).expect("valid"), SleepProgram::immediate(presets::C6_S0I));
    let mut group = c.benchmark_group("characterize_10k_jobs");
    group.bench_function("records", |b| {
        b.iter(|| simulate(std::hint::black_box(&jobs), &policy, &env))
    });
    group.bench_function("summary", |b| {
        b.iter(|| simulate_summary(std::hint::black_box(&jobs), &policy, &env))
    });
    let mut scratch = SimScratch::new();
    group.bench_function("summary_reused_scratch", |b| {
        b.iter(|| simulate_summary_into(std::hint::black_box(&jobs), &policy, &env, &mut scratch))
    });
    group.finish();
}

fn chunked_sweep(c: &mut Criterion) {
    // One epoch's full candidate grid through the lock-free sweep.
    let spec = WorkloadSpec::dns();
    let jobs = ideal_stream(&spec, 0.3, 2_000, 2);
    let env = SimEnv::xeon_cpu_bound();
    let grid = sleepscale_power::FrequencyGrid::new(0.35, 1.0, 0.05).expect("valid");
    let policies: Vec<Policy> = presets::standard_programs()
        .iter()
        .flat_map(|prog| grid.iter().map(move |f| Policy::new(f, prog.clone())))
        .collect();
    let mut group = c.benchmark_group("sweep_70_candidates_2k_jobs");
    group.bench_function("serial", |b| {
        b.iter(|| sweep::evaluate_policies_with_threads(&jobs, &policies, &env, 1))
    });
    group.bench_function("chunked_parallel", |b| {
        b.iter(|| sweep::evaluate_policies(std::hint::black_box(&jobs), &policies, &env))
    });
    group.finish();
}

fn selection_modes(c: &mut Criterion) {
    let spec = WorkloadSpec::dns();
    let stream = ideal_stream(&spec, 0.25, 2_000, 3);
    let manager = || {
        PolicyManager::new(
            SimEnv::xeon_cpu_bound(),
            QosConstraint::mean_response(0.8).expect("valid"),
            CandidateSet::standard(),
            spec.service_mean(),
            2_000,
        )
        .expect("valid manager")
    };
    let exhaustive = manager().with_search_mode(SearchMode::Exhaustive);
    let pruned = manager();
    let mut group = c.benchmark_group("select_policy");
    group.bench_function("exhaustive_stream", |b| {
        b.iter(|| exhaustive.select_from_stream(std::hint::black_box(&stream), 0.25))
    });
    group.bench_function("pruned_stream", |b| {
        b.iter(|| pruned.select_from_stream(std::hint::black_box(&stream), 0.25))
    });
    // The cached log path: after the first call every selection at the
    // same (quantized rho, log signature) is a hash lookup.
    let mut log = JobLog::new(20_000);
    let mut prev = 0.0;
    for job in stream.jobs() {
        log.push(job.arrival - prev, job.size);
        prev = job.arrival;
    }
    group.bench_function("cached_log_hit", |b| {
        b.iter_batched(
            &manager,
            |mut m| {
                m.select_from_log(&log, 0.25).expect("log is warm");
                for _ in 0..9 {
                    std::hint::black_box(m.select_from_log(&log, 0.25).expect("cache hit"));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, record_vs_summary, chunked_sweep, selection_modes);
criterion_main!(benches);
