//! Regenerates every table and figure in sequence.

fn main() -> std::io::Result<()> {
    let q = if std::env::args().any(|a| a == "--quick") {
        sleepscale_bench::Quality::Quick
    } else {
        sleepscale_bench::Quality::Full
    };
    let t0 = std::time::Instant::now();
    sleepscale_bench::tables::table2()?;
    sleepscale_bench::tables::table5(q)?;
    sleepscale_bench::figures::fig1::run(q)?;
    sleepscale_bench::figures::fig2::run(q)?;
    sleepscale_bench::figures::fig3::run(q)?;
    sleepscale_bench::figures::fig4::run(q)?;
    sleepscale_bench::figures::fig5::run(q)?;
    sleepscale_bench::figures::fig6::run(q)?;
    sleepscale_bench::figures::fig7::run(q)?;
    sleepscale_bench::figures::fig8::run_figure(q)?;
    sleepscale_bench::figures::fig9::run_figure(q)?;
    sleepscale_bench::figures::fig10::run_figure(q)?;
    println!("\nall tables and figures regenerated in {:.1?}", t0.elapsed());
    Ok(())
}
