//! Regenerates Table 5 and verifies the generators' moments.
fn main() -> std::io::Result<()> {
    let q = if std::env::args().any(|a| a == "--quick") {
        sleepscale_bench::Quality::Quick
    } else {
        sleepscale_bench::Quality::Full
    };
    sleepscale_bench::tables::table5(q)
}
