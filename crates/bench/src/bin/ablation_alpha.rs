//! Ablation: the over-provisioning factor α (Section 5.2.3).
//!
//! Sweeps α over the Figure-9 scenario and prints the response/power
//! trade-off: α = 0 reproduces Figure 8's budget overshoot, the paper's
//! α = 0.35 buys responses back "at the cost of a slight increase in
//! power", and larger α keeps paying power for diminishing response
//! gains.

use sleepscale_bench::figures::fig8::{dns_day, run_cell};
use sleepscale_bench::Quality;
use sleepscale_predict::LmsCusum;

fn main() {
    let q = if std::env::args().any(|a| a == "--quick") { Quality::Quick } else { Quality::Full };
    let (trace, jobs, spec) = dns_day(q, 7100);
    println!("== Ablation: over-provisioning factor (DNS on email-store day, T=5) ==");
    println!("{:>8} {:>14} {:>12}", "alpha", "mu*E[R]", "E[P] (W)");
    for alpha in [0.0, 0.1, 0.2, 0.35, 0.5, 0.75] {
        let bar = run_cell(&trace, &jobs, &spec, Box::new(LmsCusum::new(10)), 5, alpha, q);
        println!("{:>8.2} {:>14.2} {:>12.1}", alpha, bar.norm_response, bar.power_w);
    }
    println!("(budget: mu*E[R] <= 5)");
}
