//! Runs the bundled scenario catalog end to end through the unified
//! Scenario API: every deployment shape the reproduction ships (DNS
//! day, 64-server fleet, mixed generations, per-group QoS split,
//! race-vs-SleepScale A/B, analytic cross-check, composed-mix packing)
//! as one declarative table.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin scenarios
//! cargo run --release -p sleepscale-bench --bin scenarios -- --quick
//! ```
//!
//! `--quick` runs every scenario in its reduced form (truncated
//! horizon, quarter-size groups) — the CI smoke gate. Exits non-zero
//! if any scenario fails validation, errors mid-run, or finishes
//! QoS-infeasible (a panic inside a backend also exits non-zero).

use sleepscale_scenario::{catalog, ScenarioRunner};
use std::time::Instant;

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let scenarios = catalog::catalog();
    println!(
        "== scenario catalog: {} scenarios{} ==",
        scenarios.len(),
        if quick { " (quick)" } else { "" }
    );
    println!(
        "{:<24} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "scenario",
        "backend",
        "servers",
        "jobs",
        "mu*E[R]",
        "p95(ms)",
        "W",
        "cache%",
        "warm%",
        "QoS"
    );

    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for scenario in scenarios {
        let scenario = if quick { scenario.quick() } else { scenario };
        let name = scenario.name.clone();
        let runner = match ScenarioRunner::new(scenario) {
            Ok(runner) => runner,
            Err(e) => {
                failures.push(format!("{name}: invalid scenario: {e}"));
                continue;
            }
        };
        let t0 = Instant::now();
        let report = match runner.run() {
            Ok(report) => report,
            Err(e) => {
                failures.push(format!("{name}: run failed: {e}"));
                continue;
            }
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let cache = report.cache_stats();
        let warm = report.warm_start_stats();
        println!(
            "{:<24} {:>8} {:>7} {:>9} {:>9.2} {:>9.1} {:>9.0} {:>6.0}% {:>5.0}% {:>6}",
            report.scenario(),
            report.backend().label(),
            runner.scenario().total_servers(),
            report.total_jobs(),
            report.normalized_mean_response(),
            report.p95_response_seconds() * 1e3,
            report.avg_power_watts(),
            cache.hit_rate() * 100.0,
            warm.warm_rate() * 100.0,
            if report.qos_ok() { "ok" } else { "FAIL" }
        );
        // Per-group slices for multi-group fleets — the heterogeneity
        // the catalog exists to exercise.
        if report.groups().len() > 1 {
            for group in report.groups() {
                println!(
                    "  └ {:<21} {:>7} {:>9} {:>9.2} {:>19.0}   (budget {:.2}{})",
                    group.name,
                    group.servers,
                    group.jobs,
                    group.normalized_mean_response,
                    group.avg_power_watts,
                    group.qos_budget,
                    if group.qos_ok { "" } else { " — VIOLATED" }
                );
            }
        }
        if !report.qos_ok() {
            failures.push(format!("{name}: QoS-infeasible result"));
        }
        rows.push(vec![
            name,
            report.backend().label().to_string(),
            runner.scenario().total_servers().to_string(),
            report.total_jobs().to_string(),
            format!("{:.1}", wall_ms),
            format!("{:.4}", report.normalized_mean_response()),
            format!("{:.4}", report.p95_response_seconds() * 1e3),
            format!("{:.2}", report.avg_power_watts()),
            format!("{:.3}", cache.hit_rate()),
            format!("{:.3}", warm.warm_rate()),
            (report.qos_ok() as u8).to_string(),
        ]);
    }

    let path = sleepscale_bench::write_csv(
        "scenarios",
        &[
            "scenario",
            "backend",
            "servers",
            "jobs",
            "wall_ms",
            "norm_response",
            "p95_ms",
            "fleet_w",
            "cache_hit_rate",
            "warm_rate",
            "qos_ok",
        ],
        &rows,
    )?;
    println!("\nwrote {}", path.display());

    // The analytic cross-check reads off the table: compare the
    // dns-day-single and dns-day-analytic rows (same inputs, simulated
    // vs closed-form selection).
    if failures.is_empty() {
        println!("catalog: all scenarios ran QoS-feasible — OK");
        return Ok(());
    }
    for failure in &failures {
        eprintln!("CATALOG FAILED: {failure}");
    }
    std::process::exit(1);
}
