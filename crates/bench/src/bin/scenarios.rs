//! Runs the bundled scenario catalog end to end through the unified
//! Scenario API: every deployment shape the reproduction ships (DNS
//! day, 64-server fleets, mixed generations, per-group QoS split,
//! race-vs-SleepScale A/B, analytic cross-check, composed-mix packing,
//! class-tagged mixes, flash-crowd day) as one declarative table.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin scenarios
//! cargo run --release -p sleepscale-bench --bin scenarios -- --quick
//! cargo run --release -p sleepscale-bench --bin scenarios -- --list
//! cargo run --release -p sleepscale-bench --bin scenarios -- --only dns-day-single,fleet-64-tuned
//! ```
//!
//! `--quick` runs every scenario in its reduced form (truncated
//! horizon, quarter-size groups) — the CI smoke gate. `--list` prints
//! the catalog without running anything; `--only <names>` (repeatable,
//! each occurrence a comma-separated list) restricts the run to the
//! named scenarios. Exits non-zero if any
//! scenario fails validation, errors mid-run, or finishes
//! QoS-infeasible — including any *per-class* p95 budget violation —
//! or if `--only` names an unknown scenario.

use sleepscale_scenario::{catalog, Scenario, ScenarioRunner, WorkloadSource};
use std::time::Instant;

fn workload_label(scenario: &Scenario) -> String {
    match &scenario.workload {
        WorkloadSource::Dns => "DNS".into(),
        WorkloadSource::Mail => "Mail".into(),
        WorkloadSource::Google => "Google".into(),
        WorkloadSource::Custom(spec) => format!("custom({})", spec.name()),
        WorkloadSource::Mix(parts) => format!("mix[{}]", parts.len()),
        WorkloadSource::Tagged(model) => {
            let names: Vec<&str> = model.classes.iter().map(|c| c.name.as_str()).collect();
            format!("tagged[{}]", names.join("+"))
        }
    }
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    // `--only` is repeatable and each occurrence takes a
    // comma-separated list: `--only a,b --only c`.
    let only: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--only")
        .filter_map(|(i, _)| args.get(i + 1))
        .flat_map(|names| names.split(','))
        .map(str::trim)
        .filter(|name| !name.is_empty())
        .collect();

    let mut scenarios = catalog::catalog();
    if list {
        println!("{:<24} {:>7} {:>8} {:>8}  workload", "scenario", "servers", "minutes", "classes");
        for s in &scenarios {
            let classes = s.workload.traffic_model().map_or(0, |m| m.classes.len());
            println!(
                "{:<24} {:>7} {:>8} {:>8}  {}",
                s.name,
                s.total_servers(),
                s.load.minutes(),
                classes,
                workload_label(s)
            );
        }
        return Ok(());
    }
    if !only.is_empty() {
        let known: Vec<String> = scenarios.iter().map(|s| s.name.clone()).collect();
        for name in &only {
            if !known.iter().any(|k| k == name) {
                eprintln!("unknown scenario '{name}'; the catalog has: {}", known.join(", "));
                std::process::exit(1);
            }
        }
        scenarios.retain(|s| only.contains(&s.name.as_str()));
    }

    println!(
        "== scenario catalog: {} scenarios{} ==",
        scenarios.len(),
        if quick { " (quick)" } else { "" }
    );
    println!(
        "{:<24} {:>8} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>7} {:>6} {:>6}",
        "scenario",
        "backend",
        "servers",
        "jobs",
        "wall(ms)",
        "jobs/s",
        "mu*E[R]",
        "p95(ms)",
        "W",
        "cache%",
        "warm%",
        "QoS"
    );

    let mut rows = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for scenario in scenarios {
        let scenario = if quick { scenario.quick() } else { scenario };
        let name = scenario.name.clone();
        let runner = match ScenarioRunner::new(scenario) {
            Ok(runner) => runner,
            Err(e) => {
                failures.push(format!("{name}: invalid scenario: {e}"));
                continue;
            }
        };
        let t0 = Instant::now();
        let report = match runner.run() {
            Ok(report) => report,
            Err(e) => {
                failures.push(format!("{name}: run failed: {e}"));
                continue;
            }
        };
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let jobs_per_sec = report.total_jobs() as f64 / (wall_ms / 1e3).max(1e-12);
        let cache = report.cache_stats();
        let warm = report.warm_start_stats();
        println!(
            "{:<24} {:>8} {:>7} {:>9} {:>9.0} {:>9.0} {:>9.2} {:>9.1} {:>9.0} {:>6.0}% {:>5.0}% \
             {:>6}",
            report.scenario(),
            report.backend().label(),
            runner.scenario().total_servers(),
            report.total_jobs(),
            wall_ms,
            jobs_per_sec,
            report.normalized_mean_response(),
            report.p95_response_seconds() * 1e3,
            report.avg_power_watts(),
            cache.hit_rate() * 100.0,
            warm.warm_rate() * 100.0,
            if report.qos_ok() { "ok" } else { "FAIL" }
        );
        // Per-group slices for multi-group fleets — the heterogeneity
        // the catalog exists to exercise.
        if report.groups().len() > 1 {
            for group in report.groups() {
                println!(
                    "  └ {:<21} {:>7} {:>9} {:>9.2} {:>19.0}   (budget {:.2}{})",
                    group.name,
                    group.servers,
                    group.jobs,
                    group.normalized_mean_response,
                    group.avg_power_watts,
                    group.qos_budget,
                    if group.qos_ok { "" } else { " — VIOLATED" }
                );
            }
        }
        // Per-class slices for tagged scenarios — who the traffic is.
        for class in report.classes() {
            println!(
                "  ├ {:<21} {:>7} {:>9}   p95 {:>7.1} ms ({:.1}×µ, budget {})  {:>6.0} J{}",
                class.name,
                format!("class{}", class.class),
                class.jobs,
                class.p95_response_seconds * 1e3,
                class.normalized_p95,
                class.p95_budget.map_or("—".into(), |b| format!("{b:.1}×")),
                class.energy_joules,
                if class.qos_ok { "" } else { "  — VIOLATED" }
            );
        }
        // Exact energy split + proportionality analytics (tentpole view):
        // active is tagged by the running job, idle is the explicit
        // line item, EP per Subramaniam–Feng when the curve is defined.
        if let Some(e) = report.energy_proportionality() {
            println!(
                "  ├ energy: active {:>9.0} J, idle {:>9.0} J  (EP {:.3}, dyn range {:.3})",
                report.active_energy_joules(),
                report.idle_energy_joules(),
                e.ep_score,
                e.dynamic_range
            );
        }
        if !report.qos_ok() {
            failures.push(format!("{name}: QoS-infeasible result"));
        }
        // Per-class p95/energy as packed `name:value` pair columns —
        // class counts vary per scenario, so the CSV stays rectangular.
        let class_p95 = report
            .classes()
            .iter()
            .map(|c| format!("{}:{:.4}", c.name, c.p95_response_seconds * 1e3))
            .collect::<Vec<_>>()
            .join("|");
        let class_energy = report
            .classes()
            .iter()
            .map(|c| format!("{}:{:.2}", c.name, c.energy_joules))
            .collect::<Vec<_>>()
            .join("|");
        let class_active = report
            .classes()
            .iter()
            .map(|c| format!("{}:{:.2}", c.name, c.active_energy_joules))
            .collect::<Vec<_>>()
            .join("|");
        // Fleet-level energy-proportionality analytics from the exact
        // ledger split (blank when undefined, e.g. a zero-work run).
        let ep = report.energy_proportionality();
        rows.push(vec![
            name,
            report.backend().label().to_string(),
            runner.scenario().total_servers().to_string(),
            report.total_jobs().to_string(),
            format!("{:.1}", wall_ms),
            format!("{jobs_per_sec:.0}"),
            format!("{:.4}", report.normalized_mean_response()),
            format!("{:.4}", report.p95_response_seconds() * 1e3),
            format!("{:.2}", report.avg_power_watts()),
            format!("{:.2}", report.active_energy_joules()),
            format!("{:.2}", report.idle_energy_joules()),
            ep.map_or(String::new(), |e| format!("{:.4}", e.ep_score)),
            ep.map_or(String::new(), |e| format!("{:.4}", e.dynamic_range)),
            format!("{:.3}", cache.hit_rate()),
            format!("{:.3}", warm.warm_rate()),
            (report.qos_ok() as u8).to_string(),
            class_p95,
            class_energy,
            class_active,
        ]);
    }

    let path = sleepscale_bench::require_io(
        "writing scenarios.csv",
        sleepscale_bench::write_csv(
            "scenarios",
            &[
                "scenario",
                "backend",
                "servers",
                "jobs",
                "wall_ms",
                "jobs_per_sec",
                "norm_response",
                "p95_ms",
                "fleet_w",
                "active_j",
                "idle_j",
                "ep_score",
                "dyn_range",
                "cache_hit_rate",
                "warm_rate",
                "qos_ok",
                "class_p95_ms",
                "class_energy_j",
                "class_active_j",
            ],
            &rows,
        ),
    );
    println!("\nwrote {}", path.display());

    // The analytic cross-check reads off the table: compare the
    // dns-day-single and dns-day-analytic rows (same inputs, simulated
    // vs closed-form selection).
    if failures.is_empty() {
        println!("catalog: all scenarios ran QoS-feasible — OK");
        return Ok(());
    }
    for failure in &failures {
        eprintln!("CATALOG FAILED: {failure}");
    }
    std::process::exit(1);
}
