//! Observability gate (PR 10): pins the telemetry layer's three
//! load-bearing invariants.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin obs
//! cargo run --release -p sleepscale-bench --bin obs -- --quick
//! ```
//!
//! Checks (each must hold or the bin exits non-zero):
//!
//! 1. **Worker invariance** — the merged trace (and the metrics
//!    registry) of a telemetry-armed autoscaled fleet is byte-identical
//!    across 1/2/5 worker threads: events accumulate in per-slot
//!    buffers and merge in fleet slot order, never completion order.
//! 2. **Shard invariance** — the same trace bytes for every shard
//!    count in {1, 2, 3} of a `SplitUniform` variant: sharding is a
//!    throughput knob, not an observability surface.
//! 3. **Residency reconciliation** — on a traced single-server run,
//!    [`MemorySink`]'s per-C-state residency equals the engine
//!    [`Residency`] **bit for bit** (same fold, same order), wake
//!    counts match the ledger's wake accounting exactly, and the
//!    trace-implied idle energy agrees with
//!    [`EnergyLedger::idle_energy`] to ≤ 1e-9 relative (the ledger
//!    splits segments across bucket boundaries; the trace does not).
//! 4. **JSONL round trip** — `events_from_jsonl(events_to_jsonl(t))`
//!    reproduces the event stream exactly.
//! 5. **`None` parity** — a telemetry-armed run, stripped of its
//!    [`TelemetryReport`], is byte-identical (including debug
//!    formatting, so sign-of-zero differences trip) to the
//!    telemetry-`None` run on both the single-server and cluster
//!    backends: observability costs untouched runs nothing.
//!
//! Writes `results/bench_obs.json`; exits non-zero on any failure.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sleepscale_bench::{GateSummary, JsonValue};
use sleepscale_scenario::catalog;
use sleepscale_scenario::prelude::*;
use sleepscale_sim::{generator, OnlineSim, Residency, SimEnv};
use sleepscale_telemetry::{events_from_jsonl, MemorySink, TraceEvent, TraceSink};
use sleepscale_workloads::WorkloadSpec;

/// The autoscaled catalog day with telemetry armed — park/unpark,
/// epoch-decision, and dispatch events all fire on this shape.
fn telemetry_scenario(quick: bool) -> Scenario {
    let mut scenario =
        if quick { catalog::autoscale_day().quick() } else { catalog::autoscale_day() };
    scenario.telemetry = Some(TelemetrySpec::full());
    scenario
}

fn run(scenario: Scenario) -> Result<ScenarioReport, String> {
    let name = scenario.name.clone();
    ScenarioRunner::new(scenario)
        .map_err(|e| format!("{name}: invalid: {e}"))?
        .run()
        .map_err(|e| format!("{name}: run failed: {e}"))
}

/// Check 1: worker threads must not perturb a single trace byte.
fn check_worker_invariance(quick: bool) -> Result<(String, usize), String> {
    let base = telemetry_scenario(quick);
    let mut serial = base.clone();
    serial.threads = 1;
    let reference = run(serial)?;
    let telemetry = reference.telemetry().ok_or("telemetry-armed run returned no telemetry")?;
    if telemetry.events.is_empty() {
        return Err("telemetry-armed run produced no events".into());
    }
    if telemetry.metrics.is_empty() {
        return Err("telemetry-armed run produced no metrics".into());
    }
    let reference_bytes = telemetry.to_jsonl();
    for threads in [2usize, 5] {
        let mut scenario = base.clone();
        scenario.threads = threads;
        let report = run(scenario)?;
        let t = report.telemetry().ok_or("telemetry dropped")?;
        if t.to_jsonl() != reference_bytes {
            return Err(format!("trace bytes diverged at {threads} worker threads"));
        }
        if t.metrics != telemetry.metrics {
            return Err(format!("metrics registry diverged at {threads} worker threads"));
        }
    }
    Ok((
        format!(
            "{} events / {} counters byte-stable across 1/2/5 worker threads",
            telemetry.events.len(),
            telemetry.metrics.counters().len()
        ),
        reference.total_jobs(),
    ))
}

/// Check 2: shard count must not perturb a single trace byte either.
fn check_shard_invariance(quick: bool) -> Result<(String, usize), String> {
    let mut base = telemetry_scenario(quick);
    base.name = "obs-shard-invariance".into();
    base.dispatcher = DispatcherSpec::SplitUniform { seed: 17 };
    let reference = run(base.clone())?;
    let reference_bytes =
        reference.telemetry().ok_or("telemetry-armed run returned no telemetry")?.to_jsonl();
    for shards in [2usize, 3] {
        let mut scenario = base.clone();
        scenario.shards = shards;
        let report = run(scenario)?;
        let bytes = report.telemetry().ok_or("telemetry dropped")?.to_jsonl();
        if bytes != reference_bytes {
            return Err(format!("trace bytes diverged at {shards} shards"));
        }
    }
    Ok((
        format!("{} trace bytes identical across 1/2/3 shards", reference_bytes.len()),
        reference.total_jobs(),
    ))
}

/// Check 3: the trace is not a parallel narrative — it *is* the
/// engine's accounting, re-derivable to the bit.
fn check_reconciliation(quick: bool) -> Result<(String, usize), String> {
    let spec = WorkloadSpec::dns();
    let n_jobs = if quick { 5_000 } else { 20_000 };
    let mut rng = StdRng::seed_from_u64(1_014);
    let jobs = generator::generate_poisson_exp(n_jobs, 0.25, spec.service_mean(), &mut rng)
        .map_err(|e| format!("stream generation failed: {e}"))?;
    let env = SimEnv::xeon_cpu_bound();
    let policy = sleepscale_power::Policy::new(
        sleepscale_power::Frequency::new(0.7).expect("0.7 is a legal frequency"),
        sleepscale_power::SleepProgram::immediate(sleepscale_power::presets::C6_S3),
    );
    let mut sim = OnlineSim::new(env, 300.0);
    sim.enable_trace(0);
    let horizon = jobs.last_arrival() + 60.0;
    sim.run_epoch(jobs.jobs(), &policy, horizon);
    let (ledger, residency, wakes_from, wakes_without_sleep, events) = sim.finish_traced(horizon);

    let mut sink = MemorySink::new();
    for event in &events {
        sink.record(event);
    }

    if !bitwise_residency(&sink.state_residency(), &residency) {
        return Err(format!(
            "per-C-state residency mismatch: trace {:?} vs engine {:?}",
            sink.state_residency(),
            residency.states()
        ));
    }
    if sink.active_idle_seconds().to_bits() != residency.active_idle().to_bits() {
        return Err(format!(
            "active-idle mismatch: trace {} vs engine {}",
            sink.active_idle_seconds(),
            residency.active_idle()
        ));
    }
    if sink.waking_seconds().to_bits() != residency.waking().to_bits() {
        return Err(format!(
            "waking-time mismatch: trace {} vs engine {}",
            sink.waking_seconds(),
            residency.waking()
        ));
    }
    let trace_wakes =
        events.iter().filter(|e| matches!(e, TraceEvent::Wake { from: Some(_), .. })).count()
            as u64;
    let engine_wakes: u64 = wakes_from.iter().map(|&(_, count)| count).sum();
    if trace_wakes != engine_wakes {
        return Err(format!("wake count mismatch: trace {trace_wakes} vs engine {engine_wakes}"));
    }
    let trace_dry =
        events.iter().filter(|e| matches!(e, TraceEvent::Wake { from: None, .. })).count() as u64;
    if trace_dry != wakes_without_sleep {
        return Err(format!(
            "wakes-without-sleep mismatch: trace {trace_dry} vs engine {wakes_without_sleep}"
        ));
    }
    let trace_idle = sink.idle_energy_joules();
    let ledger_idle = ledger.idle_energy().as_joules();
    let rel = (trace_idle - ledger_idle).abs() / ledger_idle.abs().max(1e-12);
    if rel > 1e-9 {
        return Err(format!(
            "idle energy mismatch: trace {trace_idle} J vs ledger {ledger_idle} J (rel {rel:.2e})"
        ));
    }
    Ok((
        format!(
            "{} events reconcile: {} C-states bitwise, {engine_wakes} wakes, idle energy within \
             {rel:.1e} relative",
            events.len(),
            residency.states().len()
        ),
        n_jobs,
    ))
}

/// Exact (to_bits) comparison of the sink's residency fold against the
/// engine's, including state order.
fn bitwise_residency(trace: &[(sleepscale_power::SystemState, f64)], engine: &Residency) -> bool {
    trace.len() == engine.states().len()
        && trace
            .iter()
            .zip(engine.states())
            .all(|((s1, t1), (s2, t2))| s1 == s2 && t1.to_bits() == t2.to_bits())
}

/// Check 4: the wire format is lossless for every event shape the
/// engines emit.
fn check_jsonl_round_trip(quick: bool) -> Result<(String, usize), String> {
    let report = run(telemetry_scenario(quick))?;
    let telemetry = report.telemetry().ok_or("telemetry-armed run returned no telemetry")?;
    let parsed =
        events_from_jsonl(&telemetry.to_jsonl()).ok_or("serialized trace failed to parse back")?;
    if parsed != telemetry.events {
        return Err("round-tripped events differ from the originals".into());
    }
    Ok((format!("{} events round-trip via JSONL losslessly", parsed.len()), report.total_jobs()))
}

/// Check 5: telemetry-off runs must be the PR-9 engine, byte for byte
/// — and a telemetry-armed run, stripped, must match them.
fn check_none_parity(quick: bool) -> Result<(String, usize), String> {
    let mut jobs = 0usize;
    // Cluster backend.
    let armed = run(telemetry_scenario(quick))?;
    let mut plain_scenario = telemetry_scenario(quick);
    plain_scenario.telemetry = None;
    let plain = run(plain_scenario)?;
    if plain.telemetry().is_some() {
        return Err("telemetry-None run carried a TelemetryReport".into());
    }
    let stripped = armed.clone().without_telemetry();
    if stripped != plain || format!("{stripped:?}") != format!("{plain:?}") {
        return Err("cluster backend: armed-then-stripped report != telemetry-None report".into());
    }
    jobs += plain.total_jobs();
    // Single-server backend.
    let mut single = if quick { catalog::dns_day().quick() } else { catalog::dns_day() };
    single.telemetry = Some(TelemetrySpec::full());
    let armed = run(single.clone())?;
    if armed.telemetry().is_none_or(|t| t.events.is_empty()) {
        return Err("single-server armed run produced no events".into());
    }
    single.telemetry = None;
    let plain = run(single)?;
    let stripped = armed.clone().without_telemetry();
    if stripped != plain || format!("{stripped:?}") != format!("{plain:?}") {
        return Err("single backend: armed-then-stripped report != telemetry-None report".into());
    }
    jobs += plain.total_jobs();
    Ok(("armed-minus-telemetry == plain on both backends, to the debug byte".into(), jobs))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut summary = GateSummary::start("obs", quick);
    println!("== obs gate{} ==", if quick { " (quick)" } else { "" });

    let mut failed = false;
    let mut jobs_total = 0u64;
    let mut checks = 0u64;
    let mut record = |check: &str, outcome: Result<(String, usize), String>| -> u64 {
        let ok = outcome.is_ok();
        let (detail, jobs) = match outcome {
            Ok((d, j)) => (d, j),
            Err(e) => (e, 0),
        };
        println!("{} {:<22} {}", if ok { "PASS" } else { "FAIL" }, check, detail);
        failed |= !ok;
        checks += 1;
        jobs as u64
    };

    jobs_total += record("worker-invariance", check_worker_invariance(quick));
    jobs_total += record("shard-invariance", check_shard_invariance(quick));
    jobs_total += record("residency-reconcile", check_reconciliation(quick));
    jobs_total += record("jsonl-round-trip", check_jsonl_round_trip(quick));
    jobs_total += record("none-parity", check_none_parity(quick));

    let ok = !failed;
    summary.field("checks_total", JsonValue::Int(checks));
    summary.finish(ok, jobs_total);

    if !ok {
        eprintln!("OBS GATE FAILED");
        std::process::exit(1);
    }
    println!("obs gate: all checks passed — OK");
}
