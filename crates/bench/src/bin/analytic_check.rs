//! Section 4.3's verification: the appendix closed forms against the
//! Algorithm-1 simulator on the Figure 1 configurations.

use sleepscale_analytic::PolicyAnalyzer;
use sleepscale_bench::{ideal_stream, Quality};
use sleepscale_power::{presets, Frequency, FrequencyScaling, Policy, SleepProgram, SystemState};
use sleepscale_sim::{simulate, SimEnv};
use sleepscale_workloads::WorkloadSpec;

fn main() {
    let q = if std::env::args().any(|a| a == "--quick") { Quality::Quick } else { Quality::Full };
    let env = SimEnv::xeon_cpu_bound();
    let power = presets::xeon();
    println!("== Section 4.3: closed form vs simulation ==");
    println!(
        "{:<8} {:<12} {:>5} {:>5} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "work", "state", "rho", "f", "sim E[P]", "ana E[P]", "sim muR", "ana muR", "max rel"
    );
    let mut worst: f64 = 0.0;
    for spec in [WorkloadSpec::dns(), WorkloadSpec::google()] {
        for rho in [0.1, 0.4, 0.7] {
            let jobs = ideal_stream(&spec, rho, q.jobs().max(30_000), 4242);
            let analyzer = PolicyAnalyzer::from_utilization(
                &power,
                FrequencyScaling::CpuBound,
                spec.mu(),
                rho,
            )
            .expect("valid analyzer");
            for state in SystemState::LOW_POWER_LADDER {
                let f = Frequency::new((rho + 0.25).min(1.0)).expect("valid");
                let policy =
                    Policy::new(f, SleepProgram::immediate(presets::immediate_stage(state)));
                let sim = simulate(&jobs, &policy, &env);
                let ana = analyzer.analyze(&policy).expect("stable");
                let sim_p = sim.avg_power().as_watts();
                let sim_r = sim.normalized_mean_response(spec.service_mean());
                let rel_p = (sim_p - ana.avg_power).abs() / ana.avg_power;
                let rel_r =
                    (sim_r - ana.normalized_mean_response).abs() / ana.normalized_mean_response;
                worst = worst.max(rel_p).max(rel_r);
                println!(
                    "{:<8} {:<12} {:>5.2} {:>5.2} {:>10.2} {:>10.2} {:>9.3} {:>9.3} {:>7.1}%",
                    spec.name(),
                    state.label(),
                    rho,
                    f.get(),
                    sim_p,
                    ana.avg_power,
                    sim_r,
                    ana.normalized_mean_response,
                    100.0 * rel_p.max(rel_r)
                );
            }
        }
    }
    println!("worst relative deviation: {:.2}%", worst * 100.0);
}
