//! The checkpoint/resume acceptance gate (PR 8).
//!
//! Proves, over the catalog's resume trio (single-server, sharded
//! fleet, tagged stream), that crash-and-resume is *invisible* in the
//! results:
//!
//! 1. an uninterrupted checkpointed run reports byte-identically to
//!    the plain (journal-free) run,
//! 2. for every epoch boundary `k`, kill-after-epoch-`k` followed by
//!    [`ScenarioRunner::resume`] reproduces the uninterrupted
//!    [`ScenarioReport`] byte for byte (`--quick` checks two
//!    boundaries per scenario instead of all of them),
//! 3. a torn or bit-flipped journal tail (mid-write crash, bit rot)
//!    truncates to the last sealed epoch and the resume still lands
//!    byte-identical — never a panic,
//! 4. resuming under a different schema version, seed, or scenario
//!    shape is a typed [`CoreError::Checkpoint`] naming the mismatch.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin resume
//! cargo run --release -p sleepscale-bench --bin resume -- --quick
//! ```
//!
//! Writes `results/bench_resume.json`; exits non-zero on any failure.

use sleepscale::CoreError;
use sleepscale_bench::{GateSummary, JsonValue};
use sleepscale_journal::{fault, Journal, JournalMeta, KillPlan};
use sleepscale_scenario::{catalog, Scenario, ScenarioRunner};
use std::path::PathBuf;

fn journal_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sleepscale-resume-gate-{}-{tag}.ssj", std::process::id()));
    p
}

/// Byte-exact report comparison: `PartialEq` plus the debug form, so a
/// float that differs only in sign-of-zero or NaN payload still trips.
fn identical(
    a: &sleepscale_scenario::ScenarioReport,
    b: &sleepscale_scenario::ScenarioReport,
) -> bool {
    a == b && format!("{a:?}") == format!("{b:?}")
}

struct Outcome {
    kill_points: usize,
    corrupted_recoveries: usize,
    failures: Vec<String>,
}

fn check_scenario(scenario: Scenario, quick: bool) -> Result<Outcome, CoreError> {
    let name = scenario.name.clone();
    let n_epochs = scenario.load.minutes().div_ceil(scenario.epoch_minutes);
    let runner = ScenarioRunner::new(scenario)?;
    let mut failures = Vec::new();

    let reference = runner.run()?;
    let path = journal_path(&name);

    // 1. Uninterrupted checkpointed run == plain run.
    let _ = std::fs::remove_file(&path);
    let full = runner
        .run_checkpointed(&path, KillPlan::never())?
        .expect("KillPlan::never always completes");
    if !identical(&full, &reference) {
        failures.push(format!("{name}: uninterrupted checkpointed run diverged"));
    }

    // 2. Kill after epoch k, resume, compare — at every boundary in
    // full mode, at the first and second-to-last in quick mode.
    let kill_points: Vec<usize> =
        if quick { vec![0, n_epochs.saturating_sub(2)] } else { (0..n_epochs).collect() };
    for &k in &kill_points {
        let _ = std::fs::remove_file(&path);
        if runner.run_checkpointed(&path, KillPlan::after_epoch(k))?.is_some() {
            failures.push(format!("{name}: kill at epoch {k} did not abort the run"));
            continue;
        }
        let resumed = runner.resume(&path)?;
        if !identical(&resumed, &reference) {
            failures.push(format!("{name}: resume after kill at epoch {k} diverged"));
        }
    }

    // 3. Corrupted tails: a torn final frame and a bit-flipped payload
    // byte must both recover to the last sealed epoch, not panic.
    let mut corrupted = 0;
    let mid = n_epochs / 2;
    let _ = std::fs::remove_file(&path);
    runner.run_checkpointed(&path, KillPlan::after_epoch(mid))?;
    fault::truncate_tail(&path, 7).expect("torn-tail injection on own temp file");
    if identical(&runner.resume(&path)?, &reference) {
        corrupted += 1;
    } else {
        failures.push(format!("{name}: resume from torn tail diverged"));
    }
    if !quick {
        let _ = std::fs::remove_file(&path);
        runner.run_checkpointed(&path, KillPlan::after_epoch(mid))?;
        fault::corrupt_tail(&path, 3).expect("bit-flip injection on own temp file");
        if identical(&runner.resume(&path)?, &reference) {
            corrupted += 1;
        } else {
            failures.push(format!("{name}: resume from bit-flipped tail diverged"));
        }
    }

    let _ = std::fs::remove_file(&path);
    Ok(Outcome { kill_points: kill_points.len(), corrupted_recoveries: corrupted, failures })
}

/// Version/seed/config mismatches must be typed errors with stable,
/// matchable messages — checked once, on the single-server scenario.
fn check_mismatches() -> Vec<String> {
    let mut failures = Vec::new();
    let base = catalog::resume_single();
    let runner = ScenarioRunner::new(base.clone()).expect("catalog scenario validates");
    let path = journal_path("mismatch");
    let _ = std::fs::remove_file(&path);
    if runner.run_checkpointed(&path, KillPlan::after_epoch(0)).map(|r| r.is_some()).unwrap_or(true)
    {
        failures.push("mismatch setup: kill at epoch 0 did not abort".into());
        return failures;
    }
    let mut expect = |label: &str, result: Result<_, CoreError>, needle: &str| match result {
        Err(CoreError::Checkpoint { reason }) if reason.contains(needle) => {}
        Err(e) => failures.push(format!("{label}: wrong error: {e}")),
        Ok(_) => failures.push(format!("{label}: resume was accepted")),
    };
    let mut reseeded = base.clone();
    reseeded.seed += 1;
    expect(
        "seed-mismatch",
        ScenarioRunner::new(reseeded).expect("validates").resume(&path),
        "seed mismatch",
    );
    let mut reshaped = base.clone();
    reshaped.eval_jobs += 1;
    expect(
        "config-mismatch",
        ScenarioRunner::new(reshaped).expect("validates").resume(&path),
        "config mismatch",
    );
    // A journal stamped with a future schema version must be rejected
    // even when seed and config agree.
    let future = journal_path("future-schema");
    let meta = JournalMeta {
        schema_version: sleepscale_scenario::JOURNAL_SCHEMA_VERSION + 1,
        seed: base.seed,
        config_fingerprint: runner.config_fingerprint(),
    };
    Journal::create(&future, &meta).expect("journal create");
    expect("schema-mismatch", runner.resume(&future), "schema mismatch");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&future);
    failures
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut summary = GateSummary::start("resume", quick);
    println!("== checkpoint/resume gate{} ==", if quick { " (quick)" } else { "" });

    let scenarios =
        vec![catalog::resume_single(), catalog::resume_fleet_sharded(), catalog::resume_tagged()];
    let mut failures: Vec<String> = Vec::new();
    let mut kill_points = 0usize;
    let mut corrupted = 0usize;
    let n_scenarios = scenarios.len();
    for scenario in scenarios {
        let name = scenario.name.clone();
        let backend = if scenario.total_servers() == 1 {
            "runtime"
        } else if scenario.shards > 1 {
            "cluster/sharded"
        } else {
            "cluster"
        };
        match check_scenario(scenario, quick) {
            Ok(outcome) => {
                println!(
                    "{:<22} {:<16} {:>2} kill points, {} corrupted-tail recoveries{}",
                    name,
                    backend,
                    outcome.kill_points,
                    outcome.corrupted_recoveries,
                    if outcome.failures.is_empty() { " — OK" } else { " — FAILED" }
                );
                kill_points += outcome.kill_points;
                corrupted += outcome.corrupted_recoveries;
                failures.extend(outcome.failures);
            }
            Err(e) => failures.push(format!("{name}: {e}")),
        }
    }

    let mismatch_failures = check_mismatches();
    let mismatches_ok = mismatch_failures.is_empty();
    println!(
        "{:<22} {:<16} schema/seed/config rejections{}",
        "mismatch-typing",
        "journal",
        if mismatches_ok { " — OK" } else { " — FAILED" }
    );
    failures.extend(mismatch_failures);

    let ok = failures.is_empty();
    summary.field("scenarios", JsonValue::Int(n_scenarios as u64));
    summary.field("kill_points", JsonValue::Int(kill_points as u64));
    summary.field("corrupted_tail_recoveries", JsonValue::Int(corrupted as u64));
    summary.field("mismatches_typed", JsonValue::Bool(mismatches_ok));
    summary.finish(ok, 0);

    if !ok {
        for failure in &failures {
            eprintln!("RESUME GATE FAILED: {failure}");
        }
        std::process::exit(1);
    }
    println!("resume gate: kill-at-every-epoch × resume ≡ uninterrupted, byte for byte — OK");
}
