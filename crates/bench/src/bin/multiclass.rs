//! Multi-class traffic gate: proves the tagged subsystem changed
//! *nothing* it wasn't asked to change, and delivers what it was.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin multiclass
//! cargo run --release -p sleepscale-bench --bin multiclass -- --quick
//! ```
//!
//! Checks (each must hold or the bin exits non-zero):
//!
//! 1. **Single-server parity** — a single-class `Tagged` scenario's
//!    report equals the untagged `Custom` scenario's **byte for byte**
//!    (native `RunReport`, streaming responses, group slices, cache
//!    telemetry): the tag layer costs the untagged path nothing.
//! 2. **Fleet parity** — the same equality through the cluster engine
//!    (`ClusterReport`, per-server summaries, energy to the last bit).
//! 3. **Two-class QoS** — the `dns-mail-tagged-mix` catalog scenario
//!    reports *distinct* per-class p95s, its class slices partition
//!    the fleet's jobs, and the interactive class meets its own
//!    normalized-p95 budget.
//! 4. **Flash crowd** — the `flash-crowd-day` catalog scenario stays
//!    per-class QoS-feasible *through* its 3× burst window.
//!
//! Results land in `results/multiclass.csv` and the machine-readable
//! summary `results/bench_multiclass.json`.

use sleepscale_scenario::catalog;
use sleepscale_scenario::prelude::*;
use sleepscale_workloads::WorkloadSpec;

fn parity_pair(n_servers: usize, quick: bool) -> (Scenario, Scenario) {
    let load = if quick {
        LoadSchedule::Constant { rho: 0.25, minutes: 45 }
    } else {
        LoadSchedule::EmailStoreDay { seed: 7, start_minute: 480, end_minute: 660 }
    };
    let mut untagged =
        Scenario::new("multiclass-parity", WorkloadSource::Custom(WorkloadSpec::dns()), load);
    untagged.eval_jobs = if quick { 200 } else { 400 };
    untagged.dist_samples = 5_000;
    untagged.seed = 7_401;
    untagged.fleet = vec![ServerGroup::new("fleet", n_servers, StrategySpec::sleepscale())];
    let mut tagged = untagged.clone();
    tagged.workload = WorkloadSource::Tagged(TrafficModel::single(WorkloadSpec::dns()));
    (untagged, tagged)
}

/// Byte-parity between the untagged scenario and its tagged twin:
/// every shared component of the report must be `==` (the tagged run
/// additionally carries its declared-class overlay, which the untagged
/// run by definition lacks). Returns a failure description, or the
/// job count on success.
fn check_parity(n_servers: usize, quick: bool) -> Result<usize, String> {
    let (untagged, tagged) = parity_pair(n_servers, quick);
    let a = ScenarioRunner::new(untagged)
        .map_err(|e| format!("untagged invalid: {e}"))?
        .run()
        .map_err(|e| format!("untagged run failed: {e}"))?;
    let b = ScenarioRunner::new(tagged)
        .map_err(|e| format!("tagged invalid: {e}"))?
        .run()
        .map_err(|e| format!("tagged run failed: {e}"))?;
    if a.run_report() != b.run_report() {
        return Err("RunReport diverged".into());
    }
    if a.cluster_report() != b.cluster_report() {
        return Err("ClusterReport diverged".into());
    }
    if a.responses() != b.responses() {
        return Err("streaming response summaries diverged".into());
    }
    if a.groups() != b.groups() {
        return Err("group slices diverged".into());
    }
    if a.cache_stats() != b.cache_stats() || a.warm_start_stats() != b.warm_start_stats() {
        return Err("characterization telemetry diverged".into());
    }
    if a.horizon_seconds() != b.horizon_seconds() {
        return Err("horizons diverged".into());
    }
    if a.total_jobs() == 0 {
        return Err("parity run produced no jobs".into());
    }
    // The overlay itself must agree with the run it slices.
    if b.classes().len() != 1 || b.classes()[0].jobs != a.total_jobs() {
        return Err("single-class overlay does not cover the whole run".into());
    }
    Ok(a.total_jobs())
}

fn run_catalog_scenario(scenario: Scenario, quick: bool) -> Result<ScenarioReport, String> {
    let scenario = if quick { scenario.quick() } else { scenario };
    ScenarioRunner::new(scenario)
        .map_err(|e| format!("invalid: {e}"))?
        .run()
        .map_err(|e| format!("run failed: {e}"))
}

fn check_two_class_qos(quick: bool) -> Result<String, String> {
    let report = run_catalog_scenario(catalog::dns_mail_tagged(), quick)?;
    let classes = report.classes();
    if classes.len() != 2 {
        return Err(format!("expected 2 class slices, got {}", classes.len()));
    }
    let sliced: usize = classes.iter().map(|c| c.jobs).sum();
    if sliced != report.total_jobs() {
        return Err(format!("class slices cover {sliced} of {} jobs", report.total_jobs()));
    }
    let (p0, p1) = (classes[0].p95_response_seconds, classes[1].p95_response_seconds);
    if (p0 - p1).abs() / p0.max(1e-12) < 0.02 {
        return Err(format!("per-class p95s not distinct: {p0} vs {p1}"));
    }
    if !classes[0].qos_ok {
        return Err(format!(
            "interactive class misses its budget: p95 {:.2}×µ vs {:?}×",
            classes[0].normalized_p95, classes[0].p95_budget
        ));
    }
    if !report.qos_ok() {
        return Err("scenario finished QoS-infeasible".into());
    }
    Ok(format!(
        "interactive p95 {:.1} ms ({:.1}xU) vs batch {:.1} ms ({:.1}xU)",
        p0 * 1e3,
        classes[0].normalized_p95,
        p1 * 1e3,
        classes[1].normalized_p95
    ))
}

fn check_flash_crowd(quick: bool) -> Result<String, String> {
    let report = run_catalog_scenario(catalog::flash_crowd_day(), quick)?;
    for class in report.classes() {
        if !class.qos_ok {
            return Err(format!(
                "class '{}' misses its budget through the burst: p95 {:.2}xU vs {:?}x",
                class.name, class.normalized_p95, class.p95_budget
            ));
        }
        if class.jobs == 0 {
            return Err(format!("class '{}' produced no jobs", class.name));
        }
    }
    if !report.qos_ok() {
        return Err("scenario finished QoS-infeasible".into());
    }
    let interactive = &report.classes()[0];
    Ok(format!(
        "interactive rode the 3x burst at p95 {:.1} ms ({:.1}xU)",
        interactive.p95_response_seconds * 1e3,
        interactive.normalized_p95
    ))
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut summary = sleepscale_bench::GateSummary::start("multiclass", quick);
    println!("== multiclass gate{} ==", if quick { " (quick)" } else { "" });

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut failed = false;
    let mut record = |check: &str, outcome: Result<String, String>| {
        let ok = outcome.is_ok();
        let detail = match outcome {
            Ok(d) => d,
            Err(e) => e,
        };
        println!("{} {:<22} {}", if ok { "PASS" } else { "FAIL" }, check, detail);
        rows.push(vec![check.into(), (ok as u8).to_string(), detail]);
        failed |= !ok;
    };

    record(
        "parity-single-server",
        check_parity(1, quick).map(|jobs| format!("byte-identical over {jobs} jobs")),
    );
    record(
        "parity-fleet",
        check_parity(if quick { 2 } else { 4 }, quick)
            .map(|jobs| format!("byte-identical over {jobs} jobs")),
    );
    record("two-class-qos", check_two_class_qos(quick));
    record("flash-crowd-qos", check_flash_crowd(quick));

    let path = sleepscale_bench::require_io(
        "writing multiclass.csv",
        sleepscale_bench::write_csv("multiclass", &["check", "ok", "detail"], &rows),
    );
    println!("\nwrote {}", path.display());
    let passed = rows.iter().filter(|r| r[1] == "1").count();
    summary.field("checks_total", sleepscale_bench::JsonValue::Int(rows.len() as u64));
    summary.field("checks_passed", sleepscale_bench::JsonValue::Int(passed as u64));
    summary.finish(!failed, 0);
    if failed {
        eprintln!("MULTICLASS GATE FAILED");
        std::process::exit(1);
    }
    println!("multiclass gate: all checks passed — OK");
    Ok(())
}
