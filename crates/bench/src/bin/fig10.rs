//! Regenerates Figure 10. `--quick` shrinks the evaluation window.
fn main() -> std::io::Result<()> {
    let q = if std::env::args().any(|a| a == "--quick") {
        sleepscale_bench::Quality::Quick
    } else {
        sleepscale_bench::Quality::Full
    };
    sleepscale_bench::figures::fig10::run_figure(q)
}
