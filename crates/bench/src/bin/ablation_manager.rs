//! Ablation: simulation-driven vs closed-form policy management.
//!
//! Section 5.1.2, observation 3: "Often the idealized model computes
//! the best choice of low-power state, but not the frequency setting …
//! one can rely simply on the idealized model without simulation." This
//! bin runs the Figure-9 scenario with both managers and reports the
//! realized power/response plus how often their choices agreed.

use sleepscale::{
    run, AnalyticStrategy, CandidateSet, QosConstraint, RuntimeConfig, SleepScaleStrategy,
};
use sleepscale_bench::figures::fig8::dns_day;
use sleepscale_bench::Quality;
use sleepscale_predict::LmsCusum;
use sleepscale_sim::SimEnv;

fn main() {
    let q = if std::env::args().any(|a| a == "--quick") { Quality::Quick } else { Quality::Full };
    let (trace, jobs, spec) = dns_day(q, 7500);
    let env = SimEnv::xeon_cpu_bound();
    let config = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).expect("valid"))
        .epoch_minutes(5)
        .eval_jobs(q.eval_jobs())
        .over_provisioning(0.35)
        .build()
        .expect("valid config");

    let mut sim_mgr = SleepScaleStrategy::new(&config, CandidateSet::standard())
        .with_predictor(Box::new(LmsCusum::new(10)));
    let sim_report = run(&trace, &jobs, &mut sim_mgr, &env, &config).expect("runtime completes");

    let mut ana_mgr = AnalyticStrategy::new(&config, CandidateSet::standard())
        .with_predictor(Box::new(LmsCusum::new(10)));
    let ana_report = run(&trace, &jobs, &mut ana_mgr, &env, &config).expect("runtime completes");

    println!("== Ablation: policy manager backend (DNS on email-store day) ==");
    println!("{:>24} {:>12} {:>12}", "manager", "mu*E[R]", "E[P] (W)");
    for r in [&sim_report, &ana_report] {
        println!(
            "{:>24} {:>12.2} {:>12.1}",
            r.strategy(),
            r.normalized_mean_response(),
            r.avg_power_watts()
        );
    }

    // Per-epoch agreement between the two managers.
    let epochs = sim_report.epochs().len().min(ana_report.epochs().len());
    let mut state_agree = 0usize;
    let mut freq_gap_sum = 0.0;
    for (a, b) in sim_report.epochs().iter().zip(ana_report.epochs()) {
        if a.program_label == b.program_label {
            state_agree += 1;
        }
        freq_gap_sum += (a.frequency - b.frequency).abs();
    }
    println!(
        "\nstate agreement: {:.0}% of {} epochs; mean |Δf| = {:.3}",
        100.0 * state_agree as f64 / epochs.max(1) as f64,
        epochs,
        freq_gap_sum / epochs.max(1) as f64
    );
    println!(
        "(the closed form evaluates a policy in ~100 ns vs ~ms of simulation —\n\
         see `cargo bench -p sleepscale-bench`)"
    );
}
