//! Regenerates Figure 4. `--quick` shrinks grids for a fast pass.
fn main() -> std::io::Result<()> {
    let q = if std::env::args().any(|a| a == "--quick") {
        sleepscale_bench::Quality::Quick
    } else {
        sleepscale_bench::Quality::Full
    };
    sleepscale_bench::figures::fig4::run(q)
}
