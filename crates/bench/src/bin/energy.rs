//! Energy-attribution gate: proves the exact per-class ledger split is
//! (a) free on every untouched path, (b) internally consistent, and
//! (c) *different* from the legacy work-share formula exactly where the
//! physics says it must be.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin energy
//! cargo run --release -p sleepscale-bench --bin energy -- --quick
//! ```
//!
//! Checks (each must hold or the bin exits non-zero):
//!
//! 1. **Total-energy byte parity** — tagging instrumentation changes
//!    nothing on untouched paths: a single-class `Tagged` scenario's
//!    fleet energy equals its untagged twin's **to the last bit**, on
//!    both the single-server (`RunReport`) and cluster backends, and a
//!    repeated run reproduces the same bytes.
//! 2. **Line-item identity** — active + idle reproduces the fleet
//!    total, the per-class active slices sum to the fleet's active
//!    energy, and the "idle apportioned by active share" class view
//!    sums back to the fleet total.
//! 3. **Thread invariance** — the class-tagged energy slices (and the
//!    whole `ClusterReport`) are identical across worker thread
//!    counts: merging happens in slot order, never in completion order.
//! 4. **Zero-work idle line item** — a zero-arrival scenario reports
//!    all energy as the explicit idle line item: active is exactly 0,
//!    every class slice is 0, and class totals + idle still reproduce
//!    the fleet total.
//! 5. **Exact ≠ work-share divergence** — on a two-class fleet where
//!    one class's arrivals burst 10× over a window, the bursting
//!    class's *exact* active-energy share diverges from its work share
//!    in the expected direction: the burst drives the controllers to
//!    higher frequencies, and on the cpu-bound Xeon model energy per
//!    unit of work `P(f)/f = 130f² + 120/f` *falls* steeply as f rises
//!    out of the low-load regime (the 120 W platform floor dominates
//!    slow serving). The burst class's work therefore lands in the
//!    *efficient* windows, so its exact share < work share — the
//!    time-blind work-share formula overbills it and quietly
//!    subsidizes the steady class.
//!
//! Results land in `results/energy.csv` and the machine-readable
//! summary `results/bench_energy.json`.

use sleepscale_scenario::catalog;
use sleepscale_scenario::prelude::*;
use sleepscale_workloads::WorkloadSpec;

/// Relative-error helper for line-item identities: the idle line item
/// is *derived* (`total − active`), so `active + idle` is not
/// guaranteed bit-equal to `total` — but it must agree far past any
/// physical precision.
fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(1e-12)
}

fn parity_pair(n_servers: usize, quick: bool) -> (Scenario, Scenario) {
    let load = if quick {
        LoadSchedule::Constant { rho: 0.25, minutes: 45 }
    } else {
        LoadSchedule::EmailStoreDay { seed: 11, start_minute: 480, end_minute: 660 }
    };
    let mut untagged =
        Scenario::new("energy-parity", WorkloadSource::Custom(WorkloadSpec::dns()), load);
    untagged.eval_jobs = if quick { 200 } else { 400 };
    untagged.dist_samples = 5_000;
    untagged.seed = 9_604;
    untagged.fleet = vec![ServerGroup::new("fleet", n_servers, StrategySpec::sleepscale())];
    let mut tagged = untagged.clone();
    tagged.workload = WorkloadSource::Tagged(TrafficModel::single(WorkloadSpec::dns()));
    (untagged, tagged)
}

fn run(scenario: Scenario) -> Result<ScenarioReport, String> {
    let name = scenario.name.clone();
    ScenarioRunner::new(scenario)
        .map_err(|e| format!("{name}: invalid: {e}"))?
        .run()
        .map_err(|e| format!("{name}: run failed: {e}"))
}

/// Check 1: the ledger's total on every untouched path is the same
/// `energy_joules` the reports always carried — to the last bit —
/// whether or not the run was tagged, and across repeated runs.
fn check_total_parity(n_servers: usize, quick: bool) -> Result<String, String> {
    let (untagged, tagged) = parity_pair(n_servers, quick);
    let a = run(untagged.clone())?;
    let b = run(tagged)?;
    let again = run(untagged)?;
    if a.energy_joules().to_bits() != again.energy_joules().to_bits() {
        return Err("repeat run changed energy bytes".into());
    }
    if a.energy_joules().to_bits() != b.energy_joules().to_bits() {
        return Err(format!(
            "tagging changed total energy bytes: {} vs {}",
            a.energy_joules(),
            b.energy_joules()
        ));
    }
    if a.active_energy_joules().to_bits() != b.active_energy_joules().to_bits() {
        return Err("tagging changed active energy bytes".into());
    }
    // The backends' native reports must agree wholesale, not just on
    // the headline number.
    if a.run_report() != b.run_report() || a.cluster_report() != b.cluster_report() {
        return Err("native report diverged between tagged and untagged twins".into());
    }
    if a.total_jobs() == 0 {
        return Err("parity run produced no jobs".into());
    }
    Ok(format!(
        "{:.0} J bit-identical over {} jobs ({} server{})",
        a.energy_joules(),
        a.total_jobs(),
        n_servers,
        if n_servers == 1 { "" } else { "s" }
    ))
}

/// Check 2: both published views reproduce the fleet total — the
/// two-line-item split (active + idle) and the per-class apportioned
/// view (Σ class energy == fleet energy).
fn check_line_items(quick: bool) -> Result<String, String> {
    let report =
        run(if quick { catalog::dns_mail_tagged().quick() } else { catalog::dns_mail_tagged() })?;
    let total = report.energy_joules();
    let active = report.active_energy_joules();
    let idle = report.idle_energy_joules();
    if !(active > 0.0 && idle > 0.0) {
        return Err(format!("degenerate split: active {active} J, idle {idle} J"));
    }
    if rel_err(active + idle, total) > 1e-9 {
        return Err(format!("active {active} + idle {idle} != total {total}"));
    }
    let class_active: f64 = report.classes().iter().map(|c| c.active_energy_joules).sum();
    if rel_err(class_active, active) > 1e-6 {
        return Err(format!("class active slices sum to {class_active}, fleet active {active}"));
    }
    let class_total: f64 = report.classes().iter().map(|c| c.energy_joules).sum();
    if rel_err(class_total, total) > 1e-6 {
        return Err(format!("apportioned class view sums to {class_total}, fleet {total}"));
    }
    Ok(format!(
        "active {:.0} J + idle {:.0} J = {:.0} J; {} class slices close both ways",
        active,
        idle,
        total,
        report.classes().len()
    ))
}

/// Check 3: the tagged slices are merged in slot order in the cluster
/// engine's serial summary loop, so worker-thread count cannot perturb
/// a single byte of the report.
fn check_thread_invariance(quick: bool) -> Result<String, String> {
    let base = if quick { catalog::dns_mail_tagged().quick() } else { catalog::dns_mail_tagged() };
    let mut serial = base.clone();
    serial.threads = 1;
    let reference = run(serial)?;
    for threads in [2, 5] {
        let mut scenario = base.clone();
        scenario.threads = threads;
        let report = run(scenario)?;
        if report.classes() != reference.classes() {
            return Err(format!("class slices diverged at {threads} threads"));
        }
        if report.cluster_report() != reference.cluster_report() {
            return Err(format!("ClusterReport diverged at {threads} threads"));
        }
    }
    Ok(format!(
        "{} class slices byte-stable across 1/2/5 worker threads",
        reference.classes().len()
    ))
}

/// Check 4: with no arrivals at all, the whole fleet total is the idle
/// line item and every class reports exactly zero — yet the class view
/// plus the idle line item still reproduces fleet energy.
fn check_zero_work() -> Result<String, String> {
    let mut scenario = Scenario::new(
        "energy-zero-work",
        WorkloadSource::Tagged(TrafficModel {
            classes: vec![
                TrafficClass::new("interactive", WorkloadSpec::dns(), 1.0),
                TrafficClass::new("batch", WorkloadSpec::mail(), 1.0),
            ],
        }),
        LoadSchedule::Constant { rho: 0.0, minutes: 30 },
    );
    scenario.fleet = vec![ServerGroup::new("dark", 2, StrategySpec::sleepscale())];
    scenario.seed = 9_605;
    let report = run(scenario)?;
    if report.total_jobs() != 0 {
        return Err(format!("expected zero work, got {} jobs", report.total_jobs()));
    }
    let total = report.energy_joules();
    if total <= 0.0 {
        return Err("idle fleet burned no energy".into());
    }
    if report.active_energy_joules() != 0.0 {
        return Err(format!("zero-work active energy {} != 0", report.active_energy_joules()));
    }
    if report.idle_energy_joules().to_bits() != total.to_bits() {
        return Err("idle line item != fleet total on a zero-work run".into());
    }
    let class_sum: f64 = report.classes().iter().map(|c| c.energy_joules).sum();
    if class_sum != 0.0 {
        return Err(format!("zero-work class view sums to {class_sum} != 0"));
    }
    if rel_err(class_sum + report.idle_energy_joules(), total) > 1e-12 {
        return Err("class view + idle line item != fleet total".into());
    }
    Ok(format!("{total:.0} J, all on the idle line item; every class slice 0"))
}

/// Check 5: the tentpole's raison d'être. A low base load (ρ = 0.08)
/// keeps the off-peak controllers at cheap-to-deploy but
/// expensive-per-work low frequencies, while a 10× burst confined to
/// one class pushes its serving into high-frequency windows where
/// `P(f)/f` is far lower. The burst class's exact active-energy share
/// must therefore land *below* its time-blind work share — measured at
/// ~1–2 pp on this shape. A vanishing or positive gap means the exact
/// split degenerated back into work share.
fn check_divergence(quick: bool) -> Result<String, String> {
    let minutes = if quick { 90 } else { 180 };
    let mut scenario = Scenario::new(
        "energy-attribution-divergence",
        WorkloadSource::Tagged(TrafficModel {
            classes: vec![
                TrafficClass::new("crowd", WorkloadSpec::dns(), 1.0).with_modulator(
                    ArrivalModulator::Burst {
                        start_minute: minutes / 6,
                        end_minute: minutes / 2,
                        factor: 10.0,
                    },
                ),
                TrafficClass::new("steady", WorkloadSpec::dns(), 1.0),
            ],
        }),
        LoadSchedule::Constant { rho: 0.08, minutes },
    );
    scenario.fleet = vec![ServerGroup::new("fleet", 2, StrategySpec::sleepscale())];
    scenario.eval_jobs = 300;
    scenario.seed = 4_242;
    // The gate is about attribution, not feasibility: a 10× unpredicted
    // crowd on an unpadded fleet is allowed to blow its nominal budget.
    scenario.qos_slack = 100.0;
    let report = run(scenario)?;
    let classes = report.classes();
    if classes.len() != 2 {
        return Err(format!("expected 2 classes, got {}", classes.len()));
    }
    let active_total: f64 = classes.iter().map(|c| c.active_energy_joules).sum();
    if active_total <= 0.0 {
        return Err("no active energy to attribute".into());
    }
    let crowd = &classes[0];
    let exact_share = crowd.active_energy_joules / active_total;
    let work_share = crowd.work_share;
    let gap = exact_share - work_share;
    if gap >= 0.0 {
        return Err(format!(
            "burst class exact share {exact_share:.4} did not fall below work share \
             {work_share:.4}"
        ));
    }
    if gap.abs() < 1e-3 {
        return Err(format!(
            "exact share {exact_share:.4} vs work share {work_share:.4}: gap {gap:.2e} too small \
             to distinguish the attributions"
        ));
    }
    Ok(format!(
        "burst class: exact {:.2}% vs work-share {:.2}% ({:+.2} pp over {} jobs)",
        exact_share * 100.0,
        work_share * 100.0,
        gap * 100.0,
        crowd.jobs
    ))
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut summary = sleepscale_bench::GateSummary::start("energy", quick);
    println!("== energy gate{} ==", if quick { " (quick)" } else { "" });

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut failed = false;
    let mut record = |check: &str, outcome: Result<String, String>| {
        let ok = outcome.is_ok();
        let detail = match outcome {
            Ok(d) => d,
            Err(e) => e,
        };
        println!("{} {:<26} {}", if ok { "PASS" } else { "FAIL" }, check, detail);
        rows.push(vec![check.into(), (ok as u8).to_string(), detail]);
        failed |= !ok;
    };

    record("total-parity-single", check_total_parity(1, quick));
    record("total-parity-fleet", check_total_parity(if quick { 2 } else { 4 }, quick));
    record("line-item-identity", check_line_items(quick));
    record("thread-invariance", check_thread_invariance(quick));
    record("zero-work-idle", check_zero_work());
    record("exact-vs-work-share", check_divergence(quick));

    let path = sleepscale_bench::require_io(
        "writing energy.csv",
        sleepscale_bench::write_csv("energy", &["check", "ok", "detail"], &rows),
    );
    println!("\nwrote {}", path.display());
    let passed = rows.iter().filter(|r| r[1] == "1").count();
    summary.field("checks_total", sleepscale_bench::JsonValue::Int(rows.len() as u64));
    summary.field("checks_passed", sleepscale_bench::JsonValue::Int(passed as u64));
    summary.finish(!failed, 0);
    if failed {
        eprintln!("ENERGY GATE FAILED");
        std::process::exit(1);
    }
    println!("energy gate: all checks passed — OK");
    Ok(())
}
