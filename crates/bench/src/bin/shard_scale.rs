//! Gates the sharded mega-fleet engine (PR 7).
//!
//! Two checks:
//!
//! 1. **Byte parity.** The catalog's 64-server `fleet64` day (reduced
//!    under `--quick`), with the dispatcher switched to seeded-hash
//!    routing, must produce a byte-identical `ClusterReport` from
//!    `Cluster::run_sharded` for every shard count in {1, 2, 4, 7} —
//!    and from the central engine with a `SplitUniform` dispatcher
//!    over the same seed. One shard *is* today's engine; more shards
//!    change wall-clock only.
//! 2. **Mega-fleet throughput** (full mode only). A 100 000-server
//!    race-to-halt fleet over a 10-minute constant-ρ window (~46 M
//!    jobs) must dispatch at ≥ 10 M jobs/sec aggregate on ≥ 4 hardware
//!    threads; on smaller machines the bar scales linearly
//!    (`10 M × min(cores, 4) / 4` — 2.5 M jobs/sec on one core), since
//!    shard concurrency cannot manufacture cores.
//!
//! Run with `cargo run --release -p sleepscale-bench --bin shard_scale`
//! (`--quick` for parity-only on the reduced fleet). Emits
//! `results/shard_scale.csv` and the machine-readable
//! `results/bench_shard_scale.json`; exits non-zero on any parity
//! break or a missed throughput bar.

use rand::SeedableRng;
use sleepscale::{QosConstraint, RuntimeConfig, StrategySpec};
use sleepscale_bench::{require_io, write_csv, GateSummary, JsonValue};
use sleepscale_cluster::{Cluster, ClusterConfig, ClusterReport, ServerGroup, SplitUniform};
use sleepscale_scenario::{catalog, DispatcherSpec, ScenarioRunner};
use sleepscale_sim::StreamSplit;
use sleepscale_workloads::{
    replay_trace, ReplayConfig, UtilizationTrace, WorkloadDistributions, WorkloadSpec,
};
use std::time::Instant;

/// The split seed the parity fleet routes under (arbitrary, pinned).
const SPLIT_SEED: u64 = 64;

struct ParityRun {
    shards: usize,
    wall_ms: f64,
    jobs_per_sec: f64,
    identical: bool,
}

/// Runs the parity fleet centrally (`SplitUniform`) and sharded for
/// every count in `shard_counts`, returning per-count timings and
/// whether each report matched the central bytes.
fn parity(quick: bool, shard_counts: &[usize]) -> (usize, usize, usize, Vec<ParityRun>) {
    let mut scenario = catalog::fleet64();
    scenario.dispatcher = DispatcherSpec::SplitUniform { seed: SPLIT_SEED };
    if quick {
        scenario = scenario.quick();
    }
    let n_servers = scenario.total_servers();
    let minutes = scenario.load.minutes();
    let runner = ScenarioRunner::new(scenario.clone()).expect("catalog scenario is valid");
    let (spec, trace, jobs) = runner.inputs().expect("inputs materialize");
    let base = runner.base_runtime(&spec).expect("valid runtime config");
    let config = ClusterConfig::new(&base, scenario.fleet.clone()).expect("valid fleet");

    println!(
        "== shard_scale parity: {n_servers}-server fleet64 day, {minutes} min, {} jobs ==",
        jobs.len()
    );
    let reference = {
        let mut cluster = Cluster::new(config.clone());
        cluster.run(&trace, &jobs, &mut SplitUniform::new(SPLIT_SEED)).expect("central run")
    };
    let runs = shard_counts
        .iter()
        .map(|&shards| {
            let mut cluster = Cluster::new(config.clone());
            let t0 = Instant::now();
            let report = cluster
                .run_sharded(&trace, &jobs, StreamSplit::new(SPLIT_SEED), shards)
                .expect("sharded run");
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            let identical = identical_reports(&report, &reference);
            println!(
                "shards={shards:<4} wall={wall_ms:>8.0} ms  jobs/sec={:>9.0}  parity: {}",
                jobs.len() as f64 / (wall_ms / 1e3),
                if identical { "identical" } else { "BROKEN" }
            );
            ParityRun {
                shards,
                wall_ms,
                jobs_per_sec: jobs.len() as f64 / (wall_ms / 1e3),
                identical,
            }
        })
        .collect();
    (n_servers, minutes, jobs.len(), runs)
}

/// Byte-level report comparison: structural equality plus bit equality
/// on the aggregate floats (PartialEq alone would accept -0.0 == 0.0).
fn identical_reports(a: &ClusterReport, b: &ClusterReport) -> bool {
    a == b
        && a.mean_response_seconds().to_bits() == b.mean_response_seconds().to_bits()
        && a.p95_response_seconds().to_bits() == b.p95_response_seconds().to_bits()
        && a.total_energy_joules().to_bits() == b.total_energy_joules().to_bits()
        && a.active_energy_joules().to_bits() == b.active_energy_joules().to_bits()
        && a.servers().len() == b.servers().len()
        && a.servers()
            .iter()
            .zip(b.servers())
            .all(|(x, y)| x.energy_joules.to_bits() == y.energy_joules.to_bits())
}

/// Shard sizing for the mega run: ~64 servers per shard keeps each
/// shard's slot working set cache-resident (the dominant cost at this
/// scale is memory traffic, not arithmetic), floored so every
/// hardware thread has plenty of shards to pick up. Determinism is
/// shard-count invariant, so this is purely a throughput choice.
fn mega_shards(n_servers: usize, cores: usize) -> usize {
    (n_servers / 64).max(cores * 64).clamp(1, n_servers)
}

/// The mega-fleet throughput run: `n_servers` race-to-halt servers
/// (no characterization, no record buffers) over a constant-ρ window.
/// Job materialization is excluded from the timed region — the gate
/// measures the dispatch engine, not the RNG.
fn mega(n_servers: usize, cores: usize) -> (usize, f64, f64) {
    let spec = WorkloadSpec::dns();
    let minutes = 10;
    let rho = 0.15;
    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).expect("valid qos"))
        .epoch_minutes(5)
        .eval_jobs(50)
        .build()
        .expect("valid runtime");
    let groups = vec![ServerGroup::new("race", n_servers, StrategySpec::race_to_halt_c6())];
    let config = ClusterConfig::new(&runtime, groups).expect("valid fleet");
    let mut rng = rand::rngs::StdRng::seed_from_u64(100_000);
    let dists = WorkloadDistributions::empirical(&spec, 8_000, &mut rng).expect("tables fit");
    let trace = UtilizationTrace::constant(rho, minutes).expect("valid trace");
    println!("\n== shard_scale mega: materializing the {n_servers}-server stream... ==");
    let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n_servers), &mut rng)
        .expect("valid replay");
    let shards = mega_shards(n_servers, cores);
    println!(
        "{} jobs over {n_servers} servers, {shards} shards, {cores} hardware threads",
        jobs.len()
    );
    let mut cluster = Cluster::new(config);
    let t0 = Instant::now();
    let report = cluster
        .run_sharded(&trace, &jobs, StreamSplit::new(SPLIT_SEED), shards)
        .expect("mega run succeeds");
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(report.total_jobs(), jobs.len(), "the fleet must serve every job");
    let jobs_per_sec = jobs.len() as f64 / wall_s;
    println!("mega day: {:.1} s wall, {jobs_per_sec:.0} jobs/sec aggregate", wall_s);
    (jobs.len(), wall_s * 1e3, jobs_per_sec)
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut summary = GateSummary::start("shard_scale", quick);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let shard_counts = [1usize, 2, 4, 7];
    let (n_servers, minutes, parity_jobs, runs) = parity(quick, &shard_counts);
    let parity_ok = runs.iter().all(|r| r.identical);

    let mut rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                "parity".into(),
                n_servers.to_string(),
                r.shards.to_string(),
                minutes.to_string(),
                parity_jobs.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.jobs_per_sec),
                r.identical.to_string(),
                cores.to_string(),
            ]
        })
        .collect();

    // Throughput: full mode runs the 100k-server day; the bar scales
    // with the hardware actually present (the >=10M jobs/sec target
    // assumes >=4 threads).
    let mega_servers = 100_000usize;
    let bar = 10e6 * cores.min(4) as f64 / 4.0;
    let (mega_jobs, mega_wall_ms, mega_jobs_per_sec) =
        if quick { (0, 0.0, 0.0) } else { mega(mega_servers, cores) };
    if !quick {
        rows.push(vec![
            "mega".into(),
            mega_servers.to_string(),
            mega_shards(mega_servers, cores).to_string(),
            "10".into(),
            mega_jobs.to_string(),
            format!("{mega_wall_ms:.1}"),
            format!("{mega_jobs_per_sec:.0}"),
            parity_ok.to_string(),
            cores.to_string(),
        ]);
    }
    let path = require_io(
        "writing shard_scale.csv",
        write_csv(
            "shard_scale",
            &[
                "phase",
                "n_servers",
                "shards",
                "minutes",
                "jobs",
                "wall_ms",
                "jobs_per_sec",
                "parity_ok",
                "hardware_threads",
            ],
            &rows,
        ),
    );
    println!("wrote {}", path.display());

    let throughput_ok = quick || mega_jobs_per_sec >= bar;
    summary.field("parity_n_servers", JsonValue::Int(n_servers as u64));
    summary.field(
        "parity_shard_counts",
        JsonValue::Str(shard_counts.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",")),
    );
    summary.field("parity_ok", JsonValue::Bool(parity_ok));
    summary.field("mega_servers", JsonValue::Int(if quick { 0 } else { mega_servers as u64 }));
    summary.field("mega_jobs", JsonValue::Int(mega_jobs as u64));
    summary.field("mega_jobs_per_sec", JsonValue::Num(mega_jobs_per_sec));
    summary.field("bar_jobs_per_sec", JsonValue::Num(if quick { 0.0 } else { bar }));
    let total_jobs = (parity_jobs * (shard_counts.len() + 1) + mega_jobs) as u64;
    summary.finish(parity_ok && throughput_ok, total_jobs);

    if !parity_ok {
        eprintln!("PARITY FAILED: sharded reports diverged from the central SplitUniform engine");
        std::process::exit(1);
    }
    if quick {
        println!("(quick mode: parity only — the mega-fleet throughput bar is not enforced)");
        return Ok(());
    }
    if mega_jobs_per_sec < bar {
        eprintln!(
            "ACCEPTANCE FAILED: need >={bar:.0} jobs/sec aggregate on {cores} hardware threads \
             (10M scaled by min(cores,4)/4), got {mega_jobs_per_sec:.0}"
        );
        std::process::exit(1);
    }
    println!(
        "acceptance: byte-identical for shards {{1,2,4,7}} and {mega_jobs_per_sec:.0} jobs/sec \
         >= {bar:.0} on {cores} hardware threads — OK"
    );
    Ok(())
}
