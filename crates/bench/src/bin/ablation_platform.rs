//! Ablation: the paper's Table-2 platform (60.5 W idle) vs the platform
//! its prose implies (52.7 W idle — Table 2 minus the chipset; see
//! DESIGN.md §4). Shows how much of the absolute-watts gap between this
//! reproduction and the paper's figures the discrepancy explains.

use sleepscale_bench::{bowl, ideal_stream, Quality};
use sleepscale_power::{presets, FrequencyScaling, SleepProgram, SystemState};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

fn main() {
    let q = if std::env::args().any(|a| a == "--quick") { Quality::Quick } else { Quality::Full };
    let spec = WorkloadSpec::dns();
    let rho = 0.1;
    let jobs = ideal_stream(&spec, rho, q.jobs(), 7400);
    println!("== Ablation: platform constants (DNS-like, rho = {rho}) ==");
    println!("{:>16} {:<12} {:>8} {:>12}", "platform", "state", "best f", "E[P] (W)");
    for (name, model) in
        [("Table 2 (60.5W)", presets::xeon()), ("prose (52.7W)", presets::xeon_prose_variant())]
    {
        let env = SimEnv::new(model, FrequencyScaling::CpuBound);
        for state in [SystemState::C0I_S0I, SystemState::C6_S0I, SystemState::C6_S3] {
            let c = bowl(
                &jobs,
                state.label(),
                &SleepProgram::immediate(presets::immediate_stage(state)),
                rho,
                q.freq_step(),
                spec.service_mean(),
                &env,
            );
            let best = c.min_power_point().expect("non-empty sweep");
            println!("{:>16} {:<12} {:>8.2} {:>12.2}", name, state.label(), best.f, best.power);
        }
    }
}
