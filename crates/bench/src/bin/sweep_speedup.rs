//! Quantifies the characterization-engine overhaul: simulate-call
//! reduction and wall-clock speedup of the pruned (coarse-to-fine) +
//! cached policy search against the paper's literal exhaustive sweep,
//! on the Table-5 DNS workload over a diurnal trace.
//!
//! Since PR 4 both modes run *through the Scenario API*: each mode is
//! the same declarative `Scenario` with a different `StrategySpec`
//! (exhaustive/uncached vs the default pruned+cached), driven by
//! `ScenarioRunner` against one shared set of materialized inputs.
//!
//! Run with `cargo run --release -p sleepscale-bench --bin sweep_speedup`
//! (`--quick` for a shorter window). Emits a comparison table to stdout,
//! `results/sweep_speedup.csv`, and the machine-readable
//! `results/bench_sweep_speedup.json`, and exits non-zero if the
//! overhaul misses its acceptance bars: ≥3× fewer simulate calls per
//! epoch and selected policies within 1% average power of the
//! exhaustive baseline.

use sleepscale::{CandidateSpec, PredictorSpec, RunReport, SearchMode, StrategySpec};
use sleepscale_bench::{GateSummary, JsonValue};
use sleepscale_scenario::{LoadSchedule, Scenario, ScenarioRunner, WorkloadSource};
use std::time::Instant;

struct Mode {
    label: &'static str,
    report: RunReport,
    wall_ms: f64,
}

fn scenario(minutes: usize, eval_jobs: usize, strategy: StrategySpec) -> Scenario {
    // Table-5 DNS service statistics over a diurnal utilization trace
    // (the same recipe for both modes, so the inputs are shared).
    let mut scenario = Scenario::new(
        "sweep-speedup",
        WorkloadSource::Dns,
        LoadSchedule::EmailStoreDay { seed: 7, start_minute: 480, end_minute: 480 + minutes },
    );
    scenario.eval_jobs = eval_jobs;
    scenario.dist_samples = 8_000;
    scenario.seed = 1_405;
    scenario.fleet[0].strategy = strategy;
    scenario
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut summary = GateSummary::start("sweep_speedup", quick);
    // ≥24 epochs of 5 minutes (the acceptance window) — the default is
    // a 6-hour window (72 epochs) so steady-state reuse dominates.
    let minutes = if quick { 120 } else { 360 };
    let eval_jobs = if quick { 500 } else { 1_000 };

    let exhaustive_spec = StrategySpec::SleepScale {
        candidates: CandidateSpec::Standard,
        search: SearchMode::Exhaustive,
        predictor: PredictorSpec::default(),
        cached: false,
    };
    let modes = [("exhaustive", exhaustive_spec), ("pruned+cached", StrategySpec::sleepscale())];

    // One shared set of inputs: both modes replay the same ground
    // truth, so the comparison isolates the search strategy.
    let reference = ScenarioRunner::new(scenario(minutes, eval_jobs, StrategySpec::sleepscale()))
        .expect("valid scenario");
    let (spec, trace, jobs) = reference.inputs().expect("inputs materialize");

    let mut runs: Vec<Mode> = Vec::new();
    for (label, strategy) in modes {
        let runner =
            ScenarioRunner::new(scenario(minutes, eval_jobs, strategy)).expect("valid scenario");
        let t0 = Instant::now();
        let report = runner.run_with_inputs(&spec, &trace, &jobs).expect("scenario run succeeds");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let report =
            report.run_report().expect("single-server scenarios run the runtime backend").clone();
        runs.push(Mode { label, report, wall_ms });
    }
    let (exhaustive, pruned) = (&runs[0], &runs[1]);

    let epochs = exhaustive.report.epochs().len();
    println!("== sweep_speedup: DNS (Table 5), {epochs} epochs of 5 min ==");
    println!(
        "{:<14} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "mode", "simulate calls", "calls/epoch", "E[P] (W)", "mu*E[R]", "wall (ms)"
    );
    let mut rows = Vec::new();
    for mode in [exhaustive, pruned] {
        let calls = mode.report.total_evaluated();
        let per_epoch = calls as f64 / epochs as f64;
        println!(
            "{:<14} {:>14} {:>12.1} {:>12.2} {:>12.3} {:>10.0}",
            mode.label,
            calls,
            per_epoch,
            mode.report.avg_power_watts(),
            mode.report.normalized_mean_response(),
            mode.wall_ms
        );
        rows.push(vec![
            mode.label.to_string(),
            epochs.to_string(),
            calls.to_string(),
            format!("{per_epoch:.2}"),
            format!("{:.3}", mode.report.avg_power_watts()),
            format!("{:.4}", mode.report.normalized_mean_response()),
            format!("{:.1}", mode.wall_ms),
        ]);
    }

    let call_ratio =
        exhaustive.report.total_evaluated() as f64 / pruned.report.total_evaluated().max(1) as f64;
    let wall_ratio = exhaustive.wall_ms / pruned.wall_ms.max(1e-9);
    let power_gap = (pruned.report.avg_power_watts() - exhaustive.report.avg_power_watts())
        / exhaustive.report.avg_power_watts();
    println!(
        "\nsimulate-call reduction: {call_ratio:.1}x   wall-clock speedup: {wall_ratio:.1}x   \
         power delta: {:+.2}%",
        power_gap * 100.0
    );

    let path = sleepscale_bench::write_csv(
        "sweep_speedup",
        &[
            "mode",
            "epochs",
            "simulate_calls",
            "calls_per_epoch",
            "avg_power_w",
            "norm_response",
            "wall_ms",
        ],
        &rows,
    )?;
    println!("wrote {}", path.display());

    // Quick mode is a smoke test; the acceptance bars are defined on
    // the full 72-epoch window where steady-state reuse dominates the
    // warm-up transient.
    let ok = quick || (call_ratio >= 3.0 && power_gap.abs() <= 0.01);
    summary.field("epochs", JsonValue::Int(epochs as u64));
    summary.field("simulate_call_reduction", JsonValue::Num(call_ratio));
    summary.field("speedup", JsonValue::Num(wall_ratio));
    summary.field("power_delta_pct", JsonValue::Num(power_gap * 100.0));
    summary.finish(ok, 2 * jobs.len() as u64);

    if quick {
        println!("(quick mode: acceptance not enforced)");
        return Ok(());
    }
    if !ok {
        eprintln!(
            "ACCEPTANCE FAILED: need >=3x call reduction (got {call_ratio:.1}x) and |power delta| \
             <= 1% (got {:.2}%)",
            power_gap * 100.0
        );
        std::process::exit(1);
    }
    println!("acceptance: >=3x fewer simulate calls and power within 1% — OK");
    Ok(())
}
