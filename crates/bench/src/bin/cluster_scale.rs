//! Gates the scale-out cluster-engine overhaul: wall-clock speedup and
//! report parity of the incremental-dispatch + parallel-epoch +
//! streaming-statistics engine against the PR-2 serial engine
//! (per-job O(N) fleet-snapshot rebuild, serial epoch control,
//! O(total-jobs) response collection), on a 64-server Table-5 DNS day
//! under join-shortest-backlog dispatch.
//!
//! Since PR 4 the scale-out side runs *through the Scenario API*: the
//! fleet is the catalog's `fleet-64-homogeneous` scenario driven by
//! `ScenarioRunner`, so this gate also proves the declarative path
//! reproduces the hand-wired engine byte for byte.
//!
//! Run with `cargo run --release -p sleepscale-bench --bin cluster_scale`
//! (`--quick` for a smaller fleet and shorter window). Emits a
//! comparison table to stdout and `results/cluster_scale.csv`, and
//! exits non-zero unless the new engine is ≥4× faster with
//! statistically identical reports: same job totals, same per-server
//! job counts, per-server energy within 1e-6 relative.

use sleepscale::RuntimeConfig;
use sleepscale_cluster::Cluster;
use sleepscale_scenario::{catalog, ScenarioRunner};
use sleepscale_sim::JobStream;
use sleepscale_workloads::UtilizationTrace;
use std::time::Instant;

/// What both engines must agree on, plus what we time.
struct EngineRun {
    label: &'static str,
    per_server_jobs: Vec<usize>,
    per_server_energy: Vec<f64>,
    total_jobs: usize,
    mean_response: f64,
    p95: f64,
    wall_ms: f64,
}

/// The PR-2 serial cluster engine, preserved as the measurement
/// baseline: for every arriving job it rebuilds an O(N) backlog
/// snapshot and scans it linearly; epoch control (policy selection,
/// log feeding, predictor updates) runs server-by-server; responses
/// collect into an O(total-jobs) vector summarized at the end.
mod serial_reference {
    use sleepscale::{CandidateSet, CharacterizationCache, SleepScaleStrategy, Strategy};
    use sleepscale_dist::SummaryStats;
    use sleepscale_sim::{JobRecord, OnlineSim};

    use super::*;

    struct View {
        index: usize,
        backlog_seconds: f64,
    }

    struct Slot {
        sim: OnlineSim,
        strategy: SleepScaleStrategy,
        policy: Option<sleepscale_power::Policy>,
        epoch_records: Vec<JobRecord>,
        epoch_work: f64,
        all_jobs: usize,
    }

    pub fn run_jsb(
        n_servers: usize,
        runtime: &RuntimeConfig,
        trace: &UtilizationTrace,
        jobs: &JobStream,
    ) -> EngineRun {
        let t0 = Instant::now();
        let epoch_minutes = runtime.epoch_minutes();
        let epoch_seconds = epoch_minutes as f64 * 60.0;
        // Same fleet-sized capacity as the scale-out engine, so both
        // run in the no-eviction regime and produce identical
        // selection sequences (the parity the acceptance checks).
        let cache = CharacterizationCache::new(Cluster::cache_capacity(n_servers));
        let mut slots: Vec<Slot> = (0..n_servers)
            .map(|_| Slot {
                sim: OnlineSim::new(runtime.env().clone(), epoch_seconds),
                strategy: SleepScaleStrategy::new(runtime, CandidateSet::standard())
                    .with_shared_cache(cache.clone()),
                policy: None,
                epoch_records: Vec::new(),
                epoch_work: 0.0,
                all_jobs: 0,
            })
            .collect();

        let total_minutes = trace.len();
        let n_epochs = total_minutes.div_ceil(epoch_minutes);
        let mut responses: Vec<f64> = Vec::with_capacity(jobs.len());
        let mut cursor = jobs.cursor();
        let mut views: Vec<View> = Vec::with_capacity(slots.len());

        for k in 0..n_epochs {
            let epoch_end = (k + 1) as f64 * epoch_seconds;
            for slot in &mut slots {
                slot.policy = Some(slot.strategy.begin_epoch(k).expect("selection succeeds"));
                slot.epoch_records.clear();
                slot.epoch_work = 0.0;
            }
            while let Some(job) = cursor.next_before(epoch_end) {
                views.clear();
                views.extend(slots.iter().enumerate().map(|(index, s)| View {
                    index,
                    backlog_seconds: (s.sim.state().free_time() - job.arrival).max(0.0),
                }));
                let target = views
                    .iter()
                    .min_by(|a, b| {
                        a.backlog_seconds.partial_cmp(&b.backlog_seconds).expect("finite")
                    })
                    .map(|v| v.index)
                    .expect("fleet non-empty");
                let slot = &mut slots[target];
                let policy = slot.policy.as_ref().expect("policy set at epoch start");
                let out = slot.sim.run_epoch(std::slice::from_ref(&job), policy, epoch_end);
                let record = out.records()[0];
                responses.push(record.response());
                slot.all_jobs += 1;
                slot.epoch_work += record.size;
                slot.epoch_records.push(record);
            }
            for slot in &mut slots {
                let records = std::mem::take(&mut slot.epoch_records);
                slot.strategy.end_epoch(&records);
                let pressure = (slot.sim.state().free_time() - epoch_end).max(0.0) / epoch_seconds;
                let rho_server = (slot.epoch_work / epoch_seconds + pressure).clamp(0.0, 0.97);
                let minutes = epoch_minutes.min(total_minutes - k * epoch_minutes);
                for _ in 0..minutes {
                    slot.strategy.observe_minute(rho_server);
                }
            }
        }

        let trace_end = total_minutes as f64 * 60.0;
        let horizon = slots.iter().map(|s| s.sim.state().free_time()).fold(trace_end, f64::max);
        let mut per_server_jobs = Vec::with_capacity(slots.len());
        let mut per_server_energy = Vec::with_capacity(slots.len());
        for slot in slots {
            per_server_jobs.push(slot.all_jobs);
            let (ledger, ..) = slot.sim.finish(horizon);
            per_server_energy.push(ledger.total_energy().as_joules());
        }
        let stats = SummaryStats::from_samples(responses).expect("the day has jobs");
        EngineRun {
            label: "serial (PR-2)",
            per_server_jobs,
            per_server_energy,
            total_jobs: stats.count(),
            mean_response: stats.mean(),
            p95: stats.p95(),
            wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        }
    }
}

/// The scale-out engine, driven entirely through the declarative
/// Scenario API against the same pre-materialized inputs the serial
/// reference consumed.
fn run_scale_out(
    runner: &ScenarioRunner,
    spec: &sleepscale_workloads::WorkloadSpec,
    trace: &UtilizationTrace,
    jobs: &JobStream,
) -> (EngineRun, sleepscale_scenario::ScenarioReport) {
    let t0 = Instant::now();
    let report = runner.run_with_inputs(spec, trace, jobs).expect("scenario run succeeds");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let cluster = report.cluster_report().expect("fleet scenarios run the cluster backend");
    let run = EngineRun {
        label: "scenario (PR-4)",
        per_server_jobs: cluster.servers().iter().map(|s| s.jobs).collect(),
        per_server_energy: cluster.servers().iter().map(|s| s.energy_joules).collect(),
        total_jobs: cluster.total_jobs(),
        mean_response: cluster.mean_response_seconds(),
        p95: cluster.p95_response_seconds(),
        wall_ms,
    };
    (run, report)
}

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut summary = sleepscale_bench::GateSummary::start("cluster_scale", quick);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut scenario = catalog::fleet64();
    if quick {
        scenario = scenario.quick();
    }
    // The characterization depth the cluster suites use (identical for
    // both engines; `SS_EVAL_JOBS` overrides for experiments).
    if let Some(eval) = std::env::var("SS_EVAL_JOBS").ok().and_then(|v| v.parse().ok()) {
        scenario.eval_jobs = eval;
    }
    let n_servers = scenario.total_servers();
    let minutes = scenario.load.minutes();
    let runner = ScenarioRunner::new(scenario).expect("catalog scenario is valid");
    let (spec, trace, jobs) = runner.inputs().expect("inputs materialize");
    let runtime = runner.base_runtime(&spec).expect("valid runtime config");

    println!(
        "== cluster_scale: {n_servers}-server DNS (Table 5) fleet, {minutes} min, {} jobs ==",
        jobs.len()
    );
    // Two timed passes per engine, keeping the faster wall clock for
    // the ratio (shared-container scheduling noise swamps a single
    // pass); reports are compared from the first pass of each.
    let mut serial = serial_reference::run_jsb(n_servers, &runtime, &trace, &jobs);
    serial.wall_ms =
        serial.wall_ms.min(serial_reference::run_jsb(n_servers, &runtime, &trace, &jobs).wall_ms);
    let (mut scale_out, report) = run_scale_out(&runner, &spec, &trace, &jobs);
    scale_out.wall_ms =
        scale_out.wall_ms.min(run_scale_out(&runner, &spec, &trace, &jobs).0.wall_ms);

    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "engine", "jobs", "wall (ms)", "jobs/sec", "E[R] (ms)", "p95 (ms)"
    );
    let mut rows = Vec::new();
    for run in [&serial, &scale_out] {
        let jobs_per_sec = run.total_jobs as f64 / (run.wall_ms / 1e3);
        println!(
            "{:<18} {:>10} {:>12.0} {:>12.0} {:>12.2} {:>12.2}",
            run.label,
            run.total_jobs,
            run.wall_ms,
            jobs_per_sec,
            run.mean_response * 1e3,
            run.p95 * 1e3
        );
        rows.push(vec![
            run.label.to_string(),
            n_servers.to_string(),
            minutes.to_string(),
            run.total_jobs.to_string(),
            format!("{:.1}", run.wall_ms),
            format!("{jobs_per_sec:.0}"),
            format!("{:.3}", run.per_server_energy.iter().sum::<f64>()),
            format!("{:.6}", run.mean_response),
            format!("{:.6}", run.p95),
            cores.to_string(),
        ]);
    }
    let cache = report.cache_stats();
    let warm = report.warm_start_stats();
    println!(
        "\nshared cache: {} hits / {} misses ({:.0}% hit rate)   warm-started searches: {}/{} \
         ({:.0}%)   boundary hits: {}/{}",
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0,
        warm.warm,
        warm.searches,
        warm.warm_rate() * 100.0,
        warm.boundary_hits,
        warm.boundary_searches
    );

    // Parity: the overhaul must not change what the fleet computed.
    let mut parity_errors = Vec::new();
    if serial.total_jobs != scale_out.total_jobs {
        parity_errors.push(format!("job totals {} vs {}", serial.total_jobs, scale_out.total_jobs));
    }
    if serial.per_server_jobs != scale_out.per_server_jobs {
        parity_errors.push("per-server job counts differ".into());
    }
    for (i, (a, b)) in serial.per_server_energy.iter().zip(&scale_out.per_server_energy).enumerate()
    {
        if (a - b).abs() > 1e-6 * a.abs().max(1.0) {
            parity_errors.push(format!("server {i} energy {a} vs {b}"));
        }
    }
    let mean_gap =
        (serial.mean_response - scale_out.mean_response).abs() / serial.mean_response.max(1e-12);
    if mean_gap > 1e-6 {
        parity_errors.push(format!("mean response rel gap {mean_gap:.2e}"));
    }
    // The streaming p95 is sketched (±0.5% relative by construction).
    let p95_gap = (serial.p95 - scale_out.p95).abs() / serial.p95.max(1e-12);
    if p95_gap > 0.011 {
        parity_errors.push(format!("p95 rel gap {p95_gap:.2e} beyond sketch precision"));
    }
    // Owner election (and hence engine-vs-engine byte parity) is only
    // guaranteed while the fleet cache never evicts.
    if cache.evictions > 0 {
        parity_errors.push(format!(
            "fleet cache evicted {} keys — capacity too small for this day, parity no longer \
             guaranteed",
            cache.evictions
        ));
    }

    let speedup = serial.wall_ms / scale_out.wall_ms.max(1e-9);
    println!(
        "wall-clock speedup: {speedup:.1}x   report parity: {}",
        if parity_errors.is_empty() { "identical" } else { "BROKEN" }
    );

    let path = sleepscale_bench::write_csv(
        "cluster_scale",
        &[
            "engine",
            "n_servers",
            "minutes",
            "jobs",
            "wall_ms",
            "jobs_per_sec",
            "energy_j",
            "mean_response_s",
            "p95_s",
            "hardware_threads",
        ],
        &rows,
    )?;
    println!("wrote {}", path.display());

    // The overhaul has two independent wins: the O(log N) dispatch +
    // streaming statistics (expressed on any machine) and the parallel
    // epoch-control fan-out (needs hardware threads — the owner sweeps
    // are the serial engine's dominant cost and they parallelize across
    // cores). The 4x bar therefore arms where the parallel phases can
    // run; a single-core container can only express the serial-dispatch
    // win and is held to 1.3x (measured ~1.5x, with margin for
    // shared-machine timing noise).
    let bar = if cores >= 4 { 4.0 } else { 1.3 };
    let ok = parity_errors.is_empty() && (quick || speedup >= bar);
    {
        use sleepscale_bench::JsonValue;
        summary.field("n_servers", JsonValue::Int(n_servers as u64));
        summary.field("minutes", JsonValue::Int(minutes as u64));
        summary.field(
            "serial_jobs_per_sec",
            JsonValue::Num(serial.total_jobs as f64 / (serial.wall_ms / 1e3)),
        );
        summary.field(
            "scale_out_jobs_per_sec",
            JsonValue::Num(scale_out.total_jobs as f64 / (scale_out.wall_ms / 1e3)),
        );
        summary.field("speedup", JsonValue::Num(speedup));
        summary.field("parity_ok", JsonValue::Bool(parity_errors.is_empty()));
        // Four timed passes (two per engine) over the same stream.
        summary.finish(ok, 4 * scale_out.total_jobs as u64);
    }

    if !parity_errors.is_empty() {
        for e in &parity_errors {
            eprintln!("PARITY FAILED: {e}");
        }
        std::process::exit(1);
    }
    if quick {
        println!("(quick mode: speedup bar not enforced)");
        return Ok(());
    }
    if speedup < bar {
        eprintln!(
            "ACCEPTANCE FAILED: need >={bar}x over the serial engine on {cores} hardware \
             threads, got {speedup:.1}x"
        );
        std::process::exit(1);
    }
    println!(
        "acceptance: >={bar}x ({cores} hardware threads) with statistically identical reports — OK"
    );
    Ok(())
}
