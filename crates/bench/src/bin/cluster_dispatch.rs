//! Scale-out ablation (the paper's Section 7 future work): fleet power
//! and response under different dispatch disciplines, at low and
//! moderate cluster utilization.

use rand::SeedableRng;
use sleepscale::{QosConstraint, RuntimeConfig};
use sleepscale_bench::Quality;
use sleepscale_cluster::{
    Cluster, ClusterConfig, Dispatcher, JoinShortestBacklog, PackFirstFit, RandomUniform,
    RoundRobin,
};
use sleepscale_workloads::{
    replay_trace, ReplayConfig, UtilizationTrace, WorkloadDistributions, WorkloadSpec,
};

fn main() {
    let q = if std::env::args().any(|a| a == "--quick") { Quality::Quick } else { Quality::Full };
    let n = 8;
    let minutes = q.day_minutes().min(240);
    let spec = WorkloadSpec::dns();
    let runtime = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).expect("valid"))
        .epoch_minutes(5)
        .eval_jobs(q.eval_jobs())
        .over_provisioning(0.0)
        .build()
        .expect("valid config");
    let config = ClusterConfig::homogeneous(n, runtime).expect("valid fleet");

    println!("== Cluster dispatch ablation: {n} servers, DNS-like ==");
    for rho in [0.15, 0.45] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7600 + (rho * 100.0) as u64);
        let dists = WorkloadDistributions::empirical(&spec, 8_000, &mut rng).expect("spec fits");
        let trace = UtilizationTrace::constant(rho, minutes).expect("valid trace");
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng)
            .expect("valid replay");
        println!("\ncluster load {:.0}% ({} jobs over {} min):", rho * 100.0, jobs.len(), minutes);
        println!("{:>24} {:>12} {:>12} {:>10}", "dispatcher", "mu*E[R]", "fleet W", "balance");
        let mut dispatchers: Vec<Box<dyn Dispatcher>> = vec![
            Box::new(RoundRobin::new()),
            Box::new(RandomUniform::new(5)),
            Box::new(JoinShortestBacklog::new()),
            Box::new(PackFirstFit::new(1.0)),
        ];
        for d in dispatchers.iter_mut() {
            let mut cluster = Cluster::new(config.clone());
            let r = cluster.run(&trace, &jobs, d.as_mut()).expect("cluster run completes");
            println!(
                "{:>24} {:>12.2} {:>12.0} {:>10.2}",
                r.dispatcher(),
                r.normalized_mean_response(),
                r.total_power_watts(),
                r.load_balance_index()
            );
        }
    }
}
