//! Ablation: Atom-class vs Xeon-class servers (Section 4.2's remarks).
//!
//! "Due to small processor power and relatively large platform power,
//! for Atom processors running DNS-like jobs at low utilizations, it is
//! better to run fast and enter low-power state immediately after the
//! job queue empties." — i.e. the joint optimum moves to a much higher
//! frequency than on the Xeon, because slowing an Atom's clock saves
//! little CPU power while stretching the platform's on-time.

use sleepscale_bench::{bowl, ideal_stream, Quality};
use sleepscale_power::{presets, FrequencyScaling, SleepProgram, SystemState};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

fn main() {
    let q = if std::env::args().any(|a| a == "--quick") { Quality::Quick } else { Quality::Full };
    let spec = WorkloadSpec::dns();
    let rho = 0.1;
    let jobs = ideal_stream(&spec, rho, q.jobs(), 7200);
    println!("== Ablation: Atom vs Xeon, DNS-like, rho = {rho} ==");
    println!(
        "{:>8} {:<12} {:>8} {:>12} {:>14}",
        "machine", "state", "best f", "E[P] (W)", "mu*E[R]"
    );
    for (name, model) in [("Xeon", presets::xeon()), ("Atom", presets::atom())] {
        let env = SimEnv::new(model, FrequencyScaling::CpuBound);
        for state in SystemState::LOW_POWER_LADDER {
            let c = bowl(
                &jobs,
                state.label(),
                &SleepProgram::immediate(presets::immediate_stage(state)),
                rho,
                q.freq_step(),
                spec.service_mean(),
                &env,
            );
            let best = c.min_power_point().expect("non-empty sweep");
            println!(
                "{:>8} {:<12} {:>8.2} {:>12.2} {:>14.2}",
                name,
                state.label(),
                best.f,
                best.power,
                best.norm_response
            );
        }
    }
    println!(
        "\nReading: the Xeon's joint optima sit at f ≈ 0.4; the Atom's optima sit\n\
         near f = 1 (race) because its CPU is a sliver of total power — run fast,\n\
         sleep the platform."
    );
}
