//! Autoscale gate: proves the fleet control plane earns its keep —
//! class-aware routing plus the closed-loop autoscaler beats the best
//! *class-blind fixed* fleet on total energy while every traffic class
//! still meets its own p95 budget — and that autoscaled runs keep the
//! engine's determinism and crash-recovery contracts.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin autoscale
//! cargo run --release -p sleepscale-bench --bin autoscale -- --quick
//! ```
//!
//! Checks (each must hold or the bin exits non-zero):
//!
//! 1. **Energy vs best fixed fleet** — the `autoscale-day` scenario
//!    (class-affinity routing + autoscaler) must burn strictly less
//!    total energy than the best QoS-feasible class-blind
//!    join-shortest-backlog fixed fleet evaluated over the *same*
//!    materialized inputs, while parking real server-time and meeting
//!    every class budget itself. Full mode sweeps fixed sizes
//!    {100 %, 75 %, 50 %} of the fleet (undersized fleets must either
//!    lose on QoS or the autoscaler must undercut them); quick mode
//!    compares at full size only (its truncated window is all trough,
//!    where a right-sized *small* fixed fleet is trivially optimal —
//!    the size sweep needs the day's peak to be meaningful).
//! 2. **Thread invariance** — the autoscaled `ClusterReport` is
//!    byte-identical across worker thread counts.
//! 3. **Shard invariance** — an autoscaled `SplitUniform` variant is
//!    byte-identical across shard counts.
//! 4. **Kill/resume** — an autoscaled checkpointed run killed at an
//!    epoch boundary resumes byte-identical to the uninterrupted run
//!    (the controller's state rides the PR-8 journal).
//!
//! Results land in `results/autoscale.csv` and
//! `results/bench_autoscale.json`.

use sleepscale_bench::{require_io, write_csv, GateSummary, JsonValue};
use sleepscale_journal::KillPlan;
use sleepscale_scenario::catalog;
use sleepscale_scenario::prelude::*;
use std::path::PathBuf;

fn journal_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("sleepscale-autoscale-gate-{}-{tag}.ssj", std::process::id()));
    p
}

fn validate(scenario: Scenario) -> Result<ScenarioRunner, String> {
    let name = scenario.name.clone();
    ScenarioRunner::new(scenario).map_err(|e| format!("{name}: invalid: {e}"))
}

/// The class-blind control arm at a fraction of the autoscaled fleet:
/// same groups, counts scaled (each keeps at least one server),
/// join-shortest-backlog, no autoscaler.
fn fixed_baseline(base: &Scenario, fraction: f64) -> Scenario {
    let mut scenario = base.clone();
    scenario.name = format!("{}-fixed-{:.0}pct", base.name, fraction * 100.0);
    scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
    scenario.autoscaler = None;
    for group in &mut scenario.fleet {
        group.count = ((group.count as f64 * fraction).round() as usize).max(1);
    }
    scenario
}

struct EnergyOutcome {
    autoscaled_energy: f64,
    best_fixed_energy: f64,
    best_fixed_label: String,
    parked_server_seconds: f64,
}

/// Check 1: the headline claim. Everything runs over one set of
/// materialized inputs (same jobs, same trace), so the comparison is a
/// pure engine/control-plane comparison, not a replay-noise lottery.
fn check_energy(quick: bool) -> Result<(String, EnergyOutcome), String> {
    let scenario = if quick { catalog::autoscale_day().quick() } else { catalog::autoscale_day() };
    let runner = validate(scenario)?;
    let (spec, trace, jobs) = runner.inputs().map_err(|e| format!("inputs: {e}"))?;
    let autoscaled = runner
        .run_with_inputs(&spec, &trace, &jobs)
        .map_err(|e| format!("autoscale-day: run failed: {e}"))?;
    if !autoscaled.qos_ok() {
        return Err(format!(
            "autoscaled run missed a budget: {:?}",
            autoscaled.classes().iter().map(|c| (&c.name, c.qos_ok)).collect::<Vec<_>>()
        ));
    }
    if autoscaled.parked_server_seconds() <= 0.0 {
        return Err("autoscaler never parked a server over the day".into());
    }

    let fractions: &[f64] = if quick { &[1.0] } else { &[1.0, 0.75, 0.5] };
    let mut feasible = 0usize;
    let mut best: Option<(f64, String)> = None;
    for &fraction in fractions {
        let baseline = fixed_baseline(runner.scenario(), fraction);
        let name = baseline.name.clone();
        let report = validate(baseline)?
            .run_with_inputs(&spec, &trace, &jobs)
            .map_err(|e| format!("{name}: run failed: {e}"))?;
        if !report.qos_ok() {
            continue;
        }
        feasible += 1;
        if best.as_ref().is_none_or(|(e, _)| report.energy_joules() < *e) {
            best = Some((report.energy_joules(), name));
        }
    }
    let Some((best_energy, best_label)) = best else {
        return Err("no class-blind fixed baseline met QoS — nothing to beat".into());
    };
    if autoscaled.energy_joules() >= best_energy {
        return Err(format!(
            "autoscaled {:.0} J did not beat best class-blind fixed fleet {best_label} at \
             {best_energy:.0} J",
            autoscaled.energy_joules()
        ));
    }
    let saved = 100.0 * (1.0 - autoscaled.energy_joules() / best_energy);
    Ok((
        format!(
            "{:.0} J vs {best_energy:.0} J ({best_label}): {saved:.1}% saved, {:.0} server-s \
             parked, {feasible}/{} baselines QoS-feasible",
            autoscaled.energy_joules(),
            autoscaled.parked_server_seconds(),
            fractions.len()
        ),
        EnergyOutcome {
            autoscaled_energy: autoscaled.energy_joules(),
            best_fixed_energy: best_energy,
            best_fixed_label: best_label,
            parked_server_seconds: autoscaled.parked_server_seconds(),
        },
    ))
}

/// Check 2: worker-thread count cannot perturb an autoscaled report —
/// the control tick reads loads and sketches in slot/shard order.
fn check_thread_invariance() -> Result<String, String> {
    let base = catalog::autoscale_day().quick();
    let mut serial = base.clone();
    serial.threads = 1;
    let reference = validate(serial)?.run().map_err(|e| format!("run: {e}"))?;
    for threads in [2, 5] {
        let mut scenario = base.clone();
        scenario.threads = threads;
        let report = validate(scenario)?.run().map_err(|e| format!("run: {e}"))?;
        if report.cluster_report() != reference.cluster_report() {
            return Err(format!("autoscaled ClusterReport diverged at {threads} threads"));
        }
    }
    Ok(format!(
        "trace {:?}, {:.0} server-s parked, byte-stable across 1/2/5 worker threads",
        reference.fleet_size_trace(),
        reference.parked_server_seconds()
    ))
}

/// Check 3: shard count cannot perturb an autoscaled report either —
/// autoscaled sharded runs route lanes over the live active set.
fn check_shard_invariance() -> Result<String, String> {
    let mut base = catalog::autoscale_day().quick();
    base.name = "autoscale-day-split".into();
    base.dispatcher = DispatcherSpec::SplitUniform { seed: 17 };
    let reference = validate(base.clone())?.run().map_err(|e| format!("run: {e}"))?;
    if reference.parked_server_seconds() <= 0.0 {
        return Err("split-uniform autoscaled variant never parked".into());
    }
    for shards in [2, 3] {
        let mut scenario = base.clone();
        scenario.shards = shards;
        let report = validate(scenario)?.run().map_err(|e| format!("run: {e}"))?;
        if report.cluster_report() != reference.cluster_report() {
            return Err(format!("autoscaled ClusterReport diverged at {shards} shards"));
        }
    }
    Ok(format!(
        "{:.0} server-s parked, byte-stable across 1/2/3 shards",
        reference.parked_server_seconds()
    ))
}

/// Check 4: the controller's snapshot rides the journal — a run killed
/// at an epoch boundary resumes to the uninterrupted bytes.
fn check_resume() -> Result<String, String> {
    let scenario = catalog::autoscale_day().quick();
    let n_epochs = scenario.load.minutes().div_ceil(scenario.epoch_minutes);
    let runner = validate(scenario)?;
    let reference = runner.run().map_err(|e| format!("run: {e}"))?;
    let path = journal_path("resume");
    for k in [0, n_epochs / 2, n_epochs.saturating_sub(2)] {
        let _ = std::fs::remove_file(&path);
        match runner.run_checkpointed(&path, KillPlan::after_epoch(k)) {
            Ok(None) => {}
            Ok(Some(_)) => return Err(format!("kill at epoch {k} did not abort the run")),
            Err(e) => return Err(format!("checkpointed run failed at epoch {k}: {e}")),
        }
        let resumed = runner.resume(&path).map_err(|e| format!("resume at epoch {k}: {e}"))?;
        if resumed != reference || format!("{resumed:?}") != format!("{reference:?}") {
            return Err(format!("resume after kill at epoch {k} diverged"));
        }
    }
    let _ = std::fs::remove_file(&path);
    Ok(format!("kill/resume byte-identical at 3 boundaries over {n_epochs} epochs"))
}

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut summary = GateSummary::start("autoscale", quick);
    println!("== autoscale gate{} ==", if quick { " (quick)" } else { "" });

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut failed = false;
    let mut record = |check: &str, outcome: Result<String, String>| {
        let ok = outcome.is_ok();
        let detail = match outcome {
            Ok(d) => d,
            Err(e) => e,
        };
        println!("{} {:<22} {}", if ok { "PASS" } else { "FAIL" }, check, detail);
        rows.push(vec![check.into(), (ok as u8).to_string(), detail]);
        failed |= !ok;
    };

    let energy = match check_energy(quick) {
        Ok((detail, outcome)) => {
            record("energy-vs-best-fixed", Ok(detail));
            Some(outcome)
        }
        Err(e) => {
            record("energy-vs-best-fixed", Err(e));
            None
        }
    };
    record("thread-invariance", check_thread_invariance());
    record("shard-invariance", check_shard_invariance());
    record("kill-resume", check_resume());

    let path = require_io(
        "writing autoscale.csv",
        write_csv("autoscale", &["check", "ok", "detail"], &rows),
    );
    println!("wrote {}", path.display());
    summary.field(
        "autoscaled_energy_joules",
        JsonValue::Num(energy.as_ref().map_or(f64::NAN, |e| e.autoscaled_energy)),
    );
    summary.field(
        "best_fixed_energy_joules",
        JsonValue::Num(energy.as_ref().map_or(f64::NAN, |e| e.best_fixed_energy)),
    );
    summary.field(
        "best_fixed_label",
        JsonValue::Str(energy.as_ref().map_or(String::new(), |e| e.best_fixed_label.clone())),
    );
    summary.field(
        "parked_server_seconds",
        JsonValue::Num(energy.as_ref().map_or(f64::NAN, |e| e.parked_server_seconds)),
    );
    summary.finish(!failed, 0);

    if failed {
        eprintln!("AUTOSCALE GATE FAILED");
        std::process::exit(1);
    }
    println!("autoscale gate: all checks passed — OK");
    Ok(())
}
