//! Regenerates Tables 1-4 (states, powers, associations, latencies).
fn main() -> std::io::Result<()> {
    sleepscale_bench::tables::table2()
}
