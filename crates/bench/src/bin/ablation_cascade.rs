//! Ablation: sequential power throttle-back (engineering lesson 5).
//!
//! Sweeps the dwell time of the five-state cascade
//! `C0(i)S0(i) → C1S0(i) → C3S0(i) → C6S0(i) → C6S3` against the best
//! single state, at low and high utilization. The paper's conclusion:
//! the cascade is conservative — at high utilization the deep states are
//! never reached; at low utilization waiting to reach the right state
//! wastes power versus entering it immediately.

use sleepscale_bench::{bowl, ideal_stream, Quality};
use sleepscale_power::{presets, SleepProgram, SystemState};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

fn main() {
    let q = if std::env::args().any(|a| a == "--quick") { Quality::Quick } else { Quality::Full };
    let spec = WorkloadSpec::dns();
    let env = SimEnv::xeon_cpu_bound();
    println!("== Ablation: sequential cascade dwell (DNS-like) ==");
    for rho in [0.1, 0.7] {
        let jobs = ideal_stream(&spec, rho, q.jobs(), 7300 + (rho * 10.0) as u64);
        // Best single state as the reference.
        let single_best = SystemState::LOW_POWER_LADDER
            .iter()
            .filter_map(|s| {
                bowl(
                    &jobs,
                    s.label(),
                    &SleepProgram::immediate(presets::immediate_stage(*s)),
                    rho,
                    q.freq_step(),
                    spec.service_mean(),
                    &env,
                )
                .min_power_point()
            })
            .map(|p| p.power)
            .fold(f64::INFINITY, f64::min);
        println!("rho = {rho}: best single state {single_best:.1} W");
        println!("{:>12} {:>12} {:>10}", "dwell (s)", "E[P] (W)", "vs single");
        for dwell in [0.01, 0.05, 0.2, 1.0, 5.0] {
            let cascade = presets::sequential_cascade(dwell);
            let best = bowl(
                &jobs,
                format!("cascade {dwell}"),
                &cascade,
                rho,
                q.freq_step(),
                spec.service_mean(),
                &env,
            )
            .min_power_point()
            .expect("non-empty sweep");
            println!(
                "{:>12} {:>12.1} {:>9.1}%",
                dwell,
                best.power,
                100.0 * (best.power - single_best) / single_best
            );
        }
    }
}
