//! Renders a structured telemetry trace (PR 10) as per-server
//! C-state/frequency residency tables and an epoch timeline.
//!
//! ```sh
//! cargo run --release -p sleepscale-bench --bin trace
//! cargo run --release -p sleepscale-bench --bin trace -- --quick
//! cargo run --release -p sleepscale-bench --bin trace -- --input results/trace.jsonl
//! cargo run --release -p sleepscale-bench --bin trace -- --csv
//! ```
//!
//! By default the bin runs the telemetry-armed autoscaled catalog day,
//! writes its merged event stream to `results/trace.jsonl` (and, with
//! `--csv`, a human-oriented `results/trace.csv` twin), then parses
//! the JSONL file back and renders everything *from the file* — the
//! tables double as a round-trip proof. `--input <path>` skips the run
//! and renders an existing JSONL trace instead, so any archived run
//! can be inspected offline.

use sleepscale_bench::{require_io, results_dir};
use sleepscale_scenario::catalog;
use sleepscale_scenario::prelude::*;
use sleepscale_telemetry::{events_from_jsonl, FileSink, TraceEvent, TraceFormat, TraceSink};

/// Per-server accumulators folded from the event stream.
#[derive(Default)]
struct ServerView {
    /// `(state label, seconds)` in first-entered order.
    states: Vec<(String, f64)>,
    active_idle: f64,
    waking: f64,
    wakes: u64,
    /// `(frequency, epochs)` in first-chosen order.
    frequencies: Vec<(f64, u64)>,
    decisions: u64,
    cache_hits: u64,
}

/// Per-epoch accumulators for the timeline.
#[derive(Default)]
struct EpochView {
    decisions: u64,
    cache_hits: u64,
    rho_sum: f64,
    f_min: f64,
    f_max: f64,
    freq_changes: u64,
}

fn add_keyed<K: PartialEq, V: Copy + std::ops::AddAssign>(
    entries: &mut Vec<(K, V)>,
    key: K,
    delta: V,
) {
    if let Some(entry) = entries.iter_mut().find(|(k, _)| *k == key) {
        entry.1 += delta;
    } else {
        entries.push((key, delta));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let csv = args.iter().any(|a| a == "--csv");
    let input: Option<&String> =
        args.iter().enumerate().find(|(_, a)| *a == "--input").and_then(|(i, _)| args.get(i + 1));

    let path = match input {
        Some(path) => std::path::PathBuf::from(path),
        None => {
            // Run the telemetry-armed autoscaled day and persist its
            // merged stream through the buffered file sink.
            let mut scenario =
                if quick { catalog::autoscale_day().quick() } else { catalog::autoscale_day() };
            scenario.telemetry = Some(TelemetrySpec::full());
            let report = ScenarioRunner::new(scenario)
                .expect("catalog scenario is valid")
                .run()
                .expect("telemetry run succeeds");
            let telemetry = report.telemetry().expect("telemetry-armed run returns telemetry");
            let dir = results_dir();
            require_io("creating the results directory", std::fs::create_dir_all(&dir));
            let jsonl_path = dir.join("trace.jsonl");
            let mut sink = require_io(
                "creating trace.jsonl",
                FileSink::create(&jsonl_path, TraceFormat::Jsonl),
            );
            for event in &telemetry.events {
                sink.record(event);
            }
            require_io("flushing trace.jsonl", sink.flush());
            println!("wrote {} ({} events)", jsonl_path.display(), telemetry.events.len());
            if csv {
                let csv_path = dir.join("trace.csv");
                let mut sink =
                    require_io("creating trace.csv", FileSink::create(&csv_path, TraceFormat::Csv));
                for event in &telemetry.events {
                    sink.record(event);
                }
                require_io("flushing trace.csv", sink.flush());
                println!("wrote {}", csv_path.display());
            }
            println!(
                "counters: {}",
                telemetry
                    .metrics
                    .counters()
                    .iter()
                    .map(|(name, value)| format!("{name}={value}"))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
            jsonl_path
        }
    };

    // Everything below renders from the file, not the in-memory run.
    let text = require_io("reading the trace file", std::fs::read_to_string(&path));
    let Some(events) = events_from_jsonl(&text) else {
        eprintln!("FATAL: {} is not a parseable JSONL trace", path.display());
        std::process::exit(1);
    };
    if events.is_empty() {
        eprintln!("FATAL: {} holds no events", path.display());
        std::process::exit(1);
    }

    let mut servers: Vec<(u32, ServerView)> = Vec::new();
    let mut epochs: Vec<(u32, EpochView)> = Vec::new();
    let view = |servers: &mut Vec<(u32, ServerView)>, id: u32| -> usize {
        match servers.iter().position(|(s, _)| *s == id) {
            Some(i) => i,
            None => {
                servers.push((id, ServerView::default()));
                servers.len() - 1
            }
        }
    };
    let mut scale_log: Vec<&TraceEvent> = Vec::new();
    let mut spills = 0u64;
    let mut fallbacks = 0u64;
    for event in &events {
        match event {
            TraceEvent::CState { server, seconds, state, .. } => {
                let i = view(&mut servers, *server);
                add_keyed(&mut servers[i].1.states, state.label().to_string(), *seconds);
            }
            TraceEvent::ActiveIdle { server, seconds, .. } => {
                let i = view(&mut servers, *server);
                servers[i].1.active_idle += seconds;
            }
            TraceEvent::Wake { server, latency, from, .. } => {
                let i = view(&mut servers, *server);
                servers[i].1.waking += latency;
                servers[i].1.wakes += u64::from(from.is_some());
            }
            TraceEvent::EpochDecision {
                server,
                epoch,
                predicted_rho,
                frequency,
                cache_hit,
                ..
            } => {
                let i = view(&mut servers, *server);
                let sv = &mut servers[i].1;
                add_keyed(&mut sv.frequencies, *frequency, 1u64);
                sv.decisions += 1;
                sv.cache_hits += u64::from(*cache_hit);
                let e = match epochs.iter_mut().find(|(k, _)| k == epoch) {
                    Some((_, e)) => e,
                    None => {
                        epochs.push((*epoch, EpochView { f_min: f64::MAX, ..Default::default() }));
                        &mut epochs.last_mut().expect("just pushed").1
                    }
                };
                e.decisions += 1;
                e.cache_hits += u64::from(*cache_hit);
                e.rho_sum += predicted_rho;
                e.f_min = e.f_min.min(*frequency);
                e.f_max = e.f_max.max(*frequency);
            }
            TraceEvent::FrequencyChange { epoch, .. } => {
                if let Some((_, e)) = epochs.iter_mut().find(|(k, _)| k == epoch) {
                    e.freq_changes += 1;
                }
            }
            TraceEvent::DispatchSpill { fallback, .. } => {
                spills += 1;
                fallbacks += u64::from(*fallback);
            }
            TraceEvent::Park { .. } | TraceEvent::Unpark { .. } => scale_log.push(event),
        }
    }
    servers.sort_by_key(|(id, _)| *id);
    epochs.sort_by_key(|(k, _)| *k);

    // Table 1: per-server C-state residency (seconds per ladder state,
    // plus the pre-tau active-idle and wake-latency columns).
    let mut state_order: Vec<String> = Vec::new();
    for (_, sv) in &servers {
        for (label, _) in &sv.states {
            if !state_order.contains(label) {
                state_order.push(label.clone());
            }
        }
    }
    println!("\n== per-server C-state residency (s) ==");
    print!("{:>6} {:>11} {:>9} {:>7}", "server", "active-idle", "waking", "wakes");
    for label in &state_order {
        print!(" {label:>10}");
    }
    println!();
    for (id, sv) in &servers {
        print!("{:>6} {:>11.1} {:>9.3} {:>7}", id, sv.active_idle, sv.waking, sv.wakes);
        for label in &state_order {
            let t = sv.states.iter().find(|(l, _)| l == label).map_or(0.0, |(_, t)| *t);
            print!(" {t:>10.1}");
        }
        println!();
    }

    // Table 2: per-server frequency residency, in epochs at each
    // chosen DVFS point (the trace records decisions, not seconds —
    // epoch length is uniform, so epochs *are* the residency).
    let mut freq_order: Vec<f64> = Vec::new();
    for (_, sv) in &servers {
        for (f, _) in &sv.frequencies {
            if !freq_order.iter().any(|g| g == f) {
                freq_order.push(*f);
            }
        }
    }
    freq_order.sort_by(|a, b| a.partial_cmp(b).expect("frequencies are finite"));
    println!("\n== per-server frequency residency (epochs at each f) ==");
    print!("{:>6} {:>7} {:>7}", "server", "epochs", "cache%");
    for f in &freq_order {
        print!(" {:>7}", format!("f={f:.2}"));
    }
    println!();
    for (id, sv) in &servers {
        let hit_rate = 100.0 * sv.cache_hits as f64 / (sv.decisions.max(1)) as f64;
        print!("{:>6} {:>7} {:>6.0}%", id, sv.decisions, hit_rate);
        for f in &freq_order {
            let n = sv.frequencies.iter().find(|(g, _)| g == f).map_or(0, |(_, n)| *n);
            print!(" {n:>7}");
        }
        println!();
    }

    // Epoch timeline: the fleet's decisions per boundary.
    println!("\n== epoch timeline ==");
    println!(
        "{:>6} {:>10} {:>8} {:>8} {:>10} {:>12}",
        "epoch", "decisions", "mean rho", "f range", "cache hits", "freq changes"
    );
    for (k, e) in &epochs {
        println!(
            "{:>6} {:>10} {:>8.3} {:>8} {:>10} {:>12}",
            k,
            e.decisions,
            e.rho_sum / e.decisions.max(1) as f64,
            if e.f_min == e.f_max {
                format!("{:.2}", e.f_min)
            } else {
                format!("{:.2}-{:.2}", e.f_min, e.f_max)
            },
            e.cache_hits,
            e.freq_changes
        );
    }

    if spills > 0 {
        println!("\ndispatch: {spills} spills off the preferred group ({fallbacks} fallbacks)");
    }
    if !scale_log.is_empty() {
        println!("\n== autoscaler park/wake log ==");
        for event in &scale_log {
            match event {
                TraceEvent::Park { server, at, cause } => {
                    println!("{at:>10.0}s  park   server {server:<4} {}", cause.describe());
                }
                TraceEvent::Unpark { server, at, cause } => {
                    println!("{at:>10.0}s  unpark server {server:<4} {}", cause.describe());
                }
                _ => unreachable!("scale_log holds only park/unpark events"),
            }
        }
    }
    println!("\n{} events from {}", events.len(), path.display());
}
