//! One module per paper figure. Each exposes `generate(Quality)`
//! returning the figure's data, and `run(Quality)` that prints the
//! series and writes `results/<id>.csv`.

pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
