//! Figure 7: the 3-day minute-granularity utilization traces (file
//! server and email store) — synthesized substitutes, see DESIGN.md.

use crate::{write_csv, Quality};
use sleepscale_workloads::traces;

/// Trace seed used across the evaluation figures.
pub const TRACE_SEED: u64 = 7;

/// Generates the two 3-day traces.
pub fn generate(_q: Quality) -> (traces::UtilizationTrace, traces::UtilizationTrace) {
    (traces::file_server(3, TRACE_SEED), traces::email_store(3, TRACE_SEED))
}

/// Prints summary statistics and writes `results/fig7.csv`.
pub fn run(q: Quality) -> std::io::Result<()> {
    let (fs, es) = generate(q);
    println!("== Figure 7: utilization traces (3 days, minute granularity) ==");
    for t in [&fs, &es] {
        println!(
            "{}: mean {:.3}, min {:.3}, max {:.3}, {} minutes",
            t.name(),
            t.mean(),
            t.min(),
            t.max(),
            t.len()
        );
    }
    // Hourly summary to stdout (full minute data goes to the CSV).
    println!("{:>6} {:>12} {:>12}", "hour", "file_server", "email_store");
    for h in 0..72 {
        let avg = |t: &traces::UtilizationTrace| {
            (h * 60..(h + 1) * 60).map(|m| t.at(m)).sum::<f64>() / 60.0
        };
        println!("{:>6} {:>12.3} {:>12.3}", h, avg(&fs), avg(&es));
    }
    let rows: Vec<Vec<String>> = (0..fs.len())
        .map(|m| vec![m.to_string(), format!("{:.4}", fs.at(m)), format!("{:.4}", es.at(m))])
        .collect();
    let path = write_csv("fig7", &["minute", "file_server", "email_store"], &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_have_figure7_features() {
        let (fs, es) = generate(Quality::Quick);
        assert_eq!(fs.len(), 3 * 24 * 60);
        assert_eq!(es.len(), 3 * 24 * 60);
        // File server: low range (paper y-axis tops at ~0.2).
        assert!(fs.max() < 0.3);
        // Email store: wide range 0.1–0.9 with surges.
        assert!(es.max() > 0.8);
        assert!(es.min() < 0.25);
    }
}
