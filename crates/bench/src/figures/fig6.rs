//! Figure 6: the policy maps — optimal (frequency, low-power state) as a
//! function of utilization, for DNS-like and Google-like workloads,
//! QoS ∈ {normalized mean response, 95th percentile}, ρ_b ∈ {0.6, 0.8},
//! computed by both the idealized closed-form model (solid curves) and
//! the BigHouse-substitute empirical statistics (dashed curves).

use crate::{write_csv, Quality};
use sleepscale_analytic::PolicyAnalyzer;
use sleepscale_power::{presets, FrequencyGrid, FrequencyScaling, Policy, SleepProgram};
use sleepscale_sim::{generator, sweep, SimEnv};
use sleepscale_workloads::{WorkloadDistributions, WorkloadSpec};

/// Which QoS family a map uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qos {
    /// `µE[R] ≤ 1/(1−ρ_b)`.
    Mean,
    /// `Pr(R ≥ d) ≤ 0.05` with `µd = ln(20)/(1−ρ_b)`.
    Tail,
}

impl Qos {
    fn label(self) -> &'static str {
        match self {
            Qos::Mean => "E[R]",
            Qos::Tail => "p95",
        }
    }
}

/// Which workload model scores the candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Poisson/exponential closed forms (solid curves).
    Idealized,
    /// BigHouse-substitute empirical statistics via simulation (dashed).
    Empirical,
}

impl Model {
    fn label(self) -> &'static str {
        match self {
            Model::Idealized => "idealized",
            Model::Empirical => "empirical",
        }
    }
}

/// One utilization's optimal policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MapPoint {
    /// Offered utilization.
    pub rho: f64,
    /// Optimal frequency.
    pub f: f64,
    /// Optimal low-power state label.
    pub state: String,
}

/// One curve of Figure 6.
#[derive(Debug, Clone)]
pub struct PolicyMap {
    /// Workload name.
    pub workload: String,
    /// QoS family.
    pub qos: Qos,
    /// Peak design utilization.
    pub rho_b: f64,
    /// Scoring model.
    pub model: Model,
    /// Per-utilization optima.
    pub points: Vec<MapPoint>,
}

fn rho_grid(rho_b: f64, step: f64) -> Vec<f64> {
    let mut rhos = Vec::new();
    let mut rho = 0.05;
    while rho < rho_b - 1e-9 {
        rhos.push(rho);
        rho += step;
    }
    rhos
}

/// Computes one map (one curve of one panel).
pub fn generate_one(
    spec: &WorkloadSpec,
    qos: Qos,
    rho_b: f64,
    model: Model,
    q: Quality,
) -> PolicyMap {
    let mean_service = spec.service_mean();
    let mu = spec.mu();
    let budget = 1.0 / (1.0 - rho_b);
    let deadline = 20.0_f64.ln() / (1.0 - rho_b) * mean_service;
    let programs = presets::standard_programs();
    let env = SimEnv::xeon_cpu_bound();
    let power = presets::xeon();

    let mut points = Vec::new();
    for (i, rho) in rho_grid(rho_b, q.rho_step()).into_iter().enumerate() {
        let grid = FrequencyGrid::new((rho + 0.02).min(1.0), 1.0, q.freq_step())
            .expect("valid policy-map grid");
        let best: Option<(Policy, f64)> = match model {
            Model::Idealized => {
                let analyzer =
                    PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, mu, rho)
                        .expect("valid analyzer");
                match qos {
                    Qos::Mean => analyzer
                        .min_power_policy(&programs, &grid, budget)
                        .map(|(p, o)| (p, o.avg_power)),
                    Qos::Tail => idealized_tail_optimum(&analyzer, &programs, &grid, deadline),
                }
            }
            Model::Empirical => {
                let jobs = empirical_stream(spec, rho, q.jobs(), 600 + i as u64);
                let evals = sweep::grid_sweep(&jobs, &programs, &grid, &env);
                evals
                    .into_iter()
                    .filter(|e| match qos {
                        Qos::Mean => e.outcome.normalized_mean_response(mean_service) <= budget,
                        Qos::Tail => e.outcome.fraction_exceeding(deadline) <= 0.05,
                    })
                    .map(|e| {
                        let w = e.outcome.avg_power().as_watts();
                        (e.policy, w)
                    })
                    .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            }
        };
        if let Some((policy, _)) = best {
            points.push(MapPoint {
                rho,
                f: policy.frequency().get(),
                state: policy.program().label(),
            });
        }
    }
    PolicyMap { workload: spec.name().to_string(), qos, rho_b, model, points }
}

/// Min-power policy under the tail constraint using the closed-form
/// `Pr(R ≥ d)` (single immediate states have exact tails).
fn idealized_tail_optimum(
    analyzer: &PolicyAnalyzer<'_>,
    programs: &[SleepProgram],
    grid: &FrequencyGrid,
    deadline: f64,
) -> Option<(Policy, f64)> {
    let mut best: Option<(Policy, f64)> = None;
    for program in programs {
        for f in grid.iter() {
            let policy = Policy::new(f, program.clone());
            let Ok(model) = analyzer.model(&policy) else { continue };
            let Ok(tail) = model.prob_response_exceeds(deadline) else { continue };
            if tail > 0.05 {
                continue;
            }
            let p = model.avg_power();
            if best.as_ref().is_none_or(|(_, b)| p < *b) {
                best = Some((policy, p));
            }
        }
    }
    best
}

/// A BigHouse-substitute stream rescaled to offered utilization `rho`.
fn empirical_stream(
    spec: &WorkloadSpec,
    rho: f64,
    n: usize,
    seed: u64,
) -> sleepscale_sim::JobStream {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dists =
        WorkloadDistributions::empirical(spec, 10_000, &mut rng).expect("table-5 specs always fit");
    let raw = generator::generate(n, &**dists.interarrival(), &**dists.service(), &mut rng)
        .expect("empirical samples are valid");
    // Rescale measured inter-arrivals so offered utilization hits rho.
    let target_ia = raw.mean_size() / rho;
    let factor = target_ia / raw.mean_interarrival();
    raw.with_interarrivals_scaled(factor).expect("positive factor")
}

/// Generates all 16 curves (2 workloads × 2 QoS × 2 ρ_b × 2 models).
pub fn generate(q: Quality) -> Vec<PolicyMap> {
    let mut maps = Vec::new();
    for spec in [WorkloadSpec::dns(), WorkloadSpec::google()] {
        for qos in [Qos::Mean, Qos::Tail] {
            for rho_b in [0.6, 0.8] {
                for model in [Model::Idealized, Model::Empirical] {
                    maps.push(generate_one(&spec, qos, rho_b, model, q));
                }
            }
        }
    }
    maps
}

/// Prints the figure and writes `results/fig6.csv`.
pub fn run(q: Quality) -> std::io::Result<()> {
    let maps = generate(q);
    let mut rows = Vec::new();
    for m in &maps {
        println!(
            "== Figure 6: {} {} rho_b={} ({}) ==",
            m.workload,
            m.qos.label(),
            m.rho_b,
            m.model.label()
        );
        println!("{:>6} {:>8} {:>12}", "rho", "f", "state");
        for p in &m.points {
            println!("{:>6.2} {:>8.2} {:>12}", p.rho, p.f, p.state);
            rows.push(vec![
                m.workload.clone(),
                m.qos.label().to_string(),
                format!("{}", m.rho_b),
                m.model.label().to_string(),
                format!("{:.2}", p.rho),
                format!("{:.3}", p.f),
                p.state.clone(),
            ]);
        }
    }
    let path =
        write_csv("fig6", &["workload", "qos", "rho_b", "model", "rho", "f", "state"], &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_map_uses_shallow_then_deep_states() {
        // Paper Figure 6(a): C0(i)S0(i) at low utilization, C6S0(i) at
        // high utilization, ρ_b = 0.8, idealized model.
        let m =
            generate_one(&WorkloadSpec::dns(), Qos::Mean, 0.8, Model::Idealized, Quality::Quick);
        assert!(!m.points.is_empty());
        let first = &m.points[0];
        let last = m.points.last().unwrap();
        assert!(first.state == "C0(i)S0(i)" || first.state == "C6S3", "low-rho: {}", first.state);
        assert_eq!(last.state, "C6S0(i)", "high-rho state");
    }

    #[test]
    fn frequency_grows_with_utilization_in_the_linear_regime() {
        let m =
            generate_one(&WorkloadSpec::dns(), Qos::Mean, 0.6, Model::Idealized, Quality::Quick);
        let fs: Vec<f64> = m.points.iter().map(|p| p.f).collect();
        assert!(fs.len() >= 3);
        assert!(fs.last().unwrap() > fs.first().unwrap(), "f must rise across the map: {fs:?}");
    }

    #[test]
    fn idealized_and_empirical_agree_on_state_for_dns() {
        // Paper: "Often the idealized model computes the best choice of
        // low-power state" — DNS has Cv ≈ 1 so the two models agree
        // closely.
        let ideal =
            generate_one(&WorkloadSpec::dns(), Qos::Mean, 0.8, Model::Idealized, Quality::Quick);
        let emp =
            generate_one(&WorkloadSpec::dns(), Qos::Mean, 0.8, Model::Empirical, Quality::Quick);
        let matches =
            ideal.points.iter().zip(&emp.points).filter(|(a, b)| a.state == b.state).count();
        assert!(
            matches * 2 >= ideal.points.len().min(emp.points.len()),
            "states should mostly agree: {matches}/{}",
            ideal.points.len()
        );
    }

    #[test]
    fn tighter_rho_b_never_picks_lower_frequency() {
        let loose =
            generate_one(&WorkloadSpec::dns(), Qos::Mean, 0.8, Model::Idealized, Quality::Quick);
        let tight =
            generate_one(&WorkloadSpec::dns(), Qos::Mean, 0.6, Model::Idealized, Quality::Quick);
        for (t, l) in tight.points.iter().zip(&loose.points) {
            assert!(t.f >= l.f - 1e-9, "rho={}: tight {} < loose {}", t.rho, t.f, l.f);
        }
    }
}
