//! Figure 5: the baseline QoS bar and per-utilization optimal
//! frequency — Google-like workload, C0(i)S0(i), ρ ∈ {0.1 … 0.4},
//! QoS budget µE\[R\] = 5 from ρ_b = 0.8.
//!
//! Paper numbers to reproduce: minimizing power subject to the budget
//! picks f ≈ 0.41 / 0.46 / 0.51 / 0.56–0.60 as ρ grows 0.1 → 0.4, and
//! at ρ = 0.1 the optimum *beats* the budget (µE\[R\] ≈ 3 < 5): the
//! "bump" explanation for Figure 6.

use crate::{bowl, curves_to_rows, ideal_stream, print_curves, write_csv, Curve, Quality};
use sleepscale_power::{presets, SleepProgram};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

/// QoS budget `µE\[R\] = 1/(1−0.8)`.
pub const BUDGET: f64 = 5.0;

/// One curve per utilization plus the budget-constrained pick.
#[derive(Debug, Clone)]
pub struct UtilizationCurve {
    /// Offered utilization.
    pub rho: f64,
    /// The frequency sweep.
    pub curve: Curve,
    /// Frequency of the min-power point meeting the budget.
    pub f_at_qos: Option<f64>,
    /// Normalized response at that point.
    pub response_at_qos: Option<f64>,
}

/// Generates the four utilization curves.
pub fn generate(q: Quality) -> Vec<UtilizationCurve> {
    let spec = WorkloadSpec::google();
    let env = SimEnv::xeon_cpu_bound();
    let program = SleepProgram::immediate(presets::C0I_S0I);
    [0.1, 0.2, 0.3, 0.4]
        .into_iter()
        .enumerate()
        .map(|(i, rho)| {
            let jobs = ideal_stream(&spec, rho, q.jobs(), 500 + i as u64);
            let curve = bowl(
                &jobs,
                format!("rho={rho}"),
                &program,
                rho,
                q.freq_step(),
                spec.service_mean(),
                &env,
            );
            let best = curve.min_power_within(BUDGET);
            UtilizationCurve {
                rho,
                f_at_qos: best.map(|p| p.f),
                response_at_qos: best.map(|p| p.norm_response),
                curve,
            }
        })
        .collect()
}

/// Prints the figure and writes `results/fig5.csv`.
pub fn run(q: Quality) -> std::io::Result<()> {
    let data = generate(q);
    let curves: Vec<Curve> = data.iter().map(|d| d.curve.clone()).collect();
    print_curves("Figure 5: Google-like, C0(i)S0(i), QoS bar at muE[R] = 5", &curves);
    for d in &data {
        println!(
            ">> rho={}: min-power f meeting QoS = {:?} (muE[R] = {:?})",
            d.rho,
            d.f_at_qos.map(|f| (f * 100.0).round() / 100.0),
            d.response_at_qos.map(|r| (r * 100.0).round() / 100.0),
        );
    }
    let path =
        write_csv("fig5", &["rho", "f", "norm_response", "power_w"], &curves_to_rows(&curves))?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_frequencies_rise_with_utilization() {
        let data = generate(Quality::Quick);
        let fs: Vec<f64> = data.iter().map(|d| d.f_at_qos.unwrap()).collect();
        for pair in fs.windows(2) {
            assert!(pair[1] >= pair[0] - 1e-9, "f must grow with rho: {fs:?}");
        }
        // Paper labels: 0.41 / 0.46 / 0.51 / ~0.56 (idealized: 0.6).
        assert!((fs[0] - 0.41).abs() < 0.08, "rho=0.1: f = {}", fs[0]);
        assert!((fs[3] - 0.58).abs() < 0.08, "rho=0.4: f = {}", fs[3]);
    }

    #[test]
    fn low_utilization_exceeds_qos_at_its_optimum() {
        let data = generate(Quality::Quick);
        // At ρ = 0.1 the global optimum meets the budget with slack —
        // the "bump" of Figure 6 (paper: µE\[R\] ≈ 3).
        let d = &data[0];
        let unconstrained = d.curve.min_power_point().unwrap();
        assert!(unconstrained.norm_response < BUDGET, "µE[R] = {}", unconstrained.norm_response);
        assert!((d.response_at_qos.unwrap() - 3.0).abs() < 1.0);
        // At ρ = 0.4 the budget binds: the pick sits near the bar.
        let high = &data[3];
        assert!(high.response_at_qos.unwrap() > 3.5);
    }
}
