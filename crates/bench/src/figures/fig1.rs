//! Figure 1: power vs normalized mean response bowls at ρ = 0.1 for
//! DNS-like and Google-like workloads, sleep states C0(i)S0(i),
//! C6S0(i), C6S3.
//!
//! Paper shape to reproduce: each (state, f) sweep traces a bowl; there
//! is a joint (f, state) optimum; for DNS-like the C6S3 bowl bottoms out
//! lowest (≈70 W at f ≈ 0.42 in the paper); race-to-halt (f = 1 tip of
//! a curve) costs ~50% more power than the joint optimum.

use crate::{bowl, curves_to_rows, ideal_stream, print_curves, write_csv, Curve, Quality};
use sleepscale_power::{presets, SleepProgram};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

/// One workload's panel.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Workload name (`"DNS"`, `"Google"`).
    pub workload: String,
    /// The three bowls.
    pub curves: Vec<Curve>,
}

/// Generates both panels.
pub fn generate(q: Quality) -> Vec<Panel> {
    let env = SimEnv::xeon_cpu_bound();
    let rho = 0.1;
    let programs = [
        ("C0(i)S0(i)", SleepProgram::immediate(presets::C0I_S0I)),
        ("C6S0(i)", SleepProgram::immediate(presets::C6_S0I)),
        ("C6S3", SleepProgram::immediate(presets::C6_S3)),
    ];
    [WorkloadSpec::dns(), WorkloadSpec::google()]
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let jobs = ideal_stream(&spec, rho, q.jobs(), 100 + i as u64);
            let curves = programs
                .iter()
                .map(|(label, program)| {
                    bowl(&jobs, *label, program, rho, q.freq_step(), spec.service_mean(), &env)
                })
                .collect();
            Panel { workload: spec.name().to_string(), curves }
        })
        .collect()
}

/// Prints the figure and writes `results/fig1.csv`.
pub fn run(q: Quality) -> std::io::Result<()> {
    let panels = generate(q);
    let mut rows = Vec::new();
    for p in &panels {
        print_curves(&format!("Figure 1: {} (rho = 0.1)", p.workload), &p.curves);
        // Headline observations.
        let global = p
            .curves
            .iter()
            .filter_map(|c| c.min_power_point().map(|pt| (c.label.clone(), pt)))
            .min_by(|a, b| a.1.power.partial_cmp(&b.1.power).expect("finite"));
        if let Some((label, pt)) = global {
            println!(
                ">> {}: joint optimum {} at f={:.2}: {:.1} W",
                p.workload, label, pt.f, pt.power
            );
            // Race-to-halt = f = 1 tip of the best race state.
            let r2h = p
                .curves
                .iter()
                .filter_map(|c| c.points.last())
                .min_by(|a, b| a.power.partial_cmp(&b.power).expect("finite"))
                .expect("curves are non-empty");
            println!(
                ">> {}: best race-to-halt {:.1} W = {:.0}% of joint optimum",
                p.workload,
                r2h.power,
                100.0 * r2h.power / pt.power
            );
        }
        for row in curves_to_rows(&p.curves) {
            let mut r = vec![p.workload.clone()];
            r.extend(row);
            rows.push(r);
        }
    }
    let path = write_csv("fig1", &["workload", "state", "f", "norm_response", "power_w"], &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_joint_optimum_is_deep_sleep_near_f_042() {
        let panels = generate(Quality::Quick);
        let dns = &panels[0];
        assert_eq!(dns.workload, "DNS");
        let (best_label, best) = dns
            .curves
            .iter()
            .filter_map(|c| c.min_power_point().map(|p| (c.label.clone(), p)))
            .min_by(|a, b| a.1.power.partial_cmp(&b.1.power).unwrap())
            .unwrap();
        // Paper: C6S3 optimal for DNS at ρ=0.1, f ≈ 0.42, ≈70 W.
        assert_eq!(best_label, "C6S3");
        assert!(best.f > 0.25 && best.f < 0.6, "f = {}", best.f);
        assert!(best.power < 90.0, "P = {}", best.power);
    }

    #[test]
    fn race_to_halt_costs_much_more_than_joint_optimum() {
        let panels = generate(Quality::Quick);
        let dns = &panels[0];
        let best = dns
            .curves
            .iter()
            .filter_map(Curve::min_power_point)
            .map(|p| p.power)
            .fold(f64::INFINITY, f64::min);
        // Race-to-halt is the f = 1 tip of a curve (the paper's
        // "leftmost tip"). Racing into the shallow state costs ≈50% more
        // than the joint optimum; even the best-case race tip pays a
        // clear premium.
        let tip = |label: &str| {
            dns.curves
                .iter()
                .find(|c| c.label == label)
                .and_then(|c| c.points.last())
                .map(|p| p.power)
                .expect("curve exists")
        };
        assert!(
            tip("C0(i)S0(i)") > 1.4 * best,
            "R2H(C0i) {:.1} vs optimum {best:.1}",
            tip("C0(i)S0(i)")
        );
        let r2h_best = dns
            .curves
            .iter()
            .filter_map(|c| c.points.last())
            .map(|p| p.power)
            .fold(f64::INFINITY, f64::min);
        assert!(r2h_best > 1.1 * best, "best R2H {r2h_best:.1} vs optimum {best:.1}");
    }

    #[test]
    fn google_deep_sleep_is_penalized_by_wake_latency() {
        let panels = generate(Quality::Quick);
        let google = &panels[1];
        // For Google's 4.2 ms jobs, C6S3's 1 s wake makes it worse than
        // C6S0(i) everywhere in the sweep.
        let c6s3 = google.curves.iter().find(|c| c.label == "C6S3").unwrap();
        let c6s0i = google.curves.iter().find(|c| c.label == "C6S0(i)").unwrap();
        assert!(
            c6s3.min_power_point().unwrap().power > c6s0i.min_power_point().unwrap().power,
            "C6S3 should lose for Google at ρ=0.1"
        );
        // And its response times are dominated by the wake latency.
        assert!(c6s3.points.iter().all(|p| p.norm_response > 20.0));
    }
}
