//! Figure 3: delaying entry into C6S3 (two-stage program
//! `C0(i)S0(i) → C6S3` after τ2) interpolates between the immediate
//! C0(i)S0(i) and immediate C6S3 curves for the Google-like workload at
//! ρ = 0.1, and beats both at mid-range response budgets.

use crate::{bowl, curves_to_rows, ideal_stream, print_curves, write_csv, Curve, Quality};
use sleepscale_power::{presets, SleepProgram, SleepStage, SystemState};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

/// Generates the four curves (immediate C0(i)S0(i), immediate C6S3,
/// delayed τ2 = 30/µ, delayed τ2 = 50/µ).
pub fn generate(q: Quality) -> Vec<Curve> {
    let spec = WorkloadSpec::google();
    let rho = 0.1;
    let env = SimEnv::xeon_cpu_bound();
    let jobs = ideal_stream(&spec, rho, q.jobs(), 300);
    let mu_inv = spec.service_mean();

    let delayed = |tau_mult: f64| {
        SleepProgram::new(vec![
            presets::C0I_S0I,
            SleepStage::new(SystemState::C6_S3, tau_mult * mu_inv, presets::WAKE_C6_S3)
                .expect("valid delayed stage"),
        ])
        .expect("valid two-stage program")
    };

    vec![
        bowl(
            &jobs,
            "C0(i)S0(i)",
            &SleepProgram::immediate(presets::C0I_S0I),
            rho,
            q.freq_step(),
            mu_inv,
            &env,
        ),
        bowl(
            &jobs,
            "C6S3",
            &SleepProgram::immediate(presets::C6_S3),
            rho,
            q.freq_step(),
            mu_inv,
            &env,
        ),
        bowl(
            &jobs,
            "C0(i)S0(i)->C6S3 tau2=30/mu",
            &delayed(30.0),
            rho,
            q.freq_step(),
            mu_inv,
            &env,
        ),
        bowl(
            &jobs,
            "C0(i)S0(i)->C6S3 tau2=50/mu",
            &delayed(50.0),
            rho,
            q.freq_step(),
            mu_inv,
            &env,
        ),
    ]
}

/// Prints the figure and writes `results/fig3.csv`.
pub fn run(q: Quality) -> std::io::Result<()> {
    let curves = generate(q);
    print_curves("Figure 3: delayed C6S3 entry, Google-like, rho = 0.1", &curves);
    let path =
        write_csv("fig3", &["program", "f", "norm_response", "power_w"], &curves_to_rows(&curves))?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn power_at_budget(c: &Curve, budget: f64) -> Option<f64> {
        c.min_power_within(budget).map(|p| p.power)
    }

    #[test]
    fn delayed_entry_beats_immediate_extremes_at_mid_budget() {
        // Paper: "by delaying C6S3, more power savings can be made at
        // mild mean response time budget (e.g. µE[R] = 20)". With the
        // appendix's own formulas at λ = 23.8/s and w = 1 s, that win
        // appears on the τ2 = 50/µ curve: its setup penalty is small
        // enough to reach µE[R] ≈ 20 while running a slower clock than
        // immediate C0(i)S0(i) can afford at that budget.
        // The figure's lesson is a pointwise curve comparison: *at the
        // same achieved response level* (a mild µE[R] ≈ 25–30, i.e. the
        // right-hand side of the plot), the delayed-C6S3 curve draws
        // less power than immediate C0(i)S0(i) — the shallow curve is
        // there only by running a barely-stable clock, which inflates
        // its 1/f idle term. The delayed curve's rare 1 s wakes make a
        // Monte-Carlo version of this check noisy, so it uses the
        // paper's own closed forms (already cross-validated against the
        // simulator in `sleepscale-analytic`).
        use sleepscale_analytic::PolicyAnalyzer;
        use sleepscale_power::{Frequency, FrequencyScaling, Policy};
        let spec = WorkloadSpec::google();
        let power = presets::xeon();
        let analyzer =
            PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, spec.mu(), 0.1)
                .unwrap();
        let delayed50 = SleepProgram::new(vec![
            presets::C0I_S0I,
            SleepStage::new(SystemState::C6_S3, 50.0 * spec.service_mean(), presets::WAKE_C6_S3)
                .unwrap(),
        ])
        .unwrap();
        let shallow = SleepProgram::immediate(presets::C0I_S0I);
        let target = 27.0;
        // Power at the frequency whose analytic µE[R] is closest to the
        // target level, per program.
        let at_level = |program: &SleepProgram| -> f64 {
            let mut best: Option<(f64, f64)> = None; // (|µE[R]−target|, power)
            for i in 12..=100 {
                let f = Frequency::new(i as f64 / 100.0).unwrap();
                let policy = Policy::new(f, program.clone());
                let Ok(out) = analyzer.analyze(&policy) else { continue };
                let gap = (out.normalized_mean_response - target).abs();
                if best.is_none_or(|(g, _)| gap < g) {
                    best = Some((gap, out.avg_power));
                }
            }
            best.expect("some stable frequency exists").1
        };
        let p_delayed = at_level(&delayed50);
        let p_shallow = at_level(&shallow);
        assert!(
            p_delayed < p_shallow,
            "delayed C6S3 ({p_delayed:.1} W) should beat immediate C0(i)S0(i) \
             ({p_shallow:.1} W) at µE[R] ≈ {target}"
        );
        // And the simulated curves confirm immediate C6S3 cannot even
        // reach this response level (its 1 s wake alone is ≈ 238
        // normalized units).
        let curves = generate(Quality::Quick);
        assert!(power_at_budget(&curves[1], target).is_none());
    }

    #[test]
    fn tau2_interpolates_between_the_extremes() {
        // τ2 = 0 is immediate C6S3, τ2 = ∞ is immediate C0(i)S0(i); a
        // larger delay moves the curve toward the shallow extreme.
        let curves = generate(Quality::Quick);
        let p30 = curves[2].min_power_point().unwrap().power;
        let p50 = curves[3].min_power_point().unwrap().power;
        let shallow = curves[0].min_power_point().unwrap().power;
        let deep = curves[1].min_power_point().unwrap().power;
        assert!(
            p50 <= p30 + 1.0,
            "tau2=50/µ ({p50:.1}) sits closer to shallow than 30/µ ({p30:.1})"
        );
        assert!(
            p50 >= shallow - 1.0,
            "delayed curves do not beat the shallow *unconstrained* optimum"
        );
        assert!(p30 <= deep + 1.0, "delayed curves improve on immediate C6S3");
        // Response floors also interpolate: min achievable µE[R] shrinks
        // as the delay grows.
        let floor =
            |c: &Curve| c.points.iter().map(|p| p.norm_response).fold(f64::INFINITY, f64::min);
        assert!(floor(&curves[1]) > floor(&curves[2]));
        assert!(floor(&curves[2]) > floor(&curves[3]));
        assert!(floor(&curves[3]) > floor(&curves[0]));
    }
}
