//! Figure 2: at high utilization the optimal low-power state depends on
//! job size — DNS (194 ms jobs) prefers C6S0(i); Google (4.2 ms jobs)
//! prefers C3S0(i); C6S3 is bad for both.

use crate::{bowl, curves_to_rows, ideal_stream, print_curves, write_csv, Curve, Quality};
use sleepscale_power::{presets, SleepProgram, SystemState};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

/// The high-utilization operating point (the paper says only "high
/// utilization"; 0.7 reproduces its power range of 180–240 W).
pub const RHO: f64 = 0.7;

/// One workload's curve set at ρ = 0.7.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Workload name.
    pub workload: String,
    /// All five single-state bowls (the paper plots the optimal and
    /// C6S3; we emit all for completeness).
    pub curves: Vec<Curve>,
}

/// Generates the two panels.
pub fn generate(q: Quality) -> Vec<Panel> {
    let env = SimEnv::xeon_cpu_bound();
    [WorkloadSpec::dns(), WorkloadSpec::google()]
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let jobs = ideal_stream(&spec, RHO, q.jobs(), 200 + i as u64);
            let curves = SystemState::LOW_POWER_LADDER
                .iter()
                .map(|state| {
                    bowl(
                        &jobs,
                        state.label(),
                        &SleepProgram::immediate(presets::immediate_stage(*state)),
                        RHO,
                        q.freq_step(),
                        spec.service_mean(),
                        &env,
                    )
                })
                .collect();
            Panel { workload: spec.name().to_string(), curves }
        })
        .collect()
}

/// The state whose bowl bottoms out lowest for a panel.
pub fn optimal_state(panel: &Panel) -> (String, f64) {
    panel
        .curves
        .iter()
        .filter_map(|c| c.min_power_point().map(|p| (c.label.clone(), p.power)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty curves")
}

/// Prints the figure and writes `results/fig2.csv`.
pub fn run(q: Quality) -> std::io::Result<()> {
    let panels = generate(q);
    let mut rows = Vec::new();
    for p in &panels {
        print_curves(&format!("Figure 2: {} (rho = {RHO})", p.workload), &p.curves);
        let (state, power) = optimal_state(p);
        println!(">> {}: optimal low-power state {} ({:.1} W)", p.workload, state, power);
        for row in curves_to_rows(&p.curves) {
            let mut r = vec![p.workload.clone()];
            r.extend(row);
            rows.push(r);
        }
    }
    let path = write_csv("fig2", &["workload", "state", "f", "norm_response", "power_w"], &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_state_depends_on_job_size() {
        let panels = generate(Quality::Quick);
        let (dns_state, _) = optimal_state(&panels[0]);
        let (google_state, _) = optimal_state(&panels[1]);
        // Paper: DNS → C6S0(i); Google → C3S0(i) (C6's 1 ms wake hurts
        // 4.2 ms jobs).
        assert_eq!(dns_state, "C6S0(i)");
        assert_eq!(google_state, "C3S0(i)");
    }

    #[test]
    fn c6s3_is_dominated_at_high_utilization() {
        for p in generate(Quality::Quick) {
            let c6s3 = p.curves.iter().find(|c| c.label == "C6S3").unwrap();
            let best = optimal_state(&p).1;
            assert!(
                c6s3.min_power_point().unwrap().power > best - 1e-9,
                "{}: C6S3 should not win at ρ=0.7",
                p.workload
            );
        }
    }
}
