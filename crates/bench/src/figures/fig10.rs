//! Figure 10: the distribution of low-power states SleepScale selects —
//! file-server (fs) and email-store (es) traces × DNS and Google
//! services × ρ_b ∈ {0.6, 0.8}, with LC (p = 10), T = 5, α = 0.35.
//!
//! Paper shape: on the low-variation file server a single state
//! dominates; on the bursty email store multiple states are used
//! (C0(i)S0(i) and C6S0(i)); tighter budgets (ρ_b = 0.6) push toward
//! deeper states (faster processing creates sleep opportunities).

use crate::{write_csv, Quality};
use rand::SeedableRng;
use sleepscale::{run, CandidateSet, QosConstraint, RuntimeConfig, SleepScaleStrategy};
use sleepscale_predict::LmsCusum;
use sleepscale_sim::SimEnv;
use sleepscale_workloads::{
    replay_trace, traces, ReplayConfig, WorkloadDistributions, WorkloadSpec,
};

/// One (trace, workload, ρ_b) cell's selected-state distribution.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Trace short name (`"fs"`, `"es"`).
    pub trace: String,
    /// Workload name.
    pub workload: String,
    /// Peak design utilization.
    pub rho_b: f64,
    /// `(program label, fraction of epochs)` sorted by descending
    /// fraction.
    pub fractions: Vec<(String, f64)>,
}

/// Runs one cell.
pub fn run_cell(trace_name: &str, spec: &WorkloadSpec, rho_b: f64, q: Quality) -> Cell {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1000 + rho_b.to_bits() % 97);
    let dists =
        WorkloadDistributions::empirical(spec, 10_000, &mut rng).expect("table-5 spec fits");
    let full = match trace_name {
        "fs" => traces::file_server(1, super::fig7::TRACE_SEED),
        _ => traces::email_store(1, super::fig7::TRACE_SEED),
    };
    let start = q.day_start_minute();
    let trace = full.window(start, start + q.day_minutes());
    let jobs =
        replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).expect("valid replay");
    let config = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(rho_b).expect("valid rho_b"))
        .epoch_minutes(5)
        .eval_jobs(q.eval_jobs())
        .over_provisioning(0.35)
        .build()
        .expect("valid runtime config");
    let mut strategy = SleepScaleStrategy::new(&config, CandidateSet::standard())
        .with_predictor(Box::new(LmsCusum::new(10)));
    let report = run(&trace, &jobs, &mut strategy, &SimEnv::xeon_cpu_bound(), &config)
        .expect("runtime completes");
    Cell {
        trace: trace_name.to_string(),
        workload: spec.name().to_string(),
        rho_b,
        fractions: report.program_fractions(),
    }
}

/// Generates all eight cells.
pub fn generate(q: Quality) -> Vec<Cell> {
    let mut cells = Vec::new();
    for trace in ["fs", "es"] {
        for spec in [WorkloadSpec::dns(), WorkloadSpec::google()] {
            for rho_b in [0.6, 0.8] {
                cells.push(run_cell(trace, &spec, rho_b, q));
            }
        }
    }
    cells
}

/// Prints the figure and writes `results/fig10.csv`.
pub fn run_figure(q: Quality) -> std::io::Result<()> {
    let cells = generate(q);
    println!("== Figure 10: distribution of selected low-power states ==");
    let mut rows = Vec::new();
    for c in &cells {
        let summary: Vec<String> = c
            .fractions
            .iter()
            .map(|(label, frac)| format!("{label}: {:.0}%", frac * 100.0))
            .collect();
        println!("{}/{} rho_b={}: {}", c.trace, c.workload, c.rho_b, summary.join(", "));
        for (label, frac) in &c.fractions {
            rows.push(vec![
                c.trace.clone(),
                c.workload.clone(),
                format!("{}", c.rho_b),
                label.clone(),
                format!("{:.4}", frac),
            ]);
        }
    }
    let path = write_csv("fig10", &["trace", "workload", "rho_b", "state", "fraction"], &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_server_is_dominated_by_one_state() {
        // Low, stable utilization: a single state should take most
        // epochs (paper: "a single low-power state often suffices").
        let cell = run_cell("fs", &WorkloadSpec::dns(), 0.8, Quality::Quick);
        assert!(!cell.fractions.is_empty());
        assert!(
            cell.fractions[0].1 > 0.5,
            "dominant state only {:.0}%: {:?}",
            cell.fractions[0].1 * 100.0,
            cell.fractions
        );
    }

    #[test]
    fn email_store_uses_multiple_states() {
        let cell = run_cell("es", &WorkloadSpec::dns(), 0.8, Quality::Quick);
        assert!(cell.fractions.len() >= 2, "bursty trace should mix states: {:?}", cell.fractions);
    }

    #[test]
    fn fractions_sum_to_one() {
        let cell = run_cell("fs", &WorkloadSpec::dns(), 0.6, Quality::Quick);
        let total: f64 = cell.fractions.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
