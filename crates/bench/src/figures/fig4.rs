//! Figure 4: the service-time/frequency scaling law changes the optimal
//! frequency — DNS-like workload at ρ = 0.1 under `µf`, `µf^0.5`,
//! `µf^0.2` and memory-bound `µ`.

use crate::{bowl, curves_to_rows, ideal_stream, print_curves, write_csv, Curve, Quality};
use sleepscale_power::{presets, FrequencyScaling, SleepProgram};
use sleepscale_sim::SimEnv;
use sleepscale_workloads::WorkloadSpec;

/// Generates the four scaling-law curves (C6S3 program, the DNS-optimal
/// state at this operating point).
pub fn generate(q: Quality) -> Vec<Curve> {
    let spec = WorkloadSpec::dns();
    let rho = 0.1;
    let jobs = ideal_stream(&spec, rho, q.jobs(), 400);
    let program = SleepProgram::immediate(presets::C6_S3);
    let laws = [
        FrequencyScaling::CpuBound,
        FrequencyScaling::sublinear(0.5).expect("valid"),
        FrequencyScaling::sublinear(0.2).expect("valid"),
        FrequencyScaling::MemoryBound,
    ];
    laws.iter()
        .map(|law| {
            let env = SimEnv::xeon_cpu_bound().with_scaling(*law);
            bowl(&jobs, law.to_string(), &program, rho, q.freq_step(), spec.service_mean(), &env)
        })
        .collect()
}

/// Prints the figure and writes `results/fig4.csv`.
pub fn run(q: Quality) -> std::io::Result<()> {
    let curves = generate(q);
    print_curves("Figure 4: CPU-boundness, DNS-like, rho = 0.1", &curves);
    for c in &curves {
        let best = c.min_power_point().expect("non-empty");
        println!(">> {}: optimal f = {:.2} ({:.1} W)", c.label, best.f, best.power);
    }
    let path =
        write_csv("fig4", &["scaling", "f", "norm_response", "power_w"], &curves_to_rows(&curves))?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_bound_optimum_is_the_lowest_frequency() {
        let curves = generate(Quality::Quick);
        let mem = curves.last().unwrap();
        let best = mem.min_power_point().unwrap();
        let min_f = mem.points.first().unwrap().f;
        assert!((best.f - min_f).abs() < 1e-9, "memory-bound best f = {}", best.f);
        // Response is frequency-insensitive.
        let r0 = mem.points.first().unwrap().norm_response;
        let r1 = mem.points.last().unwrap().norm_response;
        assert!((r0 - r1).abs() / r0 < 0.05);
    }

    #[test]
    fn weaker_coupling_pushes_the_optimum_frequency_down() {
        let curves = generate(Quality::Quick);
        let optima: Vec<f64> = curves.iter().map(|c| c.min_power_point().unwrap().f).collect();
        // µf, µf^0.5, µf^0.2, µ: each weaker coupling wants an equal or
        // lower clock.
        for pair in optima.windows(2) {
            assert!(
                pair[1] <= pair[0] + 0.051,
                "optimal f should not increase as coupling weakens: {optima:?}"
            );
        }
        assert!(optima[0] > optima[3], "CPU-bound vs memory-bound must differ: {optima:?}");
    }
}
