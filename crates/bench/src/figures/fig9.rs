//! Figure 9: SleepScale vs other power-control strategies — response
//! time (a) and average power (b) for SS, SS(C3), DVFS-only, R2H(C3),
//! R2H(C6), all with the LMS+CUSUM predictor (p = 10), T = 5 minutes,
//! and over-provisioning α = 0.35 for the managed strategies.
//!
//! Paper shape: SS achieves the lowest power while staying within the
//! response budget; DVFS-only wastes power (no sleeping) *and* blows the
//! response budget (it consumes the whole budget, so mispredictions
//! queue up); R2H variants keep responses tiny but burn power at f = 1;
//! SS(C3) sits between SS and R2H.

use crate::figures::fig8::dns_day;
use crate::{write_csv, Quality};
use sleepscale::{
    run, CandidateSet, QosConstraint, RaceToHaltStrategy, RuntimeConfig, SleepScaleStrategy,
    Strategy,
};
use sleepscale_power::{presets, SystemState};
use sleepscale_predict::LmsCusum;
use sleepscale_sim::SimEnv;

/// One strategy's realized metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Strategy label.
    pub strategy: String,
    /// Realized normalized mean response `µE[R]`.
    pub norm_response: f64,
    /// Realized average power (W).
    pub power_w: f64,
}

/// The over-provisioning factor the paper evaluates.
pub const ALPHA: f64 = 0.35;

/// Generates all five bars.
pub fn generate(q: Quality) -> Vec<Bar> {
    let (trace, jobs, spec) = dns_day(q, 900);
    let env = SimEnv::xeon_cpu_bound();
    let config = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).expect("valid rho_b"))
        .epoch_minutes(5)
        .eval_jobs(q.eval_jobs())
        .over_provisioning(ALPHA)
        .build()
        .expect("valid runtime config");

    let mut strategies: Vec<Box<dyn Strategy>> = vec![
        Box::new(
            SleepScaleStrategy::new(&config, CandidateSet::standard())
                .with_predictor(Box::new(LmsCusum::new(10))),
        ),
        Box::new(
            SleepScaleStrategy::new(&config, CandidateSet::single_state(SystemState::C3_S0I))
                .with_predictor(Box::new(LmsCusum::new(10))),
        ),
        Box::new(
            SleepScaleStrategy::new(&config, CandidateSet::dvfs_only())
                .with_predictor(Box::new(LmsCusum::new(10))),
        ),
        Box::new(RaceToHaltStrategy::new(presets::C3_S0I)),
        Box::new(RaceToHaltStrategy::new(presets::C6_S0I)),
    ];

    strategies
        .iter_mut()
        .map(|s| {
            let report = run(&trace, &jobs, s.as_mut(), &env, &config).expect("runtime completes");
            Bar {
                strategy: report.strategy().to_string(),
                norm_response: report.normalized_mean_response(),
                power_w: report.avg_power_watts(),
            }
        })
        .collect()
}

/// Prints the figure and writes `results/fig9.csv`.
pub fn run_figure(q: Quality) -> std::io::Result<()> {
    let bars = generate(q);
    println!("== Figure 9: strategy comparison (LC p=10, T=5, alpha=0.35) ==");
    println!("{:>16} {:>14} {:>10}", "strategy", "mu*E[R]", "E[P] (W)");
    let mut rows = Vec::new();
    for b in &bars {
        println!("{:>16} {:>14.2} {:>10.1}", b.strategy, b.norm_response, b.power_w);
        rows.push(vec![
            b.strategy.clone(),
            format!("{:.4}", b.norm_response),
            format!("{:.2}", b.power_w),
        ]);
    }
    let path = write_csv("fig9", &["strategy", "norm_response", "power_w"], &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sleepscale_wins_on_power_within_budget() {
        let bars = generate(Quality::Quick);
        let ss = &bars[0];
        assert!(ss.strategy.starts_with("SS["), "first bar is SS: {}", ss.strategy);
        for other in &bars[1..] {
            assert!(
                ss.power_w < other.power_w + 1e-9,
                "SS {} W should not exceed {} at {} W",
                ss.power_w,
                other.strategy,
                other.power_w
            );
        }
        // Within the µE[R] = 5 budget with slack for prediction noise.
        assert!(ss.norm_response < 6.5, "SS µE[R] = {}", ss.norm_response);
    }

    #[test]
    fn race_to_halt_keeps_responses_small_but_burns_power() {
        let bars = generate(Quality::Quick);
        let ss = &bars[0];
        let r2h_c6 = bars.iter().find(|b| b.strategy == "R2H(C6)").unwrap();
        assert!(r2h_c6.norm_response < 3.0, "R2H runs flat out: {}", r2h_c6.norm_response);
        assert!(
            r2h_c6.power_w > ss.power_w,
            "R2H {} W should exceed SS {} W",
            r2h_c6.power_w,
            ss.power_w
        );
    }

    #[test]
    fn dvfs_only_wastes_power() {
        let bars = generate(Quality::Quick);
        let ss = &bars[0];
        let dvfs = bars.iter().find(|b| b.strategy.starts_with("DVFS")).unwrap();
        assert!(dvfs.power_w > ss.power_w + 10.0, "DVFS {} W vs SS {} W", dvfs.power_w, ss.power_w);
    }
}
