//! Figure 8: average response time under different utilization
//! predictors (LMS+CUSUM, LMS, naive-previous, offline genie) and policy
//! update intervals T, with no over-provisioning (α = 0).
//!
//! Paper shape: every causal predictor overshoots the µE\[R\] = 5 budget
//! (mispredicted surges back the queue up); smaller T mitigates
//! prediction error; LC ≈ NP ≤ LMS; offline does best.

use crate::{write_csv, Quality};
use rand::SeedableRng;
use sleepscale::{run, CandidateSet, QosConstraint, RuntimeConfig, SleepScaleStrategy};
use sleepscale_predict::{Lms, LmsCusum, NaivePrevious, Offline, Predictor};
use sleepscale_sim::{JobStream, SimEnv};
use sleepscale_workloads::{
    replay_trace, traces, ReplayConfig, UtilizationTrace, WorkloadDistributions, WorkloadSpec,
};

/// One bar of the figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Bar {
    /// Predictor name (`"LC"`, `"LMS"`, `"NP"`, `"Offline"`).
    pub predictor: String,
    /// Policy update interval T in minutes.
    pub t_minutes: usize,
    /// Realized normalized mean response `µE\[R\]`.
    pub norm_response: f64,
    /// Realized average power (W), for reference.
    pub power_w: f64,
}

/// The evaluation scenario shared by Figures 8–10: a DNS-like server
/// following the email-store trace over the paper's 2 AM–8 PM window.
pub fn dns_day(q: Quality, seed: u64) -> (UtilizationTrace, JobStream, WorkloadSpec) {
    let spec = WorkloadSpec::dns();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dists =
        WorkloadDistributions::empirical(&spec, 10_000, &mut rng).expect("table-5 spec fits");
    let start = q.day_start_minute();
    let trace =
        traces::email_store(1, super::fig7::TRACE_SEED).window(start, start + q.day_minutes());
    let jobs =
        replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).expect("valid replay");
    (trace, jobs, spec)
}

/// The update intervals swept.
pub fn intervals(q: Quality) -> Vec<usize> {
    match q {
        Quality::Quick => vec![5, 15],
        Quality::Full => vec![1, 5, 10, 15],
    }
}

/// Runs one (predictor, T) cell.
pub fn run_cell(
    trace: &UtilizationTrace,
    jobs: &JobStream,
    spec: &WorkloadSpec,
    predictor: Box<dyn Predictor>,
    t_minutes: usize,
    alpha: f64,
    q: Quality,
) -> Bar {
    let name = predictor.name().to_string();
    let config = RuntimeConfig::builder(spec.service_mean())
        .qos(QosConstraint::mean_response(0.8).expect("valid rho_b"))
        .epoch_minutes(t_minutes)
        .eval_jobs(q.eval_jobs())
        .over_provisioning(alpha)
        .build()
        .expect("valid runtime config");
    let mut strategy =
        SleepScaleStrategy::new(&config, CandidateSet::standard()).with_predictor(predictor);
    let report = run(trace, jobs, &mut strategy, &SimEnv::xeon_cpu_bound(), &config)
        .expect("runtime completes");
    Bar {
        predictor: name,
        t_minutes,
        norm_response: report.normalized_mean_response(),
        power_w: report.avg_power_watts(),
    }
}

/// Generates all bars.
pub fn generate(q: Quality) -> Vec<Bar> {
    let (trace, jobs, spec) = dns_day(q, 800);
    let mut bars = Vec::new();
    for t in intervals(q) {
        let predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(LmsCusum::new(10)),
            Box::new(Lms::new(10)),
            Box::new(NaivePrevious::new()),
            Box::new(Offline::new(trace.values().to_vec())),
        ];
        for p in predictors {
            bars.push(run_cell(&trace, &jobs, &spec, p, t, 0.0, q));
        }
    }
    bars
}

/// Prints the figure and writes `results/fig8.csv`.
pub fn run_figure(q: Quality) -> std::io::Result<()> {
    let bars = generate(q);
    println!("== Figure 8: response time vs predictor and update interval (alpha = 0) ==");
    println!("{:>10} {:>6} {:>14} {:>10}", "predictor", "T", "mu*E[R]", "E[P] (W)");
    let mut rows = Vec::new();
    for b in &bars {
        println!(
            "{:>10} {:>6} {:>14.2} {:>10.1}",
            b.predictor, b.t_minutes, b.norm_response, b.power_w
        );
        rows.push(vec![
            b.predictor.clone(),
            b.t_minutes.to_string(),
            format!("{:.4}", b.norm_response),
            format!("{:.2}", b.power_w),
        ]);
    }
    let path = write_csv("fig8", &["predictor", "T_minutes", "norm_response", "power_w"], &rows)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offline_predictor_gives_lowest_response() {
        let q = Quality::Quick;
        let (trace, jobs, spec) = dns_day(q, 801);
        let lc = run_cell(&trace, &jobs, &spec, Box::new(LmsCusum::new(10)), 5, 0.0, q);
        let offline = run_cell(
            &trace,
            &jobs,
            &spec,
            Box::new(Offline::new(trace.values().to_vec())),
            5,
            0.0,
            q,
        );
        assert!(
            offline.norm_response <= lc.norm_response * 1.1,
            "offline {} vs LC {}",
            offline.norm_response,
            lc.norm_response
        );
    }

    #[test]
    fn faster_updates_do_not_hurt_response() {
        let q = Quality::Quick;
        let (trace, jobs, spec) = dns_day(q, 802);
        let t5 = run_cell(&trace, &jobs, &spec, Box::new(LmsCusum::new(10)), 5, 0.0, q);
        let t15 = run_cell(&trace, &jobs, &spec, Box::new(LmsCusum::new(10)), 15, 0.0, q);
        assert!(
            t5.norm_response <= t15.norm_response * 1.25,
            "T=5 {} should not be much worse than T=15 {}",
            t5.norm_response,
            t15.norm_response
        );
    }
}
