//! Figure and table regeneration harness for the SleepScale
//! reproduction.
//!
//! Every table and figure in the paper's evaluation has a module under
//! [`figures`]/[`tables`] that regenerates its data, and a matching
//! binary (`cargo run --release -p sleepscale-bench --bin fig1`). Each
//! generator takes a [`Quality`] knob: `Full` reproduces the paper-scale
//! configuration; `Quick` shrinks job counts and grids so the module's
//! smoke test runs in seconds.
//!
//! Outputs go to stdout (the series the paper plots) and to
//! `results/<id>.csv` (override the directory with the
//! `SLEEPSCALE_RESULTS_DIR` environment variable).

#![forbid(unsafe_code)]

pub mod figures;
pub mod tables;

use rand::rngs::StdRng;
use rand::SeedableRng;
use sleepscale_power::{FrequencyGrid, Policy, SleepProgram};
use sleepscale_sim::{generator, sweep, JobStream, SimEnv};
use sleepscale_workloads::WorkloadSpec;
use std::io::Write;
use std::path::PathBuf;

/// How much work a generator performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Small grids and job counts for smoke tests (seconds).
    Quick,
    /// Paper-scale configuration.
    Full,
}

impl Quality {
    /// Jobs per policy evaluation (the paper uses N = 10 000).
    pub fn jobs(self) -> usize {
        match self {
            Quality::Quick => 2_000,
            Quality::Full => 10_000,
        }
    }

    /// Frequency-grid step for bowl curves (the paper plots 0.01).
    pub fn freq_step(self) -> f64 {
        match self {
            Quality::Quick => 0.05,
            Quality::Full => 0.01,
        }
    }

    /// Utilization-grid step for the policy maps of Figure 6.
    pub fn rho_step(self) -> f64 {
        match self {
            Quality::Quick => 0.15,
            Quality::Full => 0.05,
        }
    }

    /// Evaluation-window length, in minutes, for the day-long runtime
    /// figures (the paper evaluates 2 AM–8 PM = 1080 minutes).
    pub fn day_minutes(self) -> usize {
        match self {
            Quality::Quick => 180,
            Quality::Full => 1080,
        }
    }

    /// First trace minute of the evaluation window. Full mode starts at
    /// 2 AM like the paper; Quick mode starts at 8 AM so its short
    /// window still spans a rising-utilization regime.
    pub fn day_start_minute(self) -> usize {
        match self {
            Quality::Quick => 480,
            Quality::Full => 120,
        }
    }

    /// Jobs replayed per candidate characterization in runtime figures.
    pub fn eval_jobs(self) -> usize {
        match self {
            Quality::Quick => 500,
            Quality::Full => 2_000,
        }
    }
}

/// One point on a power/performance bowl: frequency, normalized mean
/// response `µE[R]`, and average power (W).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// DVFS setting.
    pub f: f64,
    /// Normalized mean response `µ·E[R]`.
    pub norm_response: f64,
    /// Average power in watts.
    pub power: f64,
}

/// A labelled bowl curve (one sleep program swept across frequencies).
#[derive(Debug, Clone, PartialEq)]
pub struct Curve {
    /// Legend label (e.g. `"C6S3"`).
    pub label: String,
    /// Sweep points ordered by frequency.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// The point with minimum power, if any.
    pub fn min_power_point(&self) -> Option<CurvePoint> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.power.partial_cmp(&b.power).expect("powers are finite"))
    }

    /// The minimum power among points meeting `norm_response <= budget`.
    pub fn min_power_within(&self, budget: f64) -> Option<CurvePoint> {
        self.points
            .iter()
            .filter(|p| p.norm_response <= budget)
            .copied()
            .min_by(|a, b| a.power.partial_cmp(&b.power).expect("powers are finite"))
    }
}

/// Generates an idealized (Poisson/exponential) job stream for `spec` at
/// utilization `rho`.
pub fn ideal_stream(spec: &WorkloadSpec, rho: f64, n: usize, seed: u64) -> JobStream {
    let mut rng = StdRng::seed_from_u64(seed);
    generator::generate_poisson_exp(n, rho, spec.service_mean(), &mut rng)
        .expect("valid idealized stream parameters")
}

/// Sweeps one program over the paper's frequency grid for a stream and
/// returns the bowl curve.
pub fn bowl(
    jobs: &JobStream,
    label: impl Into<String>,
    program: &SleepProgram,
    rho: f64,
    step: f64,
    mean_service: f64,
    env: &SimEnv,
) -> Curve {
    let grid = FrequencyGrid::new((rho + 0.01).min(1.0), 1.0, step).expect("valid bowl grid");
    let evals = sweep::frequency_sweep(jobs, program, &grid, env);
    Curve {
        label: label.into(),
        points: evals
            .iter()
            .map(|e| CurvePoint {
                f: e.policy.frequency().get(),
                norm_response: e.outcome.normalized_mean_response(mean_service),
                power: e.outcome.avg_power().as_watts(),
            })
            .collect(),
    }
}

/// Evaluates one policy on a stream, returning a single curve point.
pub fn point(jobs: &JobStream, policy: &Policy, mean_service: f64, env: &SimEnv) -> CurvePoint {
    let out = sleepscale_sim::simulate(jobs, policy, env);
    CurvePoint {
        f: policy.frequency().get(),
        norm_response: out.normalized_mean_response(mean_service),
        power: out.avg_power().as_watts(),
    }
}

/// The directory CSV outputs land in (`SLEEPSCALE_RESULTS_DIR`, default
/// `results/`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("SLEEPSCALE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A minimal JSON scalar for machine-readable gate outputs (the
/// container is offline, so the harness hand-rolls its JSON instead of
/// pulling a serializer).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A finite number (rendered with f64's round-trip formatting).
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string (quoted, with `"`/`\`/control characters escaped).
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonValue::Num(x) if x.is_finite() => write!(f, "{x}"),
            JsonValue::Num(_) => write!(f, "null"),
            JsonValue::Int(x) => write!(f, "{x}"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Str(s) => {
                write!(f, "\"")?;
                for ch in s.chars() {
                    match ch {
                        '"' => write!(f, "\\\"")?,
                        '\\' => write!(f, "\\\\")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                write!(f, "\"")
            }
        }
    }
}

/// Writes a flat JSON object under [`results_dir`] as `<name>.json` and
/// returns the path — the gate bins' machine-readable summaries
/// (`--json`, or always for `shard_scale`).
///
/// # Errors
///
/// Propagates I/O errors from directory creation or writing.
pub fn write_json(name: &str, fields: &[(&str, JsonValue)]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{{")?;
    for (i, (key, value)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        writeln!(file, "  {}: {value}{comma}", JsonValue::Str((*key).into()))?;
    }
    writeln!(file, "}}")?;
    Ok(path)
}

/// One machine-readable summary per gate bin, written unconditionally.
///
/// Every gate (`sweep_speedup`, `cluster_scale`, `energy`, `multiclass`,
/// `shard_scale`, `resume`, `autoscale`, `obs`) wraps its run in a
/// `GateSummary`: `start` stamps the wall clock and hardware-thread
/// count, gate-specific scalars accumulate via [`GateSummary::field`],
/// and [`GateSummary::finish`] always writes
/// `results/bench_<gate>.json` with `hardware_threads`, `wall_seconds`,
/// `jobs`, `jobs_per_sec`, and `ok` — no `--json` flag required — so CI
/// archives one uniform artifact set per run.
#[derive(Debug)]
pub struct GateSummary {
    gate: &'static str,
    quick: bool,
    started: std::time::Instant,
    fields: Vec<(String, JsonValue)>,
}

impl GateSummary {
    /// Starts the wall clock for gate `gate` (`quick` records whether
    /// the run used the reduced smoke configuration).
    pub fn start(gate: &'static str, quick: bool) -> GateSummary {
        GateSummary { gate, quick, started: std::time::Instant::now(), fields: Vec::new() }
    }

    /// Appends a gate-specific field (rendered between the common
    /// prefix and the trailing `ok`).
    pub fn field(&mut self, key: impl Into<String>, value: JsonValue) {
        self.fields.push((key.into(), value));
    }

    /// Stops the clock and writes `results/bench_<gate>.json`; `jobs`
    /// is the simulated-job count the throughput figure divides by
    /// (pass 0 when the gate has no natural job count). Exits the
    /// process with a diagnostic if the results directory is unusable.
    pub fn finish(self, ok: bool, jobs: u64) -> PathBuf {
        let wall_seconds = self.started.elapsed().as_secs_f64();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("gate", JsonValue::Str(self.gate.into())),
            ("quick", JsonValue::Bool(self.quick)),
            ("hardware_threads", JsonValue::Int(cores as u64)),
            ("wall_seconds", JsonValue::Num(wall_seconds)),
            ("jobs", JsonValue::Int(jobs)),
            ("jobs_per_sec", JsonValue::Num(jobs as f64 / wall_seconds.max(1e-12))),
        ];
        for (key, value) in &self.fields {
            fields.push((key.as_str(), value.clone()));
        }
        fields.push(("ok", JsonValue::Bool(ok)));
        let name = format!("bench_{}", self.gate);
        require_io(
            "writing the gate summary",
            write_json(&name, &fields).inspect(|p| {
                println!("wrote {}", p.display());
            }),
        )
    }
}

/// Unwraps a gate bin's result-file write, degrading gracefully when
/// the output location is unusable (read-only `results/`, bad
/// `SLEEPSCALE_RESULTS_DIR`, full disk): one diagnostic line on stderr
/// and a non-zero exit instead of a panic backtrace, so CI logs state
/// the actual problem.
pub fn require_io<T>(what: &str, result: std::io::Result<T>) -> T {
    match result {
        Ok(value) => value,
        Err(e) => {
            eprintln!("FATAL: {what}: {e} (is SLEEPSCALE_RESULTS_DIR writable?)");
            std::process::exit(1);
        }
    }
}

/// Writes CSV rows under [`results_dir`] and returns the path.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or writing.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(path)
}

/// Renders curves as CSV rows (`label,f,norm_response,power`).
pub fn curves_to_rows(curves: &[Curve]) -> Vec<Vec<String>> {
    curves
        .iter()
        .flat_map(|c| {
            c.points.iter().map(move |p| {
                vec![
                    c.label.clone(),
                    format!("{:.4}", p.f),
                    format!("{:.4}", p.norm_response),
                    format!("{:.4}", p.power),
                ]
            })
        })
        .collect()
}

/// Prints a curve set to stdout in the shape the paper plots.
pub fn print_curves(title: &str, curves: &[Curve]) {
    println!("== {title} ==");
    for c in curves {
        println!("-- {} --", c.label);
        println!("{:>8} {:>14} {:>12}", "f", "mu*E[R]", "E[P] (W)");
        for p in &c.points {
            println!("{:>8.3} {:>14.3} {:>12.2}", p.f, p.norm_response, p.power);
        }
        if let Some(best) = c.min_power_point() {
            println!(
                "   minimum: f={:.3}, mu*E[R]={:.2}, E[P]={:.2} W",
                best.f, best.norm_response, best.power
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepscale_power::presets;

    #[test]
    fn bowl_has_a_minimum_inside_the_range() {
        let spec = WorkloadSpec::dns();
        let jobs = ideal_stream(&spec, 0.1, 4_000, 1);
        let env = SimEnv::xeon_cpu_bound();
        let c = bowl(
            &jobs,
            "C0(i)S0(i)",
            &SleepProgram::immediate(presets::C0I_S0I),
            0.1,
            0.05,
            spec.service_mean(),
            &env,
        );
        let best = c.min_power_point().unwrap();
        // Paper Figure 5 analysis: optimum near f ≈ 0.4 at ρ = 0.1.
        assert!(best.f > 0.2 && best.f < 0.7, "optimum f = {}", best.f);
        // Endpoints are worse than the bowl bottom.
        assert!(c.points.first().unwrap().power > best.power);
        assert!(c.points.last().unwrap().power > best.power);
    }

    #[test]
    fn min_power_within_respects_budget() {
        let spec = WorkloadSpec::dns();
        let jobs = ideal_stream(&spec, 0.3, 4_000, 2);
        let env = SimEnv::xeon_cpu_bound();
        let c = bowl(
            &jobs,
            "C6S0(i)",
            &SleepProgram::immediate(presets::C6_S0I),
            0.3,
            0.05,
            spec.service_mean(),
            &env,
        );
        let within = c.min_power_within(2.0).unwrap();
        assert!(within.norm_response <= 2.0);
        let unconstrained = c.min_power_point().unwrap();
        assert!(within.power >= unconstrained.power);
        assert!(c.min_power_within(0.5).is_none()); // below service time
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("sleepscale-bench-test");
        std::env::set_var("SLEEPSCALE_RESULTS_DIR", &dir);
        let rows = vec![vec!["a".into(), "1".into()]];
        let path = write_csv("unit_test", &["label", "x"], &rows).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "label,x\na,1\n");
        std::env::remove_var("SLEEPSCALE_RESULTS_DIR");
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("sleepscale-bench-json-test");
        std::env::set_var("SLEEPSCALE_RESULTS_DIR", &dir);
        let path = write_json(
            "unit_test",
            &[
                ("gate", JsonValue::Str("x\"y".into())),
                ("jobs_per_sec", JsonValue::Num(2.5e6)),
                ("threads", JsonValue::Int(4)),
                ("ok", JsonValue::Bool(true)),
            ],
        )
        .unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(
            content,
            "{\n  \"gate\": \"x\\\"y\",\n  \"jobs_per_sec\": 2500000,\n  \"threads\": 4,\n  \
             \"ok\": true\n}\n"
        );
        std::env::remove_var("SLEEPSCALE_RESULTS_DIR");
    }

    #[test]
    fn quality_knobs() {
        assert!(Quality::Full.jobs() > Quality::Quick.jobs());
        assert!(Quality::Full.freq_step() < Quality::Quick.freq_step());
        assert!(Quality::Full.day_minutes() > Quality::Quick.day_minutes());
    }
}
