//! Tables 1–5: the state taxonomy, component power table, platform
//! associations, wake-latency ranges, and workload statistics.

use crate::{write_csv, Quality};
use rand::SeedableRng;
use sleepscale_dist::{Distribution, Moments};
use sleepscale_power::{presets, CpuState, Frequency, PlatformState, SystemState};
use sleepscale_workloads::{WorkloadDistributions, WorkloadSpec};

/// Prints Tables 1–4 (states, powers, associations, latencies) and
/// writes `results/table2.csv`.
pub fn table2() -> std::io::Result<()> {
    let model = presets::xeon();

    println!("== Table 1: CPU power states ==");
    for s in CpuState::ALL {
        println!("{:>6}  depth {}", s.name(), s.depth());
    }

    println!("\n== Table 2: power consumption (Xeon) ==");
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>12}",
        "Component", "Operating", "Idle", "Sleep", "DeepSleep", "DeeperSleep"
    );
    let cols = |state: CpuState| model.cpu().power(state, Frequency::MAX).as_watts();
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>12}",
        "CPU x1",
        format!("{}V^2f", cols(CpuState::C0Active)),
        format!("{}V^2f", cols(CpuState::C0Idle)),
        format!("{}V^2", cols(CpuState::C1)),
        cols(CpuState::C3),
        cols(CpuState::C6),
    );
    let mut rows = Vec::new();
    for c in model.platform().components() {
        let cells: Vec<f64> = (0..5).map(|i| c.column_watts(i).expect("5 columns")).collect();
        println!(
            "{:<10} {:>10} {:>8} {:>8} {:>10} {:>12}",
            c.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
        let mut row = vec![c.name().to_string()];
        row.extend(cells.iter().map(|v| format!("{v}")));
        rows.push(row);
    }
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>10} {:>12}",
        "Platform",
        model.platform().power(PlatformState::S0Active).as_watts(),
        model.platform().power(PlatformState::S0Idle).as_watts(),
        model.platform().power(PlatformState::S0Idle).as_watts(),
        model.platform().power(PlatformState::S0Idle).as_watts(),
        model.platform().power(PlatformState::S3).as_watts(),
    );

    println!("\n== Table 3/4: combined states and wake-up latencies ==");
    println!("{:<12} {:>14} {:>16}", "State", "Power@f=1 (W)", "Wake-up (s)");
    for s in SystemState::LOW_POWER_LADDER {
        println!(
            "{:<12} {:>14.1} {:>16.6}",
            s.label(),
            model.power(s, Frequency::MAX).as_watts(),
            presets::default_wake_latency(s)
        );
    }

    let path = write_csv(
        "table2",
        &["component", "operating", "idle", "sleep", "deep_sleep", "deeper_sleep"],
        &rows,
    )?;
    println!("wrote {}", path.display());
    Ok(())
}

/// One row of the Table-5 verification: spec vs measured generator
/// moments.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Workload name.
    pub workload: String,
    /// Spec vs measured (inter-arrival mean, Cv, service mean, Cv).
    pub spec: (f64, f64, f64, f64),
    /// Measured from the frozen empirical tables.
    pub measured: (f64, f64, f64, f64),
}

/// Measures the BigHouse-substitute generators against Table 5.
pub fn table5_rows(q: Quality) -> Vec<Table5Row> {
    let n = q.jobs().max(20_000);
    WorkloadSpec::table5()
        .into_iter()
        .map(|spec| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(55);
            let d = WorkloadDistributions::empirical(&spec, 20_000, &mut rng)
                .expect("table-5 spec fits");
            let mut measure = |dist: &dyn Distribution| {
                let mut m = Moments::new();
                for _ in 0..n {
                    m.push(dist.sample(&mut rng));
                }
                (m.mean(), m.cv())
            };
            let (ia_mean, ia_cv) = measure(&**d.interarrival());
            let (sv_mean, sv_cv) = measure(&**d.service());
            Table5Row {
                workload: spec.name().to_string(),
                spec: (
                    spec.interarrival_mean(),
                    spec.interarrival_cv(),
                    spec.service_mean(),
                    spec.service_cv(),
                ),
                measured: (ia_mean, ia_cv, sv_mean, sv_cv),
            }
        })
        .collect()
}

/// Prints Table 5 (spec and measured) and writes `results/table5.csv`.
pub fn table5(q: Quality) -> std::io::Result<()> {
    let rows = table5_rows(q);
    println!("== Table 5: workload statistics (spec vs measured generator) ==");
    println!(
        "{:<8} {:>12} {:>8} {:>12} {:>8}   {:>12} {:>8} {:>12} {:>8}",
        "name",
        "ia_mean",
        "ia_cv",
        "sv_mean",
        "sv_cv",
        "m_ia_mean",
        "m_ia_cv",
        "m_sv_mean",
        "m_sv_cv"
    );
    let mut csv = Vec::new();
    for r in &rows {
        println!(
            "{:<8} {:>12.6} {:>8.2} {:>12.6} {:>8.2}   {:>12.6} {:>8.2} {:>12.6} {:>8.2}",
            r.workload,
            r.spec.0,
            r.spec.1,
            r.spec.2,
            r.spec.3,
            r.measured.0,
            r.measured.1,
            r.measured.2,
            r.measured.3
        );
        csv.push(vec![
            r.workload.clone(),
            format!("{:.6}", r.spec.0),
            format!("{:.3}", r.spec.1),
            format!("{:.6}", r.spec.2),
            format!("{:.3}", r.spec.3),
            format!("{:.6}", r.measured.0),
            format!("{:.3}", r.measured.1),
            format!("{:.6}", r.measured.2),
            format!("{:.3}", r.measured.3),
        ]);
    }
    let path = write_csv(
        "table5",
        &[
            "workload",
            "spec_ia_mean",
            "spec_ia_cv",
            "spec_sv_mean",
            "spec_sv_cv",
            "meas_ia_mean",
            "meas_ia_cv",
            "meas_sv_mean",
            "meas_sv_cv",
        ],
        &csv,
    )?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_generators_match_published_moments() {
        for r in table5_rows(Quality::Quick) {
            let rel = |a: f64, b: f64| (a - b).abs() / b;
            assert!(rel(r.measured.0, r.spec.0) < 0.1, "{}: ia mean", r.workload);
            assert!(rel(r.measured.2, r.spec.2) < 0.1, "{}: sv mean", r.workload);
            assert!(rel(r.measured.1, r.spec.1) < 0.3, "{}: ia cv", r.workload);
            assert!(rel(r.measured.3, r.spec.3) < 0.3, "{}: sv cv", r.workload);
        }
    }
}
