use crate::scenario::Scenario;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sleepscale::{CacheStats, CoreError, RunReport, RuntimeConfig, StrategySpec, WarmStartStats};
use sleepscale_cluster::{Cluster, ClusterConfig, ClusterReport};
use sleepscale_dist::StreamingSummary;
use sleepscale_sim::JobStream;
use sleepscale_workloads::{
    replay_trace, ReplayConfig, UtilizationTrace, WorkloadDistributions, WorkloadSpec,
};

/// Which engine a scenario ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// The single-server closed loop ([`sleepscale::run`]).
    SingleServer,
    /// The single-server loop selecting from the closed-form model
    /// (no characterization simulations).
    Analytic,
    /// The multi-server fleet engine ([`Cluster::run`]).
    Cluster,
}

impl Backend {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::SingleServer => "runtime",
            Backend::Analytic => "analytic",
            Backend::Cluster => "cluster",
        }
    }
}

/// One server group's slice of a scenario result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupReport {
    /// The group's display name.
    pub name: String,
    /// Servers in the group.
    pub servers: usize,
    /// Jobs the group completed.
    pub jobs: usize,
    /// Job-weighted mean response, seconds.
    pub mean_response_seconds: f64,
    /// Normalized mean response `µ·E[R]`.
    pub normalized_mean_response: f64,
    /// The group's QoS budget (normalized mean response).
    pub qos_budget: f64,
    /// Whether the group's realized response stayed within
    /// `qos_slack ×` its budget.
    pub qos_ok: bool,
    /// Summed average power across the group, watts.
    pub avg_power_watts: f64,
    /// Total energy across the group, joules.
    pub energy_joules: f64,
    /// The group's characterization-cache counters (zero for unmanaged
    /// strategies, which never characterize).
    pub cache: CacheStats,
}

/// The unified result of running a [`Scenario`]: per-group slices, the
/// backend's native report, the merged streaming response summary, and
/// the characterization-cache / warm-start telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    scenario: String,
    backend: Backend,
    groups: Vec<GroupReport>,
    run: Option<RunReport>,
    cluster: Option<ClusterReport>,
    responses: StreamingSummary,
    mean_service: f64,
    horizon_seconds: f64,
    cache: CacheStats,
    warm: WarmStartStats,
}

impl ScenarioReport {
    /// The scenario's name.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Which backend ran.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Per-group slices, in fleet order.
    pub fn groups(&self) -> &[GroupReport] {
        &self.groups
    }

    /// The single-server backend's native report, when that backend
    /// ran.
    pub fn run_report(&self) -> Option<&RunReport> {
        self.run.as_ref()
    }

    /// The cluster backend's native report, when that backend ran.
    pub fn cluster_report(&self) -> Option<&ClusterReport> {
        self.cluster.as_ref()
    }

    /// The merged streaming response summary (exact count/mean,
    /// sketched quantiles), whatever the backend.
    pub fn responses(&self) -> &StreamingSummary {
        &self.responses
    }

    /// Jobs completed across the fleet.
    pub fn total_jobs(&self) -> usize {
        self.responses.count() as usize
    }

    /// Job-weighted mean response, seconds.
    pub fn mean_response_seconds(&self) -> f64 {
        self.responses.mean()
    }

    /// Normalized mean response `µ·E[R]`.
    pub fn normalized_mean_response(&self) -> f64 {
        self.responses.mean() / self.mean_service
    }

    /// 95th-percentile response, seconds (sketched to ±0.5% on the
    /// cluster backend, exact on the single-server backend's native
    /// report).
    pub fn p95_response_seconds(&self) -> f64 {
        self.responses.p95()
    }

    /// Total fleet power, watts.
    pub fn avg_power_watts(&self) -> f64 {
        self.groups.iter().map(|g| g.avg_power_watts).sum()
    }

    /// Total fleet energy, joules.
    pub fn energy_joules(&self) -> f64 {
        self.groups.iter().map(|g| g.energy_joules).sum()
    }

    /// The run's horizon, seconds.
    pub fn horizon_seconds(&self) -> f64 {
        self.horizon_seconds
    }

    /// Whether every group stayed within its QoS slack.
    pub fn qos_ok(&self) -> bool {
        self.groups.iter().all(|g| g.qos_ok)
    }

    /// Characterization-cache counters summed over the fleet.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// Warm-start counters summed over the fleet.
    pub fn warm_start_stats(&self) -> WarmStartStats {
        self.warm
    }
}

/// Validates a [`Scenario`] and drives it end to end on the right
/// backend: a one-server fleet runs the single-server closed loop
/// (labelled `analytic` when the strategy selects from the closed
/// form), anything larger runs the cluster engine — same inputs, same
/// seed discipline, one [`ScenarioReport`] out.
///
/// Backend selection rules:
///
/// 1. `total_servers() == 1` → [`sleepscale::run`] with the group's
///    strategy ([`Backend::SingleServer`], or [`Backend::Analytic`]
///    when the spec is [`StrategySpec::Analytic`]). The dispatcher is
///    ignored.
/// 2. `total_servers() > 1` → [`Cluster::run`] over the fleet's
///    groups behind the scenario's dispatcher ([`Backend::Cluster`]).
///
/// Both paths materialize identical inputs from the scenario's seed
/// ([`ScenarioRunner::inputs`]): one RNG seeds the distribution
/// synthesis and then the ground-truth replay, so a scenario is a pure
/// function of its fields — and the runner's single-server and cluster
/// wirings are byte-identical to the hand-written equivalents (the
/// determinism suite pins this).
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenario: Scenario,
}

impl ScenarioRunner {
    /// Validates the scenario (shape errors surface here, not mid-run).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty fleet, a
    /// zero-count group, zero epochs/evaluation depth, a degenerate
    /// arrival scale or QoS slack, an invalid workload mix, or an
    /// invalid load window.
    pub fn new(scenario: Scenario) -> Result<ScenarioRunner, CoreError> {
        if scenario.fleet.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: format!("scenario '{}' has an empty fleet", scenario.name),
            });
        }
        for group in &scenario.fleet {
            if group.count == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "scenario '{}': server group '{}' has zero servers",
                        scenario.name, group.name
                    ),
                });
            }
        }
        if scenario.epoch_minutes == 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("scenario '{}': epoch_minutes must be >= 1", scenario.name),
            });
        }
        if scenario.eval_jobs == 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("scenario '{}': eval_jobs must be >= 1", scenario.name),
            });
        }
        if scenario.dist_samples < 16 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "scenario '{}': dist_samples {} is too small to synthesize empirical tables",
                    scenario.name, scenario.dist_samples
                ),
            });
        }
        if !scenario.arrival_scale.is_finite() || scenario.arrival_scale <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "scenario '{}': arrival_scale {} must be finite and > 0",
                    scenario.name, scenario.arrival_scale
                ),
            });
        }
        if !scenario.qos_slack.is_finite() || scenario.qos_slack < 1.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "scenario '{}': qos_slack {} must be finite and >= 1",
                    scenario.name, scenario.qos_slack
                ),
            });
        }
        // Workload and load-window shape errors surface at validation
        // (cheap checks only — the trace itself is synthesized once,
        // by `inputs`, at run time).
        scenario.workload.resolve()?;
        scenario.load.validate()?;
        Ok(ScenarioRunner { scenario })
    }

    /// The validated scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Materializes the scenario's deterministic inputs: resolved
    /// workload statistics, the scaled utilization trace, and the
    /// cluster-wide ground-truth job stream (arrival rate carries the
    /// fleet factor). Exposed so comparison harnesses (e.g. the
    /// `cluster_scale` parity gate) can feed the *same* inputs to a
    /// reference engine.
    ///
    /// # Errors
    ///
    /// Propagates workload/trace/replay errors.
    pub fn inputs(&self) -> Result<(WorkloadSpec, UtilizationTrace, JobStream), CoreError> {
        let spec = self.scenario.workload.resolve()?;
        let trace = self.scenario.load.build(self.scenario.arrival_scale)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.scenario.seed);
        let dists = WorkloadDistributions::empirical(&spec, self.scenario.dist_samples, &mut rng)?;
        let jobs = replay_trace(
            &trace,
            &dists,
            &ReplayConfig::for_fleet(self.scenario.total_servers()),
            &mut rng,
        )?;
        Ok((spec, trace, jobs))
    }

    /// The base runtime configuration the fleet's per-group configs are
    /// resolved against (group 0 contributes the base env/QoS/α; other
    /// groups overlay their own).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeConfig`] validation errors.
    pub fn base_runtime(&self, spec: &WorkloadSpec) -> Result<RuntimeConfig, CoreError> {
        let lead = &self.scenario.fleet[0];
        RuntimeConfig::builder(spec.service_mean())
            .qos(lead.qos)
            .epoch_minutes(self.scenario.epoch_minutes)
            .eval_jobs(self.scenario.eval_jobs)
            .over_provisioning(lead.over_provisioning)
            .env(lead.env.clone())
            .build()
    }

    /// Runs the scenario end to end.
    ///
    /// # Errors
    ///
    /// Propagates input-materialization and backend errors.
    pub fn run(&self) -> Result<ScenarioReport, CoreError> {
        let (spec, trace, jobs) = self.inputs()?;
        self.run_with_inputs(&spec, &trace, &jobs)
    }

    /// Runs the scenario against inputs materialized earlier with
    /// [`ScenarioRunner::inputs`] — so comparison harnesses can time
    /// the backend alone, or share one expensive replay across several
    /// runs. Passing inputs from anywhere else breaks the scenario's
    /// pure-function-of-its-fields contract.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run_with_inputs(
        &self,
        spec: &WorkloadSpec,
        trace: &UtilizationTrace,
        jobs: &JobStream,
    ) -> Result<ScenarioReport, CoreError> {
        let base = self.base_runtime(spec)?;
        if self.scenario.total_servers() == 1 {
            self.run_single(spec, trace, jobs, &base)
        } else {
            self.run_cluster(spec, trace, jobs, &base)
        }
    }

    fn run_single(
        &self,
        spec: &WorkloadSpec,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        base: &RuntimeConfig,
    ) -> Result<ScenarioReport, CoreError> {
        let group = &self.scenario.fleet[0];
        let backend = if matches!(group.strategy, StrategySpec::Analytic { .. }) {
            Backend::Analytic
        } else {
            Backend::SingleServer
        };
        // Keep the concrete strategy type when the spec is managed so
        // cache/warm telemetry survives into the report.
        let (report, cache, warm) = match group.strategy.build_managed(base) {
            Some(mut managed) => {
                let report = sleepscale::run(trace, jobs, &mut managed, base.env(), base)?;
                (report, managed.cache_stats().unwrap_or_default(), managed.warm_start_stats())
            }
            None => {
                let mut strategy = group.strategy.build(base);
                let report = sleepscale::run(trace, jobs, strategy.as_mut(), base.env(), base)?;
                (report, CacheStats::default(), WarmStartStats::default())
            }
        };
        let norm = report.normalized_mean_response();
        let budget = group.qos.normalized_mean_budget();
        let group_report = GroupReport {
            name: group.name.clone(),
            servers: 1,
            jobs: report.total_jobs(),
            mean_response_seconds: report.mean_response_seconds(),
            normalized_mean_response: norm,
            qos_budget: budget,
            qos_ok: report.total_jobs() == 0 || norm <= budget * self.scenario.qos_slack,
            avg_power_watts: report.avg_power_watts(),
            energy_joules: report.energy_joules(),
            cache,
        };
        Ok(ScenarioReport {
            scenario: self.scenario.name.clone(),
            backend,
            groups: vec![group_report],
            responses: report.responses().clone(),
            mean_service: spec.service_mean(),
            horizon_seconds: report.horizon_seconds(),
            cache,
            warm,
            run: Some(report),
            cluster: None,
        })
    }

    fn run_cluster(
        &self,
        spec: &WorkloadSpec,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        base: &RuntimeConfig,
    ) -> Result<ScenarioReport, CoreError> {
        let config = ClusterConfig::new(base, self.scenario.fleet.clone())?;
        let mut cluster = Cluster::new(config).with_threads(self.scenario.threads);
        let mut dispatcher = self.scenario.dispatcher.build();
        let report = cluster.run(trace, jobs, dispatcher.as_mut())?;
        let per_group_cache = cluster.group_characterization_stats();
        let groups = report
            .group_summaries()
            .into_iter()
            .zip(&self.scenario.fleet)
            .zip(per_group_cache)
            .map(|((summary, group), (_, cache))| {
                let norm = summary.mean_response / spec.service_mean();
                let budget = group.qos.normalized_mean_budget();
                GroupReport {
                    name: summary.name,
                    servers: summary.servers,
                    jobs: summary.jobs,
                    mean_response_seconds: summary.mean_response,
                    normalized_mean_response: norm,
                    qos_budget: budget,
                    qos_ok: summary.jobs == 0 || norm <= budget * self.scenario.qos_slack,
                    avg_power_watts: summary.avg_power,
                    energy_joules: summary.energy_joules,
                    cache,
                }
            })
            .collect();
        Ok(ScenarioReport {
            scenario: self.scenario.name.clone(),
            backend: Backend::Cluster,
            groups,
            responses: report.responses().clone(),
            mean_service: spec.service_mean(),
            horizon_seconds: report.horizon_seconds(),
            cache: cluster.characterization_stats(),
            warm: cluster.warm_start_stats(),
            run: None,
            cluster: Some(report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DispatcherSpec, LoadSchedule, WorkloadSource};
    use sleepscale_cluster::ServerGroup;

    fn small_single() -> Scenario {
        Scenario {
            eval_jobs: 300,
            dist_samples: 4_000,
            seed: 21,
            ..Scenario::new(
                "single",
                WorkloadSource::Dns,
                LoadSchedule::Constant { rho: 0.25, minutes: 30 },
            )
        }
    }

    fn small_fleet() -> Scenario {
        let mut scenario = Scenario {
            eval_jobs: 200,
            dist_samples: 4_000,
            seed: 22,
            dispatcher: DispatcherSpec::RoundRobin,
            ..Scenario::new(
                "fleet",
                WorkloadSource::Dns,
                LoadSchedule::Constant { rho: 0.25, minutes: 30 },
            )
        };
        scenario.fleet = vec![
            ServerGroup::new("ss", 2, StrategySpec::sleepscale()),
            ServerGroup::new("race", 2, StrategySpec::race_to_halt_c6()),
        ];
        scenario
    }

    #[test]
    fn single_server_backend_runs_and_reports() {
        let runner = ScenarioRunner::new(small_single()).unwrap();
        let report = runner.run().unwrap();
        assert_eq!(report.backend(), Backend::SingleServer);
        assert!(report.total_jobs() > 100);
        assert_eq!(report.groups().len(), 1);
        assert_eq!(report.groups()[0].jobs, report.total_jobs());
        assert!(report.run_report().is_some());
        assert!(report.cluster_report().is_none());
        assert!(report.qos_ok(), "{:?}", report.groups());
        assert!(report.avg_power_watts() > 28.0 && report.avg_power_watts() < 250.0);
        // The managed path carries cache telemetry through.
        assert!(report.cache_stats().hits + report.cache_stats().misses > 0);
    }

    #[test]
    fn analytic_backend_is_selected_for_analytic_specs() {
        let mut scenario = small_single();
        scenario.fleet[0].strategy = StrategySpec::analytic();
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.backend(), Backend::Analytic);
        assert_eq!(report.backend().label(), "analytic");
        // Closed-form selection never replays the log.
        assert_eq!(report.cache_stats(), CacheStats::default());
        assert!(report.total_jobs() > 100);
    }

    #[test]
    fn cluster_backend_splits_groups() {
        let runner = ScenarioRunner::new(small_fleet()).unwrap();
        let report = runner.run().unwrap();
        assert_eq!(report.backend(), Backend::Cluster);
        assert_eq!(report.groups().len(), 2);
        assert_eq!(
            report.groups().iter().map(|g| g.jobs).sum::<usize>(),
            report.total_jobs(),
            "group slices partition the fleet's jobs"
        );
        let cluster = report.cluster_report().unwrap();
        assert_eq!(cluster.n_servers(), 4);
        // The racing group never characterizes.
        assert_eq!(report.groups()[1].cache, CacheStats::default());
        assert!(report.groups()[0].cache.misses > 0);
    }

    #[test]
    fn scenario_validation_rejects_bad_shapes() {
        let mut empty = small_single();
        empty.fleet.clear();
        assert!(ScenarioRunner::new(empty).unwrap_err().to_string().contains("empty fleet"));

        let mut zero = small_fleet();
        zero.fleet[1].count = 0;
        assert!(ScenarioRunner::new(zero).unwrap_err().to_string().contains("zero servers"));

        let mut bad_scale = small_single();
        bad_scale.arrival_scale = f64::NAN;
        assert!(ScenarioRunner::new(bad_scale).is_err());

        let mut bad_slack = small_single();
        bad_slack.qos_slack = 0.5;
        assert!(ScenarioRunner::new(bad_slack).is_err());

        let mut bad_epoch = small_single();
        bad_epoch.epoch_minutes = 0;
        assert!(ScenarioRunner::new(bad_epoch).is_err());

        let mut bad_window = small_single();
        bad_window.load = LoadSchedule::EmailStoreDay { seed: 1, start_minute: 9, end_minute: 9 };
        assert!(ScenarioRunner::new(bad_window).is_err());
    }

    #[test]
    fn runs_are_reproducible() {
        let runner = ScenarioRunner::new(small_fleet()).unwrap();
        let first = runner.run().unwrap();
        let second = runner.run().unwrap();
        assert_eq!(first.responses(), second.responses());
        assert_eq!(first.groups()[0].energy_joules, second.groups()[0].energy_joules);
    }
}
