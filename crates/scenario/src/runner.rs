use crate::scenario::{traffic_to_core, Scenario, WorkloadSource};
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use sleepscale::{CacheStats, CoreError, RunReport, RuntimeConfig, StrategySpec, WarmStartStats};
use sleepscale_cluster::{Cluster, ClusterConfig, ClusterReport};
use sleepscale_dist::StreamingSummary;
use sleepscale_journal::{fnv1a64, Journal, JournalMeta, KillPlan};
use sleepscale_power::{ep, EnergyProportionality, PowerSample};
use sleepscale_sim::{JobStream, StreamSplit};
use sleepscale_telemetry::{metrics, MetricsRegistry, TelemetryReport, TraceEvent};
use sleepscale_traffic::replay_traffic;
use sleepscale_workloads::{
    replay_trace, ReplayConfig, UtilizationTrace, WorkloadDistributions, WorkloadSpec,
};
use std::path::Path;

/// The snapshot schema version this binary writes into (and accepts
/// from) journal headers. Bump whenever any `Snapshot` layout anywhere
/// in the engine changes — a resume across versions is rejected with a
/// typed error, never guessed at.
pub const JOURNAL_SCHEMA_VERSION: u32 = 2;

/// Which engine a scenario ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// The single-server closed loop ([`sleepscale::run`]).
    SingleServer,
    /// The single-server loop selecting from the closed-form model
    /// (no characterization simulations).
    Analytic,
    /// The multi-server fleet engine ([`Cluster::run`]).
    Cluster,
}

impl Backend {
    /// Short display label.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::SingleServer => "runtime",
            Backend::Analytic => "analytic",
            Backend::Cluster => "cluster",
        }
    }
}

/// One server group's slice of a scenario result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupReport {
    /// The group's display name.
    pub name: String,
    /// Servers in the group.
    pub servers: usize,
    /// Jobs the group completed.
    pub jobs: usize,
    /// Job-weighted mean response, seconds.
    pub mean_response_seconds: f64,
    /// Normalized mean response `µ·E[R]`.
    pub normalized_mean_response: f64,
    /// The group's QoS budget (normalized mean response).
    pub qos_budget: f64,
    /// Whether the group's realized response stayed within
    /// `qos_slack ×` its budget.
    pub qos_ok: bool,
    /// Summed average power across the group, watts.
    pub avg_power_watts: f64,
    /// Total energy across the group, joules.
    pub energy_joules: f64,
    /// Active (serving) energy across the group, joules — the ledger's
    /// exact attribution (the remainder is idle-side energy).
    pub active_energy_joules: f64,
    /// The group's energy-proportionality summary over bucket samples
    /// merged across its servers (`None` when undefined).
    pub ep: Option<EnergyProportionality>,
    /// The group's characterization-cache counters (zero for unmanaged
    /// strategies, which never characterize).
    pub cache: CacheStats,
}

impl GroupReport {
    /// Idle-side energy across the group (idle, sleep, wake-up):
    /// `total − active`, so the two line items reproduce the total.
    pub fn idle_energy_joules(&self) -> f64 {
        self.energy_joules - self.active_energy_joules
    }
}

/// One traffic class's slice of a scenario result (only populated for
/// [`WorkloadSource::Tagged`] scenarios, in declared class order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassReport {
    /// The class's display name.
    pub name: String,
    /// The class tag index.
    pub class: u16,
    /// Jobs of this class completed.
    pub jobs: usize,
    /// The class's mean response, seconds.
    pub mean_response_seconds: f64,
    /// The class's 95th-percentile response, seconds (sketched to
    /// ±0.5% relative).
    pub p95_response_seconds: f64,
    /// p95 normalized by the *class's own* mean service time — the
    /// unit its QoS budget is written in.
    pub normalized_p95: f64,
    /// The class's declared normalized-p95 budget (`None` =
    /// unconstrained).
    pub p95_budget: Option<f64>,
    /// Whether the class met its budget within the scenario's
    /// `qos_slack` (vacuously true with no budget or no jobs).
    pub qos_ok: bool,
    /// The class's share of the offered full-speed work. Kept as the
    /// *legacy* attribution key for comparison: it ignores which
    /// frequencies actually served the class, so it diverges from the
    /// exact ledger split whenever a class's arrivals correlate with
    /// the deployed frequency (the `energy` gate demonstrates this).
    pub work_share: f64,
    /// Fleet energy attributed to the class, joules — the "idle
    /// apportioned by active share" view: the class's exact active
    /// energy plus a slice of the fleet's idle-side energy in
    /// proportion to its active share. Summing this over classes (plus
    /// nothing else) reproduces fleet energy whenever any work was
    /// served; for a zero-work run every class reports 0 and the whole
    /// fleet total is the idle line item.
    pub energy_joules: f64,
    /// The "active only" view: energy the class's jobs were actually
    /// served with, exactly attributed by the engine ledgers, joules.
    pub active_energy_joules: f64,
}

/// The unified result of running a [`Scenario`]: per-group and
/// per-traffic-class slices, the backend's native report, the merged
/// streaming response summary, and the characterization-cache /
/// warm-start telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    scenario: String,
    backend: Backend,
    groups: Vec<GroupReport>,
    classes: Vec<ClassReport>,
    run: Option<RunReport>,
    cluster: Option<ClusterReport>,
    responses: StreamingSummary,
    mean_service: f64,
    horizon_seconds: f64,
    cache: CacheStats,
    warm: WarmStartStats,
    telemetry: Option<TelemetryReport>,
}

impl ScenarioReport {
    /// The scenario's name.
    pub fn scenario(&self) -> &str {
        &self.scenario
    }

    /// Which backend ran.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Per-group slices, in fleet order.
    pub fn groups(&self) -> &[GroupReport] {
        &self.groups
    }

    /// Per-traffic-class slices, in declared class order (empty unless
    /// the scenario's workload is [`WorkloadSource::Tagged`]).
    pub fn classes(&self) -> &[ClassReport] {
        &self.classes
    }

    /// The single-server backend's native report, when that backend
    /// ran.
    pub fn run_report(&self) -> Option<&RunReport> {
        self.run.as_ref()
    }

    /// The cluster backend's native report, when that backend ran.
    pub fn cluster_report(&self) -> Option<&ClusterReport> {
        self.cluster.as_ref()
    }

    /// The merged streaming response summary (exact count/mean,
    /// sketched quantiles), whatever the backend.
    pub fn responses(&self) -> &StreamingSummary {
        &self.responses
    }

    /// Jobs completed across the fleet.
    pub fn total_jobs(&self) -> usize {
        self.responses.count() as usize
    }

    /// Job-weighted mean response, seconds.
    pub fn mean_response_seconds(&self) -> f64 {
        self.responses.mean()
    }

    /// Normalized mean response `µ·E[R]`.
    pub fn normalized_mean_response(&self) -> f64 {
        self.responses.mean() / self.mean_service
    }

    /// 95th-percentile response, seconds (sketched to ±0.5% on the
    /// cluster backend, exact on the single-server backend's native
    /// report).
    pub fn p95_response_seconds(&self) -> f64 {
        self.responses.p95()
    }

    /// Total fleet power, watts.
    pub fn avg_power_watts(&self) -> f64 {
        self.groups.iter().map(|g| g.avg_power_watts).sum()
    }

    /// Total fleet energy, joules.
    pub fn energy_joules(&self) -> f64 {
        self.groups.iter().map(|g| g.energy_joules).sum()
    }

    /// Fleet-wide active (serving) energy, joules.
    pub fn active_energy_joules(&self) -> f64 {
        self.groups.iter().map(|g| g.active_energy_joules).sum()
    }

    /// The explicit idle line item: fleet energy spent in idle, sleep,
    /// and wake-up intervals that belong to no job, joules. Together
    /// with [`ScenarioReport::active_energy_joules`] this reproduces
    /// [`ScenarioReport::energy_joules`]; per-class `energy_joules`
    /// apportions it by active share, so class totals stay consistent
    /// even for zero-work runs (where it is the whole fleet energy).
    pub fn idle_energy_joules(&self) -> f64 {
        self.groups.iter().map(|g| g.idle_energy_joules()).sum()
    }

    /// Fleet-level `(utilization, power)` samples from the backend's
    /// native report, one per ledger bucket.
    pub fn power_samples(&self) -> &[PowerSample] {
        match (&self.run, &self.cluster) {
            (Some(r), _) => r.power_samples(),
            (_, Some(c)) => c.power_samples(),
            _ => &[],
        }
    }

    /// Fleet-level energy-proportionality summary (`None` when
    /// undefined — e.g. a run that never served a job).
    pub fn energy_proportionality(&self) -> Option<EnergyProportionality> {
        ep::analyze(self.power_samples())
    }

    /// The fleet's utilization→power curve, binned into `bins`
    /// fixed-width utilization bins.
    pub fn utilization_power_curve(&self, bins: usize) -> Vec<PowerSample> {
        ep::utilization_power_curve(self.power_samples(), bins)
    }

    /// The run's horizon, seconds.
    pub fn horizon_seconds(&self) -> f64 {
        self.horizon_seconds
    }

    /// Whether every group stayed within its QoS slack *and* every
    /// declared traffic class met its own p95 budget.
    pub fn qos_ok(&self) -> bool {
        self.groups.iter().all(|g| g.qos_ok) && self.classes.iter().all(|c| c.qos_ok)
    }

    /// Server-seconds spent parked by the autoscaler (0.0 for
    /// fixed-fleet scenarios and the single-server backends).
    pub fn parked_server_seconds(&self) -> f64 {
        self.cluster.as_ref().map_or(0.0, |c| c.parked_server_seconds())
    }

    /// Active-fleet-size trace, one entry per epoch (empty unless an
    /// autoscaled cluster scenario ran).
    pub fn fleet_size_trace(&self) -> &[usize] {
        self.cluster.as_ref().map_or(&[][..], |c| c.fleet_size_trace())
    }

    /// Characterization-cache counters summed over the fleet.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// Warm-start counters summed over the fleet.
    pub fn warm_start_stats(&self) -> WarmStartStats {
        self.warm
    }

    /// The run's structured telemetry — the merged trace-event stream
    /// and the monotonic counter registry — when the scenario armed
    /// [`Scenario::telemetry`](crate::Scenario). Events are merged in
    /// slot order (fleet-level events appended in simulation-time
    /// order), so the stream is byte-identical across worker and shard
    /// counts.
    pub fn telemetry(&self) -> Option<&TelemetryReport> {
        self.telemetry.as_ref()
    }

    /// This report with telemetry stripped — everything a
    /// `telemetry: None` run of the same scenario would produce, byte
    /// for byte (the `obs` gate pins exactly that equality).
    pub fn without_telemetry(mut self) -> ScenarioReport {
        self.telemetry = None;
        self
    }
}

/// Validates a [`Scenario`] and drives it end to end on the right
/// backend: a one-server fleet runs the single-server closed loop
/// (labelled `analytic` when the strategy selects from the closed
/// form), anything larger runs the cluster engine — same inputs, same
/// seed discipline, one [`ScenarioReport`] out.
///
/// Backend selection rules:
///
/// 1. `total_servers() == 1` → [`sleepscale::run`] with the group's
///    strategy ([`Backend::SingleServer`], or [`Backend::Analytic`]
///    when the spec is [`StrategySpec::Analytic`]). The dispatcher is
///    ignored.
/// 2. `total_servers() > 1` → [`Cluster::run`] over the fleet's
///    groups behind the scenario's dispatcher ([`Backend::Cluster`]).
///
/// Both paths materialize identical inputs from the scenario's seed
/// ([`ScenarioRunner::inputs`]): one RNG seeds the distribution
/// synthesis and then the ground-truth replay, so a scenario is a pure
/// function of its fields — and the runner's single-server and cluster
/// wirings are byte-identical to the hand-written equivalents (the
/// determinism suite pins this).
#[derive(Debug, Clone)]
pub struct ScenarioRunner {
    scenario: Scenario,
}

impl ScenarioRunner {
    /// Validates the scenario (shape errors surface here, not mid-run).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty fleet, a
    /// zero-count group, zero epochs/evaluation depth, a degenerate
    /// arrival scale or QoS slack, an invalid workload mix, or an
    /// invalid load window.
    pub fn new(scenario: Scenario) -> Result<ScenarioRunner, CoreError> {
        if scenario.fleet.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: format!("scenario '{}' has an empty fleet", scenario.name),
            });
        }
        for group in &scenario.fleet {
            if group.count == 0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "scenario '{}': server group '{}' has zero servers",
                        scenario.name, group.name
                    ),
                });
            }
        }
        if scenario.epoch_minutes == 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("scenario '{}': epoch_minutes must be >= 1", scenario.name),
            });
        }
        if scenario.eval_jobs == 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("scenario '{}': eval_jobs must be >= 1", scenario.name),
            });
        }
        if scenario.dist_samples < 16 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "scenario '{}': dist_samples {} is too small to synthesize empirical tables",
                    scenario.name, scenario.dist_samples
                ),
            });
        }
        if !scenario.arrival_scale.is_finite() || scenario.arrival_scale <= 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "scenario '{}': arrival_scale {} must be finite and > 0",
                    scenario.name, scenario.arrival_scale
                ),
            });
        }
        if !scenario.qos_slack.is_finite() || scenario.qos_slack < 1.0 {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "scenario '{}': qos_slack {} must be finite and >= 1",
                    scenario.name, scenario.qos_slack
                ),
            });
        }
        if scenario.shards == 0 {
            return Err(CoreError::InvalidConfig {
                reason: format!("scenario '{}': shards must be >= 1", scenario.name),
            });
        }
        if scenario.shards > 1 {
            if scenario.dispatcher.split_seed().is_none() {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "scenario '{}': sharded runs require the SplitUniform dispatcher \
                         (stateful dispatchers read fleet-wide live state and cannot shard)",
                        scenario.name
                    ),
                });
            }
            if scenario.total_servers() == 1 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "scenario '{}': sharding needs a multi-server fleet",
                        scenario.name
                    ),
                });
            }
        }
        scenario.dispatcher.validate(&scenario.fleet)?;
        if let Some(spec) = &scenario.autoscaler {
            spec.validate().map_err(|reason| CoreError::InvalidConfig {
                reason: format!("scenario '{}': {reason}", scenario.name),
            })?;
            if scenario.total_servers() == 1 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "scenario '{}': autoscaling needs a multi-server fleet (there is \
                         nothing to park on one server)",
                        scenario.name
                    ),
                });
            }
        }
        // Workload and load-window shape errors surface at validation
        // (cheap checks only — the trace itself is synthesized once,
        // by `inputs`, at run time).
        scenario.workload.resolve()?;
        scenario.load.validate()?;
        Ok(ScenarioRunner { scenario })
    }

    /// The validated scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Materializes the scenario's deterministic inputs: resolved
    /// workload statistics, the scaled utilization trace, and the
    /// cluster-wide ground-truth job stream (arrival rate carries the
    /// fleet factor; [`WorkloadSource::Tagged`] scenarios draw every
    /// job from its own class's tables and tag it). Exposed so
    /// comparison harnesses (e.g. the `cluster_scale` parity gate) can
    /// feed the *same* inputs to a reference engine.
    ///
    /// # Errors
    ///
    /// Propagates workload/trace/replay errors.
    pub fn inputs(&self) -> Result<(WorkloadSpec, UtilizationTrace, JobStream), CoreError> {
        let spec = self.scenario.workload.resolve()?;
        let trace = self.scenario.load.build(self.scenario.arrival_scale)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.scenario.seed);
        let replay_config = ReplayConfig::for_fleet(self.scenario.total_servers());
        let jobs = match &self.scenario.workload {
            // The tagged path consumes the RNG in the same order as
            // the untagged one (per-class tables, then replay), so a
            // single-class model materializes byte-identical inputs.
            WorkloadSource::Tagged(model) => {
                let tables = model
                    .empirical_tables(self.scenario.dist_samples, &mut rng)
                    .map_err(traffic_to_core)?;
                replay_traffic(&trace, model, &tables, &replay_config, &mut rng)
                    .map_err(traffic_to_core)?
            }
            _ => {
                let dists =
                    WorkloadDistributions::empirical(&spec, self.scenario.dist_samples, &mut rng)?;
                replay_trace(&trace, &dists, &replay_config, &mut rng)?
            }
        };
        Ok((spec, trace, jobs))
    }

    /// The base runtime configuration the fleet's per-group configs are
    /// resolved against (group 0 contributes the base env/QoS/α; other
    /// groups overlay their own).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeConfig`] validation errors.
    pub fn base_runtime(&self, spec: &WorkloadSpec) -> Result<RuntimeConfig, CoreError> {
        let lead = &self.scenario.fleet[0];
        RuntimeConfig::builder(spec.service_mean())
            .qos(lead.qos)
            .epoch_minutes(self.scenario.epoch_minutes)
            .eval_jobs(self.scenario.eval_jobs)
            .over_provisioning(lead.over_provisioning)
            .env(lead.env.clone())
            .build()
    }

    /// Runs the scenario end to end.
    ///
    /// # Errors
    ///
    /// Propagates input-materialization and backend errors.
    pub fn run(&self) -> Result<ScenarioReport, CoreError> {
        let (spec, trace, jobs) = self.inputs()?;
        self.run_with_inputs(&spec, &trace, &jobs)
    }

    /// Runs the scenario against inputs materialized earlier with
    /// [`ScenarioRunner::inputs`] — so comparison harnesses can time
    /// the backend alone, or share one expensive replay across several
    /// runs. Passing inputs from anywhere else breaks the scenario's
    /// pure-function-of-its-fields contract.
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn run_with_inputs(
        &self,
        spec: &WorkloadSpec,
        trace: &UtilizationTrace,
        jobs: &JobStream,
    ) -> Result<ScenarioReport, CoreError> {
        let base = self.base_runtime(spec)?;
        let report = if self.scenario.total_servers() == 1 {
            self.run_single(spec, trace, jobs, &base, None, None)?
        } else {
            self.run_cluster(spec, trace, jobs, &base, None, None)?
        };
        Ok(report.expect("a run without a checkpoint sink always completes"))
    }

    /// FNV-1a 64 fingerprint of the scenario's full configuration (the
    /// debug form covers every field, the fleet and workload included).
    /// Written into the journal header so resuming against a reshaped
    /// scenario is a typed error instead of silent divergence.
    pub fn config_fingerprint(&self) -> u64 {
        fnv1a64(format!("{:?}", self.scenario).as_bytes())
    }

    fn journal_meta(&self) -> JournalMeta {
        JournalMeta {
            schema_version: JOURNAL_SCHEMA_VERSION,
            seed: self.scenario.seed,
            config_fingerprint: self.config_fingerprint(),
        }
    }

    /// Runs the scenario with epoch-boundary checkpointing into the
    /// journal at `path` — created fresh, or resumed if a journal from
    /// an earlier killed attempt of the *same* run already sits there.
    /// After every completed epoch the engine's full state is committed
    /// as one sealed, checksummed record; `kill` injects a
    /// deterministic crash after its epoch's record commits and makes
    /// the call return `Ok(None)` (the fault-injection path the
    /// `resume` gate drives — [`KillPlan::never`] always completes).
    ///
    /// # Errors
    ///
    /// Journal header mismatches (schema version, seed, config
    /// fingerprint) and payload decode failures surface as
    /// [`CoreError::Checkpoint`]; input and backend errors propagate
    /// unchanged.
    pub fn run_checkpointed(
        &self,
        path: &Path,
        kill: KillPlan,
    ) -> Result<Option<ScenarioReport>, CoreError> {
        let meta = self.journal_meta();
        let (journal, resume) = if path.exists() {
            Journal::open_resume(path, &meta)?
        } else {
            (Journal::create(path, &meta)?, None)
        };
        self.drive_checkpointed(journal, resume, kill)
    }

    /// Resumes a killed checkpointed run from its journal and drives it
    /// to completion: a torn tail is truncated to the last sealed
    /// record, state is restored from that record (or the run restarts
    /// from scratch when none survived), and the remaining epochs run —
    /// appending to the same journal, so kills can chain — producing a
    /// report byte-identical to an uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`CoreError::Checkpoint`] when the journal was written by a
    /// different schema version, seed, or scenario shape, or its last
    /// sealed record fails to decode; backend errors propagate
    /// unchanged.
    pub fn resume(&self, path: &Path) -> Result<ScenarioReport, CoreError> {
        let meta = self.journal_meta();
        let (journal, resume) = Journal::open_resume(path, &meta)?;
        Ok(self
            .drive_checkpointed(journal, resume, KillPlan::never())?
            .expect("a checkpointed run without a kill plan always completes"))
    }

    fn drive_checkpointed(
        &self,
        mut journal: Journal,
        resume: Option<Vec<u8>>,
        kill: KillPlan,
    ) -> Result<Option<ScenarioReport>, CoreError> {
        // Telemetry buffers are not part of the snapshot schema, so a
        // resumed run could never reconstruct the pre-kill event
        // stream; reject the combination up front instead of silently
        // dropping events.
        if self.scenario.telemetry.is_some() {
            return Err(CoreError::InvalidConfig {
                reason: format!(
                    "scenario '{}': telemetry composes with neither checkpointing nor resume — \
                     drop `telemetry` or run without a journal",
                    self.scenario.name
                ),
            });
        }
        let (spec, trace, jobs) = self.inputs()?;
        let base = self.base_runtime(&spec)?;
        let mut sink = |epoch: usize, payload: &[u8]| -> Result<bool, CoreError> {
            journal.append(payload)?;
            Ok(!kill.should_kill(epoch))
        };
        if self.scenario.total_servers() == 1 {
            self.run_single(&spec, &trace, &jobs, &base, resume.as_deref(), Some(&mut sink))
        } else {
            self.run_cluster(&spec, &trace, &jobs, &base, resume.as_deref(), Some(&mut sink))
        }
    }

    /// Per-class slices for tagged scenarios: zips the declared classes
    /// with the run's per-class response summaries (a single-class
    /// model's only class *is* the overall summary — engines leave the
    /// slices empty for effectively single-class streams) and
    /// attributes energy to classes *exactly*, from the ledgers'
    /// per-class active energy. Each class reports both views: its
    /// active-only energy, and active plus a slice of the fleet's
    /// idle-side energy apportioned by active share (so the class
    /// column still sums to fleet energy). The offered-work share is
    /// kept as the legacy comparison key.
    fn class_reports(
        &self,
        jobs: &JobStream,
        slices: &[StreamingSummary],
        overall: &StreamingSummary,
        total_energy: f64,
        class_active: &[f64],
    ) -> Vec<ClassReport> {
        let Some(model) = self.scenario.workload.traffic_model() else {
            return Vec::new();
        };
        let mut work = vec![0.0_f64; model.classes.len()];
        let mut total_work = 0.0_f64;
        for job in jobs.jobs() {
            if let Some(w) = work.get_mut(job.class().as_index()) {
                *w += job.size;
            }
            total_work += job.size;
        }
        let active_total: f64 = class_active.iter().sum();
        let idle_energy = total_energy - active_total;
        let empty = StreamingSummary::new();
        model
            .classes
            .iter()
            .enumerate()
            .map(|(i, class)| {
                let summary: &StreamingSummary = if slices.is_empty() {
                    if i == 0 {
                        overall
                    } else {
                        &empty
                    }
                } else {
                    slices.get(i).unwrap_or(&empty)
                };
                let jobs_n = summary.count() as usize;
                let p95 = summary.p95();
                let normalized_p95 = p95 / class.spec.service_mean();
                let qos_ok = class
                    .p95_budget
                    .is_none_or(|b| jobs_n == 0 || normalized_p95 <= b * self.scenario.qos_slack);
                let work_share = if total_work > 0.0 { work[i] / total_work } else { 0.0 };
                let active = class_active.get(i).copied().unwrap_or(0.0);
                // Idle energy is apportioned by *active* share. A
                // zero-work run has no active share to apportion by:
                // every class reports 0 and the fleet total shows up
                // as the report's explicit idle line item instead.
                let energy_joules = if active_total > 0.0 {
                    active + idle_energy * (active / active_total)
                } else {
                    0.0
                };
                ClassReport {
                    name: class.name.clone(),
                    class: i as u16,
                    jobs: jobs_n,
                    mean_response_seconds: summary.mean(),
                    p95_response_seconds: p95,
                    normalized_p95,
                    p95_budget: class.p95_budget,
                    qos_ok,
                    work_share,
                    energy_joules,
                    active_energy_joules: active,
                }
            })
            .collect()
    }

    fn run_single(
        &self,
        spec: &WorkloadSpec,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        base: &RuntimeConfig,
        resume_from: Option<&[u8]>,
        sink: Option<sleepscale::CheckpointSink<'_>>,
    ) -> Result<Option<ScenarioReport>, CoreError> {
        let group = &self.scenario.fleet[0];
        let backend = if matches!(group.strategy, StrategySpec::Analytic { .. }) {
            Backend::Analytic
        } else {
            Backend::SingleServer
        };
        // Keep the concrete strategy type when the spec is managed so
        // cache/warm telemetry survives into the report. Telemetry-armed
        // runs take the traced entry point (drive_checkpointed rejects
        // the telemetry+journal combination before reaching here).
        let mut events: Vec<TraceEvent> = Vec::new();
        let traced = self.scenario.telemetry.is_some();
        let (report, cache, warm) = match group.strategy.build_managed(base) {
            Some(mut managed) => {
                let report = if traced {
                    let (report, ev) =
                        sleepscale::run_traced(trace, jobs, &mut managed, base.env(), base)?;
                    events = ev;
                    report
                } else {
                    let Some(report) = sleepscale::run_resumable(
                        trace,
                        jobs,
                        &mut managed,
                        base.env(),
                        base,
                        resume_from,
                        sink,
                    )?
                    else {
                        return Ok(None);
                    };
                    report
                };
                (report, managed.cache_stats().unwrap_or_default(), managed.warm_start_stats())
            }
            None => {
                let mut strategy = group.strategy.build(base);
                let report = if traced {
                    let (report, ev) =
                        sleepscale::run_traced(trace, jobs, strategy.as_mut(), base.env(), base)?;
                    events = ev;
                    report
                } else {
                    let Some(report) = sleepscale::run_resumable(
                        trace,
                        jobs,
                        strategy.as_mut(),
                        base.env(),
                        base,
                        resume_from,
                        sink,
                    )?
                    else {
                        return Ok(None);
                    };
                    report
                };
                (report, CacheStats::default(), WarmStartStats::default())
            }
        };
        let telemetry = self.scenario.telemetry.map(|tspec| {
            let mut registry = MetricsRegistry::new();
            if tspec.metrics {
                registry.add(metrics::JOBS_TOTAL, report.total_jobs() as u64);
                for (c, slice) in report.class_responses().iter().enumerate() {
                    registry.add(&metrics::jobs_class(c as u16), slice.count());
                }
                // Single-server counters derive from the trace itself:
                // a decision with `evaluated == 0` and no hit flag is a
                // fixed/unmanaged policy, neither hit nor miss.
                let (mut hits, mut misses, mut wakes, mut dry) = (0u64, 0u64, 0u64, 0u64);
                for event in &events {
                    match event {
                        TraceEvent::EpochDecision { cache_hit: true, .. } => hits += 1,
                        TraceEvent::EpochDecision { evaluated, .. } if *evaluated > 0 => {
                            misses += 1;
                        }
                        TraceEvent::Wake { from: Some(_), .. } => wakes += 1,
                        TraceEvent::Wake { from: None, .. } => dry += 1,
                        _ => {}
                    }
                }
                registry.add(metrics::CACHE_HITS, hits);
                registry.add(metrics::CACHE_MISSES, misses);
                registry.add(metrics::WAKE_TRANSITIONS, wakes);
                registry.add(metrics::WAKES_WITHOUT_SLEEP, dry);
            }
            TelemetryReport {
                events: if tspec.trace_events { std::mem::take(&mut events) } else { Vec::new() },
                metrics: registry,
            }
        });
        let norm = report.normalized_mean_response();
        let budget = group.qos.normalized_mean_budget();
        let group_report = GroupReport {
            name: group.name.clone(),
            servers: 1,
            jobs: report.total_jobs(),
            mean_response_seconds: report.mean_response_seconds(),
            normalized_mean_response: norm,
            qos_budget: budget,
            qos_ok: report.total_jobs() == 0 || norm <= budget * self.scenario.qos_slack,
            avg_power_watts: report.avg_power_watts(),
            energy_joules: report.energy_joules(),
            active_energy_joules: report.active_energy_joules(),
            ep: report.energy_proportionality(),
            cache,
        };
        let classes = self.class_reports(
            jobs,
            report.class_responses(),
            report.responses(),
            report.energy_joules(),
            report.class_active_energy(),
        );
        Ok(Some(ScenarioReport {
            scenario: self.scenario.name.clone(),
            backend,
            groups: vec![group_report],
            classes,
            responses: report.responses().clone(),
            mean_service: spec.service_mean(),
            horizon_seconds: report.horizon_seconds(),
            cache,
            warm,
            telemetry,
            run: Some(report),
            cluster: None,
        }))
    }

    fn run_cluster(
        &self,
        spec: &WorkloadSpec,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        base: &RuntimeConfig,
        resume_from: Option<&[u8]>,
        sink: Option<sleepscale::CheckpointSink<'_>>,
    ) -> Result<Option<ScenarioReport>, CoreError> {
        let config = ClusterConfig::new(base, self.scenario.fleet.clone())?;
        let mut cluster = Cluster::new(config).with_threads(self.scenario.threads);
        if let Some(spec) = &self.scenario.autoscaler {
            cluster = cluster.with_autoscaler(spec.clone());
        }
        if let Some(tspec) = self.scenario.telemetry {
            cluster = cluster.with_telemetry(tspec);
        }
        // Sharded scenarios take the concurrent engine; validation
        // guarantees the dispatcher is shardable. Byte-identical to the
        // central path for every shard count, so `shards` is a pure
        // throughput knob.
        let report = match (self.scenario.shards, self.scenario.dispatcher.split_seed()) {
            (shards, Some(seed)) if shards > 1 => cluster.run_sharded_checkpointed(
                trace,
                jobs,
                StreamSplit::new(seed),
                shards,
                resume_from,
                sink,
            )?,
            _ => {
                let mut dispatcher = self.scenario.dispatcher.build(&self.scenario.fleet);
                cluster.run_checkpointed(trace, jobs, dispatcher.as_mut(), resume_from, sink)?
            }
        };
        let Some(report) = report else {
            return Ok(None);
        };
        let per_group_cache = cluster.group_characterization_stats();
        let groups = report
            .group_summaries()
            .into_iter()
            .zip(&self.scenario.fleet)
            .zip(per_group_cache)
            .map(|((summary, group), (_, cache))| {
                let norm = summary.mean_response / spec.service_mean();
                let budget = group.qos.normalized_mean_budget();
                GroupReport {
                    name: summary.name,
                    servers: summary.servers,
                    jobs: summary.jobs,
                    mean_response_seconds: summary.mean_response,
                    normalized_mean_response: norm,
                    qos_budget: budget,
                    qos_ok: summary.jobs == 0 || norm <= budget * self.scenario.qos_slack,
                    avg_power_watts: summary.avg_power,
                    energy_joules: summary.energy_joules,
                    active_energy_joules: summary.active_energy_joules,
                    ep: summary.ep,
                    cache,
                }
            })
            .collect();
        let classes = self.class_reports(
            jobs,
            report.class_responses(),
            report.responses(),
            report.total_energy_joules(),
            report.class_active_energy(),
        );
        Ok(Some(ScenarioReport {
            scenario: self.scenario.name.clone(),
            backend: Backend::Cluster,
            groups,
            classes,
            responses: report.responses().clone(),
            mean_service: spec.service_mean(),
            horizon_seconds: report.horizon_seconds(),
            cache: cluster.characterization_stats(),
            warm: cluster.warm_start_stats(),
            telemetry: cluster.take_telemetry(),
            run: None,
            cluster: Some(report),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DispatcherSpec, LoadSchedule, WorkloadSource};
    use sleepscale_cluster::ServerGroup;

    fn small_single() -> Scenario {
        Scenario {
            eval_jobs: 300,
            dist_samples: 4_000,
            seed: 21,
            ..Scenario::new(
                "single",
                WorkloadSource::Dns,
                LoadSchedule::Constant { rho: 0.25, minutes: 30 },
            )
        }
    }

    fn small_fleet() -> Scenario {
        let mut scenario = Scenario {
            eval_jobs: 200,
            dist_samples: 4_000,
            seed: 22,
            dispatcher: DispatcherSpec::RoundRobin,
            ..Scenario::new(
                "fleet",
                WorkloadSource::Dns,
                LoadSchedule::Constant { rho: 0.25, minutes: 30 },
            )
        };
        scenario.fleet = vec![
            ServerGroup::new("ss", 2, StrategySpec::sleepscale()),
            ServerGroup::new("race", 2, StrategySpec::race_to_halt_c6()),
        ];
        scenario
    }

    #[test]
    fn single_server_backend_runs_and_reports() {
        let runner = ScenarioRunner::new(small_single()).unwrap();
        let report = runner.run().unwrap();
        assert_eq!(report.backend(), Backend::SingleServer);
        assert!(report.total_jobs() > 100);
        assert_eq!(report.groups().len(), 1);
        assert_eq!(report.groups()[0].jobs, report.total_jobs());
        assert!(report.run_report().is_some());
        assert!(report.cluster_report().is_none());
        assert!(report.qos_ok(), "{:?}", report.groups());
        assert!(report.avg_power_watts() > 28.0 && report.avg_power_watts() < 250.0);
        // The managed path carries cache telemetry through.
        assert!(report.cache_stats().hits + report.cache_stats().misses > 0);
    }

    #[test]
    fn analytic_backend_is_selected_for_analytic_specs() {
        let mut scenario = small_single();
        scenario.fleet[0].strategy = StrategySpec::analytic();
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.backend(), Backend::Analytic);
        assert_eq!(report.backend().label(), "analytic");
        // Closed-form selection never replays the log.
        assert_eq!(report.cache_stats(), CacheStats::default());
        assert!(report.total_jobs() > 100);
    }

    #[test]
    fn cluster_backend_splits_groups() {
        let runner = ScenarioRunner::new(small_fleet()).unwrap();
        let report = runner.run().unwrap();
        assert_eq!(report.backend(), Backend::Cluster);
        assert_eq!(report.groups().len(), 2);
        assert_eq!(
            report.groups().iter().map(|g| g.jobs).sum::<usize>(),
            report.total_jobs(),
            "group slices partition the fleet's jobs"
        );
        let cluster = report.cluster_report().unwrap();
        assert_eq!(cluster.n_servers(), 4);
        // The racing group never characterizes.
        assert_eq!(report.groups()[1].cache, CacheStats::default());
        assert!(report.groups()[0].cache.misses > 0);
    }

    #[test]
    fn scenario_validation_rejects_bad_shapes() {
        let mut empty = small_single();
        empty.fleet.clear();
        assert!(ScenarioRunner::new(empty).unwrap_err().to_string().contains("empty fleet"));

        let mut zero = small_fleet();
        zero.fleet[1].count = 0;
        assert!(ScenarioRunner::new(zero).unwrap_err().to_string().contains("zero servers"));

        let mut bad_scale = small_single();
        bad_scale.arrival_scale = f64::NAN;
        assert!(ScenarioRunner::new(bad_scale).is_err());

        let mut bad_slack = small_single();
        bad_slack.qos_slack = 0.5;
        assert!(ScenarioRunner::new(bad_slack).is_err());

        let mut bad_epoch = small_single();
        bad_epoch.epoch_minutes = 0;
        assert!(ScenarioRunner::new(bad_epoch).is_err());

        let mut bad_window = small_single();
        bad_window.load = LoadSchedule::EmailStoreDay { seed: 1, start_minute: 9, end_minute: 9 };
        assert!(ScenarioRunner::new(bad_window).is_err());
    }

    #[test]
    fn validation_rejects_bad_affinity_and_autoscaler_shapes() {
        use crate::AutoscalerSpec;

        let mut empty_table = small_fleet();
        empty_table.dispatcher =
            DispatcherSpec::ClassAffinity { class_groups: vec![], spill_threshold_seconds: 1.0 };
        let err = ScenarioRunner::new(empty_table).unwrap_err().to_string();
        assert!(err.contains("class→group"), "{err}");

        let mut out_of_range = small_fleet();
        out_of_range.dispatcher = DispatcherSpec::ClassAffinity {
            class_groups: vec![0, 7],
            spill_threshold_seconds: 1.0,
        };
        let err = ScenarioRunner::new(out_of_range).unwrap_err().to_string();
        assert!(err.contains("group 7"), "{err}");

        let mut bad_threshold = small_fleet();
        bad_threshold.dispatcher = DispatcherSpec::ClassAffinity {
            class_groups: vec![0],
            spill_threshold_seconds: f64::NAN,
        };
        assert!(ScenarioRunner::new(bad_threshold).is_err());

        let mut single_autoscaled = small_single();
        single_autoscaled.autoscaler = Some(AutoscalerSpec::new());
        let err = ScenarioRunner::new(single_autoscaled).unwrap_err().to_string();
        assert!(err.contains("multi-server"), "{err}");

        let mut bad_band = small_fleet();
        bad_band.autoscaler = Some(AutoscalerSpec { park_below: 0.9, ..AutoscalerSpec::new() });
        let err = ScenarioRunner::new(bad_band).unwrap_err().to_string();
        assert!(err.contains("park_below"), "{err}");
    }

    /// An autoscaled fleet scenario runs end to end through the
    /// declarative surface: the report carries parked server-seconds
    /// and a per-epoch fleet-size trace, and an identical scenario
    /// with `autoscaler: None` carries neither.
    #[test]
    fn autoscaled_scenario_reports_parking_telemetry() {
        use crate::AutoscalerSpec;
        let mut scenario = small_fleet();
        scenario.load = LoadSchedule::Constant { rho: 0.08, minutes: 30 };
        scenario.autoscaler = Some(AutoscalerSpec::new());
        let report = ScenarioRunner::new(scenario.clone()).unwrap().run().unwrap();
        assert_eq!(report.backend(), Backend::Cluster);
        assert!(report.parked_server_seconds() > 0.0);
        assert_eq!(report.fleet_size_trace().len(), 6);
        assert_eq!(report.fleet_size_trace()[0], 4, "epoch 0 starts at full size");
        assert!(report.fleet_size_trace().iter().any(|&m| m < 4), "the lull should park");

        scenario.autoscaler = None;
        let fixed = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert_eq!(fixed.parked_server_seconds(), 0.0);
        assert!(fixed.fleet_size_trace().is_empty());
    }

    /// The tentpole's scenario-level parity: a single-class tagged
    /// workload reproduces the untagged source's whole runtime path
    /// byte for byte — same inputs, same native report, same groups —
    /// and only *adds* the declared-class overlay.
    #[test]
    fn single_class_tagged_scenario_is_byte_identical_to_untagged() {
        use sleepscale_traffic::TrafficModel;
        use sleepscale_workloads::WorkloadSpec;
        for fleet_servers in [1usize, 3] {
            let mut untagged = small_single();
            let mut tagged = small_single();
            tagged.workload = WorkloadSource::Tagged(TrafficModel::single(WorkloadSpec::dns()));
            if fleet_servers > 1 {
                for s in [&mut untagged, &mut tagged] {
                    s.fleet =
                        vec![ServerGroup::new("fleet", fleet_servers, StrategySpec::sleepscale())];
                }
            }
            let a = ScenarioRunner::new(untagged).unwrap().run().unwrap();
            let b = ScenarioRunner::new(tagged).unwrap().run().unwrap();
            assert_eq!(a.run_report(), b.run_report(), "{fleet_servers} servers");
            assert_eq!(a.cluster_report(), b.cluster_report(), "{fleet_servers} servers");
            assert_eq!(a.responses(), b.responses());
            assert_eq!(a.groups(), b.groups());
            assert_eq!(a.cache_stats(), b.cache_stats());
            // The tagged run overlays its one declared class, whose
            // slice is the whole run.
            assert!(a.classes().is_empty());
            assert_eq!(b.classes().len(), 1);
            assert_eq!(b.classes()[0].jobs, a.total_jobs());
            assert!((b.classes()[0].work_share - 1.0).abs() < 1e-12);
            // One class owns all active energy, so its apportioned
            // view is the whole fleet energy.
            assert_eq!(b.classes()[0].active_energy_joules, a.active_energy_joules());
            assert!(
                (b.classes()[0].energy_joules - a.energy_joules()).abs() < 1e-9 * a.energy_joules(),
                "{fleet_servers} servers"
            );
            assert_eq!(a.power_samples(), b.power_samples());
            assert_eq!(a.energy_proportionality(), b.energy_proportionality());
            assert!(b.qos_ok());
        }
    }

    /// A two-class tagged fleet reports distinct per-class p95s and
    /// judges each class against its own budget.
    #[test]
    fn two_class_tagged_scenario_slices_by_class() {
        use sleepscale_traffic::{TrafficClass, TrafficModel};
        use sleepscale_workloads::WorkloadSpec;
        let mut scenario = small_fleet();
        scenario.workload = WorkloadSource::Tagged(
            TrafficModel::new(vec![
                TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0).with_p95_budget(40.0),
                TrafficClass::new("batch", WorkloadSpec::mail(), 1.0).with_p95_budget(120.0),
            ])
            .unwrap(),
        );
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        let classes = report.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(
            classes.iter().map(|c| c.jobs).sum::<usize>(),
            report.total_jobs(),
            "class slices partition the scenario's jobs"
        );
        assert!(classes[0].jobs > classes[1].jobs, "weights drive the split");
        assert!(
            (classes[0].p95_response_seconds - classes[1].p95_response_seconds).abs()
                > 1e-3 * classes[0].p95_response_seconds,
            "distinct populations must show distinct p95s: {} vs {}",
            classes[0].p95_response_seconds,
            classes[1].p95_response_seconds
        );
        let share_sum: f64 = classes.iter().map(|c| c.work_share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
        // The apportioned view still sums to fleet energy (active
        // totals plus the whole idle remainder), and the active-only
        // view sums to the fleet's active energy.
        let energy_sum: f64 = classes.iter().map(|c| c.energy_joules).sum();
        assert!((energy_sum - report.energy_joules()).abs() / report.energy_joules() < 1e-9);
        let active_sum: f64 = classes.iter().map(|c| c.active_energy_joules).sum();
        assert!(
            (active_sum - report.active_energy_joules()).abs() / report.active_energy_joules()
                < 1e-9
        );
        assert!(classes.iter().all(|c| c.active_energy_joules > 0.0));
        assert!(
            classes.iter().all(|c| c.energy_joules > c.active_energy_joules),
            "apportioned idle energy is strictly additive on a fleet that ever idles"
        );
        assert!(
            (report.active_energy_joules() + report.idle_energy_joules() - report.energy_joules())
                .abs()
                < 1e-6
        );
        assert!(report.energy_proportionality().is_some());
        assert!(report.qos_ok(), "{classes:?}");
    }

    /// Satellite regression: a zero-work (zero-load) tagged scenario
    /// used to report class shares summing to 0 while fleet energy was
    /// nonzero, with nothing accounting for the difference. Now the
    /// classes report zero energy and the whole fleet total is the
    /// explicit idle line item.
    #[test]
    fn zero_work_scenario_reports_energy_as_the_idle_line_item() {
        use sleepscale_traffic::{TrafficClass, TrafficModel};
        use sleepscale_workloads::WorkloadSpec;
        let mut scenario = small_single();
        scenario.load = LoadSchedule::Constant { rho: 0.0, minutes: 30 };
        scenario.workload = WorkloadSource::Tagged(
            TrafficModel::new(vec![
                TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0).with_p95_budget(40.0),
                TrafficClass::new("batch", WorkloadSpec::mail(), 1.0),
            ])
            .unwrap(),
        );
        let report = ScenarioRunner::new(scenario).unwrap().run().unwrap();
        assert_eq!(report.total_jobs(), 0);
        assert!(report.energy_joules() > 0.0, "an idle server still burns power");
        assert_eq!(report.active_energy_joules(), 0.0);
        assert!((report.idle_energy_joules() - report.energy_joules()).abs() < 1e-9);
        let classes = report.classes();
        assert_eq!(classes.len(), 2);
        for c in classes {
            assert_eq!(c.jobs, 0);
            assert_eq!(c.work_share, 0.0);
            assert_eq!(c.active_energy_joules, 0.0);
            assert_eq!(c.energy_joules, 0.0, "no active share to apportion idle energy by");
            assert!(c.qos_ok, "zero-work classes are vacuously within budget");
        }
        // The accounting identity: class energies plus the idle line
        // item reproduce fleet energy exactly.
        let class_sum: f64 = classes.iter().map(|c| c.energy_joules).sum();
        assert!((class_sum + report.idle_energy_joules() - report.energy_joules()).abs() < 1e-9);
        // A fleet that never serves has no measurable proportionality.
        assert!(report.energy_proportionality().is_none());
    }

    /// The sharded scenario path reproduces the central SplitUniform
    /// path byte for byte — `shards` is a pure throughput knob.
    #[test]
    fn sharded_scenario_matches_central_split_uniform() {
        let mut central = small_fleet();
        central.dispatcher = DispatcherSpec::SplitUniform { seed: 17 };
        let reference = ScenarioRunner::new(central.clone()).unwrap().run().unwrap();
        for shards in [2usize, 3] {
            let mut sharded = central.clone();
            sharded.shards = shards;
            let report = ScenarioRunner::new(sharded).unwrap().run().unwrap();
            assert_eq!(report.cluster_report(), reference.cluster_report(), "shards={shards}");
            assert_eq!(report.groups(), reference.groups());
            assert_eq!(report.responses(), reference.responses());
        }
    }

    /// Shard-shape errors surface at validation, not mid-run.
    #[test]
    fn shard_validation_rejects_bad_shapes() {
        let mut zero = small_fleet();
        zero.shards = 0;
        assert!(ScenarioRunner::new(zero).unwrap_err().to_string().contains("shards"));

        let mut stateful = small_fleet();
        stateful.shards = 2; // dispatcher is RoundRobin
        let err = ScenarioRunner::new(stateful).unwrap_err();
        assert!(err.to_string().contains("SplitUniform"), "{err}");

        let mut single = small_single();
        single.dispatcher = DispatcherSpec::SplitUniform { seed: 1 };
        single.shards = 2;
        let err = ScenarioRunner::new(single).unwrap_err();
        assert!(err.to_string().contains("multi-server"), "{err}");
    }

    fn journal_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sleepscale-runner-test-{}-{name}.ssj", std::process::id()));
        p
    }

    /// The tentpole at scenario level: an uninterrupted checkpointed
    /// run equals the plain run, and kill-then-resume equals both —
    /// byte for byte, on the single-server and cluster backends.
    #[test]
    fn checkpointed_kill_and_resume_is_byte_identical() {
        for scenario in [small_single(), small_fleet()] {
            let runner = ScenarioRunner::new(scenario).unwrap();
            let reference = runner.run().unwrap();
            let path = journal_path(&format!("kill-{}", runner.scenario().name));
            let _ = std::fs::remove_file(&path);
            let full = runner.run_checkpointed(&path, KillPlan::never()).unwrap().unwrap();
            assert_eq!(full, reference, "{}: uninterrupted checkpointed run", full.scenario());
            // Kill after epoch 2 of 6, then resume to completion.
            std::fs::remove_file(&path).unwrap();
            assert!(runner.run_checkpointed(&path, KillPlan::after_epoch(2)).unwrap().is_none());
            let resumed = runner.resume(&path).unwrap();
            assert_eq!(resumed, reference);
            assert_eq!(format!("{resumed:?}"), format!("{reference:?}"), "bit-exact debug form");
            std::fs::remove_file(&path).unwrap();
        }
    }

    /// A torn journal tail (simulated mid-write crash) truncates to the
    /// last sealed epoch and the resume still lands byte-identical.
    #[test]
    fn torn_journal_tail_resumes_from_last_sealed_epoch() {
        let runner = ScenarioRunner::new(small_single()).unwrap();
        let reference = runner.run().unwrap();
        let path = journal_path("torn");
        let _ = std::fs::remove_file(&path);
        assert!(runner.run_checkpointed(&path, KillPlan::after_epoch(3)).unwrap().is_none());
        sleepscale_journal::fault::truncate_tail(&path, 7).unwrap();
        let resumed = runner.resume(&path).unwrap();
        assert_eq!(resumed, reference);
        std::fs::remove_file(&path).unwrap();
    }

    /// Resuming under the wrong seed or a reshaped scenario is a typed
    /// error, never a silently diverging run.
    #[test]
    fn resume_rejects_mismatched_seed_and_config() {
        let runner = ScenarioRunner::new(small_single()).unwrap();
        let path = journal_path("mismatch");
        let _ = std::fs::remove_file(&path);
        assert!(runner.run_checkpointed(&path, KillPlan::after_epoch(0)).unwrap().is_none());
        let mut reseeded = small_single();
        reseeded.seed += 1;
        let err = ScenarioRunner::new(reseeded).unwrap().resume(&path).unwrap_err();
        assert!(matches!(err, CoreError::Checkpoint { .. }), "{err}");
        assert!(err.to_string().contains("seed mismatch"), "{err}");
        let mut reshaped = small_single();
        reshaped.eval_jobs += 1;
        let err = ScenarioRunner::new(reshaped).unwrap().resume(&path).unwrap_err();
        assert!(err.to_string().contains("config mismatch"), "{err}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn runs_are_reproducible() {
        let runner = ScenarioRunner::new(small_fleet()).unwrap();
        let first = runner.run().unwrap();
        let second = runner.run().unwrap();
        assert_eq!(first.responses(), second.responses());
        assert_eq!(first.groups()[0].energy_joules, second.groups()[0].energy_joules);
    }
}
