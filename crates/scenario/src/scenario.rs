use serde::{Deserialize, Serialize};
use sleepscale::{CoreError, StrategySpec};
use sleepscale_autoscale::AutoscalerSpec;
use sleepscale_cluster::{
    ClassAffinity, Dispatcher, JoinShortestBacklog, PackFirstFit, RandomUniform, RoundRobin,
    ServerGroup, SplitUniform,
};
use sleepscale_telemetry::TelemetrySpec;
use sleepscale_traffic::{TrafficError, TrafficModel};
use sleepscale_workloads::{traces, UtilizationTrace, WorkloadSpec};

/// Maps traffic-subsystem errors onto the runner's error type: shape
/// problems become configuration errors, propagated layers keep their
/// identity.
pub(crate) fn traffic_to_core(e: TrafficError) -> CoreError {
    match e {
        TrafficError::Workload(e) => CoreError::Workload(e),
        TrafficError::Stream(e) => CoreError::Workload(e.into()),
        other => CoreError::InvalidConfig { reason: other.to_string() },
    }
}

/// What the jobs look like: a Table-5 row, custom moments, or a
/// weighted mix of populations (moment-composed or class-tagged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSource {
    /// Table 5, DNS row.
    Dns,
    /// Table 5, Mail row.
    Mail,
    /// Table 5, Google row.
    Google,
    /// Custom summary statistics.
    Custom(WorkloadSpec),
    /// A weighted mixture of job populations: each arriving job is
    /// drawn from component `i` with probability proportional to its
    /// weight. The mixture is composed at the *moment* level (mixture
    /// mean and mixture second moment, hence mixture Cv), which is
    /// exactly the statistic Table 5 publishes for its own mixed live
    /// traces.
    Mix(Vec<MixComponent>),
    /// A *class-tagged* mixture: every job is drawn from its own
    /// class's distributions (sizes per class, arrivals interleaved by
    /// weight, per-class burst/diurnal modulators) and carries a
    /// [`ClassId`](sleepscale_sim::ClassId) tag through the whole run,
    /// so the report answers per-class response questions — including
    /// per-class p95 QoS targets — that [`WorkloadSource::Mix`]'s
    /// moment-level composition cannot. A single-class model is
    /// byte-identical to the equivalent untagged source.
    Tagged(TrafficModel),
}

/// One component of a [`WorkloadSource::Mix`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixComponent {
    /// The component population.
    pub spec: WorkloadSpec,
    /// Its relative weight (normalized over the mix).
    pub weight: f64,
}

/// Mixture mean and Cv from per-component (mean, Cv) pairs and
/// normalized weights: `E[X] = Σ wᵢ mᵢ`,
/// `E[X²] = Σ wᵢ mᵢ²(1 + Cvᵢ²)`.
fn mix_moments(parts: &[(f64, f64, f64)]) -> (f64, f64) {
    let mean: f64 = parts.iter().map(|(w, m, _)| w * m).sum();
    let second: f64 = parts.iter().map(|(w, m, cv)| w * m * m * (1.0 + cv * cv)).sum();
    let var = (second - mean * mean).max(0.0);
    (mean, var.sqrt() / mean)
}

impl WorkloadSource {
    /// Resolves the source into concrete summary statistics.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty mix or
    /// non-positive weights, and propagates invalid custom moments.
    pub fn resolve(&self) -> Result<WorkloadSpec, CoreError> {
        match self {
            WorkloadSource::Dns => Ok(WorkloadSpec::dns()),
            WorkloadSource::Mail => Ok(WorkloadSpec::mail()),
            WorkloadSource::Google => Ok(WorkloadSpec::google()),
            WorkloadSource::Custom(spec) => Ok(spec.clone()),
            WorkloadSource::Mix(components) => {
                if components.is_empty() {
                    return Err(CoreError::InvalidConfig {
                        reason: "a workload mix needs at least one component".into(),
                    });
                }
                let total: f64 = components.iter().map(|c| c.weight).sum();
                if !total.is_finite()
                    || total <= 0.0
                    || components.iter().any(|c| !c.weight.is_finite() || c.weight < 0.0)
                {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "mix weights must be finite and non-negative with a positive sum \
                             (got sum {total})"
                        ),
                    });
                }
                let service: Vec<(f64, f64, f64)> = components
                    .iter()
                    .map(|c| (c.weight / total, c.spec.service_mean(), c.spec.service_cv()))
                    .collect();
                let arrival: Vec<(f64, f64, f64)> = components
                    .iter()
                    .map(|c| {
                        (c.weight / total, c.spec.interarrival_mean(), c.spec.interarrival_cv())
                    })
                    .collect();
                let (sv_mean, sv_cv) = mix_moments(&service);
                let (ia_mean, ia_cv) = mix_moments(&arrival);
                let name = components.iter().map(|c| c.spec.name()).collect::<Vec<_>>().join("+");
                Ok(WorkloadSpec::new(format!("mix({name})"), ia_mean, ia_cv, sv_mean, sv_cv)?)
            }
            // The tagged model validates itself and composes with the
            // same moment formula `Mix` uses (single-class models
            // resolve to their class's spec verbatim).
            WorkloadSource::Tagged(model) => model.composed_spec().map_err(traffic_to_core),
        }
    }

    /// The declared traffic model, when this source is class-tagged.
    pub fn traffic_model(&self) -> Option<&TrafficModel> {
        match self {
            WorkloadSource::Tagged(model) => Some(model),
            _ => None,
        }
    }
}

/// The arrival-scale schedule: how offered utilization moves over the
/// scenario's horizon (replay scales the workload's inter-arrivals to
/// follow it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoadSchedule {
    /// Constant offered utilization (Section 4's idealized studies).
    Constant {
        /// Offered utilization (fraction of total fleet capacity).
        rho: f64,
        /// Horizon in minutes.
        minutes: usize,
    },
    /// A window of the synthetic email-store day (wide diurnal range,
    /// backup surges) — the paper's Section 6 trace substitute.
    EmailStoreDay {
        /// Trace seed.
        seed: u64,
        /// First minute of the window (0 = midnight).
        start_minute: usize,
        /// One past the last minute of the window.
        end_minute: usize,
    },
    /// A window of the synthetic file-server day (low utilization,
    /// gentle swing).
    FileServerDay {
        /// Trace seed.
        seed: u64,
        /// First minute of the window (0 = midnight).
        start_minute: usize,
        /// One past the last minute of the window.
        end_minute: usize,
    },
    /// An explicit per-minute utilization series.
    Trace(UtilizationTrace),
}

impl LoadSchedule {
    /// Checks the schedule's shape without materializing the trace —
    /// O(1) on the enum fields (runner validation calls this; the full
    /// synthesis happens once, at run time).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty/inverted
    /// window or an out-of-range constant utilization.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            LoadSchedule::Constant { rho, .. } => {
                if !rho.is_finite() || !(0.0..=1.0).contains(rho) {
                    return Err(CoreError::InvalidConfig {
                        reason: format!("constant load {rho} must be inside [0, 1]"),
                    });
                }
            }
            LoadSchedule::EmailStoreDay { start_minute, end_minute, .. }
            | LoadSchedule::FileServerDay { start_minute, end_minute, .. } => {
                if start_minute >= end_minute {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "load window [{start_minute}, {end_minute}) is empty or inverted"
                        ),
                    });
                }
            }
            LoadSchedule::Trace(_) => {} // validated at construction
        }
        Ok(())
    }

    /// The schedule's horizon in minutes.
    pub fn minutes(&self) -> usize {
        match self {
            LoadSchedule::Constant { minutes, .. } => *minutes,
            LoadSchedule::EmailStoreDay { start_minute, end_minute, .. }
            | LoadSchedule::FileServerDay { start_minute, end_minute, .. } => {
                end_minute.saturating_sub(*start_minute)
            }
            LoadSchedule::Trace(trace) => trace.len(),
        }
    }

    /// Materializes the utilization trace, scaling every minute by
    /// `arrival_scale` (clamped to the simulator's stable range).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty or inverted
    /// window and propagates trace validation errors.
    pub fn build(&self, arrival_scale: f64) -> Result<UtilizationTrace, CoreError> {
        let base = match self {
            LoadSchedule::Constant { rho, minutes } => {
                UtilizationTrace::constant(*rho, *minutes).map_err(CoreError::from)?
            }
            LoadSchedule::EmailStoreDay { seed, start_minute, end_minute }
            | LoadSchedule::FileServerDay { seed, start_minute, end_minute } => {
                if start_minute >= end_minute {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "load window [{start_minute}, {end_minute}) is empty or inverted"
                        ),
                    });
                }
                let days = end_minute.div_ceil(traces::MINUTES_PER_DAY).max(1);
                let day = match self {
                    LoadSchedule::EmailStoreDay { .. } => traces::email_store(days, *seed),
                    _ => traces::file_server(days, *seed),
                };
                day.window(*start_minute, *end_minute)
            }
            LoadSchedule::Trace(trace) => trace.clone(),
        };
        if (arrival_scale - 1.0).abs() < 1e-12 {
            return Ok(base);
        }
        let scaled: Vec<f64> =
            base.values().iter().map(|v| (v * arrival_scale).clamp(0.0, 0.97)).collect();
        Ok(UtilizationTrace::new(format!("{}×{arrival_scale}", base.name()), scaled)?)
    }

    /// The same schedule truncated to at most `max_minutes` — how
    /// `--quick` catalog runs shrink a scenario without changing its
    /// shape.
    pub fn truncated(self, max_minutes: usize) -> LoadSchedule {
        match self {
            LoadSchedule::Constant { rho, minutes } => {
                LoadSchedule::Constant { rho, minutes: minutes.min(max_minutes) }
            }
            LoadSchedule::EmailStoreDay { seed, start_minute, end_minute } => {
                LoadSchedule::EmailStoreDay {
                    seed,
                    start_minute,
                    end_minute: end_minute.min(start_minute + max_minutes),
                }
            }
            LoadSchedule::FileServerDay { seed, start_minute, end_minute } => {
                LoadSchedule::FileServerDay {
                    seed,
                    start_minute,
                    end_minute: end_minute.min(start_minute + max_minutes),
                }
            }
            LoadSchedule::Trace(trace) => {
                if trace.len() <= max_minutes {
                    LoadSchedule::Trace(trace)
                } else {
                    LoadSchedule::Trace(trace.window(0, max_minutes))
                }
            }
        }
    }
}

/// Which dispatcher splits the cluster-wide arrival stream (ignored by
/// single-server scenarios).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DispatcherSpec {
    /// Cycle through servers in order.
    RoundRobin,
    /// Seeded uniform random routing.
    RandomUniform {
        /// Router seed.
        seed: u64,
    },
    /// Send each job to the least-backlogged server.
    JoinShortestBacklog,
    /// Pack the lowest-indexed servers up to a backlog threshold.
    PackFirstFit {
        /// Per-server backlog threshold, seconds.
        backlog_seconds: f64,
    },
    /// Stateless seeded-hash routing: each job's server is a pure
    /// function of `(seed, sequence)`. The only dispatcher the sharded
    /// engine (`shards > 1`) supports — it is the routing rule shards
    /// evaluate independently.
    SplitUniform {
        /// Split seed.
        seed: u64,
    },
    /// Class-aware routing over a grouped fleet: each traffic class is
    /// steered to a preferred [`ServerGroup`] (`class_groups[c]` is
    /// class `c`'s group index; classes beyond the table reuse its last
    /// entry), choosing the lowest-indexed server there whose backlog
    /// is under the spill threshold. A saturated group spills to the
    /// lowest-indexed under-threshold server fleet-wide, and a
    /// saturated fleet falls back to shortest-backlog. Requires a
    /// multi-server fleet; pairs naturally with
    /// [`Scenario::autoscaler`], whose active prefixes it routes over.
    ClassAffinity {
        /// Preferred group per class tag, indexed by
        /// [`ClassId`](sleepscale_sim::ClassId).
        class_groups: Vec<usize>,
        /// Per-server backlog threshold before a class spills out of
        /// its preferred group, seconds.
        spill_threshold_seconds: f64,
    },
}

impl DispatcherSpec {
    /// Lowers the spec into a live dispatcher over `fleet`'s group
    /// shape (only [`DispatcherSpec::ClassAffinity`] reads it).
    pub fn build(&self, fleet: &[ServerGroup]) -> Box<dyn Dispatcher> {
        match self {
            DispatcherSpec::RoundRobin => Box::new(RoundRobin::new()),
            DispatcherSpec::RandomUniform { seed } => Box::new(RandomUniform::new(*seed)),
            DispatcherSpec::JoinShortestBacklog => Box::new(JoinShortestBacklog::new()),
            DispatcherSpec::PackFirstFit { backlog_seconds } => {
                Box::new(PackFirstFit::new(*backlog_seconds))
            }
            DispatcherSpec::SplitUniform { seed } => Box::new(SplitUniform::new(*seed)),
            DispatcherSpec::ClassAffinity { class_groups, spill_threshold_seconds } => {
                let sizes: Vec<usize> = fleet.iter().map(|g| g.count).collect();
                Box::new(ClassAffinity::new(&sizes, class_groups.clone(), *spill_threshold_seconds))
            }
        }
    }

    /// Shape-checks the spec against the fleet it will route for
    /// (runner validation calls this before anything runs).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for a [`ClassAffinity`]
    /// spec with an empty class table, an out-of-range group index, or
    /// a non-finite threshold.
    pub fn validate(&self, fleet: &[ServerGroup]) -> Result<(), CoreError> {
        if let DispatcherSpec::ClassAffinity { class_groups, spill_threshold_seconds } = self {
            if class_groups.is_empty() {
                return Err(CoreError::InvalidConfig {
                    reason: "class-affinity dispatch needs at least one class→group entry".into(),
                });
            }
            if let Some(&bad) = class_groups.iter().find(|&&g| g >= fleet.len()) {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "class-affinity routes a class to group {bad} but the fleet has only {} \
                         groups",
                        fleet.len()
                    ),
                });
            }
            if !spill_threshold_seconds.is_finite() || *spill_threshold_seconds < 0.0 {
                return Err(CoreError::InvalidConfig {
                    reason: format!(
                        "class-affinity spill threshold {spill_threshold_seconds}s must be finite \
                         and >= 0"
                    ),
                });
            }
        }
        Ok(())
    }

    /// The split seed when this spec is shardable (seeded-hash
    /// routing), `None` for the stateful dispatchers.
    pub fn split_seed(&self) -> Option<u64> {
        match self {
            DispatcherSpec::SplitUniform { seed } => Some(*seed),
            _ => None,
        }
    }
}

/// A complete experiment, as data: workload + arrival-scale schedule +
/// fleet shape + dispatcher + control knobs. One `Scenario` drives any
/// backend through [`ScenarioRunner`](crate::ScenarioRunner) — the
/// single declarative entry point that replaces hand-wiring
/// `RuntimeConfig`/strategy/`Cluster` per experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Display name (catalog key).
    pub name: String,
    /// What the jobs look like.
    pub workload: WorkloadSource,
    /// How offered utilization moves over the horizon.
    pub load: LoadSchedule,
    /// Multiplies the schedule's utilization minute by minute
    /// (capacity-planning sweeps; 1.0 = as scheduled).
    pub arrival_scale: f64,
    /// The fleet: one or more server groups (one = still a fleet of
    /// `count` servers; a single group of one server selects the
    /// single-server backend).
    pub fleet: Vec<ServerGroup>,
    /// How arrivals are split across the fleet.
    pub dispatcher: DispatcherSpec,
    /// Closed-loop fleet autoscaler: when set, the cluster engine
    /// parks trailing servers of each group off-peak and wakes them
    /// (with modeled wake latency) as load or QoS pressure returns.
    /// `None` leaves every run byte-identical to a fixed fleet.
    pub autoscaler: Option<AutoscalerSpec>,
    /// Structured telemetry: when set, the run records the trace-event
    /// stream (C-state/idle residency, wakes, per-epoch policy
    /// decisions, dispatch spills, autoscaler transitions) and/or the
    /// monotonic counter registry onto
    /// [`ScenarioReport::telemetry`](crate::ScenarioReport), merged in
    /// slot order so the collected telemetry is byte-identical across
    /// worker and shard counts. `None` (the default) takes the exact
    /// pre-telemetry code paths — reports are byte-identical to a
    /// build without the layer.
    pub telemetry: Option<TelemetrySpec>,
    /// Shards for the concurrent fleet engine (1 = the central
    /// dispatch loop). More than one shard requires a
    /// [`DispatcherSpec::SplitUniform`] dispatcher and a multi-server
    /// fleet; results are byte-identical for every shard count.
    pub shards: usize,
    /// The policy update interval `T`, minutes.
    pub epoch_minutes: usize,
    /// Jobs replayed per candidate characterization.
    pub eval_jobs: usize,
    /// Samples drawn when synthesizing the BigHouse-substitute
    /// empirical tables.
    pub dist_samples: usize,
    /// Master seed: distribution synthesis and ground-truth replay
    /// derive from it, so a scenario is a pure function of its fields.
    pub seed: u64,
    /// Worker threads for fleet epoch control (0 = size to the
    /// machine; results are identical for every value).
    pub threads: usize,
    /// QoS acceptance slack: a group passes when its realized
    /// normalized mean response is within `slack ×` its budget
    /// (prediction error makes exact-budget runs flap; the paper's own
    /// evaluation tolerates transient overshoot).
    pub qos_slack: f64,
}

impl Scenario {
    /// A single-server scenario over the default SleepScale strategy;
    /// override fields with struct-update syntax.
    pub fn new(name: impl Into<String>, workload: WorkloadSource, load: LoadSchedule) -> Scenario {
        Scenario {
            name: name.into(),
            workload,
            load,
            arrival_scale: 1.0,
            fleet: vec![ServerGroup::new("server", 1, StrategySpec::sleepscale())],
            dispatcher: DispatcherSpec::JoinShortestBacklog,
            autoscaler: None,
            telemetry: None,
            shards: 1,
            epoch_minutes: 5,
            eval_jobs: 800,
            dist_samples: 8_000,
            seed: 7,
            threads: 0,
            qos_slack: 1.5,
        }
    }

    /// Total servers across the fleet.
    pub fn total_servers(&self) -> usize {
        self.fleet.iter().map(|g| g.count).sum()
    }

    /// A reduced copy for smoke runs: the horizon is truncated to 90
    /// minutes, groups shrink to a quarter of their servers (at least
    /// one), and characterization depth is capped — same shape, a
    /// fraction of the work.
    pub fn quick(mut self) -> Scenario {
        for group in &mut self.fleet {
            group.count = (group.count / 4).max(1);
        }
        self.load = self.load.truncated(90);
        self.eval_jobs = self.eval_jobs.min(200);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_sources_resolve() {
        assert_eq!(WorkloadSource::Dns.resolve().unwrap(), WorkloadSpec::dns());
        assert_eq!(WorkloadSource::Mail.resolve().unwrap(), WorkloadSpec::mail());
        assert_eq!(WorkloadSource::Google.resolve().unwrap(), WorkloadSpec::google());
    }

    #[test]
    fn mix_composes_moments() {
        // A degenerate one-component mix is that component.
        let solo =
            WorkloadSource::Mix(vec![MixComponent { spec: WorkloadSpec::dns(), weight: 3.0 }])
                .resolve()
                .unwrap();
        assert!((solo.service_mean() - 0.194).abs() < 1e-12);
        assert!((solo.service_cv() - 1.0).abs() < 1e-12);
        // DNS+Mail: the mixture mean interpolates, and mixing two
        // populations with different means inflates the Cv above the
        // weighted Cv average.
        let mixed = WorkloadSource::Mix(vec![
            MixComponent { spec: WorkloadSpec::dns(), weight: 1.0 },
            MixComponent { spec: WorkloadSpec::mail(), weight: 1.0 },
        ])
        .resolve()
        .unwrap();
        assert!((mixed.service_mean() - (0.194 + 0.092) / 2.0).abs() < 1e-12);
        assert!(mixed.service_cv() > 1.0);
        assert!(mixed.name().contains("DNS") && mixed.name().contains("Mail"));
    }

    #[test]
    fn mix_validation() {
        assert!(WorkloadSource::Mix(vec![]).resolve().is_err());
        assert!(WorkloadSource::Mix(vec![MixComponent {
            spec: WorkloadSpec::dns(),
            weight: -1.0
        }])
        .resolve()
        .is_err());
    }

    #[test]
    fn load_schedules_build_and_scale() {
        let flat = LoadSchedule::Constant { rho: 0.4, minutes: 30 }.build(1.0).unwrap();
        assert_eq!(flat.len(), 30);
        assert!((flat.mean() - 0.4).abs() < 1e-12);
        let scaled = LoadSchedule::Constant { rho: 0.4, minutes: 30 }.build(1.5).unwrap();
        assert!((scaled.mean() - 0.6).abs() < 1e-12);
        // Scaling clamps at the simulator's stable ceiling.
        let capped = LoadSchedule::Constant { rho: 0.9, minutes: 10 }.build(2.0).unwrap();
        assert!((capped.max() - 0.97).abs() < 1e-12);
        let day = LoadSchedule::EmailStoreDay { seed: 7, start_minute: 120, end_minute: 1200 }
            .build(1.0)
            .unwrap();
        assert_eq!(day.len(), 1080);
        assert_eq!(day.values(), traces::email_store(1, 7).window(120, 1200).values());
    }

    #[test]
    fn load_window_validation() {
        let err = LoadSchedule::EmailStoreDay { seed: 1, start_minute: 10, end_minute: 10 }
            .build(1.0)
            .unwrap_err();
        assert!(err.to_string().contains("empty or inverted"), "{err}");
    }

    #[test]
    fn truncation_keeps_shape() {
        let t = LoadSchedule::EmailStoreDay { seed: 7, start_minute: 480, end_minute: 840 }
            .truncated(90);
        assert_eq!(t.minutes(), 90);
        let t = LoadSchedule::Constant { rho: 0.2, minutes: 30 }.truncated(90);
        assert_eq!(t.minutes(), 30);
    }

    #[test]
    fn quick_shrinks_without_reshaping() {
        let mut scenario = Scenario::new(
            "x",
            WorkloadSource::Dns,
            LoadSchedule::Constant { rho: 0.2, minutes: 360 },
        );
        scenario.fleet = vec![
            ServerGroup::new("a", 32, StrategySpec::sleepscale()),
            ServerGroup::new("b", 2, StrategySpec::race_to_halt_c6()),
        ];
        let quick = scenario.clone().quick();
        assert_eq!(quick.fleet[0].count, 8);
        assert_eq!(quick.fleet[1].count, 1, "groups never shrink to zero");
        assert_eq!(quick.load.minutes(), 90);
        assert_eq!(quick.fleet.len(), scenario.fleet.len());
    }
}
